/// Quickstart: generate a skyline dataset set for a classifier in ~60
/// lines.
///
/// The pipeline mirrors the paper's workflow:
///  1. assemble a data lake and its universal table D_U,
///  2. declare the model M and the measure set P,
///  3. build the search universe (bitmap layout from active-domain
///     clustering),
///  4. run BiMODis and inspect the ε-skyline.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/algorithms.h"
#include "datagen/data_lake.h"
#include "estimator/supervised_evaluator.h"
#include "ml/random_forest.h"

using namespace modis;

int main() {
  // 1. A small synthetic data lake: one base table (id, segment, target)
  //    plus three feature tables, joinable on "id".
  DataLakeSpec spec;
  spec.num_rows = 800;
  spec.num_tables = 4;
  spec.task = TaskKind::kClassification;
  spec.num_classes = 2;
  spec.seed = 7;
  auto lake = GenerateDataLake(spec);
  if (!lake.ok()) {
    std::fprintf(stderr, "lake: %s\n", lake.status().ToString().c_str());
    return 1;
  }
  auto universal = LakeUniversalTable(lake.value());
  if (!universal.ok()) return 1;
  std::printf("universal table D_U: %zu rows x %zu columns\n",
              universal->num_rows(), universal->num_cols());

  // 2. The model M (a random forest) and measures P = {accuracy, F1,
  //    training time}, all normalized to (0,1] and minimized internally.
  SupervisedTask task;
  task.target = spec.target;
  task.task = TaskKind::kClassification;
  task.exclude = {spec.key};
  task.measures = {MeasureSpec::Maximize("acc"), MeasureSpec::Maximize("f1"),
                   MeasureSpec::Minimize("train_time", /*scale=*/1.0)};
  SupervisedEvaluator evaluator(task, std::make_unique<RandomForestClassifier>());

  // 3. The search universe: bitmap units = attributes + active-domain
  //    clusters; the target and join key are protected from operators.
  SearchUniverse::Options opts;
  opts.protected_attributes = {spec.target, spec.key};
  opts.max_clusters = 5;
  auto universe = SearchUniverse::Build(universal.value(), opts);
  if (!universe.ok()) return 1;

  // 4. Run BiMODis with an exact oracle (small data -> retraining per
  //    state is fine; swap in MoGbmOracle for larger lakes).
  ExactOracle oracle(&evaluator);
  ModisConfig config;
  config.epsilon = 0.2;
  config.max_states = 120;
  config.max_level = 3;
  auto result = RunBiModis(*universe, &oracle, config);
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("valuated %zu states in %.2f s; skyline has %zu datasets:\n",
              result->valuated_states, result->seconds,
              result->skyline.size());
  for (const auto& entry : result->skyline) {
    auto exact = evaluator.Evaluate(universe->Materialize(entry.state));
    if (!exact.ok()) continue;
    std::printf("  acc=%.3f f1=%.3f train=%.4fs  (%zu rows, %zu cols)\n",
                exact->raw[0], exact->raw[1], exact->raw[2], entry.rows,
                entry.cols);
  }
  return 0;
}
