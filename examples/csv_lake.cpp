/// Using MODis on your own CSV files: load source tables from disk, build
/// the universal table with full outer joins on a shared key, run the
/// search, and write the suggested skyline datasets back out as CSVs.
///
/// This example writes a tiny demo lake to a temp directory first, so it
/// is runnable out of the box; point `dir` at your own files to reuse it.
///
/// Build & run:  ./build/examples/csv_lake

#include <cstdio>
#include <filesystem>

#include "core/algorithms.h"
#include "datagen/data_lake.h"
#include "estimator/supervised_evaluator.h"
#include "ml/gradient_boosting.h"
#include "ops/operators.h"
#include "table/csv.h"

using namespace modis;

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "modis_csv_lake";
  fs::create_directories(dir);

  // --- Step 0 (demo only): materialize a small lake as CSV files.
  {
    DataLakeSpec spec;
    spec.num_rows = 600;
    spec.num_tables = 3;
    spec.task = TaskKind::kRegression;
    spec.seed = 5;
    auto lake = GenerateDataLake(spec);
    if (!lake.ok()) return 1;
    for (size_t t = 0; t < lake->tables.size(); ++t) {
      auto path = dir / ("source_" + std::to_string(t) + ".csv");
      if (!WriteCsvFile(lake->tables[t], path.string()).ok()) return 1;
    }
  }

  // --- Step 1: read every CSV in the directory as a source table.
  std::vector<Table> sources;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".csv") continue;
    auto table = ReadCsvFile(entry.path().string());
    if (!table.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", entry.path().c_str(),
                   table.status().ToString().c_str());
      continue;
    }
    std::printf("loaded %s: %zu x %zu\n", entry.path().filename().c_str(),
                table->num_rows(), table->num_cols());
    sources.push_back(std::move(table).value());
  }

  // --- Step 2: universal table via multi-way full outer join on "id".
  auto universal = BuildUniversalTable(sources, "id");
  if (!universal.ok()) {
    std::fprintf(stderr, "join: %s\n", universal.status().ToString().c_str());
    return 1;
  }
  std::printf("universal table: %zu x %zu\n", universal->num_rows(),
              universal->num_cols());

  // --- Step 3: declare the task and search.
  SupervisedTask task;
  task.target = "target";
  task.task = TaskKind::kRegression;
  task.exclude = {"id"};
  task.measures = {MeasureSpec::Minimize("mse", 4.0),
                   MeasureSpec::Minimize("train_time", 1.0)};
  SupervisedEvaluator evaluator(
      task, std::make_unique<GradientBoostingRegressor>(GbmOptions{
                .num_rounds = 30}));

  SearchUniverse::Options opts;
  opts.protected_attributes = {"target", "id"};
  auto universe = SearchUniverse::Build(universal.value(), opts);
  if (!universe.ok()) return 1;

  ExactOracle oracle(&evaluator);
  ModisConfig config;
  config.epsilon = 0.2;
  config.max_states = 100;
  config.max_level = 3;
  auto result = RunNoBiModis(*universe, &oracle, config);
  if (!result.ok()) return 1;

  // --- Step 4: write the skyline datasets next to the sources.
  std::printf("writing %zu skyline datasets to %s\n",
              result->skyline.size(), dir.c_str());
  size_t i = 0;
  for (const auto& entry : result->skyline) {
    Table dataset = universe->Materialize(entry.state);
    const auto path = dir / ("skyline_" + std::to_string(i++) + ".csv");
    if (WriteCsvFile(dataset, path.string()).ok()) {
      std::printf("  %s (%zu x %zu, mse_norm=%.3f)\n",
                  path.filename().c_str(), dataset.num_rows(),
                  dataset.num_cols(), entry.eval.normalized[0]);
    }
  }
  return 0;
}
