/// modis_cli — command-line skyline data discovery over CSV files, and
/// the client of a running modis_server.
///
/// Local usage:
///   modis_cli --dir <path> --key <col> --target <col>
///             [--task regression|classification]
///             [--algo apx|nobi|bi|div] [--epsilon 0.2] [--budget 150]
///             [--maxl 4] [--k 5] [--out <dir>]
///             [--record-cache <file>] [--cache-mode off|read|read_write]
///
/// Loads every *.csv in <dir> as a source table, builds the universal
/// table by full outer joins on <key>, runs the chosen MODis algorithm
/// with measures {headline accuracy/error, training time}, and writes the
/// skyline datasets as skyline_<i>.csv into <out> (default: <dir>).
///
/// `--record-cache` is the warm-start demo: the first run trains every
/// valuated state and records it in the given log file; re-running the
/// same command (or another --algo over the same lake) replays those
/// records instead of re-training — the hit/train counters are printed
/// after the run. See docs/PERSISTENCE.md.
///
/// A self-contained demo lake is generated when --dir is omitted.
///
/// Client usage (docs/SERVING.md):
///   modis_cli --connect <endpoint> --bench-task T1
///             [--algo bi] [--oracle exact|gbm] [--epsilon ..]
///             [--budget ..] [--maxl ..] [--k ..] [--alpha ..]
///             [--measures acc,fisher,mi] [--record-cache <file>]
///             [--cache-mode M] [--namespace NS] [--seed N] [--raw]
///             [--api-key KEY]
///   modis_cli --connect <endpoint> --metrics
///
/// <endpoint> is a unix socket path, "unix:PATH", "HOST:PORT", or
/// "tcp:HOST:PORT" (src/service/transport.h). The first form sends one
/// discovery request to the modis_server listening there and prints the
/// answer (the raw response JSON line with --raw — the shape
/// scripts/serving_smoke.sh diffs); --metrics asks the host for its
/// metrics snapshot instead and always prints the raw JSON line.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "core/algorithms.h"
#include "datagen/data_lake.h"
#include "estimator/supervised_evaluator.h"
#include "ml/gradient_boosting.h"
#include "ml/random_forest.h"
#include "ops/operators.h"
#include "service/transport.h"
#include "service/wire.h"
#include "table/csv.h"

namespace fs = std::filesystem;
using namespace modis;

namespace {

struct Args {
  std::string dir;
  std::string out;
  std::string key = "id";
  std::string target = "target";
  std::string task = "regression";
  std::string algo = "bi";
  double epsilon = 0.2;
  size_t budget = 150;
  int maxl = 4;
  size_t k = 5;
  std::string record_cache;
  std::string cache_mode = "read_write";
  // Client mode.
  std::string connect;
  std::string bench_task;
  std::string oracle = "exact";
  std::string measures;  // Comma-separated.
  double alpha = 0.5;
  std::string cache_namespace;
  /// Tenant credential of a QoS-enabled host (docs/SERVING.md §7); the
  /// server maps it to a token bucket, quota, and priority.
  std::string api_key;
  uint64_t seed = 1;
  bool raw = false;
  bool metrics = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  std::map<std::string, std::string*> str_flags{
      {"--dir", &args->dir},     {"--out", &args->out},
      {"--key", &args->key},     {"--target", &args->target},
      {"--task", &args->task},   {"--algo", &args->algo},
      {"--record-cache", &args->record_cache},
      {"--cache-mode", &args->cache_mode},
      {"--connect", &args->connect},
      {"--bench-task", &args->bench_task},
      {"--oracle", &args->oracle},
      {"--measures", &args->measures},
      {"--namespace", &args->cache_namespace},
      {"--api-key", &args->api_key},
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--raw") {  // Zero-operand flags.
      args->raw = true;
      continue;
    }
    if (flag == "--metrics") {
      args->metrics = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
      return false;
    }
    const std::string value = argv[++i];
    if (auto it = str_flags.find(flag); it != str_flags.end()) {
      *it->second = value;
    } else if (flag == "--epsilon") {
      args->epsilon = std::stod(value);
    } else if (flag == "--budget") {
      args->budget = std::stoul(value);
    } else if (flag == "--maxl") {
      args->maxl = std::stoi(value);
    } else if (flag == "--k") {
      args->k = std::stoul(value);
    } else if (flag == "--alpha") {
      args->alpha = std::stod(value);
    } else if (flag == "--seed") {
      args->seed = std::stoull(value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

/// Sends one request line to a modis_server endpoint (unix or TCP) and
/// prints the response: the raw JSON line with --raw or --metrics, a
/// human summary otherwise.
Status RunConnect(const Args& args) {
  MODIS_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(args.connect));
  MODIS_ASSIGN_OR_RETURN(ClientChannel channel,
                         ClientChannel::Connect(endpoint));

  if (args.metrics) {
    MODIS_ASSIGN_OR_RETURN(const std::string reply,
                           channel.RoundTrip("{\"verb\":\"metrics\"}"));
    std::printf("%s\n", reply.c_str());
    return Status::OK();
  }

  if (args.bench_task.empty()) {
    return Status::InvalidArgument("--connect needs --bench-task (T1..T4)");
  }
  DiscoveryRequest request;
  request.task = args.bench_task;
  request.variant = args.algo;
  request.oracle = args.oracle;
  request.epsilon = args.epsilon;
  request.budget = args.budget;
  request.maxl = args.maxl;
  request.k = args.k;
  request.alpha = args.alpha;
  request.cache_path = args.record_cache;
  request.cache_mode = args.cache_mode;
  request.cache_namespace = args.cache_namespace;
  request.api_key = args.api_key;
  request.seed = args.seed;
  size_t start = 0;
  while (start <= args.measures.size() && !args.measures.empty()) {
    const size_t comma = args.measures.find(',', start);
    const std::string name =
        args.measures.substr(start, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - start);
    if (!name.empty()) request.measures.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }

  MODIS_ASSIGN_OR_RETURN(
      const std::string reply,
      channel.RoundTrip(SerializeDiscoveryRequest(request)));

  if (args.raw) {
    std::printf("%s\n", reply.c_str());
    return Status::OK();
  }
  MODIS_ASSIGN_OR_RETURN(DiscoveryResponse response,
                         ParseDiscoveryResponse(reply));
  std::printf("%s %s: skyline size %zu (valuated %zu, queue %.1f ms, run "
              "%.1f ms)\n",
              response.task.c_str(), response.variant.c_str(),
              response.skyline.size(), response.valuated_states,
              response.queue_ms, response.run_ms);
  std::printf("trainings: %zu fresh, %zu replayed from the warm cache, "
              "%zu surrogate\n",
              response.exact_evals, response.persistent_hits,
              response.surrogate_evals);
  for (const DiscoverySkylineRow& row : response.skyline) {
    std::printf("  %s (level %d, %zux%zu):", row.signature.c_str(),
                row.level, row.rows, row.cols);
    for (size_t j = 0;
         j < row.raw.size() && j < response.measure_names.size(); ++j) {
      std::printf(" %s=%.4f", response.measure_names[j].c_str(),
                  row.raw[j]);
    }
    std::printf("\n");
  }
  return Status::OK();
}

/// Writes a demo lake when no --dir was given, so the CLI is runnable
/// standalone.
Status PrepareDemoLake(Args* args) {
  const fs::path dir = fs::temp_directory_path() / "modis_cli_demo";
  fs::create_directories(dir);
  DataLakeSpec spec;
  spec.num_rows = 800;
  spec.num_tables = 3;
  spec.seed = 21;
  MODIS_ASSIGN_OR_RETURN(DataLake lake, GenerateDataLake(spec));
  for (size_t t = 0; t < lake.tables.size(); ++t) {
    MODIS_RETURN_IF_ERROR(WriteCsvFile(
        lake.tables[t], (dir / ("table_" + std::to_string(t) + ".csv"))
                            .string()));
  }
  args->dir = dir.string();
  std::printf("no --dir given; demo lake written to %s\n", dir.c_str());
  return Status::OK();
}

Status Run(Args args) {
  if (!args.connect.empty()) {
    return RunConnect(args);
  }
  if (args.metrics) {
    return Status::InvalidArgument(
        "--metrics needs --connect <endpoint> (it asks a running "
        "modis_server for its counters)");
  }
  if (args.dir.empty()) {
    MODIS_RETURN_IF_ERROR(PrepareDemoLake(&args));
  }
  if (args.out.empty()) args.out = args.dir;

  std::vector<Table> sources;
  for (const auto& entry : fs::directory_iterator(args.dir)) {
    if (entry.path().extension() != ".csv") continue;
    if (entry.path().filename().string().rfind("skyline_", 0) == 0) continue;
    MODIS_ASSIGN_OR_RETURN(Table table, ReadCsvFile(entry.path().string()));
    sources.push_back(std::move(table));
  }
  if (sources.empty()) {
    return Status::NotFound("no CSV files in " + args.dir);
  }
  MODIS_ASSIGN_OR_RETURN(Table universal,
                         BuildUniversalTable(sources, args.key));
  std::printf("universal table: %zu x %zu\n", universal.num_rows(),
              universal.num_cols());

  const bool regression = args.task == "regression";
  SupervisedTask task;
  task.target = args.target;
  task.task = regression ? TaskKind::kRegression : TaskKind::kClassification;
  task.exclude = {args.key};
  task.measures =
      regression
          ? std::vector<MeasureSpec>{MeasureSpec::Minimize("mse", 4.0),
                                     MeasureSpec::Minimize("train_time", 1.0)}
          : std::vector<MeasureSpec>{MeasureSpec::Maximize("acc"),
                                     MeasureSpec::Maximize("f1"),
                                     MeasureSpec::Minimize("train_time", 1.0)};
  std::unique_ptr<MlModel> model;
  if (regression) {
    model = std::make_unique<GradientBoostingRegressor>(
        GbmOptions{.num_rounds = 30});
  } else {
    model = std::make_unique<RandomForestClassifier>();
  }
  SupervisedEvaluator evaluator(task, std::move(model));

  SearchUniverse::Options opts;
  opts.protected_attributes = {args.target, args.key};
  MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                         SearchUniverse::Build(universal, opts));

  ExactOracle oracle(&evaluator);
  ModisConfig config;
  config.epsilon = args.epsilon;
  config.max_states = args.budget;
  config.max_level = args.maxl;
  config.diversify_k = args.k;
  config.record_cache_path = args.record_cache;
  MODIS_ASSIGN_OR_RETURN(config.cache_mode,
                         ParseCacheMode(args.cache_mode));

  Result<ModisResult> result = Status::Internal("unset");
  if (args.algo == "apx") {
    result = RunApxModis(universe, &oracle, config);
  } else if (args.algo == "nobi") {
    result = RunNoBiModis(universe, &oracle, config);
  } else if (args.algo == "bi") {
    result = RunBiModis(universe, &oracle, config);
  } else if (args.algo == "div") {
    result = RunDivModis(universe, &oracle, config);
  } else {
    return Status::InvalidArgument("unknown --algo " + args.algo);
  }
  MODIS_RETURN_IF_ERROR(result.status());

  std::printf("%s: valuated %zu states in %.2f s; skyline size %zu\n",
              args.algo.c_str(), result->valuated_states, result->seconds,
              result->skyline.size());
  if (!args.record_cache.empty() && !result->record_cache_active) {
    // Off by --cache-mode, or the open failed (the engine already warned
    // on stderr): make clear the run was cold rather than printing
    // all-zero cache stats.
    std::printf("record cache %s: not active for this run\n",
                args.record_cache.c_str());
  } else if (result->record_cache_active) {
    const auto& cache = result->record_cache_stats;
    const auto& os = result->oracle_stats;
    std::printf(
        "record cache %s: %zu records loaded (%zu for this task), "
        "%zu trainings replayed, %zu trained fresh, %zu appended\n",
        args.record_cache.c_str(), cache.loaded_records, cache.task_records,
        os.persistent_hits, os.exact_evals, cache.appended);
    if (os.persistent_hits + os.exact_evals > 0) {
      std::printf("warm-start hit rate: %.1f%%\n",
                  100.0 * double(os.persistent_hits) /
                      double(os.persistent_hits + os.exact_evals));
    }
  }
  size_t i = 0;
  for (const auto& entry : result->skyline) {
    Table dataset = universe.Materialize(entry.state);
    const fs::path path =
        fs::path(args.out) / ("skyline_" + std::to_string(i++) + ".csv");
    MODIS_RETURN_IF_ERROR(WriteCsvFile(dataset, path.string()));
    std::printf("  %s (%zu x %zu):", path.filename().c_str(),
                dataset.num_rows(), dataset.num_cols());
    for (size_t j = 0; j < task.measures.size(); ++j) {
      std::printf(" %s=%.4f", task.measures[j].name.c_str(),
                  entry.eval.raw[j]);
    }
    std::printf("\n");
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  Status status = Run(std::move(args));
  if (!status.ok()) {
    std::fprintf(stderr, "modis_cli: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
