/// Example 1 of the paper, end to end: harmful-algal-bloom (HAB)
/// forecasting. A research team has water / basin / nitrogen / phosphorus
/// tables and a random-forest-family regressor predicting the CI-index.
/// They issue the skyline query:
///
///   "Generate a dataset for which our model is expected to have RMSE
///    below 0.6 (normalized), R2-loss at most 0.35, and bounded training
///    cost"  (the bounds of Example 2).
///
/// This example builds the four-source lake, sets the measure ranges, and
/// runs ApxMODis + DivMODis, printing the skyline and which attributes
/// each suggested dataset keeps (the "what are crucial features" question
/// from the paper's introduction).
///
/// Build & run:  ./build/examples/hab_forecast

#include <cstdio>

#include "core/algorithms.h"
#include "datagen/data_lake.h"
#include "estimator/supervised_evaluator.h"
#include "ml/random_forest.h"

using namespace modis;

int main() {
  // The HAB lake: base table = CI-index observations keyed by site; the
  // feature tables play the roles of D_w (water), D_N (nitrogen), D_P
  // (phosphorus). Two "seasonal segments" carry corrupted sensors, so
  // dropping their rows (a Reduct like "year < 2003" in Fig. 2) helps.
  DataLakeSpec spec;
  spec.name = "hab";
  spec.num_rows = 1500;
  spec.num_tables = 4;
  spec.informative_per_table = 2;
  spec.noisy_per_table = 1;
  spec.redundant_per_table = 1;
  spec.task = TaskKind::kRegression;
  spec.target = "ci_index";
  spec.key = "site";
  spec.corrupt_noise = 2.0;
  spec.seed = 2013;
  auto lake = GenerateDataLake(spec);
  if (!lake.ok()) return 1;
  auto universal = LakeUniversalTable(lake.value());
  if (!universal.ok()) return 1;

  // Measures with the ranges of Example 2: RMSE in (0, 0.6], inverted R2
  // in (0, 0.35], training time in (0, 0.5] of its scale.
  MeasureSpec rmse = MeasureSpec::Minimize("rmse", /*scale=*/2.0);
  rmse.upper = 0.6;
  MeasureSpec r2 = MeasureSpec::Maximize("r2");  // Normalized as 1 - R2.
  r2.upper = 0.35;
  MeasureSpec train = MeasureSpec::Minimize("train_time", /*scale=*/2.0);
  train.upper = 0.5;

  SupervisedTask task;
  task.target = spec.target;
  task.task = TaskKind::kRegression;
  task.exclude = {spec.key};
  task.measures = {rmse, r2, train};
  ForestOptions forest;
  forest.num_trees = 20;
  SupervisedEvaluator evaluator(
      task, std::make_unique<RandomForestRegressor>(forest));

  SearchUniverse::Options opts;
  opts.protected_attributes = {spec.target, spec.key};
  opts.max_clusters = 5;
  auto universe = SearchUniverse::Build(universal.value(), opts);
  if (!universe.ok()) return 1;

  ModisConfig config;
  config.epsilon = 0.2;
  config.max_states = 150;
  config.max_level = 4;
  config.diversify_k = 3;

  for (bool diversify : {false, true}) {
    ExactOracle oracle(&evaluator);
    auto result = diversify ? RunDivModis(*universe, &oracle, config)
                            : RunApxModis(*universe, &oracle, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("\n%s: %zu skyline datasets (all satisfying the query "
                "bounds):\n",
                diversify ? "DivMODis (bias-mitigated)" : "ApxMODis",
                result->skyline.size());
    for (const auto& entry : result->skyline) {
      auto exact = evaluator.Evaluate(universe->Materialize(entry.state));
      if (!exact.ok()) continue;
      std::printf("  rmse=%.3f  R2=%.3f  train=%.3fs  rows=%zu  features:",
                  exact->raw[0], exact->raw[1], exact->raw[2], entry.rows);
      const auto& layout = universe->layout();
      for (size_t a = 0; a < layout.num_attributes(); ++a) {
        if (entry.state.Get(a) && layout.attributes[a] != spec.key &&
            layout.attributes[a] != spec.target) {
          std::printf(" %s", layout.attributes[a].c_str());
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
