/// modis_server — the long-lived discovery host.
///
/// Serves MODis discovery queries over a line-delimited JSON protocol
/// (docs/SERVING.md): one request object per line in, one response object
/// per line out, over any mix of unix-socket and TCP listeners behind a
/// single accept loop (src/service/transport.h).
///
/// Usage:
///   modis_server --socket /tmp/modis.sock    # AF_UNIX stream listener
///   modis_server --listen 127.0.0.1:7077     # TCP listener (port 0 = any)
///   modis_server --stdio                     # one session on stdin/stdout
///   modis_server --batch '<request json>'    # one-shot reference run
///             [--tasks T1,T2]    preload task contexts before serving
///             [--sessions N]     concurrent query executors (default 2)
///             [--queue N]        admission-queue capacity (default 8)
///             [--threads N]      shared valuation pool (0 = hardware)
///             [--cache PATH]     default record-cache file
///             [--cache-mode M]   off | read | read_write (default)
///             [--cache-max-bytes N]  byte budget (default 256 MiB; 0 = off)
///             [--page-size N]    paged cache engine page size (0 = v1 log)
///             [--buffer-pool-frames N]  paged engine frame budget (0 = 64)
///             [--max-task-contexts N]  LRU cap on live contexts (0 = off)
///             [--context-ttl S]  idle context TTL in seconds (0 = off)
///             [--row-scale S]    bench-lake row scale (default 1.0)
///             [--http]           sniff HTTP/1.1 on every listener
///             [--tenant SPEC]    QoS tenant (repeatable); SPEC is
///                                NAME:API_KEY[:RATE[:BURST[:MAX_IN_FLIGHT
///                                [:PRIORITY]]]] — see docs/SERVING.md §7
///             [--log-level L]    debug | info (default) | warn | error
///             [--log-json]       one JSON object per log line
///             [--slow-query-ms N]  WARN queries slower than N ms (0 = off)
///             [--trace-ring N]   retained recent AND slow traces (def. 16)
///             [--workers N]      worker *processes* draining a shared-
///                                memory job ring (0 = in-process mode,
///                                the default; docs/MULTIPROCESS.md)
///             [--job-ring N]     job slots in the ring (default 16)
///             [--worker-respawn-ms N]  respawn backoff base (def. 200)
///             [--ring-path P]    ring segment file (default: a /tmp
///                                path derived from the pid)
///
/// --socket and --listen may be combined; both transports answer from the
/// same service. With --http each connection is protocol-sniffed: HTTP
/// requests route through POST /v1/query, GET /metrics (Prometheus), and
/// GET /healthz; everything else stays line-delimited JSON on the same
/// port. SIGTERM/SIGINT drain gracefully: stop accepting, half-
/// close every session, finish all accepted work, flush the caches, dump
/// a final metrics line, exit 0.
///
/// The host owns its cache files: a writable open holds the flock writer
/// lock for the process lifetime, so a second host on the same file fails
/// fast and batch runs degrade to cold. `--batch` executes one request
/// without the service (fresh lake, fresh engine) and prints the same
/// response JSON — the reference the serving smoke test diffs against.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "service/discovery_service.h"
#include "service/http.h"
#include "service/qos.h"
#include "service/transport.h"
#include "service/wire.h"
#include "service/worker.h"

using namespace modis;

namespace {

struct Args {
  std::string socket_path;
  std::string listen;  // TCP HOST:PORT.
  bool stdio = false;
  std::string batch_request;
  std::string tasks;
  size_t sessions = 2;
  size_t queue = 8;
  size_t threads = 0;
  std::string cache;
  std::string cache_mode = "read_write";
  uint64_t cache_max_bytes = DiscoveryService::Options::kDefaultCacheMaxBytes;
  uint32_t page_size = 0;
  size_t buffer_pool_frames = 0;
  size_t max_task_contexts = 0;
  double context_ttl = 0.0;
  double row_scale = 1.0;
  bool http = false;
  std::vector<TenantSpec> tenants;
  std::string log_level = "info";
  bool log_json = false;
  double slow_query_ms = 0.0;
  size_t trace_ring = 16;
  // Multi-process mode (docs/MULTIPROCESS.md).
  uint32_t workers = 0;
  uint32_t job_ring = 16;
  int worker_respawn_ms = 200;
  std::string ring_path;
  // Hidden: set when this process IS a worker (spawned by the
  // coordinator via fork+exec of its own binary).
  std::string worker_attach;
  uint32_t worker_index = 0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (flag == "--stdio") {
      args->stdio = true;
    } else if (flag == "--socket") {
      if (!next(&args->socket_path)) return false;
    } else if (flag == "--listen") {
      if (!next(&args->listen)) return false;
    } else if (flag == "--batch") {
      if (!next(&args->batch_request)) return false;
    } else if (flag == "--tasks") {
      if (!next(&args->tasks)) return false;
    } else if (flag == "--sessions") {
      if (!next(&value)) return false;
      args->sessions = std::stoul(value);
    } else if (flag == "--queue") {
      if (!next(&value)) return false;
      args->queue = std::stoul(value);
    } else if (flag == "--threads") {
      if (!next(&value)) return false;
      args->threads = std::stoul(value);
    } else if (flag == "--cache") {
      if (!next(&args->cache)) return false;
    } else if (flag == "--cache-mode") {
      if (!next(&args->cache_mode)) return false;
    } else if (flag == "--cache-max-bytes") {
      if (!next(&value)) return false;
      args->cache_max_bytes = std::stoull(value);
    } else if (flag == "--page-size") {
      if (!next(&value)) return false;
      args->page_size = static_cast<uint32_t>(std::stoul(value));
    } else if (flag == "--buffer-pool-frames") {
      if (!next(&value)) return false;
      args->buffer_pool_frames = std::stoul(value);
    } else if (flag == "--max-task-contexts") {
      if (!next(&value)) return false;
      args->max_task_contexts = std::stoul(value);
    } else if (flag == "--context-ttl") {
      if (!next(&value)) return false;
      args->context_ttl = std::stod(value);
    } else if (flag == "--row-scale") {
      if (!next(&value)) return false;
      args->row_scale = std::stod(value);
    } else if (flag == "--http") {
      args->http = true;
    } else if (flag == "--log-level") {
      if (!next(&args->log_level)) return false;
    } else if (flag == "--log-json") {
      args->log_json = true;
    } else if (flag == "--slow-query-ms") {
      if (!next(&value)) return false;
      args->slow_query_ms = std::stod(value);
    } else if (flag == "--trace-ring") {
      if (!next(&value)) return false;
      args->trace_ring = std::stoul(value);
    } else if (flag == "--workers") {
      if (!next(&value)) return false;
      args->workers = static_cast<uint32_t>(std::stoul(value));
    } else if (flag == "--job-ring") {
      if (!next(&value)) return false;
      args->job_ring = static_cast<uint32_t>(std::stoul(value));
    } else if (flag == "--worker-respawn-ms") {
      if (!next(&value)) return false;
      args->worker_respawn_ms = std::stoi(value);
    } else if (flag == "--ring-path") {
      if (!next(&args->ring_path)) return false;
    } else if (flag == "--worker-attach") {
      if (!next(&args->worker_attach)) return false;
    } else if (flag == "--worker-index") {
      if (!next(&value)) return false;
      args->worker_index = static_cast<uint32_t>(std::stoul(value));
    } else if (flag == "--tenant") {
      if (!next(&value)) return false;
      auto spec = ParseTenantSpec(value);
      if (!spec.ok()) {
        std::fprintf(stderr, "--tenant %s: %s\n", value.c_str(),
                     spec.status().ToString().c_str());
        return false;
      }
      args->tenants.push_back(std::move(spec).value());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (!args->stdio && args->socket_path.empty() && args->listen.empty() &&
      args->batch_request.empty() && args->worker_attach.empty()) {
    std::fprintf(stderr,
                 "one of --socket PATH, --listen HOST:PORT, --stdio, or "
                 "--batch JSON is required\n");
    return false;
  }
  return true;
}

void ServeStdio(DiscoveryService* service, WorkerPool* pool) {
  std::string line;
  std::vector<char> buffer(1 << 20);
  while (std::fgets(buffer.data(), int(buffer.size()), stdin) != nullptr) {
    line.assign(buffer.data());
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    std::printf("%s\n", HandleServiceLine(service, pool, line).c_str());
    std::fflush(stdout);
  }
}

/// fork+execs this very binary (/proc/self/exe) in worker mode,
/// mirroring every engine-relevant flag of the coordinator's command
/// line so workers open the same cache file with the same engine knobs.
pid_t SpawnWorker(const Args& args, const std::string& ring_path,
                  uint32_t worker) {
  std::vector<std::string> storage;
  storage.push_back("modis_server");
  auto add = [&storage](const char* flag, const std::string& value) {
    storage.push_back(flag);
    storage.push_back(value);
  };
  add("--worker-attach", ring_path);
  add("--worker-index", std::to_string(worker));
  if (!args.cache.empty()) add("--cache", args.cache);
  add("--cache-mode", args.cache_mode);
  add("--cache-max-bytes", std::to_string(args.cache_max_bytes));
  add("--page-size", std::to_string(args.page_size));
  add("--buffer-pool-frames", std::to_string(args.buffer_pool_frames));
  add("--max-task-contexts", std::to_string(args.max_task_contexts));
  add("--context-ttl", std::to_string(args.context_ttl));
  add("--row-scale", std::to_string(args.row_scale));
  add("--threads", std::to_string(args.threads));
  add("--sessions", "1");  // A worker drains one job at a time.
  add("--slow-query-ms", std::to_string(args.slow_query_ms));
  add("--trace-ring", std::to_string(args.trace_ring));
  add("--log-level", args.log_level);
  if (args.log_json) storage.push_back("--log-json");
  std::vector<char*> argv;
  argv.reserve(storage.size() + 1);
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv("/proc/self/exe", argv.data());
    _exit(127);  // exec failed; the supervisor respawns with backoff.
  }
  if (pid > 0) {
    MODIS_LOG(INFO, "server")
        .Tag("worker", uint64_t(worker))
        .Tag("pid", int64_t(pid))
        << "worker spawned";
  }
  return pid;
}

/// Worker-process entry: attach to the coordinator's ring and drain it
/// until the coordinator stops the ring or kills us. The cache opens in
/// shared mode — short-lived lock windows instead of a lifetime writer
/// lock — so N workers and the coordinator coexist on one file.
int RunWorker(const Args& args, DiscoveryService::Options options) {
  options.shared_cache = true;
  options.request_id_prefix =
      "q-w" + std::to_string(args.worker_index) + "-";
  DiscoveryService service(options);
  WorkerOptions worker_options;
  worker_options.ring_path = args.worker_attach;
  worker_options.worker_index = args.worker_index;
  MODIS_LOG(INFO, "worker")
      .Tag("worker", uint64_t(args.worker_index))
      .Tag("ring", args.worker_attach)
      << "attached; draining";
  const Status ran = RunWorkerLoop(&service, worker_options);
  if (!ran.ok()) {
    MODIS_LOG(ERROR, "worker") << ran.ToString();
    return 1;
  }
  return 0;
}

int RunBatch(const Args& args) {
  auto request = ParseDiscoveryRequest(args.batch_request);
  if (!request.ok()) {
    std::printf("%s\n", SerializeDiscoveryError(request.status()).c_str());
    return 1;
  }
  auto response =
      DiscoveryService::AnswerDetached(request.value(), args.row_scale);
  if (!response.ok()) {
    std::printf("%s\n", SerializeDiscoveryError(response.status()).c_str());
    return 1;
  }
  std::printf("%s\n", SerializeDiscoveryResponse(response.value()).c_str());
  return 0;
}

void Preload(DiscoveryService* service, const std::string& tasks) {
  size_t start = 0;
  while (start <= tasks.size()) {
    const size_t comma = tasks.find(',', start);
    const std::string task = tasks.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!task.empty()) {
      const Status preloaded = service->Preload(task);
      if (preloaded.ok()) {
        MODIS_LOG(INFO, "server").Tag("task", task) << "preloaded";
      } else {
        MODIS_LOG(WARN, "server").Tag("task", task)
            << "preload failed: " << preloaded.ToString();
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

/// The drain trigger: SIGTERM/SIGINT handlers may only touch the
/// async-signal-safe RequestStop() (one write(2) to the server's pipe).
LineServer* g_server = nullptr;

void OnShutdownSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  LogLevel log_level = LogLevel::kInfo;
  if (!ParseLogLevel(args.log_level, &log_level)) {
    std::fprintf(stderr,
                 "modis_server: --log-level %s is not one of "
                 "debug|info|warn|error\n",
                 args.log_level.c_str());
    return 2;
  }
  SetLogLevel(log_level);
  SetLogJson(args.log_json);

  if (!args.batch_request.empty()) return RunBatch(args);

#if !defined(_WIN32)
  std::signal(SIGPIPE, SIG_IGN);  // A dropped client must not kill the host.
#endif

  DiscoveryService::Options options;
  options.sessions = args.sessions;
  options.queue_capacity = args.queue;
  options.valuation_threads = args.threads;
  options.default_cache_path = args.cache;
  options.cache_max_bytes = args.cache_max_bytes;
  options.cache_page_size = args.page_size;
  options.cache_buffer_pool_frames = args.buffer_pool_frames;
  options.max_task_contexts = args.max_task_contexts;
  options.context_idle_ttl_s = args.context_ttl;
  options.task_row_scale = args.row_scale;
  options.tenants = args.tenants;
  options.slow_query_ms = args.slow_query_ms;
  options.trace_recent_capacity = args.trace_ring;
  options.trace_slow_capacity = args.trace_ring;
  auto mode = ParseCacheMode(args.cache_mode);
  if (!mode.ok()) {
    MODIS_LOG(ERROR, "server") << mode.status().ToString();
    return 2;
  }
  options.default_cache_mode = mode.value();

  if (!args.worker_attach.empty()) return RunWorker(args, options);

  // Coordinator of the multi-process host: queries execute in worker
  // processes over the shared cache file, so its own service opens the
  // cache in shared mode too (metrics/trace verbs stay local).
  if (args.workers > 0) options.shared_cache = true;

  DiscoveryService service(options);
  if (!args.cache.empty() && options.default_cache_mode != CacheMode::kOff) {
    if (options.cache_max_bytes > 0) {
      MODIS_LOG(INFO, "server")
          .Tag("bytes", options.cache_max_bytes)
          << "record cache budget: " << options.cache_max_bytes << " bytes";
    } else {
      MODIS_LOG(INFO, "server")
          << "record cache budget: unbounded (--cache-max-bytes 0)";
    }
  }

  std::unique_ptr<WorkerPool> pool;
  std::string ring_path = args.ring_path;
  if (args.workers > 0) {
    if (ring_path.empty()) {
      ring_path = "/tmp/modis-ring-" + std::to_string(::getpid()) + ".shm";
    }
    WorkerPool::Options pool_options;
    pool_options.workers = args.workers;
    pool_options.ring_path = ring_path;
    pool_options.ring.slots = args.job_ring;
    pool_options.respawn_ms = args.worker_respawn_ms;
    pool_options.spawn = [&args, ring_path](uint32_t worker) {
      return SpawnWorker(args, ring_path, worker);
    };
    if (Status started = WorkerPool::Start(pool_options, &pool);
        !started.ok()) {
      MODIS_LOG(ERROR, "server") << started.ToString();
      return 1;
    }
    MODIS_LOG(INFO, "server")
        .Tag("workers", uint64_t(args.workers))
        .Tag("ring", ring_path)
        .Tag("slots", uint64_t(args.job_ring))
        << "worker pool started";
  }

  if (args.stdio) {
    Preload(&service, args.tasks);
    ServeStdio(&service, pool.get());
    if (pool) {
      pool->Stop();
      ::unlink(ring_path.c_str());
    }
    MODIS_LOG(INFO, "server")
        << "final "
        << SerializeServiceMetrics(service.SnapshotMetrics());
    return 0;
  }

  LineServer server(
      [&service, &pool](const std::string& line) {
        return HandleServiceLine(&service, pool.get(), line);
      },
      LineServer::Options(), service.metrics());
  if (args.http) {
    server.set_http_handler([&service, &pool](const HttpRequest& request) {
      return RouteHttpRequest(&service, pool.get(), request);
    });
  }

  // Bind every listener before the (potentially slow) preloads: clients
  // can connect immediately (the accept backlog holds them) and their
  // first queries simply wait on the context build.
  if (!args.socket_path.empty()) {
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = args.socket_path;
    if (Status listening = server.Listen(endpoint); !listening.ok()) {
      MODIS_LOG(ERROR, "server") << listening.ToString();
      return 1;
    }
  }
  if (!args.listen.empty()) {
    auto endpoint = ParseEndpoint(
        args.listen.rfind("tcp:", 0) == 0 ? args.listen
                                          : "tcp:" + args.listen);
    if (!endpoint.ok()) {
      MODIS_LOG(ERROR, "server") << endpoint.status().ToString();
      return 2;
    }
    if (Status listening = server.Listen(endpoint.value());
        !listening.ok()) {
      MODIS_LOG(ERROR, "server") << listening.ToString();
      return 1;
    }
  }
  for (const Endpoint& endpoint : server.endpoints()) {
    MODIS_LOG(INFO, "server")
        .Tag("endpoint", endpoint.ToString())
        << "serving on " << endpoint.ToString();
  }
  if (args.http) {
    MODIS_LOG(INFO, "server")
        << "http front door enabled (POST /v1/query, GET /metrics, "
           "GET /v1/debug/traces, GET /healthz)";
  }
  for (const TenantSpec& tenant : args.tenants) {
    MODIS_LOG(INFO, "server")
        .Tag("tenant", tenant.name)
        .Tag("rate", tenant.rate_per_s)
        .Tag("burst", tenant.burst)
        .Tag("in_flight", uint64_t(tenant.max_in_flight))
        .Tag("priority", int64_t(tenant.priority))
        << "tenant configured";
  }

  g_server = &server;
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);

  Preload(&service, args.tasks);

  // Blocks until SIGTERM/SIGINT; returns with every accepted request
  // answered and every connection closed. The service dtor (end of main)
  // then drains its own queue — already empty — and flushes every cache.
  server.Serve();
  g_server = nullptr;

  if (pool) {
    pool->Stop();
    ::unlink(ring_path.c_str());
  }

  MODIS_LOG(INFO, "server")
      << "drained; final "
      << SerializeServiceMetrics(service.SnapshotMetrics());
  return 0;
}
