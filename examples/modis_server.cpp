/// modis_server — the long-lived discovery host.
///
/// Serves MODis discovery queries over a line-delimited JSON protocol
/// (docs/SERVING.md): one request object per line in, one response object
/// per line out.
///
/// Usage:
///   modis_server --socket /tmp/modis.sock   # AF_UNIX stream listener
///   modis_server --stdio                    # one session on stdin/stdout
///   modis_server --batch '<request json>'   # one-shot reference run
///             [--tasks T1,T2]    preload task contexts before serving
///             [--sessions N]     concurrent query executors (default 2)
///             [--queue N]        admission-queue capacity (default 8)
///             [--threads N]      shared valuation pool (0 = hardware)
///             [--cache PATH]     default record-cache file
///             [--cache-mode M]   off | read | read_write (default)
///             [--cache-max-bytes N]  byte budget, 0 = unbounded
///             [--row-scale S]    bench-lake row scale (default 1.0)
///
/// The host owns its cache files: a writable open holds the flock writer
/// lock for the process lifetime, so a second host on the same file fails
/// fast and batch runs degrade to cold. `--batch` executes one request
/// without the service (fresh lake, fresh engine) and prints the same
/// response JSON — the reference the serving smoke test diffs against.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "service/discovery_service.h"
#include "service/wire.h"

using namespace modis;

namespace {

struct Args {
  std::string socket_path;
  bool stdio = false;
  std::string batch_request;
  std::string tasks;
  size_t sessions = 2;
  size_t queue = 8;
  size_t threads = 0;
  std::string cache;
  std::string cache_mode = "read_write";
  uint64_t cache_max_bytes = 0;
  double row_scale = 1.0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (flag == "--stdio") {
      args->stdio = true;
    } else if (flag == "--socket") {
      if (!next(&args->socket_path)) return false;
    } else if (flag == "--batch") {
      if (!next(&args->batch_request)) return false;
    } else if (flag == "--tasks") {
      if (!next(&args->tasks)) return false;
    } else if (flag == "--sessions") {
      if (!next(&value)) return false;
      args->sessions = std::stoul(value);
    } else if (flag == "--queue") {
      if (!next(&value)) return false;
      args->queue = std::stoul(value);
    } else if (flag == "--threads") {
      if (!next(&value)) return false;
      args->threads = std::stoul(value);
    } else if (flag == "--cache") {
      if (!next(&args->cache)) return false;
    } else if (flag == "--cache-mode") {
      if (!next(&args->cache_mode)) return false;
    } else if (flag == "--cache-max-bytes") {
      if (!next(&value)) return false;
      args->cache_max_bytes = std::stoull(value);
    } else if (flag == "--row-scale") {
      if (!next(&value)) return false;
      args->row_scale = std::stod(value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (!args->stdio && args->socket_path.empty() &&
      args->batch_request.empty()) {
    std::fprintf(stderr,
                 "one of --socket PATH, --stdio, or --batch JSON is "
                 "required\n");
    return false;
  }
  return true;
}

/// Answers one request line: parse -> service -> serialize (errors become
/// `{"ok":false,...}` lines, never a dropped connection).
std::string AnswerLine(DiscoveryService* service, const std::string& line) {
  auto request = ParseDiscoveryRequest(line);
  if (!request.ok()) return SerializeDiscoveryError(request.status());
  auto response = service->Answer(request.value());
  if (!response.ok()) return SerializeDiscoveryError(response.status());
  return SerializeDiscoveryResponse(response.value());
}

#if !defined(_WIN32)

/// Reads one '\n'-terminated line from a socket. False on EOF/error with
/// nothing buffered.
bool ReadLine(int fd, std::string* line) {
  line->clear();
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 0) return !line->empty();  // EOF.
    if (n < 0) return false;
    if (c == '\n') return true;
    line->push_back(c);
    if (line->size() > (1u << 20)) return false;  // Absurd request.
  }
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += size_t(n);
  }
  return true;
}

void ServeConnection(DiscoveryService* service, int fd) {
  std::string line;
  while (ReadLine(fd, &line)) {
    if (line.empty()) continue;
    if (!WriteAll(fd, AnswerLine(service, line) + "\n")) break;
  }
  ::close(fd);
}

int ServeSocket(DiscoveryService* service, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("modis_server: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "modis_server: socket path too long: %s\n",
                 path.c_str());
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // Stale socket from a dead host.
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 16) < 0) {
    std::perror("modis_server: bind/listen");
    ::close(listener);
    return 1;
  }
  std::printf("modis_server: serving on %s\n", path.c_str());
  std::fflush(stdout);
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::perror("modis_server: accept");
      break;
    }
    std::thread(ServeConnection, service, conn).detach();
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#endif  // !_WIN32

void ServeStdio(DiscoveryService* service) {
  std::string line;
  std::vector<char> buffer(1 << 20);
  while (std::fgets(buffer.data(), int(buffer.size()), stdin) != nullptr) {
    line.assign(buffer.data());
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    std::printf("%s\n", AnswerLine(service, line).c_str());
    std::fflush(stdout);
  }
}

int RunBatch(const Args& args) {
  auto request = ParseDiscoveryRequest(args.batch_request);
  if (!request.ok()) {
    std::printf("%s\n", SerializeDiscoveryError(request.status()).c_str());
    return 1;
  }
  auto response =
      DiscoveryService::AnswerDetached(request.value(), args.row_scale);
  if (!response.ok()) {
    std::printf("%s\n", SerializeDiscoveryError(response.status()).c_str());
    return 1;
  }
  std::printf("%s\n", SerializeDiscoveryResponse(response.value()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  if (!args.batch_request.empty()) return RunBatch(args);

#if !defined(_WIN32)
  std::signal(SIGPIPE, SIG_IGN);  // A dropped client must not kill the host.
#endif

  DiscoveryService::Options options;
  options.sessions = args.sessions;
  options.queue_capacity = args.queue;
  options.valuation_threads = args.threads;
  options.default_cache_path = args.cache;
  options.cache_max_bytes = args.cache_max_bytes;
  options.task_row_scale = args.row_scale;
  auto mode = ParseCacheMode(args.cache_mode);
  if (!mode.ok()) {
    std::fprintf(stderr, "modis_server: %s\n",
                 mode.status().ToString().c_str());
    return 2;
  }
  options.default_cache_mode = mode.value();

  DiscoveryService service(options);

#if !defined(_WIN32)
  // Bind the socket before the (potentially slow) preloads so clients can
  // connect immediately; their first queries simply wait on the context
  // build.
  std::thread listener;
  if (!args.socket_path.empty() && !args.stdio) {
    listener = std::thread([&service, &args] {
      std::exit(ServeSocket(&service, args.socket_path));
    });
  }
#endif

  if (!args.tasks.empty()) {
    size_t start = 0;
    while (start <= args.tasks.size()) {
      const size_t comma = args.tasks.find(',', start);
      const std::string task =
          args.tasks.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
      if (!task.empty()) {
        const Status preloaded = service.Preload(task);
        if (preloaded.ok()) {
          std::printf("modis_server: preloaded %s\n", task.c_str());
          std::fflush(stdout);
        } else {
          std::fprintf(stderr, "modis_server: preload %s failed: %s\n",
                       task.c_str(), preloaded.ToString().c_str());
        }
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  if (args.stdio) {
    ServeStdio(&service);
    return 0;
  }
#if !defined(_WIN32)
  listener.join();
  return 0;
#else
  std::fprintf(stderr, "modis_server: --socket requires POSIX\n");
  return 1;
#endif
}
