/// Task T5 as a library example: skyline *graph* data generation for a
/// GNN recommender. The dataset is an edge table of a user-item bipartite
/// graph; Augment/Reduct act as edge insertions/deletions; the model is
/// LightGCN-lite; the measures are Precision@k / Recall@k / NDCG@k.
///
/// The search learns to delete the low-affinity cross-community noise
/// edges, improving every ranking measure over the original graph.
///
/// Build & run:  ./build/examples/graph_recommendation

#include <cstdio>

#include "core/algorithms.h"
#include "datagen/graph_gen.h"
#include "estimator/link_evaluator.h"

using namespace modis;

int main() {
  // A community-structured interaction lake with injected noise edges.
  GraphLakeSpec spec;
  spec.num_users = 50;
  spec.num_items = 100;
  spec.num_communities = 4;
  spec.noise_edges_per_user = 5;
  spec.seed = 99;
  auto lake = GenerateGraphLake(spec);
  if (!lake.ok()) return 1;
  std::printf("edge table: %zu interactions (incl. noise), %d users, %d "
              "items\n",
              lake->edge_table.num_rows(), spec.num_users, spec.num_items);

  // The link-regression task: LightGCN-lite + ranking measures, held-out
  // intra-community edges as the fixed test set.
  LinkTask task;
  task.num_users = spec.num_users;
  task.num_items = spec.num_items;
  task.test_edges = lake->test_edges;
  task.measures = {MeasureSpec::Maximize("p@5"), MeasureSpec::Maximize("r@5"),
                   MeasureSpec::Maximize("ndcg@5")};
  task.model.epochs = 25;
  LinkEvaluator evaluator(task);

  auto original = evaluator.Evaluate(lake->edge_table);
  if (!original.ok()) return 1;
  std::printf("original graph: p@5=%.3f r@5=%.3f ndcg@5=%.3f\n",
              original->raw[0], original->raw[1], original->raw[2]);

  // Search universe over the edge table; endpoints are protected so only
  // edge-attribute clusters (affinity / recency) drive deletions.
  SearchUniverse::Options opts;
  opts.protected_attributes = {"user", "item"};
  opts.max_clusters = 4;
  auto universe = SearchUniverse::Build(lake->edge_table, opts);
  if (!universe.ok()) return 1;

  ExactOracle oracle(&evaluator);
  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 60;
  config.max_level = 3;
  auto result = RunBiModis(*universe, &oracle, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("skyline graphs (%zu):\n", result->skyline.size());
  for (const auto& entry : result->skyline) {
    auto exact = evaluator.Evaluate(universe->Materialize(entry.state));
    if (!exact.ok()) continue;
    std::printf("  p@5=%.3f r@5=%.3f ndcg@5=%.3f  edges=%zu (was %zu)\n",
                exact->raw[0], exact->raw[1], exact->raw[2], entry.rows,
                lake->edge_table.num_rows());
  }
  return 0;
}
