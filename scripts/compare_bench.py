#!/usr/bin/env python3
"""Compares a fresh bench --json run against a committed baseline.

Handles both JSON dialects the bench binaries emit
(bench/baselines/README.md):

* run records — a JSON array of per-run objects (`bench_fig10_efficiency`,
  `bench_serving`, ...): matched on their coordinate fields (bench,
  panel, task, variant, param/param_value, mode/clients/transport) and
  compared on the latency field (`p50_ms` when present, else `wall_ms`,
  else `discovery_seconds`);
* google-benchmark — an object with a `benchmarks` array
  (`bench_micro_ops --json`): matched on `name`/`run_name` and compared
  on `real_time`.

Exits 1 when any shared entry regressed by more than --threshold
(default 0.25 = +25%); entries present on only one side are reported
but never fail the run, so sweeps can grow. Wall-clock numbers are
machine-dependent — CI runs this as an advisory (continue-on-error)
job, a reviewer's prompt rather than a merge gate.

    python3 scripts/compare_bench.py \
        bench/baselines/BENCH_fig10_baseline.json /tmp/fig10_fresh.json
"""

import argparse
import json
import sys

LATENCY_FIELDS = ("p50_ms", "wall_ms", "discovery_seconds")
COORDINATE_FIELDS = ("bench", "panel", "task", "variant", "param",
                     "param_value", "mode", "clients", "transport",
                     "metric")


def load(path):
    with open(path) as f:
        return json.load(f)


def run_record_series(doc):
    """{coordinate key: (metric name, value)} for a run-record array."""
    series = {}
    for record in doc:
        key = " ".join(
            f"{field}={record[field]}" for field in COORDINATE_FIELDS
            if field in record)
        for field in LATENCY_FIELDS:
            if field in record:
                series[key] = (field, float(record[field]))
                break
    return series


def google_benchmark_series(doc):
    series = {}
    for record in doc.get("benchmarks", []):
        if record.get("run_type") == "aggregate":
            continue
        name = record.get("run_name", record.get("name", ""))
        if "real_time" in record:
            unit = record.get("time_unit", "ns")
            series[name] = (f"real_time_{unit}", float(record["real_time"]))
    return series


def to_series(doc, path):
    if isinstance(doc, dict) and "benchmarks" in doc:
        return google_benchmark_series(doc)
    if isinstance(doc, list):
        return run_record_series(doc)
    raise SystemExit(f"{path}: neither a run-record array nor "
                     "google-benchmark JSON")


def main():
    parser = argparse.ArgumentParser(
        description="Fail on >threshold latency regressions vs a baseline.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="fresh bench --json output")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated relative slowdown "
                             "(default 0.25 = +25%%)")
    args = parser.parse_args()

    baseline = to_series(load(args.baseline), args.baseline)
    fresh = to_series(load(args.fresh), args.fresh)

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        raise SystemExit("no shared entries between baseline and fresh run")
    for only, series in (("baseline", set(baseline) - set(fresh)),
                         ("fresh", set(fresh) - set(baseline))):
        for key in sorted(series):
            print(f"  [skip] only in {only}: {key}")

    regressions = []
    worst = (0.0, "")
    for key in shared:
        metric, base = baseline[key]
        _, now = fresh[key]
        if base <= 0.0:
            print(f"  [skip] non-positive baseline for {key}")
            continue
        delta = now / base - 1.0
        marker = " <-- REGRESSION" if delta > args.threshold else ""
        print(f"  {key}: {metric} {base:.3f} -> {now:.3f} "
              f"({delta:+.1%}){marker}")
        if delta > args.threshold:
            regressions.append(key)
        if delta > worst[0]:
            worst = (delta, key)

    print(f"\ncompared {len(shared)} entries; worst delta {worst[0]:+.1%}"
          f"{' (' + worst[1] + ')' if worst[1] else ''}")
    if regressions:
        print(f"FAIL: {len(regressions)} entries regressed beyond "
              f"+{args.threshold:.0%}")
        return 1
    print(f"OK: nothing slower than +{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
