#!/usr/bin/env python3
"""Fails (exit 1) on dead relative links in the repo's Markdown files.

Scans every tracked *.md file for inline links/images `[text](target)`
and reference definitions `[label]: target`, resolves relative targets
against the containing file, and reports targets that do not exist.
External schemes (http/https/mailto), pure in-page anchors (#...), and
absolute paths are skipped; `path#anchor` is checked as `path` (anchor
existence is not verified). Run from anywhere inside the repo:

    python3 scripts/check_doc_links.py
"""

import os
import re
import subprocess
import sys

# Inline [text](target) — target up to the first unescaped ')'; tolerates
# one level of nested parens (e.g. wiki-style URLs). Excludes images by
# accepting the optional leading '!'.
INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+(?:\([^)]*\)[^)\s]*)?)>?\s*(?:\"[^\"]*\")?\)")
# Reference definition: [label]: target
REFDEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://", "#")


def repo_root() -> str:
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def tracked_markdown(root: str) -> list:
    # --others --exclude-standard adds not-yet-committed files, so the
    # check also works locally before the first `git add`.
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        capture_output=True, text=True, check=True, cwd=root)
    return sorted(set(filter(None, out.stdout.splitlines())))


def targets_in(text: str):
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE.finditer(line):
            yield lineno, match.group(1)
        match = REFDEF.match(line)
        if match:
            yield lineno, match.group(1)


def main() -> int:
    root = repo_root()
    dead = []
    for md in tracked_markdown(root):
        md_path = os.path.join(root, md)
        with open(md_path, encoding="utf-8") as f:
            text = f.read()
        for lineno, target in targets_in(text):
            if target.startswith(SKIP_PREFIXES) or os.path.isabs(target):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path))
            if not os.path.exists(resolved):
                dead.append((md, lineno, target))
    if dead:
        print(f"{len(dead)} dead relative link(s):")
        for md, lineno, target in dead:
            print(f"  {md}:{lineno}: {target}")
        return 1
    print("doc links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
