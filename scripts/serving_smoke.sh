#!/usr/bin/env bash
# End-to-end smoke of the discovery service (docs/SERVING.md):
#
#   1. start modis_server on a unix socket AND a TCP port (one accept
#      loop, shared cache file)
#   2. cold query through modis_cli --connect over the unix socket
#   3. warm query (same request) — must perform 0 exact trainings
#   4. warm query over TCP — must also train nothing
#   5. metrics verb — the host must report the served queries
#   6. batch reference: the same request via `modis_server --batch`
#      (fresh process, no service, no cache)
#   7. assert all four skylines are identical
#   8. drain: fresh server, query in flight, SIGTERM mid-stream — the
#      client still gets the full (identical) response and the server
#      exits 0 after dumping its final metrics line
#   9. HTTP front door (--http): POST /v1/query answers the warm query
#      identically to the line-JSON path on the same sniffed port,
#      GET /metrics is valid Prometheus exposition, GET /healthz is ok,
#      and a quota-capped tenant's second request gets 429 + Retry-After
#      (curl when available, python3 http.client otherwise)
#  10. tracing: a warm query with X-Modis-Trace: 1 returns an inline
#      span tree whose request_id matches the X-Modis-Request-Id
#      response header, GET /v1/debug/traces serves Chrome trace_event
#      JSON naming that id, and /metrics carries the trace-derived
#      modis_phase_* histogram series
#  11. worker-crash-smoke (docs/MULTIPROCESS.md): a --workers 2 pool
#      host, SIGKILL of every worker process while a cold query is
#      training — the query is requeued to a respawned worker, the
#      client still gets the full (identical) skyline, and the HTTP
#      /metrics exposition shows modis_worker_restarts_total incremented
#
# Usage: serving_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
SERVER="$BUILD/examples/modis_server"
CLI="$BUILD/examples/modis_cli"
for bin in "$SERVER" "$CLI"; do
  if [ ! -x "$bin" ]; then
    echo "serving_smoke: missing binary $bin" >&2
    exit 1
  fi
done

WORK=$(mktemp -d /tmp/modis_smoke.XXXXXX)
SOCK="$WORK/modis.sock"
CACHE="$WORK/cache.rlog"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

ROW_SCALE=0.35
REQUEST_FLAGS=(--bench-task T1 --algo bi --epsilon 0.25 --budget 60
               --maxl 3 --measures acc,fisher,mi)

wait_for_socket() {  # wait_for_socket PID SOCKET LOG
  for _ in $(seq 1 150); do
    [ -S "$2" ] && return 0
    if ! kill -0 "$1" 2>/dev/null; then
      echo "serving_smoke: server died during startup:" >&2
      cat "$3" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "serving_smoke: socket never appeared" >&2
  exit 1
}

# ---- Phase 1: unix + TCP serving, cold/warm/metrics/batch.
"$SERVER" --socket "$SOCK" --listen 127.0.0.1:0 --row-scale "$ROW_SCALE" \
  --cache "$CACHE" > "$WORK/server.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SERVER_PID" "$SOCK" "$WORK/server.log"

# The TCP listener announces its kernel-assigned port on stdout.
TCP_ENDPOINT=""
for _ in $(seq 1 50); do
  TCP_ENDPOINT=$(grep -o 'tcp:[0-9.]*:[0-9]*' "$WORK/server.log" | head -1 \
    || true)
  [ -n "$TCP_ENDPOINT" ] && break
  sleep 0.1
done
[ -n "$TCP_ENDPOINT" ] || {
  echo "serving_smoke: TCP endpoint never announced" >&2
  cat "$WORK/server.log" >&2
  exit 1
}
grep -q "record cache budget" "$WORK/server.log" || {
  echo "serving_smoke: missing cache-budget startup line" >&2
  exit 1
}

COLD=$("$CLI" --connect "$SOCK" "${REQUEST_FLAGS[@]}" --raw)
WARM=$("$CLI" --connect "$SOCK" "${REQUEST_FLAGS[@]}" --raw)
WARM_TCP=$("$CLI" --connect "$TCP_ENDPOINT" "${REQUEST_FLAGS[@]}" --raw)
METRICS=$("$CLI" --connect "$TCP_ENDPOINT" --metrics)
BATCH=$("$SERVER" --batch \
  '{"task":"T1","variant":"bi","epsilon":0.25,"budget":60,"maxl":3,"measures":["acc","fisher","mi"]}' \
  --row-scale "$ROW_SCALE")

python3 - "$COLD" "$WARM" "$WARM_TCP" "$METRICS" "$BATCH" <<'PY'
import json
import sys

cold, warm, warm_tcp, metrics, batch = (json.loads(a) for a in sys.argv[1:6])
for name, doc in (("cold", cold), ("warm", warm), ("warm_tcp", warm_tcp),
                  ("batch", batch)):
    assert doc.get("ok"), f"{name} response not ok: {doc}"
    assert doc["skyline"], f"{name} skyline is empty"

for name, doc in (("warm", warm), ("warm_tcp", warm_tcp)):
    assert doc["stats"]["exact_evals"] == 0, (name, doc["stats"])
    assert doc["stats"]["persistent_hits"] > 0, (name, doc["stats"])
    assert doc["stats"]["cache_active"], (name, doc["stats"])

def skyline(doc):
    return sorted(
        (e["signature"], e["raw"], e["normalized"]) for e in doc["skyline"]
    )

assert (skyline(cold) == skyline(warm) == skyline(warm_tcp)
        == skyline(batch)), "skylines diverge across cold/warm/tcp/batch"

assert metrics.get("ok"), metrics
m = metrics["metrics"]
assert m["served"] == 3, m
assert m["failed"] == 0, m
assert m["live_contexts"] == 1, m
assert m["cache_files"] == 1, m
assert m["connections_opened"] >= 4, m
assert m["run_ms"]["count"] == 3, m
assert not m["draining"], m

print(
    "serving smoke OK: warm unix+tcp queries trained nothing "
    f"({warm['stats']['persistent_hits']} replays), skyline of "
    f"{len(warm['skyline'])} matches the batch run "
    f"(cold {cold['stats']['run_ms']:.0f} ms -> warm "
    f"{warm['stats']['run_ms']:.1f} ms), metrics verb consistent"
)
PY

kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# ---- Phase 2: SIGTERM drain with a query in flight. Fresh server, fresh
# cache: the query actually trains, so it is still running when the
# signal lands. The client must receive the complete response anyway and
# the server must exit 0 with a drained-metrics line.
SOCK2="$WORK/drain.sock"
CACHE2="$WORK/drain.rlog"
"$SERVER" --socket "$SOCK2" --row-scale "$ROW_SCALE" --cache "$CACHE2" \
  > "$WORK/drain.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SERVER_PID" "$SOCK2" "$WORK/drain.log"

"$CLI" --connect "$SOCK2" "${REQUEST_FLAGS[@]}" --raw \
  > "$WORK/drain_reply.json" &
CLIENT_PID=$!
sleep 1  # The request is on the wire and training by now.
kill -TERM "$SERVER_PID"

if ! wait "$CLIENT_PID"; then
  echo "serving_smoke: drain client failed" >&2
  cat "$WORK/drain.log" >&2
  exit 1
fi
DRAIN_RC=0
wait "$SERVER_PID" || DRAIN_RC=$?
SERVER_PID=""
if [ "$DRAIN_RC" -ne 0 ]; then
  echo "serving_smoke: server exited $DRAIN_RC after SIGTERM" >&2
  cat "$WORK/drain.log" >&2
  exit 1
fi
grep -q "drained; final" "$WORK/drain.log" || {
  echo "serving_smoke: missing drained-metrics line" >&2
  cat "$WORK/drain.log" >&2
  exit 1
}

python3 - "$COLD" "$WORK/drain_reply.json" <<'PY'
import json
import sys

cold = json.loads(sys.argv[1])
with open(sys.argv[2]) as f:
    drained = json.loads(f.read())
assert drained.get("ok"), f"drained response not ok: {drained}"

def skyline(doc):
    return sorted(
        (e["signature"], e["raw"], e["normalized"]) for e in doc["skyline"]
    )

# The drained response is the full answer, identical to the undisturbed
# run of the same request (phase 1's cold query).
assert skyline(drained) == skyline(cold), (
    "SIGTERM-drained response diverges from the undisturbed run"
)
print("serving smoke OK: SIGTERM mid-stream drained cleanly "
      f"(full skyline of {len(drained['skyline'])} delivered, exit 0)")
PY

# ---- Phase 3: the HTTP front door. Same warm cache as phase 1, HTTP
# sniffing on, plus a bronze tenant whose bucket holds exactly one token
# and never refills — the deterministic 429-on-quota check.
SOCK3="$WORK/http.sock"
"$SERVER" --socket "$SOCK3" --listen 127.0.0.1:0 --http \
  --tenant "bronze:sk_bronze:0:1" \
  --row-scale "$ROW_SCALE" --cache "$CACHE" > "$WORK/http.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SERVER_PID" "$SOCK3" "$WORK/http.log"
HTTP_ENDPOINT=""
for _ in $(seq 1 50); do
  HTTP_ENDPOINT=$(grep -o 'tcp:[0-9.]*:[0-9]*' "$WORK/http.log" | head -1 \
    || true)
  [ -n "$HTTP_ENDPOINT" ] && break
  sleep 0.1
done
[ -n "$HTTP_ENDPOINT" ] || {
  echo "serving_smoke: HTTP TCP endpoint never announced" >&2
  cat "$WORK/http.log" >&2
  exit 1
}
grep -q "http front door enabled" "$WORK/http.log" || {
  echo "serving_smoke: missing http-front-door startup line" >&2
  exit 1
}
HTTP_HOSTPORT=${HTTP_ENDPOINT#tcp:}
HTTP_PORT=${HTTP_HOSTPORT##*:}
HTTP_HOST=${HTTP_HOSTPORT%:*}
BASE="http://$HTTP_HOST:$HTTP_PORT"
REQUEST_JSON='{"task":"T1","variant":"bi","epsilon":0.25,"budget":60,"maxl":3,"measures":["acc","fisher","mi"]}'

# The same sniffed port still answers the line-JSON dialect: the warm
# query through modis_cli, recorded for the identity assert below.
"$CLI" --connect "$HTTP_ENDPOINT" "${REQUEST_FLAGS[@]}" --raw \
  > "$WORK/http_wire.json"

if command -v curl >/dev/null 2>&1; then
  curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' \
    --data "$REQUEST_JSON" > "$WORK/http_query.json"
  curl -fsS "$BASE/healthz" > "$WORK/healthz.json"
  curl -fsS "$BASE/metrics" > "$WORK/metrics.prom"
  curl -s -o "$WORK/bronze1.json" -w '%{http_code}' -X POST \
    "$BASE/v1/query" -H 'X-Api-Key: sk_bronze' --data "$REQUEST_JSON" \
    > "$WORK/bronze1.code"
  curl -s -o "$WORK/bronze2.json" -w '%{http_code}' -D "$WORK/bronze2.hdr" \
    -X POST "$BASE/v1/query" -H 'X-Api-Key: sk_bronze' \
    --data "$REQUEST_JSON" > "$WORK/bronze2.code"
else
  python3 - "$HTTP_HOST" "$HTTP_PORT" "$REQUEST_JSON" "$WORK" <<'PY'
import http.client
import sys

host, port, body, work = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]

def req(method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.request(method, path, body, headers or {})
    response = conn.getresponse()
    data = response.read().decode()
    status, hdrs = response.status, response.getheaders()
    conn.close()
    return status, hdrs, data

status, _, data = req("POST", "/v1/query", body,
                      {"Content-Type": "application/json"})
assert status == 200, (status, data)
open(f"{work}/http_query.json", "w").write(data)
status, _, data = req("GET", "/healthz")
assert status == 200, (status, data)
open(f"{work}/healthz.json", "w").write(data)
status, _, data = req("GET", "/metrics")
assert status == 200, (status, data)
open(f"{work}/metrics.prom", "w").write(data)
for attempt in (1, 2):
    status, hdrs, data = req("POST", "/v1/query", body,
                             {"X-Api-Key": "sk_bronze"})
    open(f"{work}/bronze{attempt}.json", "w").write(data)
    open(f"{work}/bronze{attempt}.code", "w").write(str(status))
    if attempt == 2:
        open(f"{work}/bronze2.hdr", "w").write(
            "".join(f"{k}: {v}\r\n" for k, v in hdrs))
PY
fi

python3 - "$COLD" "$WORK" <<'PY'
import json
import re
import sys

cold = json.loads(sys.argv[1])
work = sys.argv[2]

def read(name):
    with open(f"{work}/{name}") as f:
        return f.read()

def skyline(doc):
    return sorted(
        (e["signature"], e["raw"], e["normalized"]) for e in doc["skyline"]
    )

query = json.loads(read("http_query.json"))
wire = json.loads(read("http_wire.json"))
assert query.get("ok"), f"HTTP query not ok: {query}"
assert query["stats"]["exact_evals"] == 0, query["stats"]
# Cross-transport identity: HTTP, line-JSON-on-the-same-port, and the
# undisturbed phase-1 run all return the same skyline.
assert skyline(query) == skyline(wire) == skyline(cold), (
    "HTTP skyline diverges from the line-JSON answer"
)

health = json.loads(read("healthz.json"))
assert health.get("ok") and not health.get("draining"), health

SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? '
    r'[-+]?([0-9.]+([eE][-+]?[0-9]+)?|Inf|NaN)$')
lines = read("metrics.prom").splitlines()
assert lines, "empty /metrics body"
samples = {}
for line in lines:
    if line.startswith("# HELP ") or line.startswith("# TYPE "):
        continue
    assert SAMPLE.match(line), f"invalid exposition line: {line!r}"
    samples[line.rsplit(" ", 1)[0]] = float(line.rsplit(" ", 1)[1])
# Two queries (the wire one and the HTTP one) were served when the
# exposition was scraped; the bronze tenant existed but had no traffic.
assert samples["modis_served_total"] == 2, samples["modis_served_total"]
assert samples['modis_tenant_admitted_total{tenant="bronze"}'] == 0
assert samples["modis_http_requests_total"] >= 2
assert samples["modis_draining"] == 0

assert read("bronze1.code").strip() == "200", read("bronze1.json")
assert read("bronze2.code").strip() == "429", read("bronze2.json")
rejected = json.loads(read("bronze2.json"))
assert rejected.get("code") == "ResourceExhausted", rejected
assert re.search(r"(?im)^retry-after: *[0-9]+\r?$", read("bronze2.hdr")), (
    read("bronze2.hdr")
)

print(
    "serving smoke OK: HTTP front door answered the warm query "
    f"identically over 3 transports, /metrics exposed {len(samples)} "
    "valid samples, and the bronze quota check got its 429 + Retry-After"
)
PY

# ---- Phase 4: tracing through the same live server. A traced warm
# query must echo its span tree inline, the response header must carry
# the matching request id, the debug ring must name the query, and the
# exposition must carry the trace-derived phase histograms.
if command -v curl >/dev/null 2>&1; then
  curl -fsS -X POST "$BASE/v1/query" -H 'Content-Type: application/json' \
    -H 'X-Modis-Trace: 1' -D "$WORK/traced.hdr" --data "$REQUEST_JSON" \
    > "$WORK/traced.json"
  curl -fsS "$BASE/v1/debug/traces" > "$WORK/debug_traces.json"
  curl -fsS "$BASE/metrics" > "$WORK/metrics2.prom"
else
  python3 - "$HTTP_HOST" "$HTTP_PORT" "$REQUEST_JSON" "$WORK" <<'PY'
import http.client
import sys

host, port, body, work = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]

def req(method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.request(method, path, body, headers or {})
    response = conn.getresponse()
    data = response.read().decode()
    status, hdrs = response.status, response.getheaders()
    conn.close()
    return status, hdrs, data

status, hdrs, data = req("POST", "/v1/query", body,
                         {"Content-Type": "application/json",
                          "X-Modis-Trace": "1"})
assert status == 200, (status, data)
open(f"{work}/traced.json", "w").write(data)
open(f"{work}/traced.hdr", "w").write(
    "".join(f"{k}: {v}\r\n" for k, v in hdrs))
status, _, data = req("GET", "/v1/debug/traces")
assert status == 200, (status, data)
open(f"{work}/debug_traces.json", "w").write(data)
status, _, data = req("GET", "/metrics")
assert status == 200, (status, data)
open(f"{work}/metrics2.prom", "w").write(data)
PY
fi

python3 - "$WORK" <<'PY'
import json
import re
import sys

work = sys.argv[1]

def read(name):
    with open(f"{work}/{name}") as f:
        return f.read()

traced = json.loads(read("traced.json"))
assert traced.get("ok"), f"traced query not ok: {traced}"
request_id = traced.get("request_id", "")
assert re.match(r"^q-[0-9]{6,}$", request_id), traced
header = re.search(r"(?im)^x-modis-request-id: *(\S+)\r?$",
                   read("traced.hdr"))
assert header, read("traced.hdr")
assert header.group(1) == request_id, (header.group(1), request_id)

spans = traced.get("trace")
assert spans, "traced response carries no span tree"
assert spans[0]["name"] == "query" and spans[0]["parent"] == -1, spans[0]
names = {s["name"] for s in spans}
for expected in ("admission", "context", "run", "level", "batch", "plan",
                 "train", "commit", "respond"):
    assert expected in names, (expected, sorted(names))
ids = {s["id"] for s in spans}
for s in spans:
    assert s["duration_ms"] >= 0, s
    assert s["parent"] == -1 or s["parent"] in ids, s
phase_sum = sum(s["duration_ms"] for s in spans
                if s["parent"] == spans[0]["id"])
assert phase_sum <= spans[0]["duration_ms"] + 0.01, (
    phase_sum, spans[0]["duration_ms"])

debug = json.loads(read("debug_traces.json"))
assert debug.get("ok"), debug
events = debug.get("traceEvents", [])
assert any(e.get("ph") == "M" and request_id in e["args"]["name"]
           for e in events), f"{request_id} missing from the debug ring"
assert any(e.get("ph") == "X" for e in events), "no span events in the ring"

exposition = read("metrics2.prom")
for phase in ("admission", "context", "plan", "train", "commit", "flush",
              "respond"):
    match = re.search(rf"(?m)^modis_phase_{phase}_ms_count ([0-9]+)$",
                      exposition)
    assert match, f"modis_phase_{phase}_ms_count missing from /metrics"
    assert int(match.group(1)) >= 3, (phase, match.group(1))

print(
    "serving smoke OK: traced query "
    f"{request_id} echoed a {len(spans)}-span tree matching its response "
    f"header, the debug ring served {len(events)} trace events, and all "
    "7 modis_phase_* histogram families are live"
)
PY

kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# ---- Phase 5: worker-crash-smoke. A multi-process pool host on a
# fresh cache (so the query actually trains and is in flight when the
# kill lands). SIGKILL every worker mid-query: the supervisor must reap
# them, requeue the orphaned job, respawn, and the client must still
# receive the full answer — identical to the undisturbed phase-1 run.
SOCK5="$WORK/pool.sock"
CACHE5="$WORK/pool.rlog"
RING5="$WORK/pool.ring"
"$SERVER" --socket "$SOCK5" --listen 127.0.0.1:0 --http \
  --workers 2 --ring-path "$RING5" --row-scale "$ROW_SCALE" \
  --cache "$CACHE5" > "$WORK/pool.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SERVER_PID" "$SOCK5" "$WORK/pool.log"
POOL_ENDPOINT=""
for _ in $(seq 1 50); do
  POOL_ENDPOINT=$(grep -o 'tcp:[0-9.]*:[0-9]*' "$WORK/pool.log" | head -1 \
    || true)
  [ -n "$POOL_ENDPOINT" ] && break
  sleep 0.1
done
[ -n "$POOL_ENDPOINT" ] || {
  echo "serving_smoke: pool TCP endpoint never announced" >&2
  cat "$WORK/pool.log" >&2
  exit 1
}
grep -q "worker pool started" "$WORK/pool.log" || {
  echo "serving_smoke: missing worker-pool startup line" >&2
  cat "$WORK/pool.log" >&2
  exit 1
}
# The coordinator logs each spawn as `worker spawned worker=N pid=P`.
WORKER_PIDS=$(grep -o 'worker spawned.*pid=[0-9]*' "$WORK/pool.log" \
  | grep -o 'pid=[0-9]*' | cut -d= -f2)
[ "$(echo "$WORKER_PIDS" | wc -w)" -eq 2 ] || {
  echo "serving_smoke: expected 2 spawned workers, log says:" >&2
  cat "$WORK/pool.log" >&2
  exit 1
}

"$CLI" --connect "$SOCK5" "${REQUEST_FLAGS[@]}" --raw \
  > "$WORK/pool_reply.json" &
CLIENT_PID=$!
sleep 1  # The job is claimed and training inside a worker by now.
# Kill BOTH workers so the one holding the query is dead for certain.
for pid in $WORKER_PIDS; do
  kill -9 "$pid" 2>/dev/null || true
done

if ! wait "$CLIENT_PID"; then
  echo "serving_smoke: pool client failed after worker kill" >&2
  cat "$WORK/pool.log" >&2
  exit 1
fi

POOL_HOSTPORT=${POOL_ENDPOINT#tcp:}
python3 - "${POOL_HOSTPORT%:*}" "${POOL_HOSTPORT##*:}" "$WORK" <<'PY'
import http.client
import sys

host, port, work = sys.argv[1], int(sys.argv[2]), sys.argv[3]
conn = http.client.HTTPConnection(host, port, timeout=60)
conn.request("GET", "/metrics")
response = conn.getresponse()
assert response.status == 200, response.status
open(f"{work}/pool_metrics.prom", "w").write(response.read().decode())
conn.close()
PY

python3 - "$COLD" "$WORK" <<'PY'
import json
import re
import sys

cold = json.loads(sys.argv[1])
work = sys.argv[2]

with open(f"{work}/pool_reply.json") as f:
    reply = json.loads(f.read())
assert reply.get("ok"), f"pool response not ok after worker kill: {reply}"

def skyline(doc):
    return sorted(
        (e["signature"], e["raw"], e["normalized"]) for e in doc["skyline"]
    )

# The requeued-and-re-executed query answers byte-identically to the
# undisturbed run of the same request.
assert skyline(reply) == skyline(cold), (
    "post-kill skyline diverges from the undisturbed run"
)

exposition = open(f"{work}/pool_metrics.prom").read()
match = re.search(r"(?m)^modis_worker_restarts_total ([0-9]+)$", exposition)
assert match, "modis_worker_restarts_total missing from /metrics"
restarts = int(match.group(1))
assert restarts >= 2, f"expected >=2 worker restarts, saw {restarts}"
match = re.search(r"(?m)^modis_ring_requeued_total ([0-9]+)$", exposition)
assert match and int(match.group(1)) >= 1, (
    "killed worker's job was never requeued"
)
assert re.search(r"(?m)^modis_ring_poisoned_total 0$", exposition), (
    "a job was poisoned during the crash smoke"
)

print(
    "serving smoke OK: SIGKILL of both pool workers mid-query lost "
    f"nothing ({restarts} restarts, job requeued, skyline of "
    f"{len(reply['skyline'])} identical to the undisturbed run)"
)
PY

kill -TERM "$SERVER_PID" 2>/dev/null || true
POOL_RC=0
wait "$SERVER_PID" || POOL_RC=$?
SERVER_PID=""
if [ "$POOL_RC" -ne 0 ]; then
  echo "serving_smoke: pool server exited $POOL_RC after SIGTERM" >&2
  cat "$WORK/pool.log" >&2
  exit 1
fi
