#!/usr/bin/env bash
# End-to-end smoke of the discovery service (docs/SERVING.md):
#
#   1. start modis_server on a unix socket with a fresh cache file
#   2. cold query through modis_cli --connect (trains everything)
#   3. warm query (same request) — must perform 0 exact trainings
#   4. batch reference: the same request via `modis_server --batch`
#      (fresh process, no service, no cache)
#   5. assert all three skylines are identical
#
# Usage: serving_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
SERVER="$BUILD/examples/modis_server"
CLI="$BUILD/examples/modis_cli"
for bin in "$SERVER" "$CLI"; do
  if [ ! -x "$bin" ]; then
    echo "serving_smoke: missing binary $bin" >&2
    exit 1
  fi
done

WORK=$(mktemp -d /tmp/modis_smoke.XXXXXX)
SOCK="$WORK/modis.sock"
CACHE="$WORK/cache.rlog"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

ROW_SCALE=0.35
REQUEST_FLAGS=(--bench-task T1 --algo bi --epsilon 0.25 --budget 60
               --maxl 3 --measures acc,fisher,mi)

"$SERVER" --socket "$SOCK" --row-scale "$ROW_SCALE" --cache "$CACHE" \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serving_smoke: server died during startup:" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.2
done
[ -S "$SOCK" ] || { echo "serving_smoke: socket never appeared" >&2; exit 1; }

COLD=$("$CLI" --connect "$SOCK" "${REQUEST_FLAGS[@]}" --raw)
WARM=$("$CLI" --connect "$SOCK" "${REQUEST_FLAGS[@]}" --raw)
BATCH=$("$SERVER" --batch \
  '{"task":"T1","variant":"bi","epsilon":0.25,"budget":60,"maxl":3,"measures":["acc","fisher","mi"]}' \
  --row-scale "$ROW_SCALE")

python3 - "$COLD" "$WARM" "$BATCH" <<'PY'
import json
import sys

cold, warm, batch = (json.loads(arg) for arg in sys.argv[1:4])
for name, doc in (("cold", cold), ("warm", warm), ("batch", batch)):
    assert doc.get("ok"), f"{name} response not ok: {doc}"
    assert doc["skyline"], f"{name} skyline is empty"

assert warm["stats"]["exact_evals"] == 0, warm["stats"]
assert warm["stats"]["persistent_hits"] > 0, warm["stats"]
assert warm["stats"]["cache_active"], warm["stats"]

def skyline(doc):
    return sorted(
        (e["signature"], e["raw"], e["normalized"]) for e in doc["skyline"]
    )

assert skyline(cold) == skyline(warm) == skyline(batch), (
    "skylines diverge between cold / warm / batch runs"
)
print(
    "serving smoke OK: warm query trained nothing "
    f"({warm['stats']['persistent_hits']} replays), skyline of "
    f"{len(warm['skyline'])} matches the batch run "
    f"(cold {cold['stats']['run_ms']:.0f} ms -> warm "
    f"{warm['stats']['run_ms']:.1f} ms)"
)
PY
