/// Reproduces the §5.4 "Remarks" comparison: MODis (training- and
/// tuning-free, deterministic) vs an evolutionary multi-objective
/// optimizer (NSGA-II) over the same state space, at matched valuation
/// budgets. Skyline quality is scored with the hypervolume indicator over
/// normalized measures (reference point = the per-measure upper bounds).
///
/// Expected shape: MODis reaches an equal-or-better hypervolume with the
/// same number of model valuations and without generations of stochastic
/// crossover/mutation; NSGA-II needs more evaluations to match it.

#include <cstdio>

#include "baselines/nsga2_modis.h"
#include "bench/bench_util.h"
#include "moo/hypervolume.h"

namespace modis::bench {
namespace {

double FrontHypervolume(const std::vector<SkylineEntry>& skyline,
                        const std::vector<double>& reference) {
  std::vector<PerfVector> pts;
  for (const auto& e : skyline) pts.push_back(e.eval.normalized);
  return Hypervolume(pts, reference);
}

Status Run() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.5));
  // Compare on the bounded quality measures {f1, acc, train_time} so the
  // hypervolume is not dominated by degenerate tiny datasets maximizing
  // the unbounded fisher/mi scores.
  bench.task.measures = {MeasureSpec::Maximize("f1"),
                         MeasureSpec::Maximize("acc"),
                         MeasureSpec::Minimize("train_time", 1.0)};
  // Both optimizers face the same feasibility region: datasets below 200
  // rows are rejected, so neither can exploit tiny-test-split variance.
  bench.task.min_rows = 200;
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  // Reference point: slightly beyond the worst admissible value (1.0 per
  // normalized measure).
  std::vector<double> reference(bench.task.measures.size(), 1.01);

  std::printf("\n== MODis vs NSGA-II at matched valuation budgets "
              "(T2-house) ==\n");
  std::printf("%s %s %s %s %s\n", PadRight("method", 11).c_str(),
              PadRight("trains", 7).c_str(), PadRight("front", 6).c_str(),
              PadRight("hypervol", 9).c_str(), PadRight("seconds", 8).c_str());

  for (size_t budget : {60, 120, 240}) {
    {
      auto evaluator = bench.MakeEvaluator();
      ExactOracle oracle(evaluator.get());
      ModisConfig config;
      config.epsilon = 0.2;
      config.max_states = budget;
      config.max_level = 4;
      MODIS_ASSIGN_OR_RETURN(ModisResult result,
                             RunNoBiModis(universe, &oracle, config));
      std::printf("%s %s %s %s %s\n", PadRight("NOBiMODis", 11).c_str(),
                  PadRight(std::to_string(oracle.stats().exact_evals), 7)
                      .c_str(),
                  PadRight(std::to_string(result.skyline.size()), 6).c_str(),
                  PadRight(FormatDouble(
                               FrontHypervolume(result.skyline, reference), 4),
                           9)
                      .c_str(),
                  PadRight(FormatDouble(result.seconds, 2), 8).c_str());
    }
    {
      auto evaluator = bench.MakeEvaluator();
      ExactOracle oracle(evaluator.get());
      Nsga2Options opts;
      opts.population = 24;
      opts.generations = 100;  // Budget-capped, generations are the limit.
      opts.max_evaluations = budget;
      MODIS_ASSIGN_OR_RETURN(Nsga2ModisResult result,
                             RunNsga2Modis(universe, &oracle, opts));
      std::printf("%s %s %s %s %s\n", PadRight("NSGA-II", 11).c_str(),
                  PadRight(std::to_string(oracle.stats().exact_evals), 7)
                      .c_str(),
                  PadRight(std::to_string(result.skyline.size()), 6).c_str(),
                  PadRight(FormatDouble(
                               FrontHypervolume(result.skyline, reference), 4),
                           9)
                      .c_str(),
                  PadRight(FormatDouble(result.seconds, 2), 8).c_str());
    }
  }
  std::printf("(hypervolume over normalized-minimized measures; larger is "
              "better)\n");
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main() {
  std::printf("MODis vs NSGA-II (the paper's §5.4 Remarks alternative)\n");
  modis::Status s = modis::bench::Run();
  if (!s.ok()) std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
  return 0;
}
