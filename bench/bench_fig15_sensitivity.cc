/// Reproduces Figure 15 (appendix) of the paper: sensitivity analysis on
/// T5 — the percentage change of the best ranking quality (p@5) relative to
/// the original graph, as maxl and ε vary.
///
/// Expected shape (paper): all MODis algorithms benefit from larger maxl
/// and smaller ε; sensitivity to maxl is stronger than to ε.
///
/// Flags: `--json` emits per-run records (metric `pct_change_p5`);
/// `--threads N` / `--record-cache PATH` are forwarded to every run.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

constexpr Algo kAlgos[] = {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv};

struct PanelContext {
  const BenchOptions* opts;
  std::vector<RunRecord>* records;
};

struct Fixture {
  GraphBench bench;
  SearchUniverse universe;
  double original_p5 = 0.0;
};

Result<Fixture> MakeFixture() {
  MODIS_ASSIGN_OR_RETURN(GraphBench bench, MakeGraphBench(0.8));
  SearchUniverse::Options opts;
  opts.protected_attributes = {"user", "item"};
  opts.max_clusters = 4;
  MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                         SearchUniverse::Build(bench.lake.edge_table, opts));
  auto evaluator = bench.MakeEvaluator();
  MODIS_ASSIGN_OR_RETURN(Evaluation original,
                         evaluator->Evaluate(bench.lake.edge_table));
  Fixture f{std::move(bench), std::move(universe), original.raw[0]};
  return f;
}

/// Percentage change of best p@5 vs the original graph; records the run.
Result<double> PercentChange(const PanelContext& ctx, Fixture* f, Algo algo,
                             const ModisConfig& config,
                             const std::string& panel,
                             const std::string& param, double param_value) {
  auto evaluator = f->bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  MODIS_ASSIGN_OR_RETURN(ModisResult result,
                         RunAlgo(algo, f->universe, &oracle, config));
  MODIS_ASSIGN_OR_RETURN(
      MethodReport report,
      ReportBestBy(AlgoName(algo), result, 0, f->universe, evaluator.get()));
  const double pct = 100.0 * (report.eval.raw[0] - f->original_p5) /
                     std::max(1e-9, f->original_p5);
  RunRecord rec =
      MakeRunRecord("fig15", panel, "T5", AlgoName(algo), param, param_value,
                    result, ResolvedThreads(*ctx.opts));
  rec.metric = "pct_change_p5";
  rec.metric_value = pct;
  ctx.records->push_back(std::move(rec));
  return pct;
}

Status Run(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(Fixture f, MakeFixture());
  const bool text = !ctx.opts->json;
  if (text) std::printf("original p@5 = %.4f\n", f.original_p5);

  if (text) {
    std::printf("\n== Figure 15(a) / T5: %% change of p@5 vs maxl "
                "(epsilon=0.2) ==\n");
    std::printf("%s", PadRight("maxl", 7).c_str());
    for (Algo a : kAlgos) {
      std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
    }
    std::printf("\n");
  }
  for (int maxl = 2; maxl <= 4; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 45;
    config.max_level = maxl;
    ApplyBenchOptions(*ctx.opts, &config);
    if (text) std::printf("%s", PadRight(std::to_string(maxl), 7).c_str());
    for (Algo a : kAlgos) {
      auto pc = PercentChange(ctx, &f, a, config, "a", "maxl", double(maxl));
      if (text) {
        std::printf(" %s",
                    PadRight(pc.ok() ? FormatDouble(pc.value(), 2) + "%"
                                     : "-",
                             11)
                        .c_str());
      }
    }
    if (text) std::printf("\n");
  }

  if (text) {
    std::printf("\n== Figure 15(b) / T5: %% change of p@5 vs epsilon "
                "(maxl=3) ==\n");
    std::printf("%s", PadRight("eps", 7).c_str());
    for (Algo a : kAlgos) {
      std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
    }
    std::printf("\n");
  }
  for (double eps : {0.1, 0.2, 0.3}) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 45;
    config.max_level = 3;
    ApplyBenchOptions(*ctx.opts, &config);
    if (text) std::printf("%s", PadRight(FormatDouble(eps, 1), 7).c_str());
    for (Algo a : kAlgos) {
      auto pc = PercentChange(ctx, &f, a, config, "b", "epsilon", eps);
      if (text) {
        std::printf(" %s",
                    PadRight(pc.ok() ? FormatDouble(pc.value(), 2) + "%"
                                     : "-",
                             11)
                        .c_str());
      }
    }
    if (text) std::printf("\n");
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::RunRecord> records;
  modis::bench::PanelContext ctx{&opts, &records};
  if (!opts.json) {
    std::printf("Reproduction of Figure 15 (EDBT'25 MODis): T5 sensitivity\n");
  }
  modis::Status s = modis::bench::Run(ctx);
  if (!s.ok()) std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonRecords(records);
  return 0;
}
