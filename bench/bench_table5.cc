/// Reproduces Table 5 of the paper: MODis variants on the T5 link
/// regression task (LightGCN-lite over a bipartite interaction graph).
/// Augment/Reduct are edge insertions/deletions on the edge table.
///
/// Expected shape (paper): all MODis variants improve P@5/P@10, R@5/R@10,
/// NDCG@5/NDCG@10 over the original graph; BiMODis/ApxMODis lead, and the
/// output graphs are substantially smaller (noise edges removed).
///
/// Flags: `--json` emits one MethodRecord per method instead of the
/// table; `--threads N` / `--record-cache PATH` are forwarded to the
/// MODis runs.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

Status Run(const BenchOptions& bench_opts) {
  MODIS_ASSIGN_OR_RETURN(GraphBench bench, MakeGraphBench(1.0));
  auto evaluator = bench.MakeEvaluator();

  SearchUniverse::Options opts;
  opts.protected_attributes = {"user", "item"};
  opts.max_clusters = 4;
  MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                         SearchUniverse::Build(bench.lake.edge_table, opts));

  std::vector<MethodReport> methods;
  // Original graph.
  {
    MethodReport original;
    original.name = "Original";
    MODIS_ASSIGN_OR_RETURN(original.eval,
                           evaluator->Evaluate(bench.lake.edge_table));
    original.rows = bench.lake.edge_table.num_rows();
    original.cols = bench.lake.edge_table.num_cols();
    methods.push_back(std::move(original));
  }

  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 70;
  config.max_level = 4;
  ApplyBenchOptions(bench_opts, &config);
  const size_t p5 = MeasureIndex(bench.task.measures, "p@5");
  for (Algo algo : {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv}) {
    auto eval = bench.MakeEvaluator();
    ExactOracle oracle(eval.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    auto report =
        ReportBestBy(AlgoName(algo), result, p5, universe, eval.get());
    if (report.ok()) methods.push_back(std::move(report).value());
  }

  if (bench_opts.json) {
    std::vector<MethodRecord> records;
    for (const MethodReport& m : methods) {
      records.push_back(
          MakeMethodRecord("table5", "", "T5", m, bench.task.measures));
    }
    PrintJsonMethodRecords(records);
    return Status::OK();
  }
  PrintMethodTable("Table 5 / T5 link regression (select by best p@5)",
                   bench.task.measures, methods);
  std::printf(
      "note: size row = (#edges, #edge-table columns); the original graph "
      "carries the injected cross-community noise edges.\n");
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  if (!opts.json) {
    std::printf("Reproduction of Table 5 (EDBT'25 MODis): T5 graph task\n");
  }
  modis::Status s = modis::bench::Run(opts);
  if (!s.ok()) std::fprintf(stderr, "T5 failed: %s\n", s.ToString().c_str());
  return 0;
}
