/// Surrogate-family comparison for the estimator E (§2: "We use a
/// multi-output Gradient Boosting Model ... It outperforms other candidate
/// models"). Trains MO-GBM, ridge regression, and kNN surrogates on the
/// same historical test records T (state features -> normalized
/// performance vector) and reports held-out MSE per family plus their
/// per-call prediction cost.
///
/// Expected shape: MO-GBM has the lowest held-out MSE; the linear
/// surrogate underfits the interaction between attribute and cluster bits;
/// kNN sits between, at a higher prediction cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/multi_output_gbm.h"

namespace modis::bench {
namespace {

Status Run() {
  // 1. Collect exact test records by running a search with the exact
  //    oracle.
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.5));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto evaluator = bench.MakeEvaluator();
  ExactOracle oracle(evaluator.get());
  ModisConfig config;
  config.epsilon = 0.2;
  config.max_states = 200;
  config.max_level = 4;
  MODIS_ASSIGN_OR_RETURN(ModisResult search,
                         RunNoBiModis(universe, &oracle, config));
  (void)search;

  const auto& records = oracle.store().records();
  if (records.size() < 40) {
    return Status::FailedPrecondition("too few records collected");
  }
  const size_t d = records.front().features.size();
  const size_t m = bench.task.measures.size();

  // 2. Split records into train/holdout.
  Rng rng(31);
  SplitIndices split = TrainTestSplit(records.size(), 0.3, &rng);
  auto fill = [&](const std::vector<size_t>& rows, Matrix* x, Matrix* y) {
    *x = Matrix(rows.size(), d);
    *y = Matrix(rows.size(), m);
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& r = records[rows[i]];
      for (size_t c = 0; c < d; ++c) x->At(i, c) = r.features[c];
      for (size_t c = 0; c < m; ++c) y->At(i, c) = r.eval.normalized[c];
    }
  };
  Matrix train_x, train_y, test_x, test_y;
  fill(split.train, &train_x, &train_y);
  fill(split.test, &test_x, &test_y);

  std::printf("\n== Surrogate families on %zu records (%zu train / %zu "
              "holdout) ==\n",
              records.size(), split.train.size(), split.test.size());
  std::printf("%s %s %s\n", PadRight("surrogate", 12).c_str(),
              PadRight("holdout-MSE", 12).c_str(),
              PadRight("us/predict", 11).c_str());

  auto report = [&](const char* name, auto&& predict_row) {
    double se = 0.0;
    WallTimer timer;
    for (size_t i = 0; i < test_x.rows(); ++i) {
      const std::vector<double> pred = predict_row(test_x.Row(i));
      for (size_t c = 0; c < m; ++c) {
        const double diff = pred[c] - test_y.At(i, c);
        se += diff * diff;
      }
    }
    const double mse = se / (test_x.rows() * m);
    const double us =
        timer.Seconds() * 1e6 / static_cast<double>(test_x.rows());
    std::printf("%s %s %s\n", PadRight(name, 12).c_str(),
                PadRight(FormatDouble(mse, 6), 12).c_str(),
                PadRight(FormatDouble(us, 2), 11).c_str());
  };

  // MO-GBM (the paper's default).
  {
    MultiOutputGbm mo({.num_rounds = 40});
    Rng fit(32);
    MODIS_RETURN_IF_ERROR(mo.Fit(train_x, train_y, &fit));
    report("MO-GBM", [&](const double* row) { return mo.PredictRow(row); });
  }
  // Ridge: one linear model per output.
  {
    std::vector<RidgeRegressor> models;
    for (size_t c = 0; c < m; ++c) {
      MlDataset ds;
      ds.task = TaskKind::kRegression;
      ds.x = train_x;
      ds.y.resize(train_x.rows());
      for (size_t i = 0; i < train_x.rows(); ++i) ds.y[i] = train_y.At(i, c);
      RidgeRegressor model(1e-3);
      Rng fit(33);
      MODIS_RETURN_IF_ERROR(model.Fit(ds, &fit));
      models.push_back(std::move(model));
    }
    report("Ridge", [&](const double* row) {
      Matrix one(1, d);
      for (size_t c = 0; c < d; ++c) one.At(0, c) = row[c];
      std::vector<double> out(m);
      for (size_t c = 0; c < m; ++c) out[c] = models[c].Predict(one)[0];
      return out;
    });
  }
  // kNN: one regressor per output.
  {
    std::vector<KnnRegressor> models;
    for (size_t c = 0; c < m; ++c) {
      MlDataset ds;
      ds.task = TaskKind::kRegression;
      ds.x = train_x;
      ds.y.resize(train_x.rows());
      for (size_t i = 0; i < train_x.rows(); ++i) ds.y[i] = train_y.At(i, c);
      KnnRegressor model({.k = 5});
      Rng fit(34);
      MODIS_RETURN_IF_ERROR(model.Fit(ds, &fit));
      models.push_back(std::move(model));
    }
    report("kNN", [&](const double* row) {
      Matrix one(1, d);
      for (size_t c = 0; c < d; ++c) one.At(0, c) = row[c];
      std::vector<double> out(m);
      for (size_t c = 0; c < m; ++c) out[c] = models[c].Predict(one)[0];
      return out;
    });
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main() {
  std::printf("Estimator-family comparison (§2/§6, EDBT'25 MODis)\n");
  modis::Status s = modis::bench::Run();
  if (!s.ok()) std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
  return 0;
}
