/// Reproduces Figure 7 of the paper: radar-chart data of multi-measure
/// effectiveness on T1 (movie) and T3 (avocado). Each method is one series;
/// each measure axis is printed as relative improvement rImp(p) =
/// M(D_M).p / M(D_o).p over normalized-minimized values ("the outer, the
/// better" — here, larger numbers).
///
/// Expected shape (paper): MODis series enclose the baselines on most axes,
/// with feature-selection baselines winning only the training-time axis.
///
/// Flags: `--json` emits one MethodRecord per series (raw measure values,
/// including an Original row, so rImp is derivable); `--threads N` /
/// `--record-cache PATH` are forwarded to the MODis runs.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

Status RunTask(const BenchOptions& opts, std::vector<MethodRecord>* records,
               BenchTaskId id, double row_scale, const std::string& select,
               bool surrogate) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench, MakeTabularBench(id, row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto evaluator = bench.MakeEvaluator();

  MODIS_ASSIGN_OR_RETURN(BaselineResult original,
                         RunOriginal(bench.universal, evaluator.get()));

  std::vector<MethodReport> methods;
  MetamOptions metam;
  metam.utility_measure = MeasureIndex(bench.task.measures, select);
  MODIS_ASSIGN_OR_RETURN(BaselineResult m1,
                         RunMetam(bench.lake, evaluator.get(), metam));
  methods.push_back(FromBaseline(m1));
  MODIS_ASSIGN_OR_RETURN(
      BaselineResult sk,
      RunSkSfm(bench.universal, evaluator.get(), bench.model.get()));
  methods.push_back(FromBaseline(sk));
  MODIS_ASSIGN_OR_RETURN(BaselineResult h2o,
                         RunH2oFs(bench.universal, evaluator.get()));
  methods.push_back(FromBaseline(h2o));

  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 160;
  config.max_level = 4;
  ApplyBenchOptions(opts, &config);
  MODIS_ASSIGN_OR_RETURN(
      std::vector<MethodReport> modis,
      RunAllModis(bench, universe, config,
                  MeasureIndex(bench.task.measures, select), surrogate));
  for (auto& m : modis) methods.push_back(std::move(m));

  if (opts.json) {
    records->push_back(MakeMethodRecord("fig7", "", BenchTaskName(id),
                                        FromBaseline(original),
                                        bench.task.measures));
    for (const MethodReport& m : methods) {
      records->push_back(MakeMethodRecord("fig7", "", BenchTaskName(id), m,
                                          bench.task.measures));
    }
    return Status::OK();
  }

  std::printf("\n== Figure 7 radar series / %s (rImp per axis; >1 beats "
              "Original) ==\n",
              bench.name.c_str());
  std::printf("%s", PadRight("method", 12).c_str());
  for (const auto& m : bench.task.measures) {
    std::printf(" %s", PadRight(m.name, 10).c_str());
  }
  std::printf("\n");
  for (const auto& m : methods) {
    std::printf("%s", PadRight(m.name, 12).c_str());
    for (size_t j = 0; j < bench.task.measures.size(); ++j) {
      std::printf(" %s",
                  PadRight(FormatDouble(
                               RelativeImprovement(original.eval, m.eval, j),
                               3),
                           10)
                      .c_str());
    }
    std::printf("\n");
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::MethodRecord> records;
  if (!opts.json) {
    std::printf("Reproduction of Figure 7 (EDBT'25 MODis): effectiveness "
                "radar series\n");
  }
  modis::Status s =
      modis::bench::RunTask(opts, &records, modis::BenchTaskId::kMovie, 0.4,
                            "acc", /*surrogate=*/true);
  if (!s.ok()) std::fprintf(stderr, "T1 failed: %s\n", s.ToString().c_str());
  s = modis::bench::RunTask(opts, &records, modis::BenchTaskId::kAvocado,
                            0.3, "mse", /*surrogate=*/false);
  if (!s.ok()) std::fprintf(stderr, "T3 failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonMethodRecords(records);
  return 0;
}
