/// Reproduces Table 4 of the paper: multi-objective comparison of data
/// discovery methods on T2 (house classification, random forest) and T4
/// (mental-health classification, LightGBM-lite).
///
/// For each task it prints one column per method — Original, METAM,
/// METAM-MO, Starmie, SkSFM, H2O, ApxMODis, NOBiMODis, BiMODis, DivMODis —
/// and one row per reported measure plus output size. The expected *shape*
/// (paper): MODis variants lead accuracy/F1 and improve training cost;
/// SkSFM/H2O are cheapest to train but lose accuracy; augmentation
/// baselines (METAM/Starmie) gain accuracy at training-cost expense.
///
/// Flags: `--json` emits one MethodRecord per method instead of the
/// tables; `--threads N` / `--record-cache PATH` are forwarded to the
/// MODis runs (the cache warms across the per-task variant sweep).

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

Status RunTask(const BenchOptions& opts, std::vector<MethodRecord>* records,
               BenchTaskId id, double row_scale, const std::string& select,
               bool surrogate) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench, MakeTabularBench(id, row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto evaluator = bench.MakeEvaluator();

  std::vector<MethodReport> methods;
  MODIS_ASSIGN_OR_RETURN(BaselineResult original,
                         RunOriginal(bench.universal, evaluator.get()));
  methods.push_back(FromBaseline(original));

  MetamOptions metam;
  metam.utility_measure = MeasureIndex(bench.task.measures, select);
  MODIS_ASSIGN_OR_RETURN(BaselineResult m1,
                         RunMetam(bench.lake, evaluator.get(), metam));
  methods.push_back(FromBaseline(m1));
  metam.multi_objective = true;
  MODIS_ASSIGN_OR_RETURN(BaselineResult m2,
                         RunMetam(bench.lake, evaluator.get(), metam));
  methods.push_back(FromBaseline(m2));
  MODIS_ASSIGN_OR_RETURN(BaselineResult st,
                         RunStarmieLite(bench.lake, evaluator.get()));
  methods.push_back(FromBaseline(st));
  MODIS_ASSIGN_OR_RETURN(
      BaselineResult sk,
      RunSkSfm(bench.universal, evaluator.get(), bench.model.get()));
  methods.push_back(FromBaseline(sk));
  MODIS_ASSIGN_OR_RETURN(BaselineResult h2o,
                         RunH2oFs(bench.universal, evaluator.get()));
  methods.push_back(FromBaseline(h2o));

  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 180;
  config.max_level = 4;
  config.diversify_k = 5;
  ApplyBenchOptions(opts, &config);
  MODIS_ASSIGN_OR_RETURN(
      std::vector<MethodReport> modis,
      RunAllModis(bench, universe, config,
                  MeasureIndex(bench.task.measures, select), surrogate));
  for (auto& m : modis) methods.push_back(std::move(m));

  for (const MethodReport& m : methods) {
    records->push_back(MakeMethodRecord("table4", "", BenchTaskName(id), m,
                                        bench.task.measures));
  }
  if (!opts.json) {
    PrintMethodTable("Table 4 / " + bench.name + " (select by best " +
                         select + ")",
                     bench.task.measures, methods);
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::MethodRecord> records;
  if (!opts.json) {
    std::printf(
        "Reproduction of Table 4 (EDBT'25 MODis): T2-house, T4-mental\n");
  }
  modis::Status s =
      modis::bench::RunTask(opts, &records, modis::BenchTaskId::kHouse, 0.7,
                            "f1", /*surrogate=*/false);
  if (!s.ok()) std::fprintf(stderr, "T2 failed: %s\n", s.ToString().c_str());
  s = modis::bench::RunTask(opts, &records, modis::BenchTaskId::kMental,
                            0.35, "acc", /*surrogate=*/true);
  if (!s.ok()) std::fprintf(stderr, "T4 failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonMethodRecords(records);
  return 0;
}
