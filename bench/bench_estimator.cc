/// Reproduces the estimator claim of §6 ("Estimator E"): the MO-GBM
/// surrogate valuates the whole performance vector of one state far faster
/// than an exact model (re)training, with small prediction error.
///
/// Prints: per-test cost of exact valuation vs MO-GBM valuation, the
/// speedup, and the surrogate's shadow MSE on held-out exact evaluations
/// (paper reports <= 0.2 s per state and MSE ~ 0.0003 on T1 "accuracy").

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

Status Run() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kMovie, 0.4));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto evaluator = bench.MakeEvaluator();

  SurrogateOptions opts;
  opts.bootstrap_budget = 24;
  opts.exact_fraction = 0.2;  // Keep shadow-checking the surrogate.
  MoGbmOracle oracle(evaluator.get(), opts);

  ModisConfig config;
  config.epsilon = 0.2;
  config.max_states = 250;
  config.max_level = 4;
  MODIS_ASSIGN_OR_RETURN(ModisResult result,
                         RunNoBiModis(universe, &oracle, config));

  const auto& st = oracle.stats();
  std::printf("\n== MO-GBM estimator profile (task T1) ==\n");
  std::printf("search: %zu states valuated, %zu skyline, %.2f s total\n",
              result.valuated_states, result.skyline.size(), result.seconds);
  std::printf("exact valuations     : %zu (%.4f s/test)\n", st.exact_evals,
              st.exact_evals ? st.exact_seconds / st.exact_evals : 0.0);
  std::printf("surrogate valuations : %zu (%.6f s/test)\n",
              st.surrogate_evals,
              st.surrogate_evals ? st.surrogate_seconds / st.surrogate_evals
                                 : 0.0);
  if (st.exact_evals && st.surrogate_evals && st.surrogate_seconds > 0.0) {
    std::printf("speedup per test     : %.0fx\n",
                (st.exact_seconds / st.exact_evals) /
                    (st.surrogate_seconds / st.surrogate_evals));
  }
  std::printf("shadow MSE (normalized measures, all outputs): %.6f\n",
              oracle.SurrogateMse());
  std::printf("paper's reference point: <=0.2 s per state, MSE ~0.0003 on "
              "'accuracy' (T1)\n");
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main() {
  std::printf("Reproduction of the estimator study (§2/§6, EDBT'25 MODis)\n");
  modis::Status s = modis::bench::Run();
  if (!s.ok()) std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
  return 0;
}
