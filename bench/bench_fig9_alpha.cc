/// Reproduces Figure 9 of the paper: the impact of α on DivMODis.
///  (a) Performance diversity: the distribution (min / mean / median / max /
///      std) of the skyline datasets' accuracy for α in {0.2, 0.5, 0.8} —
///      smaller α (performance-weighted distance) widens the accuracy
///      spread; larger α narrows it toward high-accuracy sets.
///  (b) Content diversity: per-attribute contribution percentages of the
///      skyline (how often each attribute appears), and their standard
///      deviation — larger α distributes contributions more evenly
///      (decreasing std).
///
/// Flags: `--json` emits two per-alpha records (metric `acc_std`, the
/// accuracy spread of the diversified skyline, and `contribution_std_pct`,
/// the attribute-contribution spread); `--threads N` / `--record-cache
/// PATH` are forwarded to every run.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"

namespace modis::bench {
namespace {

Status Run(const BenchOptions& opts, std::vector<RunRecord>* records) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.6));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t acc = MeasureIndex(bench.task.measures, "acc");
  const auto& layout = universe.layout();

  if (!opts.json) {
    std::printf("\n== Figure 9(a): accuracy distribution of the diversified "
                "skyline vs alpha ==\n");
    std::printf("%s %s %s %s %s %s %s\n", PadRight("alpha", 7).c_str(),
                PadRight("k", 3).c_str(), PadRight("min", 8).c_str(),
                PadRight("mean", 8).c_str(), PadRight("median", 8).c_str(),
                PadRight("max", 8).c_str(), PadRight("std", 8).c_str());
  }

  struct AlphaRun {
    double alpha;
    std::vector<double> attr_contribution;
  };
  std::vector<AlphaRun> runs;

  for (double alpha : {0.2, 0.5, 0.8}) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 160;
    config.max_level = 4;
    config.diversify_k = 6;
    config.alpha = alpha;
    ApplyBenchOptions(opts, &config);

    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunDivModis(universe, &oracle, config));
    std::vector<double> accs;
    std::vector<double> contribution(layout.num_attributes(), 0.0);
    for (const auto& e : result.skyline) {
      MODIS_ASSIGN_OR_RETURN(Evaluation exact,
                             evaluator->Evaluate(universe.Materialize(e.state)));
      accs.push_back(exact.raw[acc]);
      for (size_t a = 0; a < layout.num_attributes(); ++a) {
        if (e.state.Get(a)) contribution[a] += 1.0;
      }
    }
    if (accs.empty()) continue;
    for (double& c : contribution) {
      c = 100.0 * c / static_cast<double>(result.skyline.size());
    }
    std::vector<double> sorted = accs;
    std::sort(sorted.begin(), sorted.end());
    if (!opts.json) {
      std::printf(
          "%s %s %s %s %s %s %s\n", PadRight(FormatDouble(alpha, 1), 7).c_str(),
          PadRight(std::to_string(accs.size()), 3).c_str(),
          PadRight(FormatDouble(sorted.front(), 4), 8).c_str(),
          PadRight(FormatDouble(Mean(accs), 4), 8).c_str(),
          PadRight(FormatDouble(sorted[sorted.size() / 2], 4), 8).c_str(),
          PadRight(FormatDouble(sorted.back(), 4), 8).c_str(),
          PadRight(FormatDouble(StdDev(accs), 4), 8).c_str());
    }
    RunRecord rec = MakeRunRecord("fig9", "a", "T2", "DivMODis", "alpha",
                                  alpha, result, ResolvedThreads(opts));
    rec.metric = "acc_std";
    rec.metric_value = StdDev(accs);
    records->push_back(rec);
    rec.panel = "b";
    rec.metric = "contribution_std_pct";
    rec.metric_value = StdDev(contribution);
    records->push_back(std::move(rec));
    runs.push_back({alpha, std::move(contribution)});
  }

  if (opts.json) return Status::OK();

  std::printf("\n== Figure 9(b): attribute contribution heatmap (%% of "
              "skyline tables containing each attribute) ==\n");
  std::printf("%s", PadRight("attribute", 14).c_str());
  for (const auto& run : runs) {
    std::printf(" a=%s", PadRight(FormatDouble(run.alpha, 1), 6).c_str());
  }
  std::printf("\n");
  for (size_t a = 0; a < layout.num_attributes(); ++a) {
    std::printf("%s", PadRight(layout.attributes[a], 14).c_str());
    for (const auto& run : runs) {
      std::printf(" %s",
                  PadRight(FormatDouble(run.attr_contribution[a], 1), 8)
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("%s", PadRight("std-dev", 14).c_str());
  for (const auto& run : runs) {
    std::printf(" %s",
                PadRight(FormatDouble(StdDev(run.attr_contribution), 1), 8)
                    .c_str());
  }
  std::printf("  <- expected to decrease as alpha grows\n");
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::RunRecord> records;
  if (!opts.json) {
    std::printf("Reproduction of Figure 9 (EDBT'25 MODis): DivMODis alpha "
                "sweep\n");
  }
  modis::Status s = modis::bench::Run(opts, &records);
  if (!s.ok()) std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonRecords(records);
  return 0;
}
