#ifndef MODIS_BENCH_BENCH_UTIL_H_
#define MODIS_BENCH_BENCH_UTIL_H_

/// Shared scaffolding for the experiment-reproduction binaries: running the
/// four MODis algorithms over a wired bench task, selecting the reporting
/// table from a skyline (best *estimated* value of a chosen measure, then
/// actual model inference — the paper's Exp-1 protocol), and fixed-width
/// table printing.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baselines.h"
#include "common/strings.h"
#include "core/algorithms.h"
#include "datagen/tasks.h"

namespace modis::bench {

/// Command-line options shared by the experiment binaries:
///   --json              emit machine-readable per-run records (and only
///                       those)
///   --threads N         ModisConfig::num_threads for every run (0 =
///                       hardware concurrency; the default)
///   --record-cache P    cross-run persistent valuation-record log at path
///                       P (ModisConfig::record_cache_path): every run of
///                       the binary shares it, so variant/config sweeps
///                       only pay the exact training of each unique state
///                       once, and a re-run against the same file is a
///                       warm start (see docs/PERSISTENCE.md)
///   --cache-mode M      off | read | read_write (default read_write);
///                       only meaningful with --record-cache
///   --cache-max-bytes N byte budget of the record-cache log (0 =
///                       unbounded); over-budget logs evict least-
///                       recently-hit fingerprints at each flush
///   --page-size N       page size of the paged cache engine; 0 (the
///                       default) keeps the v1 append-only log
///   --buffer-pool-frames N  frame budget of the paged engine's buffer
///                       pool (0 = 64); bounds cache memory
struct BenchOptions {
  bool json = false;
  size_t num_threads = 0;
  std::string record_cache;
  CacheMode cache_mode = CacheMode::kReadWrite;
  uint64_t cache_max_bytes = 0;
  uint32_t page_size = 0;
  size_t buffer_pool_frames = 0;
};

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opts;
  auto parse_mode = [](const std::string& value) {
    const Result<CacheMode> mode = ParseCacheMode(value);
    if (!mode.ok()) {
      std::fprintf(stderr, "bad --cache-mode: %s\n",
                   mode.status().ToString().c_str());
      std::exit(2);
    }
    return mode.value();
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.num_threads = static_cast<size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.num_threads = static_cast<size_t>(std::strtoull(
          arg.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (arg == "--record-cache" && i + 1 < argc) {
      opts.record_cache = argv[++i];
    } else if (arg.rfind("--record-cache=", 0) == 0) {
      opts.record_cache = arg.substr(std::strlen("--record-cache="));
    } else if (arg == "--cache-mode" && i + 1 < argc) {
      opts.cache_mode = parse_mode(argv[++i]);
    } else if (arg.rfind("--cache-mode=", 0) == 0) {
      opts.cache_mode = parse_mode(arg.substr(std::strlen("--cache-mode=")));
    } else if (arg == "--cache-max-bytes" && i + 1 < argc) {
      opts.cache_max_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--cache-max-bytes=", 0) == 0) {
      opts.cache_max_bytes = std::strtoull(
          arg.c_str() + std::strlen("--cache-max-bytes="), nullptr, 10);
    } else if (arg == "--page-size" && i + 1 < argc) {
      opts.page_size = static_cast<uint32_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else if (arg.rfind("--page-size=", 0) == 0) {
      opts.page_size = static_cast<uint32_t>(std::strtoull(
          arg.c_str() + std::strlen("--page-size="), nullptr, 10));
    } else if (arg == "--buffer-pool-frames" && i + 1 < argc) {
      opts.buffer_pool_frames = static_cast<size_t>(std::strtoull(
          argv[++i], nullptr, 10));
    } else if (arg.rfind("--buffer-pool-frames=", 0) == 0) {
      opts.buffer_pool_frames = static_cast<size_t>(std::strtoull(
          arg.c_str() + std::strlen("--buffer-pool-frames="), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "unknown argument %s (supported: --json, --threads N, "
                   "--record-cache PATH, --cache-mode M, "
                   "--cache-max-bytes N, --page-size N, "
                   "--buffer-pool-frames N)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

/// Applies the shared options to one run's config (threads + record
/// cache). Every bench builds its configs through this so a single
/// `--record-cache` flag warms the whole sweep.
inline void ApplyBenchOptions(const BenchOptions& opts, ModisConfig* config) {
  config->num_threads = opts.num_threads;
  config->record_cache_path = opts.record_cache;
  config->cache_mode = opts.cache_mode;
  config->record_cache_max_bytes = opts.cache_max_bytes;
  config->record_cache_page_size = opts.page_size;
  config->record_cache_buffer_frames = opts.buffer_pool_frames;
}

/// The thread count a run effectively uses (resolves 0 = hardware).
inline size_t ResolvedThreads(const BenchOptions& opts) {
  if (opts.num_threads != 0) return opts.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// One machine-readable benchmark run — the record unit of --json mode.
struct RunRecord {
  std::string bench;    // Binary family, e.g. "fig10".
  std::string panel;    // Sub-experiment, e.g. "a".
  std::string task;     // Bench task, e.g. "T1".
  std::string variant;  // Algorithm / method name.
  std::string param;    // Swept knob name ("epsilon", "maxl", ...).
  double param_value = 0.0;
  double wall_ms = 0.0;
  size_t num_threads = 1;
  size_t exact_evals = 0;
  size_t surrogate_evals = 0;
  size_t cache_hits = 0;
  size_t persistent_hits = 0;  // Trainings avoided via --record-cache.
  size_t failed_evals = 0;
  size_t valuated_states = 0;
  size_t generated_states = 0;
  size_t pruned_states = 0;
  /// Optional reported quality metric of the run (e.g. "best_acc" for the
  /// effectiveness figures); empty name for pure efficiency records.
  std::string metric;
  double metric_value = 0.0;
};

/// Fraction of the run's would-be exact trainings served by the
/// persistent record cache (0 when the cache is off or nothing was
/// planned exact).
inline double WarmHitRate(const RunRecord& r) {
  const size_t planned = r.persistent_hits + r.exact_evals;
  return planned == 0 ? 0.0
                      : static_cast<double>(r.persistent_hits) /
                            static_cast<double>(planned);
}

/// Folds one engine run into a RunRecord (wall clock + valuation counts).
inline RunRecord MakeRunRecord(std::string bench_name, std::string panel,
                               std::string task, std::string variant,
                               std::string param, double param_value,
                               const ModisResult& result,
                               size_t num_threads) {
  RunRecord rec;
  rec.bench = std::move(bench_name);
  rec.panel = std::move(panel);
  rec.task = std::move(task);
  rec.variant = std::move(variant);
  rec.param = std::move(param);
  rec.param_value = param_value;
  rec.wall_ms = result.seconds * 1000.0;
  rec.num_threads = num_threads;
  rec.exact_evals = result.oracle_stats.exact_evals;
  rec.surrogate_evals = result.oracle_stats.surrogate_evals;
  rec.cache_hits = result.oracle_stats.cache_hits;
  rec.persistent_hits = result.oracle_stats.persistent_hits;
  rec.failed_evals = result.oracle_stats.failed_evals;
  rec.valuated_states = result.valuated_states;
  rec.generated_states = result.generated_states;
  rec.pruned_states = result.pruned_states;
  return rec;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // Drop controls.
    out.push_back(c);
  }
  return out;
}

/// Prints the records as one JSON array on stdout. In --json mode this is
/// the binary's entire output, so downstream tooling can `json.load` it.
inline void PrintJsonRecords(const std::vector<RunRecord>& records) {
  std::printf("[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    std::printf(
        "  {\"bench\": \"%s\", \"panel\": \"%s\", \"task\": \"%s\", "
        "\"variant\": \"%s\", \"param\": \"%s\", \"param_value\": %g, "
        "\"wall_ms\": %.3f, \"num_threads\": %zu, \"exact_evals\": %zu, "
        "\"surrogate_evals\": %zu, \"cache_hits\": %zu, "
        "\"persistent_hits\": %zu, \"warm_hit_rate\": %.4f, "
        "\"failed_evals\": %zu, \"valuated_states\": %zu, "
        "\"generated_states\": %zu, \"pruned_states\": %zu",
        JsonEscape(r.bench).c_str(), JsonEscape(r.panel).c_str(),
        JsonEscape(r.task).c_str(), JsonEscape(r.variant).c_str(),
        JsonEscape(r.param).c_str(), r.param_value, r.wall_ms,
        r.num_threads, r.exact_evals, r.surrogate_evals, r.cache_hits,
        r.persistent_hits, WarmHitRate(r), r.failed_evals,
        r.valuated_states, r.generated_states, r.pruned_states);
    if (!r.metric.empty()) {
      std::printf(", \"metric\": \"%s\", \"metric_value\": %g",
                  JsonEscape(r.metric).c_str(), r.metric_value);
    }
    std::printf("}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::printf("]\n");
}

/// Which MODis variant to run.
enum class Algo { kApx, kNoBi, kBi, kDiv };

inline const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kApx:
      return "ApxMODis";
    case Algo::kNoBi:
      return "NOBiMODis";
    case Algo::kBi:
      return "BiMODis";
    case Algo::kDiv:
      return "DivMODis";
  }
  return "?";
}

inline Result<ModisResult> RunAlgo(Algo algo, const SearchUniverse& universe,
                                   PerformanceOracle* oracle,
                                   const ModisConfig& config) {
  switch (algo) {
    case Algo::kApx:
      return RunApxModis(universe, oracle, config);
    case Algo::kNoBi:
      return RunNoBiModis(universe, oracle, config);
    case Algo::kBi:
      return RunBiModis(universe, oracle, config);
    case Algo::kDiv:
      return RunDivModis(universe, oracle, config);
  }
  return Status::Internal("unknown algorithm");
}

/// One reported method row: actual (exact) evaluation of the selected
/// dataset + its size + discovery time.
struct MethodReport {
  std::string name;
  Evaluation eval;
  size_t rows = 0;
  size_t cols = 0;
  double discovery_seconds = 0.0;
};

/// Index of measure `name` in the vector (aborts if absent).
inline size_t MeasureIndex(const std::vector<MeasureSpec>& measures,
                           const std::string& name) {
  for (size_t i = 0; i < measures.size(); ++i) {
    if (measures[i].name == name) return i;
  }
  std::fprintf(stderr, "no measure named %s\n", name.c_str());
  std::abort();
}

/// Machine-readable row of a method-comparison table (Tables 4/5/6, the
/// Figure 7 radar): one method's exact re-evaluation, raw values in
/// measure order. The --json shape of the report-style benches.
struct MethodRecord {
  std::string bench;
  std::string panel;
  std::string task;
  std::string variant;  // Method name (Original, METAM, ApxMODis, ...).
  std::vector<std::string> measure_names;
  std::vector<double> raw;  // Parallel to measure_names.
  size_t rows = 0;
  size_t cols = 0;
  double discovery_seconds = 0.0;
};

inline MethodRecord MakeMethodRecord(std::string bench_name,
                                     std::string panel, std::string task,
                                     const MethodReport& report,
                                     const std::vector<MeasureSpec>& specs) {
  MethodRecord rec;
  rec.bench = std::move(bench_name);
  rec.panel = std::move(panel);
  rec.task = std::move(task);
  rec.variant = report.name;
  for (const MeasureSpec& m : specs) rec.measure_names.push_back(m.name);
  rec.raw = report.eval.raw;
  rec.rows = report.rows;
  rec.cols = report.cols;
  rec.discovery_seconds = report.discovery_seconds;
  return rec;
}

/// Prints method records as one JSON array (measures as a name->raw-value
/// object per record).
inline void PrintJsonMethodRecords(const std::vector<MethodRecord>& records) {
  std::printf("[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const MethodRecord& r = records[i];
    std::printf(
        "  {\"bench\": \"%s\", \"panel\": \"%s\", \"task\": \"%s\", "
        "\"variant\": \"%s\", \"measures\": {",
        JsonEscape(r.bench).c_str(), JsonEscape(r.panel).c_str(),
        JsonEscape(r.task).c_str(), JsonEscape(r.variant).c_str());
    const size_t n = std::min(r.measure_names.size(), r.raw.size());
    for (size_t j = 0; j < n; ++j) {
      std::printf("\"%s\": %g%s", JsonEscape(r.measure_names[j]).c_str(),
                  r.raw[j], j + 1 < n ? ", " : "");
    }
    std::printf(
        "}, \"rows\": %zu, \"cols\": %zu, \"discovery_seconds\": %.3f}%s\n",
        r.rows, r.cols, r.discovery_seconds,
        i + 1 < records.size() ? "," : "");
  }
  std::printf("]\n");
}

/// Picks the skyline entry with the best (lowest normalized) estimated
/// value of `measure`, re-evaluates it exactly, and returns the report.
/// Returns nullopt for an empty skyline.
inline Result<MethodReport> ReportBestBy(const std::string& algo_name,
                                         const ModisResult& result,
                                         size_t measure,
                                         const SearchUniverse& universe,
                                         TaskEvaluator* evaluator) {
  if (result.skyline.empty()) {
    return Status::NotFound(algo_name + ": empty skyline");
  }
  const SkylineEntry* best = &result.skyline.front();
  for (const auto& e : result.skyline) {
    if (e.eval.normalized[measure] < best->eval.normalized[measure]) {
      best = &e;
    }
  }
  MethodReport report;
  report.name = algo_name;
  MODIS_ASSIGN_OR_RETURN(report.eval,
                         evaluator->Evaluate(universe.Materialize(best->state)));
  report.rows = best->rows;
  report.cols = best->cols;
  report.discovery_seconds = result.seconds;
  return report;
}

/// Runs all four MODis variants with fresh oracles and reports each (best
/// by `select_measure`). `surrogate` switches the search to the MO-GBM
/// estimator; reporting is always exact.
inline Result<std::vector<MethodReport>> RunAllModis(
    const TabularBench& bench, const SearchUniverse& universe,
    ModisConfig config, size_t select_measure, bool surrogate) {
  std::vector<MethodReport> reports;
  for (Algo algo : {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv}) {
    auto evaluator = bench.MakeEvaluator();
    std::unique_ptr<PerformanceOracle> oracle;
    if (surrogate) {
      oracle = std::make_unique<MoGbmOracle>(evaluator.get());
    } else {
      oracle = std::make_unique<ExactOracle>(evaluator.get());
    }
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, oracle.get(), config));
    auto report = ReportBestBy(AlgoName(algo), result, select_measure,
                               universe, evaluator.get());
    if (!report.ok()) continue;  // Empty skyline at tiny budgets.
    reports.push_back(std::move(report).value());
  }
  return reports;
}

/// Converts a BaselineResult into a MethodReport.
inline MethodReport FromBaseline(const BaselineResult& r) {
  MethodReport report;
  report.name = r.name;
  report.eval = r.eval;
  report.rows = r.dataset.num_rows();
  report.cols = r.dataset.num_cols();
  report.discovery_seconds = r.seconds;
  return report;
}

/// Prints a paper-style table: one row per measure, one column per method,
/// with the raw (natural-unit) values, then an output-size row.
inline void PrintMethodTable(const std::string& title,
                             const std::vector<MeasureSpec>& measures,
                             const std::vector<MethodReport>& methods) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%s", PadRight("measure", 12).c_str());
  for (const auto& m : methods) {
    std::printf(" %s", PadRight(m.name, 11).c_str());
  }
  std::printf("\n");
  for (size_t j = 0; j < measures.size(); ++j) {
    std::printf("%s", PadRight(measures[j].name, 12).c_str());
    for (const auto& m : methods) {
      std::printf(" %s", PadRight(FormatDouble(m.eval.raw[j], 4), 11).c_str());
    }
    std::printf("\n");
  }
  std::printf("%s", PadRight("size (r,c)", 12).c_str());
  for (const auto& m : methods) {
    std::printf(" %s",
                PadRight("(" + std::to_string(m.rows) + "," +
                             std::to_string(m.cols) + ")",
                         11)
                    .c_str());
  }
  std::printf("\n%s", PadRight("disc. sec", 12).c_str());
  for (const auto& m : methods) {
    std::printf(" %s",
                PadRight(FormatDouble(m.discovery_seconds, 2), 11).c_str());
  }
  std::printf("\n");
}

/// rImp(p) = M(D_M).p / M(D_o).p over normalized values (both minimized),
/// so larger is better (§6 "Evaluation metrics").
inline double RelativeImprovement(const Evaluation& original,
                                  const Evaluation& output, size_t measure) {
  const double denom = output.normalized[measure];
  if (denom <= 0.0) return 0.0;
  return original.normalized[measure] / denom;
}

}  // namespace modis::bench

#endif  // MODIS_BENCH_BENCH_UTIL_H_
