#ifndef MODIS_BENCH_BENCH_UTIL_H_
#define MODIS_BENCH_BENCH_UTIL_H_

/// Shared scaffolding for the experiment-reproduction binaries: running the
/// four MODis algorithms over a wired bench task, selecting the reporting
/// table from a skyline (best *estimated* value of a chosen measure, then
/// actual model inference — the paper's Exp-1 protocol), and fixed-width
/// table printing.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/strings.h"
#include "core/algorithms.h"
#include "datagen/tasks.h"

namespace modis::bench {

/// Which MODis variant to run.
enum class Algo { kApx, kNoBi, kBi, kDiv };

inline const char* AlgoName(Algo a) {
  switch (a) {
    case Algo::kApx:
      return "ApxMODis";
    case Algo::kNoBi:
      return "NOBiMODis";
    case Algo::kBi:
      return "BiMODis";
    case Algo::kDiv:
      return "DivMODis";
  }
  return "?";
}

inline Result<ModisResult> RunAlgo(Algo algo, const SearchUniverse& universe,
                                   PerformanceOracle* oracle,
                                   const ModisConfig& config) {
  switch (algo) {
    case Algo::kApx:
      return RunApxModis(universe, oracle, config);
    case Algo::kNoBi:
      return RunNoBiModis(universe, oracle, config);
    case Algo::kBi:
      return RunBiModis(universe, oracle, config);
    case Algo::kDiv:
      return RunDivModis(universe, oracle, config);
  }
  return Status::Internal("unknown algorithm");
}

/// One reported method row: actual (exact) evaluation of the selected
/// dataset + its size + discovery time.
struct MethodReport {
  std::string name;
  Evaluation eval;
  size_t rows = 0;
  size_t cols = 0;
  double discovery_seconds = 0.0;
};

/// Index of measure `name` in the vector (aborts if absent).
inline size_t MeasureIndex(const std::vector<MeasureSpec>& measures,
                           const std::string& name) {
  for (size_t i = 0; i < measures.size(); ++i) {
    if (measures[i].name == name) return i;
  }
  std::fprintf(stderr, "no measure named %s\n", name.c_str());
  std::abort();
}

/// Picks the skyline entry with the best (lowest normalized) estimated
/// value of `measure`, re-evaluates it exactly, and returns the report.
/// Returns nullopt for an empty skyline.
inline Result<MethodReport> ReportBestBy(const std::string& algo_name,
                                         const ModisResult& result,
                                         size_t measure,
                                         const SearchUniverse& universe,
                                         TaskEvaluator* evaluator) {
  if (result.skyline.empty()) {
    return Status::NotFound(algo_name + ": empty skyline");
  }
  const SkylineEntry* best = &result.skyline.front();
  for (const auto& e : result.skyline) {
    if (e.eval.normalized[measure] < best->eval.normalized[measure]) {
      best = &e;
    }
  }
  MethodReport report;
  report.name = algo_name;
  MODIS_ASSIGN_OR_RETURN(report.eval,
                         evaluator->Evaluate(universe.Materialize(best->state)));
  report.rows = best->rows;
  report.cols = best->cols;
  report.discovery_seconds = result.seconds;
  return report;
}

/// Runs all four MODis variants with fresh oracles and reports each (best
/// by `select_measure`). `surrogate` switches the search to the MO-GBM
/// estimator; reporting is always exact.
inline Result<std::vector<MethodReport>> RunAllModis(
    const TabularBench& bench, const SearchUniverse& universe,
    ModisConfig config, size_t select_measure, bool surrogate) {
  std::vector<MethodReport> reports;
  for (Algo algo : {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv}) {
    auto evaluator = bench.MakeEvaluator();
    std::unique_ptr<PerformanceOracle> oracle;
    if (surrogate) {
      oracle = std::make_unique<MoGbmOracle>(evaluator.get());
    } else {
      oracle = std::make_unique<ExactOracle>(evaluator.get());
    }
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, oracle.get(), config));
    auto report = ReportBestBy(AlgoName(algo), result, select_measure,
                               universe, evaluator.get());
    if (!report.ok()) continue;  // Empty skyline at tiny budgets.
    reports.push_back(std::move(report).value());
  }
  return reports;
}

/// Converts a BaselineResult into a MethodReport.
inline MethodReport FromBaseline(const BaselineResult& r) {
  MethodReport report;
  report.name = r.name;
  report.eval = r.eval;
  report.rows = r.dataset.num_rows();
  report.cols = r.dataset.num_cols();
  report.discovery_seconds = r.seconds;
  return report;
}

/// Prints a paper-style table: one row per measure, one column per method,
/// with the raw (natural-unit) values, then an output-size row.
inline void PrintMethodTable(const std::string& title,
                             const std::vector<MeasureSpec>& measures,
                             const std::vector<MethodReport>& methods) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%s", PadRight("measure", 12).c_str());
  for (const auto& m : methods) {
    std::printf(" %s", PadRight(m.name, 11).c_str());
  }
  std::printf("\n");
  for (size_t j = 0; j < measures.size(); ++j) {
    std::printf("%s", PadRight(measures[j].name, 12).c_str());
    for (const auto& m : methods) {
      std::printf(" %s", PadRight(FormatDouble(m.eval.raw[j], 4), 11).c_str());
    }
    std::printf("\n");
  }
  std::printf("%s", PadRight("size (r,c)", 12).c_str());
  for (const auto& m : methods) {
    std::printf(" %s",
                PadRight("(" + std::to_string(m.rows) + "," +
                             std::to_string(m.cols) + ")",
                         11)
                    .c_str());
  }
  std::printf("\n%s", PadRight("disc. sec", 12).c_str());
  for (const auto& m : methods) {
    std::printf(" %s",
                PadRight(FormatDouble(m.discovery_seconds, 2), 11).c_str());
  }
  std::printf("\n");
}

/// rImp(p) = M(D_M).p / M(D_o).p over normalized values (both minimized),
/// so larger is better (§6 "Evaluation metrics").
inline double RelativeImprovement(const Evaluation& original,
                                  const Evaluation& output, size_t measure) {
  const double denom = output.normalized[measure];
  if (denom <= 0.0) return 0.0;
  return original.normalized[measure] / denom;
}

}  // namespace modis::bench

#endif  // MODIS_BENCH_BENCH_UTIL_H_
