/// Reproduces Figure 10 of the paper: efficiency and scalability of the
/// MODis algorithms on tabular tasks.
///  (a) T1 discovery time vs ε (maxl fixed) — bidirectional variants get
///      faster with larger ε (more pruning chances); ApxMODis insensitive.
///  (b) T1 discovery time vs maxl (ε fixed) — all grow with maxl;
///      ApxMODis grows fastest; BiMODis mitigates via pruning.
///  (c) time vs number of attributes |A| (extra noisy tables).
///  (d) time vs active-domain size |adom| (cluster budget).

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

constexpr Algo kAlgos[] = {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv};

Result<double> TimeOne(const TabularBench& bench,
                       const SearchUniverse& universe, Algo algo,
                       const ModisConfig& config) {
  auto evaluator = bench.MakeEvaluator();
  MoGbmOracle oracle(evaluator.get());
  MODIS_ASSIGN_OR_RETURN(ModisResult result,
                         RunAlgo(algo, universe, &oracle, config));
  return result.seconds;
}

void PrintRow(const std::string& label, const std::vector<double>& seconds) {
  std::printf("%s", PadRight(label, 9).c_str());
  for (double s : seconds) {
    std::printf(" %s", PadRight(FormatDouble(s, 3), 11).c_str());
  }
  std::printf("\n");
}

void PrintHeader(const char* axis) {
  std::printf("%s", PadRight(axis, 9).c_str());
  for (Algo a : kAlgos) std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
  std::printf("\n");
}

Status PanelA() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kMovie, 0.3));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  std::printf("\n== Figure 10(a) / T1: discovery seconds vs epsilon "
              "(maxl=4) ==\n");
  PrintHeader("epsilon");
  for (double eps : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 140;
    config.max_level = 4;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, TimeOne(bench, universe, a, config));
      row.push_back(t);
    }
    PrintRow(FormatDouble(eps, 1), row);
  }
  return Status::OK();
}

Status PanelB() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kMovie, 0.3));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  std::printf("\n== Figure 10(b) / T1: discovery seconds vs maxl "
              "(epsilon=0.2) ==\n");
  PrintHeader("maxl");
  for (int maxl = 2; maxl <= 6; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 140;
    config.max_level = maxl;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, TimeOne(bench, universe, a, config));
      row.push_back(t);
    }
    PrintRow(std::to_string(maxl), row);
  }
  return Status::OK();
}

Status PanelC() {
  std::printf("\n== Figure 10(c) / T1: discovery seconds vs #attributes "
              "(extra noisy tables) ==\n");
  PrintHeader("|A|");
  for (int extra : {0, 2, 4, 6}) {
    MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                           MakeTabularBench(BenchTaskId::kMovie, 0.25, extra));
    MODIS_ASSIGN_OR_RETURN(
        SearchUniverse universe,
        SearchUniverse::Build(bench.universal, bench.universe_options));
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 120;
    config.max_level = 3;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, TimeOne(bench, universe, a, config));
      row.push_back(t);
    }
    PrintRow(std::to_string(bench.universal.num_cols()), row);
  }
  return Status::OK();
}

Status PanelD() {
  std::printf("\n== Figure 10(d) / T1: discovery seconds vs |adom| (cluster "
              "budget per attribute) ==\n");
  PrintHeader("|adom|");
  for (int clusters : {3, 5, 8, 12}) {
    MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                           MakeTabularBench(BenchTaskId::kMovie, 0.25));
    SearchUniverse::Options opts = bench.universe_options;
    opts.max_clusters = clusters;
    MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                           SearchUniverse::Build(bench.universal, opts));
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 120;
    config.max_level = 3;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, TimeOne(bench, universe, a, config));
      row.push_back(t);
    }
    PrintRow(std::to_string(clusters), row);
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main() {
  std::printf("Reproduction of Figure 10 (EDBT'25 MODis): efficiency & "
              "scalability\n");
  for (auto* panel : {modis::bench::PanelA, modis::bench::PanelB,
                      modis::bench::PanelC, modis::bench::PanelD}) {
    modis::Status s = panel();
    if (!s.ok()) std::fprintf(stderr, "panel failed: %s\n",
                              s.ToString().c_str());
  }
  return 0;
}
