/// Reproduces Figure 10 of the paper: efficiency and scalability of the
/// MODis algorithms on tabular tasks.
///  (a) T1 discovery time vs ε (maxl fixed) — bidirectional variants get
///      faster with larger ε (more pruning chances); ApxMODis insensitive.
///  (b) T1 discovery time vs maxl (ε fixed) — all grow with maxl;
///      ApxMODis grows fastest; BiMODis mitigates via pruning.
///  (c) time vs number of attributes |A| (extra noisy tables).
///  (d) time vs active-domain size |adom| (cluster budget).
///
/// Flags: `--json` switches the output to one machine-readable JSON array
/// of per-run records (see bench/baselines/README.md for the comparison
/// protocol); `--threads N` sets ModisConfig::num_threads for every run
/// (0 = hardware concurrency); `--record-cache PATH` shares one
/// persistent valuation-record log across all 72 runs, so the sweeps only
/// train each unique state once and a second invocation against the same
/// file is a warm start (`persistent_hits` / `warm_hit_rate` in the JSON
/// records; the skyline is identical to a cold run).

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

constexpr Algo kAlgos[] = {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv};

struct PanelContext {
  const BenchOptions* opts;
  std::vector<RunRecord>* records;
};

Result<ModisResult> RunOne(const TabularBench& bench,
                           const SearchUniverse& universe, Algo algo,
                           const ModisConfig& config) {
  auto evaluator = bench.MakeEvaluator();
  MoGbmOracle oracle(evaluator.get());
  return RunAlgo(algo, universe, &oracle, config);
}

void PrintRow(const std::string& label, const std::vector<double>& seconds) {
  std::printf("%s", PadRight(label, 9).c_str());
  for (double s : seconds) {
    std::printf(" %s", PadRight(FormatDouble(s, 3), 11).c_str());
  }
  std::printf("\n");
}

void PrintHeader(const char* axis) {
  std::printf("%s", PadRight(axis, 9).c_str());
  for (Algo a : kAlgos) std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
  std::printf("\n");
}

/// Runs all four variants for one swept config value and reports them both
/// as a human table row and as JSON records.
Status SweepPoint(const PanelContext& ctx, const TabularBench& bench,
                  const SearchUniverse& universe, ModisConfig config,
                  const std::string& panel, const std::string& param,
                  double param_value, const std::string& row_label) {
  ApplyBenchOptions(*ctx.opts, &config);
  std::vector<double> row;
  for (Algo a : kAlgos) {
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunOne(bench, universe, a, config));
    row.push_back(result.seconds);
    ctx.records->push_back(MakeRunRecord(
        "fig10", panel, "T1", AlgoName(a), param, param_value, result,
        ResolvedThreads(*ctx.opts)));
  }
  if (!ctx.opts->json) PrintRow(row_label, row);
  return Status::OK();
}

Status PanelA(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kMovie, 0.3));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  if (!ctx.opts->json) {
    std::printf("\n== Figure 10(a) / T1: discovery seconds vs epsilon "
                "(maxl=4) ==\n");
    PrintHeader("epsilon");
  }
  for (double eps : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 140;
    config.max_level = 4;
    MODIS_RETURN_IF_ERROR(SweepPoint(ctx, bench, universe, config, "a",
                                     "epsilon", eps, FormatDouble(eps, 1)));
  }
  return Status::OK();
}

Status PanelB(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kMovie, 0.3));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  if (!ctx.opts->json) {
    std::printf("\n== Figure 10(b) / T1: discovery seconds vs maxl "
                "(epsilon=0.2) ==\n");
    PrintHeader("maxl");
  }
  for (int maxl = 2; maxl <= 6; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 140;
    config.max_level = maxl;
    MODIS_RETURN_IF_ERROR(SweepPoint(ctx, bench, universe, config, "b",
                                     "maxl", maxl, std::to_string(maxl)));
  }
  return Status::OK();
}

Status PanelC(const PanelContext& ctx) {
  if (!ctx.opts->json) {
    std::printf("\n== Figure 10(c) / T1: discovery seconds vs #attributes "
                "(extra noisy tables) ==\n");
    PrintHeader("|A|");
  }
  for (int extra : {0, 2, 4, 6}) {
    MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                           MakeTabularBench(BenchTaskId::kMovie, 0.25, extra));
    MODIS_ASSIGN_OR_RETURN(
        SearchUniverse universe,
        SearchUniverse::Build(bench.universal, bench.universe_options));
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 120;
    config.max_level = 3;
    const double attrs = static_cast<double>(bench.universal.num_cols());
    MODIS_RETURN_IF_ERROR(
        SweepPoint(ctx, bench, universe, config, "c", "num_attributes",
                   attrs, std::to_string(bench.universal.num_cols())));
  }
  return Status::OK();
}

Status PanelD(const PanelContext& ctx) {
  if (!ctx.opts->json) {
    std::printf("\n== Figure 10(d) / T1: discovery seconds vs |adom| "
                "(cluster budget per attribute) ==\n");
    PrintHeader("|adom|");
  }
  for (int clusters : {3, 5, 8, 12}) {
    MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                           MakeTabularBench(BenchTaskId::kMovie, 0.25));
    SearchUniverse::Options opts = bench.universe_options;
    opts.max_clusters = clusters;
    MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                           SearchUniverse::Build(bench.universal, opts));
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 120;
    config.max_level = 3;
    MODIS_RETURN_IF_ERROR(SweepPoint(ctx, bench, universe, config, "d",
                                     "max_clusters", clusters,
                                     std::to_string(clusters)));
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::RunRecord> records;
  modis::bench::PanelContext ctx{&opts, &records};
  if (!opts.json) {
    std::printf("Reproduction of Figure 10 (EDBT'25 MODis): efficiency & "
                "scalability\n");
  }
  for (auto* panel : {modis::bench::PanelA, modis::bench::PanelB,
                      modis::bench::PanelC, modis::bench::PanelD}) {
    modis::Status s = panel(ctx);
    if (!s.ok()) std::fprintf(stderr, "panel failed: %s\n",
                              s.ToString().c_str());
  }
  if (opts.json) modis::bench::PrintJsonRecords(records);
  return 0;
}
