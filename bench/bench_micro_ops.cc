/// Supporting micro-benchmarks (google-benchmark): throughput of the
/// primitive operators and multi-objective utilities the search is built
/// from — hash joins, Reduct, state materialization (full-scan and
/// incremental), Pareto fronts (naive vs Kung), ε-grid updates, ParallelFor
/// dispatch, and 1-D k-means.
///
/// `--json` is translated to google-benchmark's
/// `--benchmark_format=json`, so this binary shares the repo-wide
/// machine-readable output flag.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/kmeans.h"
#include "common/thread_pool.h"
#include "core/universe.h"
#include "datagen/tasks.h"
#include "moo/pareto.h"
#include "ops/operators.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_store.h"

namespace modis {
namespace {

Table MakeWideTable(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  MODIS_CHECK_OK(schema.AddField({"id", ColumnType::kNumeric}));
  for (size_t c = 1; c < cols; ++c) {
    MODIS_CHECK_OK(
        schema.AddField({"c" + std::to_string(c), ColumnType::kNumeric}));
  }
  Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row(cols);
    row[0] = Value(static_cast<int64_t>(r));
    for (size_t c = 1; c < cols; ++c) row[c] = Value(rng.Normal());
    MODIS_CHECK_OK(t.AppendRow(std::move(row)));
  }
  return t;
}

void BM_HashJoinInner(benchmark::State& state) {
  const size_t n = state.range(0);
  Table left = MakeWideTable(n, 4, 1);
  Table right = MakeWideTable(n, 2, 2);
  // Rename right column to avoid collision.
  Table right2(Schema({{"id", ColumnType::kNumeric},
                       {"r1", ColumnType::kNumeric}}));
  for (size_t r = 0; r < right.num_rows(); ++r) {
    MODIS_CHECK_OK(right2.AppendRow({right.At(r, 0), right.At(r, 1)}));
  }
  for (auto _ : state) {
    auto j = HashJoin(left, right2, "id", JoinType::kInner);
    benchmark::DoNotOptimize(j);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoinInner)->Arg(1000)->Arg(10000);

void BM_Reduct(benchmark::State& state) {
  Table t = MakeWideTable(state.range(0), 6, 3);
  Literal l = Literal::Range("c1", 0.0, 10.0);
  for (auto _ : state) {
    auto r = Reduct(t, l);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Reduct)->Arg(1000)->Arg(10000);

void BM_Materialize(benchmark::State& state) {
  auto bench = MakeTabularBench(BenchTaskId::kMovie, 0.5);
  MODIS_CHECK(bench.ok());
  auto uni = SearchUniverse::Build(bench->universal, bench->universe_options);
  MODIS_CHECK(uni.ok());
  StateBitmap s = uni->FullBitmap();
  // Flip a handful of bits to exercise the row filter.
  const size_t base = uni->layout().num_attributes();
  for (size_t i = 0; i < 4 && base + i < s.size(); ++i) {
    s = s.WithFlipped(base + i);
  }
  for (auto _ : state) {
    Table t = uni->Materialize(s);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_Materialize);

void BM_MaterializeFromClusterFlip(benchmark::State& state) {
  // Incremental materialization along a one-flip cluster edge — the hot
  // child-from-parent path of the batched valuation pipeline; compare
  // against BM_Materialize's full D_U scan.
  auto bench = MakeTabularBench(BenchTaskId::kMovie, 0.5);
  MODIS_CHECK(bench.ok());
  auto uni = SearchUniverse::Build(bench->universal, bench->universe_options);
  MODIS_CHECK(uni.ok());
  StateBitmap parent_state = uni->FullBitmap();
  const size_t base = uni->layout().num_attributes();
  MODIS_CHECK(base + 4 <= parent_state.size())
      << "bench task derived too few cluster units";
  for (size_t i = 0; i < 3; ++i) {
    parent_state = parent_state.WithFlipped(base + i);
  }
  const MaterializationPtr parent = uni->MaterializeRecord(parent_state);
  const StateBitmap child = parent_state.WithFlipped(base + 3);
  for (auto _ : state) {
    MaterializationPtr m = uni->MaterializeFrom(*parent, child);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MaterializeFromClusterFlip);

void BM_CountRowsMaskVsScan(benchmark::State& state) {
  // Surviving-row counting three ways: the seed's per-row scan over
  // cluster_of_, a fresh bitset-mask build + popcount, and the popcount
  // of an already-cached materialization's mask (the engine's UPareto
  // fast path). arg 0/1/2 = scan / mask / cached.
  auto bench = MakeTabularBench(BenchTaskId::kMovie, 0.5);
  MODIS_CHECK(bench.ok());
  auto uni = SearchUniverse::Build(bench->universal, bench->universe_options);
  MODIS_CHECK(uni.ok());
  StateBitmap s = uni->FullBitmap();
  const size_t base = uni->layout().num_attributes();
  for (size_t i = 0; i < 4 && base + i < s.size(); ++i) {
    s = s.WithFlipped(base + i);
  }
  const int mode = state.range(0);
  const MaterializationPtr cached = uni->MaterializeRecord(s);
  for (auto _ : state) {
    size_t rows = 0;
    switch (mode) {
      case 0:
        rows = uni->CountRowsScan(s);
        break;
      case 1:
        rows = uni->CountRows(s);
        break;
      default:
        rows = cached->mask.Count();
        break;
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * uni->universal().num_rows());
  state.SetLabel(mode == 0 ? "scan" : mode == 1 ? "mask" : "cached");
}
BENCHMARK(BM_CountRowsMaskVsScan)->Arg(0)->Arg(1)->Arg(2);

void BM_MaskTightenFlip(benchmark::State& state) {
  // DeriveMask along a one-flip tighten (cluster bit 1 -> 0) edge: one
  // ANDNOT over the packed words, no row rescan — the mask half of
  // BM_MaterializeFromClusterFlip without the column rebuild.
  auto bench = MakeTabularBench(BenchTaskId::kMovie, 0.5);
  MODIS_CHECK(bench.ok());
  auto uni = SearchUniverse::Build(bench->universal, bench->universe_options);
  MODIS_CHECK(uni.ok());
  StateBitmap parent_state = uni->FullBitmap();
  const size_t base = uni->layout().num_attributes();
  MODIS_CHECK(base + 4 <= parent_state.size())
      << "bench task derived too few cluster units";
  for (size_t i = 0; i < 3; ++i) {
    parent_state = parent_state.WithFlipped(base + i);
  }
  const MaterializationPtr parent = uni->MaterializeRecord(parent_state);
  const StateBitmap child = parent_state.WithFlipped(base + 3);
  for (auto _ : state) {
    RowMask mask = uni->DeriveMask(*parent, child);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * uni->universal().num_rows());
}
BENCHMARK(BM_MaskTightenFlip);

void BM_ParallelForDispatch(benchmark::State& state) {
  // Scheduling overhead of ParallelFor over trivial work, per index.
  const size_t workers = state.range(0);
  ThreadPool pool(workers);
  std::vector<double> out(256, 0.0);
  for (auto _ : state) {
    Status s = ParallelFor(&pool, 0, out.size(),
                           [&](size_t i) { out[i] = static_cast<double>(i); });
    MODIS_CHECK(s.ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out.size());
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

void BM_ParetoFront(benchmark::State& state) {
  Rng rng(4);
  std::vector<PerfVector> pts;
  for (int i = 0; i < state.range(0); ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  const bool kung = state.range(1) == 1;
  for (auto _ : state) {
    auto f = kung ? ParetoFrontKung(pts) : ParetoFrontNaive(pts);
    benchmark::DoNotOptimize(f);
  }
  state.SetLabel(kung ? "kung" : "naive");
}
BENCHMARK(BM_ParetoFront)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({2000, 0})
    ->Args({2000, 1});

void BM_GridPosition(benchmark::State& state) {
  Rng rng(5);
  PerfVector p{rng.Uniform(0.01, 1), rng.Uniform(0.01, 1),
               rng.Uniform(0.01, 1), rng.Uniform(0.01, 1)};
  std::vector<double> lb(4, 0.01);
  for (auto _ : state) {
    auto pos = GridPosition(p, lb, 0.1);
    benchmark::DoNotOptimize(pos);
  }
}
BENCHMARK(BM_GridPosition);

StoredRecord MakeRecord(uint64_t fingerprint, size_t i) {
  StoredRecord r;
  r.fingerprint = fingerprint;
  r.key = "state-" + std::to_string(i);
  r.features = {double(i), double(i) * 0.5, double(i % 7)};
  r.eval.raw = {0.5, double(i % 100) / 100.0};
  r.eval.normalized = {0.5, double(i % 100) / 100.0};
  return r;
}

std::string ScratchPath(const char* name) {
  return std::string("bench_") + name + ".pagecache.tmp";
}

void BM_PagedStoreInsertFlush(benchmark::State& state) {
  // Append throughput of the paged engine: N inserts + one durable
  // Flush (dirty write-back + superblock commit) per iteration.
  const size_t n = state.range(0);
  const std::string path = ScratchPath("insert");
  for (auto _ : state) {
    state.PauseTiming();
    std::remove(path.c_str());
    auto store = PagedStore::Open(path, /*read_only=*/false, {});
    MODIS_CHECK(store.ok());
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize((*store)->Insert(MakeRecord(7, i)));
    }
    MODIS_CHECK((*store)->Flush().ok());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PagedStoreInsertFlush)->Arg(256)->Arg(2048);

void BM_PagedStorePointLookup(benchmark::State& state) {
  // O(1)-page point lookups through a buffer pool much smaller than the
  // file — the paged engine's reason to exist. Compare the small-budget
  // runs against the roomy one to see the eviction cost.
  const size_t records = 4096;
  const size_t frames = state.range(0);
  const std::string path = ScratchPath("lookup");
  std::remove(path.c_str());
  {
    auto build = PagedStore::Open(path, /*read_only=*/false, {});
    MODIS_CHECK(build.ok());
    for (size_t i = 0; i < records; ++i) {
      (*build)->Insert(MakeRecord(7, i));
    }
    MODIS_CHECK((*build)->Flush().ok());
  }
  PagedStore::Options options;
  options.buffer_frames = frames;
  auto store = PagedStore::Open(path, /*read_only=*/true, options);
  MODIS_CHECK(store.ok());
  StoredRecord out;
  size_t i = 0;
  for (auto _ : state) {
    const std::string key = "state-" + std::to_string((i * 2654435761u) %
                                                      records);
    MODIS_CHECK((*store)->Get(7, key, &out));
    benchmark::DoNotOptimize(out);
    ++i;
  }
  store.value().reset();
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(frames) + " frames");
}
BENCHMARK(BM_PagedStorePointLookup)->Arg(4)->Arg(64);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  // Cost of a pin/unpin round trip on a resident page — the floor every
  // paged read pays.
  const std::string path = ScratchPath("pool");
  std::remove(path.c_str());
  auto file = PageFile::Open(path, /*read_only=*/false, {});
  MODIS_CHECK(file.ok());
  BufferPool pool(file->get(), /*frame_budget=*/8);
  const uint32_t id = (*file)->AllocatePage();
  {
    auto page = pool.Create(id);
    MODIS_CHECK(page.ok());
  }
  for (auto _ : state) {
    auto page = pool.Fetch(id);
    MODIS_CHECK(page.ok());
    benchmark::DoNotOptimize(page->data());
  }
  file->reset();
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_KMeans1D(benchmark::State& state) {
  Rng data_rng(6);
  std::vector<double> data(state.range(0));
  for (double& v : data) v = data_rng.Normal();
  for (auto _ : state) {
    Rng rng(7);
    auto r = KMeans1D(data, 30, &rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans1D)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace modis

int main(int argc, char** argv) {
  // Repo-wide flag spelling: --json selects machine-readable output.
  static char json_flag[] = "--benchmark_format=json";
  std::vector<char*> args(argv, argv + argc);
  for (char*& arg : args) {
    if (std::strcmp(arg, "--json") == 0) arg = json_flag;
  }
  int json_argc = static_cast<int>(args.size());
  benchmark::Initialize(&json_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(json_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
