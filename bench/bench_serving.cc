/// bench_serving — QPS and latency of the long-lived discovery service
/// versus cold process-per-query execution.
///
/// Protocol (see docs/SERVING.md and bench/baselines/README.md):
///   1. `cold_process`: each query pays the full batch-program cost —
///      lake generation, universe construction, and every exact training
///      (DiscoveryService::AnswerDetached, no cache) — the life of a
///      MODis user before the serving subsystem.
///   2. `warm_service`: a DiscoveryService with a shared pool and one
///      shared record-cache file answers the same query mix after one
///      warm-up pass; repeated queries replay recorded trainings (the
///      bench asserts 0 exact trainings during the measured phase).
///   3. The warm phase repeats with 1, 2, and 4 concurrent clients
///      sharing the one locked cache file.
///   4. `warm_pool`: the same warm mix through a multi-process worker
///      pool (`--workers N`, default 2; 0 skips the phase) — worker
///      processes draining the shared-memory job ring on the shared
///      warm cache, the crash-isolated host of docs/MULTIPROCESS.md.
///      Quantifies what process isolation costs versus `warm_service`
///      (ring hop + cross-process cache snapshot vs a function call).
///   5. `qos_overload`: an open-loop flood at ~2x the measured capacity
///      against a QoS-enabled service (gold priority 10, bronze priority
///      0, small admission queue). Gates: every shed is 429-class, some
///      bronze work is shed, and gold's contended p99 stays within 3x
///      its uncontended p99 (docs/SERVING.md §7).
///
/// Usage: bench_serving [--json] [--queries N] [--task T1] [--scale S]
///                      [--threads N] [--workers N] [--connect ENDPOINT]
///
/// --connect switches to remote mode: instead of an in-process service,
/// the query mix goes through a running modis_server at ENDPOINT (unix
/// socket path, "unix:PATH", "HOST:PORT", or "tcp:HOST:PORT") — each
/// client thread on its own connection. The cold phase is skipped (the
/// server's cache configuration is in charge); the warm phases and the
/// zero-trainings assertion are identical, which is how the unix-vs-TCP
/// p50 comparison of docs/SERVING.md is measured.
///
/// --json emits one serving-metrics record per (mode, clients) pair:
///   {"bench":"serving","mode":..,"clients":..,"queries":..,"qps":..,
///    "p50_ms":..,"p99_ms":..,"exact_evals":..,"persistent_hits":..,
///    "speedup_p50_vs_cold":..[,"transport":..]
///    [,"tenant":..,"offered":..,"shed":..]}

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/discovery_service.h"
#include "service/http.h"
#include "service/qos.h"
#include "service/transport.h"
#include "service/wire.h"
#include "service/worker.h"

using namespace modis;

namespace {

struct Args {
  bool json = false;
  size_t queries = 12;   // Measured queries per phase.
  std::string task = "T1";
  double scale = 0.4;
  size_t threads = 0;
  size_t workers = 2;    // warm_pool worker processes; 0 skips the phase.
  std::string connect;   // Remote mode endpoint; empty = in-process.
};

/// Absolute path of this binary, for re-exec'ing pool worker children.
std::string g_self_exe;

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      args.json = true;
    } else if (arg == "--queries") {
      args.queries = std::stoul(value());
    } else if (arg == "--task") {
      args.task = value();
    } else if (arg == "--scale") {
      args.scale = std::stod(value());
    } else if (arg == "--threads") {
      args.threads = std::stoul(value());
    } else if (arg == "--workers") {
      args.workers = std::stoul(value());
    } else if (arg == "--connect") {
      args.connect = value();
    } else {
      std::fprintf(stderr,
                   "unknown argument %s (supported: --json, --queries N, "
                   "--task T, --scale S, --threads N, --workers N, "
                   "--connect E)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// The query mix: distinct (variant, epsilon) combinations so the warm
/// cache holds more than one fingerprint-scoped working set. Wall-clock
/// measures are excluded so repeated answers are bit-reproducible.
std::vector<DiscoveryRequest> QueryMix(const std::string& task) {
  std::vector<DiscoveryRequest> mix;
  for (const char* variant : {"bi", "apx", "div"}) {
    for (double epsilon : {0.25, 0.35}) {
      DiscoveryRequest request;
      request.task = task;
      request.variant = variant;
      request.epsilon = epsilon;
      request.budget = 60;
      request.maxl = 3;
      request.measures = {"acc", "fisher", "mi"};
      mix.push_back(std::move(request));
    }
  }
  return mix;
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = p * double(sorted_ms.size() - 1);
  const size_t lo = size_t(rank);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - double(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

struct PhaseResult {
  std::string mode;
  std::string transport;  // Endpoint string in remote mode; else empty.
  std::string tenant;     // QoS overload phases only; else empty.
  size_t clients = 1;
  size_t queries = 0;
  size_t offered = 0;     // Open-loop phases: submissions attempted.
  size_t shed = 0;        // Open-loop phases: 429-class rejections.
  double wall_seconds = 0.0;
  std::vector<double> latencies_ms;
  size_t exact_evals = 0;
  size_t persistent_hits = 0;
  size_t fused_hits = 0;

  double Qps() const {
    return wall_seconds <= 0.0 ? 0.0 : double(queries) / wall_seconds;
  }
};

void PrintHuman(const PhaseResult& r, double cold_p50) {
  const double p50 = Percentile(r.latencies_ms, 0.50);
  const double p99 = Percentile(r.latencies_ms, 0.99);
  if (!r.tenant.empty()) {
    std::printf("%-14s tenant=%-6s offered=%3zu  served=%3zu  shed=%3zu  "
                "p50=%9.1f ms  p99=%9.1f ms\n",
                r.mode.c_str(), r.tenant.c_str(), r.offered, r.queries,
                r.shed, p50, p99);
    return;
  }
  std::printf("%-14s clients=%zu  queries=%3zu  qps=%7.2f  p50=%9.1f ms  "
              "p99=%9.1f ms  exact=%4zu  replayed=%4zu  fused=%4zu",
              r.mode.c_str(), r.clients, r.queries, r.Qps(), p50, p99,
              r.exact_evals, r.persistent_hits, r.fused_hits);
  if (cold_p50 > 0.0 && r.mode != "cold_process") {
    std::printf("  speedup_p50=%.1fx", cold_p50 / std::max(p50, 1e-9));
  }
  std::printf("\n");
}

void PrintJson(const std::vector<PhaseResult>& phases, double cold_p50) {
  std::printf("[\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& r = phases[i];
    const double p50 = Percentile(r.latencies_ms, 0.50);
    const double p99 = Percentile(r.latencies_ms, 0.99);
    const double speedup =
        r.mode == "cold_process" || cold_p50 <= 0.0
            ? 1.0
            : cold_p50 / std::max(p50, 1e-9);
    std::string extra;
    if (!r.transport.empty()) {
      extra += ", \"transport\": \"" + r.transport + "\"";
    }
    if (!r.tenant.empty()) {
      extra += ", \"tenant\": \"" + r.tenant + "\", \"offered\": " +
               std::to_string(r.offered) + ", \"shed\": " +
               std::to_string(r.shed);
    }
    std::printf(
        "  {\"bench\": \"serving\", \"mode\": \"%s\", \"clients\": %zu, "
        "\"queries\": %zu, \"qps\": %.3f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"exact_evals\": %zu, "
        "\"persistent_hits\": %zu, \"fused_hits\": %zu, "
        "\"speedup_p50_vs_cold\": %.3f%s}%s\n",
        r.mode.c_str(), r.clients, r.queries, r.Qps(), p50, p99,
        r.exact_evals, r.persistent_hits, r.fused_hits, speedup,
        extra.c_str(), i + 1 < phases.size() ? "," : "");
  }
  std::printf("]\n");
}

// ------------------------------------------------- warm_pool helpers

/// Entry point of a spawned pool worker (`--worker-role`): a
/// shared-cache DiscoveryService draining the coordinator's ring, same
/// shape as a `modis_server --worker-attach` child.
int RunWorkerRole(const std::string& ring, uint32_t index,
                  const std::string& cache, double scale, size_t threads) {
  DiscoveryService::Options options;
  options.sessions = 1;
  options.valuation_threads = threads;
  options.task_row_scale = scale;
  options.default_cache_path = cache;
  options.shared_cache = true;
  options.request_id_prefix = "q-w" + std::to_string(index) + "-";
  DiscoveryService service(options);
  WorkerOptions worker_options;
  worker_options.ring_path = ring;
  worker_options.worker_index = index;
  worker_options.poll_ms = 50;
  return RunWorkerLoop(&service, worker_options).ok() ? 0 : 1;
}

pid_t SpawnBenchWorker(const Args& args, const std::string& cache_path,
                       const std::string& ring_path, uint32_t worker) {
  std::vector<std::string> storage = {
      g_self_exe,
      "--worker-role",
      "--ring", ring_path,
      "--index", std::to_string(worker),
      "--cache", cache_path,
      "--scale", std::to_string(args.scale),
      "--threads", std::to_string(args.threads),
  };
  std::vector<char*> argv;
  argv.reserve(storage.size() + 1);
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(g_self_exe.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

/// Remote mode: the same warm phases, but every query travels through a
/// running modis_server — one ClientChannel per client thread. Returns
/// the process exit code.
int RunRemote(const Args& args) {
  auto endpoint = ParseEndpoint(args.connect);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "bench_serving: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  const std::vector<DiscoveryRequest> mix = QueryMix(args.task);

  // Warm-up pass: each unique query once, so the server's cache holds
  // every training the measured phases replay.
  {
    auto channel = ClientChannel::Connect(*endpoint);
    if (!channel.ok()) {
      std::fprintf(stderr, "bench_serving: %s\n",
                   channel.status().ToString().c_str());
      return 1;
    }
    for (const DiscoveryRequest& request : mix) {
      auto reply =
          channel->RoundTrip(SerializeDiscoveryRequest(request));
      if (!reply.ok()) {
        std::fprintf(stderr, "bench_serving: warm-up failed: %s\n",
                     reply.status().ToString().c_str());
        return 1;
      }
      auto response = ParseDiscoveryResponse(reply.value());
      if (!response.ok()) {
        std::fprintf(stderr, "bench_serving: warm-up query failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
    }
  }

  std::vector<PhaseResult> phases;
  for (size_t clients : {size_t{1}, size_t{2}, size_t{4}}) {
    PhaseResult warm;
    warm.mode = "warm_remote";
    warm.transport = endpoint->ToString();
    warm.clients = clients;
    warm.queries = args.queries;
    std::mutex mu;
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    WallTimer wall;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        auto channel = ClientChannel::Connect(*endpoint);
        if (!channel.ok()) return;
        for (;;) {
          const size_t q = next.fetch_add(1);
          if (q >= warm.queries) return;
          WallTimer latency;
          auto reply = channel->RoundTrip(
              SerializeDiscoveryRequest(mix[q % mix.size()]));
          const double ms = latency.Millis();
          if (!reply.ok()) continue;
          auto response = ParseDiscoveryResponse(reply.value());
          if (!response.ok()) continue;
          std::lock_guard<std::mutex> lock(mu);
          warm.latencies_ms.push_back(ms);
          warm.exact_evals += response->exact_evals;
          warm.persistent_hits += response->persistent_hits;
          warm.fused_hits += response->fused_hits;
        }
      });
    }
    for (std::thread& w : workers) w.join();
    warm.wall_seconds = wall.Seconds();
    if (warm.latencies_ms.size() != warm.queries) {
      std::fprintf(stderr, "remote phase dropped queries (%zu of %zu)\n",
                   warm.latencies_ms.size(), warm.queries);
      return 1;
    }
    phases.push_back(std::move(warm));
  }

  for (const PhaseResult& warm : phases) {
    if (warm.exact_evals != 0) {
      std::fprintf(stderr,
                   "FAIL: warm remote phase (clients=%zu) performed %zu "
                   "exact trainings\n",
                   warm.clients, warm.exact_evals);
      return 1;
    }
  }

  if (args.json) {
    PrintJson(phases, /*cold_p50=*/0.0);
  } else {
    std::printf("== bench_serving: remote %s, task %s, %zu-query mix ==\n",
                endpoint->ToString().c_str(), args.task.c_str(),
                mix.size());
    for (const PhaseResult& r : phases) PrintHuman(r, 0.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pool worker children re-exec this binary with --worker-role; peel
  // that mode off before normal argument parsing.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-role") == 0) {
      std::string ring, cache;
      uint32_t index = 0;
      double scale = 0.4;
      size_t threads = 0;
      for (int j = 1; j + 1 < argc; ++j) {
        const std::string flag = argv[j];
        if (flag == "--ring") ring = argv[j + 1];
        if (flag == "--index") index = std::stoul(argv[j + 1]);
        if (flag == "--cache") cache = argv[j + 1];
        if (flag == "--scale") scale = std::stod(argv[j + 1]);
        if (flag == "--threads") threads = std::stoul(argv[j + 1]);
      }
      return RunWorkerRole(ring, index, cache, scale, threads);
    }
  }
  g_self_exe = argv[0];
  const Args args = ParseArgs(argc, argv);
  if (!args.connect.empty()) return RunRemote(args);
  const std::vector<DiscoveryRequest> mix = QueryMix(args.task);
  namespace fs = std::filesystem;
  const std::string cache_path =
      (fs::temp_directory_path() / "bench_serving.rlog").string();
  fs::remove(cache_path);
  fs::remove(cache_path + ".compact");

  std::vector<PhaseResult> phases;

  // ---- Phase 1: cold process-per-query. Every query pays startup +
  // lake + universe + all trainings. A few samples suffice — the
  // latencies barely vary.
  size_t unique_trainings = 0;  // Exact trainings of one mix[0] run.
  {
    PhaseResult cold;
    cold.mode = "cold_process";
    cold.queries = std::min<size_t>(3, mix.size());
    WallTimer wall;
    for (size_t q = 0; q < cold.queries; ++q) {
      WallTimer latency;
      auto response =
          DiscoveryService::AnswerDetached(mix[q % mix.size()], args.scale);
      if (!response.ok()) {
        std::fprintf(stderr, "cold query failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      cold.latencies_ms.push_back(latency.Millis());
      cold.exact_evals += response->exact_evals;
      cold.persistent_hits += response->persistent_hits;
      if (q == 0) unique_trainings = response->exact_evals;
    }
    cold.wall_seconds = wall.Seconds();
    phases.push_back(std::move(cold));
  }
  const double cold_p50 = Percentile(phases[0].latencies_ms, 0.50);

  // ---- Phase 1b: cold-concurrent fusion. Two clients race the same
  // cold query on a cache-less service: the cross-query training fuser
  // must collapse the duplicate work to exactly one training per unique
  // state (trainings_shared > 0, total exact == the unique-state count
  // one detached run pays).
  {
    PhaseResult fusion;
    fusion.mode = "cold_concurrent";
    fusion.clients = 2;
    fusion.queries = 2;
    DiscoveryService::Options fusion_options;
    fusion_options.sessions = 2;
    fusion_options.valuation_threads = args.threads;
    fusion_options.task_row_scale = args.scale;
    DiscoveryService fusion_service(fusion_options);
    if (Status preloaded = fusion_service.Preload(args.task);
        !preloaded.ok()) {
      std::fprintf(stderr, "preload failed: %s\n",
                   preloaded.ToString().c_str());
      return 1;
    }
    std::mutex mu;
    std::vector<std::thread> workers;
    WallTimer wall;
    for (size_t c = 0; c < fusion.clients; ++c) {
      workers.emplace_back([&] {
        WallTimer latency;
        auto response = fusion_service.Answer(mix[0]);
        const double ms = latency.Millis();
        std::lock_guard<std::mutex> lock(mu);
        if (response.ok()) {
          fusion.latencies_ms.push_back(ms);
          fusion.exact_evals += response->exact_evals;
          fusion.persistent_hits += response->persistent_hits;
          fusion.fused_hits += response->fused_hits;
        }
      });
    }
    for (std::thread& w : workers) w.join();
    fusion.wall_seconds = wall.Seconds();
    if (fusion.latencies_ms.size() != fusion.queries) {
      std::fprintf(stderr, "fusion phase dropped queries (%zu of %zu)\n",
                   fusion.latencies_ms.size(), fusion.queries);
      return 1;
    }
    const MetricsSnapshot snapshot = fusion_service.SnapshotMetrics();
    if (snapshot.trainings_shared == 0 ||
        fusion.exact_evals != unique_trainings) {
      std::fprintf(stderr,
                   "FAIL: cold-concurrent fusion trained %zu states "
                   "(expected %zu unique) and shared %llu\n",
                   fusion.exact_evals, unique_trainings,
                   (unsigned long long)snapshot.trainings_shared);
      return 1;
    }
    phases.push_back(std::move(fusion));
  }

  // ---- The service under test: shared pool, shared cache file. Scoped
  // so the cache writer lock releases before the QoS overload phase
  // reopens the same file.
  {
  DiscoveryService::Options options;
  options.sessions = 4;
  options.queue_capacity = 64;
  options.valuation_threads = args.threads;
  options.default_cache_path = cache_path;
  options.task_row_scale = args.scale;
  DiscoveryService service(options);
  if (Status preloaded = service.Preload(args.task); !preloaded.ok()) {
    std::fprintf(stderr, "preload failed: %s\n",
                 preloaded.ToString().c_str());
    return 1;
  }

  // Warm-up pass: run each unique query once so the cache holds every
  // training the mix needs.
  for (const DiscoveryRequest& request : mix) {
    auto response = service.Answer(request);
    if (!response.ok()) {
      std::fprintf(stderr, "warm-up query failed: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
  }

  // ---- Phase 2..4: warm service at 1, 2, 4 concurrent clients.
  for (size_t clients : {size_t{1}, size_t{2}, size_t{4}}) {
    PhaseResult warm;
    warm.mode = "warm_service";
    warm.clients = clients;
    warm.queries = args.queries;
    std::mutex mu;
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    WallTimer wall;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        for (;;) {
          const size_t q = next.fetch_add(1);
          if (q >= warm.queries) return;
          WallTimer latency;
          auto response = service.Answer(mix[q % mix.size()]);
          const double ms = latency.Millis();
          std::lock_guard<std::mutex> lock(mu);
          if (response.ok()) {
            warm.latencies_ms.push_back(ms);
            warm.exact_evals += response->exact_evals;
            warm.persistent_hits += response->persistent_hits;
            warm.fused_hits += response->fused_hits;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    warm.wall_seconds = wall.Seconds();
    if (warm.latencies_ms.size() != warm.queries) {
      std::fprintf(stderr, "warm phase dropped queries (%zu of %zu)\n",
                   warm.latencies_ms.size(), warm.queries);
      return 1;
    }
    phases.push_back(std::move(warm));
  }

  // The acceptance gate: a warm service trains nothing and answers ≥5x
  // faster (per-query p50) than cold process-per-query.
  for (size_t i = 1; i < phases.size(); ++i) {
    if (phases[i].mode != "warm_service") continue;
    if (phases[i].exact_evals != 0) {
      std::fprintf(stderr,
                   "FAIL: warm phase (clients=%zu) performed %zu exact "
                   "trainings\n",
                   phases[i].clients, phases[i].exact_evals);
      return 1;
    }
  }
  }  // Warm service drains; the cache writer lock releases.

  // ---- Phase 4b: the same warm mix through the multi-process worker
  // pool of docs/MULTIPROCESS.md — worker processes re-exec'ed from
  // this binary, draining the shared-memory job ring on the (now
  // flushed) warm cache. Against warm_service, the delta is the cost
  // of crash isolation: one ring hop plus the cross-process shared
  // cache instead of an in-process function call.
  if (args.workers > 0) {
    const std::string ring_path = cache_path + ".ring";
    WorkerPool::Options pool_options;
    pool_options.workers = static_cast<uint32_t>(args.workers);
    pool_options.ring_path = ring_path;
    pool_options.ring.slots = 16;
    pool_options.spawn = [&](uint32_t worker) {
      return SpawnBenchWorker(args, cache_path, ring_path, worker);
    };
    std::unique_ptr<WorkerPool> pool;
    if (Status started = WorkerPool::Start(pool_options, &pool);
        !started.ok()) {
      std::fprintf(stderr, "worker pool failed to start: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    auto pool_query = [&](const DiscoveryRequest& request)
        -> Result<DiscoveryResponse> {
      std::string response_line;
      const Status submitted =
          pool->Submit(SerializeDiscoveryRequest(request), &response_line);
      if (!submitted.ok()) return submitted;
      return ParseDiscoveryResponse(response_line);
    };
    // Warm-up: enough passes that every worker has built its task
    // context and replayed the mix once (claims are not targeted, so
    // one pass per worker makes a cold context in the measured phase
    // overwhelmingly unlikely).
    for (size_t pass = 0; pass < args.workers; ++pass) {
      for (const DiscoveryRequest& request : mix) {
        auto response = pool_query(request);
        if (!response.ok()) {
          std::fprintf(stderr, "pool warm-up query failed: %s\n",
                       response.status().ToString().c_str());
          return 1;
        }
      }
    }
    for (size_t clients : {size_t{1}, size_t{2}, size_t{4}}) {
      PhaseResult warm;
      warm.mode = "warm_pool";
      warm.transport = "shm_ring";
      warm.clients = clients;
      warm.queries = args.queries;
      std::mutex mu;
      std::atomic<size_t> next{0};
      std::vector<std::thread> submitters;
      WallTimer wall;
      for (size_t c = 0; c < clients; ++c) {
        submitters.emplace_back([&] {
          for (;;) {
            const size_t q = next.fetch_add(1);
            if (q >= warm.queries) return;
            WallTimer latency;
            auto response = pool_query(mix[q % mix.size()]);
            const double ms = latency.Millis();
            std::lock_guard<std::mutex> lock(mu);
            if (response.ok()) {
              warm.latencies_ms.push_back(ms);
              warm.exact_evals += response->exact_evals;
              warm.persistent_hits += response->persistent_hits;
              warm.fused_hits += response->fused_hits;
            }
          }
        });
      }
      for (std::thread& s : submitters) s.join();
      warm.wall_seconds = wall.Seconds();
      if (warm.latencies_ms.size() != warm.queries) {
        std::fprintf(stderr, "warm_pool phase dropped queries (%zu of %zu)\n",
                     warm.latencies_ms.size(), warm.queries);
        return 1;
      }
      if (warm.exact_evals != 0) {
        std::fprintf(stderr,
                     "FAIL: warm_pool phase (clients=%zu) performed %zu "
                     "exact trainings\n",
                     warm.clients, warm.exact_evals);
        return 1;
      }
      phases.push_back(std::move(warm));
    }
    pool->Stop();
    std::filesystem::remove(ring_path);
  }

  // ---- Phase 5: open-loop overload against a QoS-enabled service on
  // the warm cache. A gold (priority 10) and a bronze (priority 0)
  // tenant share a small admission queue; the offered rate is pegged at
  // ~2x the measured capacity, so the queue must shed. The gates: every
  // rejection is 429-class (ResourceExhausted), shedding lands on
  // bronze, and gold's contended p99 stays within 3x its uncontended
  // p99 (the QoS promise of docs/SERVING.md §7).
  {
    DiscoveryService::Options qos_options;
    qos_options.sessions = 2;
    qos_options.queue_capacity = 8;
    qos_options.valuation_threads = args.threads;
    qos_options.default_cache_path = cache_path;
    qos_options.task_row_scale = args.scale;
    TenantSpec gold;
    gold.name = "gold";
    gold.api_key = "sk_gold";
    gold.priority = 10;
    TenantSpec bronze;
    bronze.name = "bronze";
    bronze.api_key = "sk_bronze";
    bronze.priority = 0;
    qos_options.tenants = {gold, bronze};
    DiscoveryService qos(qos_options);
    if (Status preloaded = qos.Preload(args.task); !preloaded.ok()) {
      std::fprintf(stderr, "preload failed: %s\n",
                   preloaded.ToString().c_str());
      return 1;
    }

    // Uncontended baseline: gold alone, closed loop over the warm mix.
    PhaseResult solo;
    solo.mode = "qos_uncontended";
    solo.tenant = "gold";
    solo.queries = args.queries;
    solo.offered = args.queries;
    {
      WallTimer wall;
      for (size_t q = 0; q < solo.queries; ++q) {
        DiscoveryRequest request = mix[q % mix.size()];
        request.api_key = "sk_gold";
        WallTimer latency;
        auto response = qos.Answer(request);
        if (!response.ok()) {
          std::fprintf(stderr, "uncontended gold query failed: %s\n",
                       response.status().ToString().c_str());
          return 1;
        }
        solo.latencies_ms.push_back(latency.Millis());
        solo.exact_evals += response->exact_evals;
      }
      solo.wall_seconds = wall.Seconds();
    }
    const double solo_p50 = Percentile(solo.latencies_ms, 0.50);
    const double solo_p99 = Percentile(solo.latencies_ms, 0.99);
    phases.push_back(std::move(solo));

    // Open-loop flood: submissions arrive on schedule whether or not
    // earlier ones completed — the regime where a closed-loop bench
    // would silently self-throttle. Bronze carries 3/4 of the offered
    // load, gold 1/4.
    const double capacity_qps =
        double(qos_options.sessions) / std::max(solo_p50 / 1000.0, 1e-4);
    const double offered_qps = 2.0 * capacity_qps;
    struct TenantLoad {
      const char* name = "";
      const char* key = "";
      size_t offered = 0;
      double qps = 0.0;
      size_t done = 0;  // Callbacks fired (completions + shed-in-queue).
      std::vector<double> ok_ms;
      std::vector<Status> rejections;
      size_t failed = 0;  // Non-QoS errors (must stay 0).
    };
    TenantLoad loads[2];
    loads[0].name = "gold";
    loads[0].key = "sk_gold";
    loads[0].offered = args.queries * 2;
    loads[0].qps = offered_qps / 4.0;
    loads[1].name = "bronze";
    loads[1].key = "sk_bronze";
    loads[1].offered = args.queries * 6;
    loads[1].qps = offered_qps * 3.0 / 4.0;
    std::mutex mu;
    std::condition_variable all_done;
    WallTimer wall;
    std::vector<std::thread> submitters;
    for (TenantLoad& load_slot : loads) {
      // The threads outlive the loop iteration: hand them a stable
      // pointer, not the range-for reference.
      TenantLoad* load = &load_slot;
      submitters.emplace_back([&, load] {
        const auto start = std::chrono::steady_clock::now();
        for (size_t q = 0; q < load->offered; ++q) {
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(double(q) /
                                                        load->qps)));
          DiscoveryRequest request = mix[q % mix.size()];
          request.api_key = load->key;
          const auto submitted = std::chrono::steady_clock::now();
          const Status door = qos.Submit(
              std::move(request),
              [load, &mu, &all_done,
               submitted](Result<DiscoveryResponse> response) {
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - submitted)
                        .count();
                std::lock_guard<std::mutex> lock(mu);
                if (response.ok()) {
                  load->ok_ms.push_back(ms);
                } else if (response.status().code() ==
                           StatusCode::kResourceExhausted) {
                  load->rejections.push_back(response.status());
                } else {
                  ++load->failed;
                }
                ++load->done;
                all_done.notify_one();
              });
          if (!door.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            if (door.code() == StatusCode::kResourceExhausted) {
              load->rejections.push_back(door);
            } else {
              ++load->failed;
            }
            ++load->done;
          }
        }
      });
    }
    for (std::thread& s : submitters) s.join();
    {
      std::unique_lock<std::mutex> lock(mu);
      all_done.wait(lock, [&] {
        return loads[0].done == loads[0].offered &&
               loads[1].done == loads[1].offered;
      });
    }
    const double overload_wall = wall.Seconds();

    bool failed = false;
    for (TenantLoad& load : loads) {
      PhaseResult contended;
      contended.mode = "qos_overload";
      contended.tenant = load.name;
      contended.clients = qos_options.sessions;
      contended.offered = load.offered;
      contended.queries = load.ok_ms.size();
      contended.shed = load.rejections.size();
      contended.latencies_ms = load.ok_ms;
      contended.wall_seconds = overload_wall;
      phases.push_back(std::move(contended));
      if (load.failed != 0) {
        std::fprintf(stderr,
                     "FAIL: tenant %s saw %zu non-QoS errors under "
                     "overload\n",
                     load.name, load.failed);
        failed = true;
      }
      for (const Status& rejection : load.rejections) {
        if (HttpStatusForStatus(rejection) != 429) {
          std::fprintf(stderr,
                       "FAIL: tenant %s shed with a non-429 status: %s\n",
                       load.name, rejection.ToString().c_str());
          failed = true;
          break;
        }
      }
    }
    if (loads[1].rejections.empty()) {
      std::fprintf(stderr,
                   "FAIL: no bronze request was shed at 2x capacity "
                   "(offered %.0f qps against ~%.0f qps)\n",
                   offered_qps, capacity_qps);
      failed = true;
    }
    const double gold_p99 = Percentile(loads[0].ok_ms, 0.99);
    // Small floor: at sub-5ms baselines scheduler jitter, not QoS,
    // dominates the ratio.
    const double gold_gate = 3.0 * std::max(solo_p99, 5.0);
    if (loads[0].ok_ms.empty() || gold_p99 > gold_gate) {
      std::fprintf(stderr,
                   "FAIL: gold p99 %.1f ms under 2x overload exceeds 3x "
                   "its uncontended p99 (%.1f ms, gate %.1f ms)\n",
                   gold_p99, solo_p99, gold_gate);
      failed = true;
    }
    if (failed) return 1;
  }

  if (args.json) {
    PrintJson(phases, cold_p50);
  } else {
    std::printf("== bench_serving: task %s, scale %.2f, %zu-query mix ==\n",
                args.task.c_str(), args.scale, mix.size());
    for (const PhaseResult& r : phases) PrintHuman(r, cold_p50);
    std::printf("(cache file: %s)\n", cache_path.c_str());
  }
  return 0;
}
