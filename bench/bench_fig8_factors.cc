/// Reproduces Figure 8 of the paper: impact of the generation settings on
/// effectiveness.
///  (a) T1 accuracy vs ε in {0.5 .. 0.1}, maxl = 6;
///  (b) T1 accuracy vs maxl in {2 .. 6}, ε = 0.1;
///  (c) T2 F1 vs ε in {0.1 .. 0.02};
///  (d) T2 F1 vs maxl in {2 .. 6}.
///
/// Expected shape (paper): smaller ε and larger maxl improve the selected
/// measure for all MODis variants; bidirectional variants benefit the most
/// from larger maxl; ApxMODis is the least sensitive.
///
/// Flags: `--json` emits per-run records (metric = best raw value of the
/// selected measure); `--threads N` / `--record-cache PATH` are forwarded
/// to every run.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

struct PanelContext {
  const BenchOptions* opts;
  std::vector<RunRecord>* records;
};

struct Sweep {
  TabularBench bench;
  SearchUniverse universe;
  size_t measure;
};

Result<Sweep> MakeSweep(BenchTaskId id, double row_scale,
                        const std::string& select) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench, MakeTabularBench(id, row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t measure = MeasureIndex(bench.task.measures, select);
  return Sweep{std::move(bench), std::move(universe), measure};
}

/// Best raw value of the selected measure after one run, plus the run's
/// engine counters (for the --json records).
struct BestOutcome {
  double best = 0.0;
  ModisResult result;
};

Result<BestOutcome> BestRaw(Sweep* sweep, Algo algo,
                            const ModisConfig& config) {
  auto evaluator = sweep->bench.MakeEvaluator();
  MoGbmOracle oracle(evaluator.get());
  MODIS_ASSIGN_OR_RETURN(ModisResult result,
                         RunAlgo(algo, sweep->universe, &oracle, config));
  MODIS_ASSIGN_OR_RETURN(MethodReport report,
                         ReportBestBy(AlgoName(algo), result, sweep->measure,
                                      sweep->universe, evaluator.get()));
  return BestOutcome{report.eval.raw[sweep->measure], std::move(result)};
}

/// One (config value, variant) cell: run, record, return the printable
/// cell text.
std::string Cell(const PanelContext& ctx, Sweep* sweep, Algo algo,
                 const ModisConfig& config, const std::string& panel,
                 const std::string& task, const std::string& select,
                 const std::string& param, double param_value) {
  auto outcome = BestRaw(sweep, algo, config);
  if (!outcome.ok()) return "-";
  RunRecord rec =
      MakeRunRecord("fig8", panel, task, AlgoName(algo), param, param_value,
                    outcome->result, ResolvedThreads(*ctx.opts));
  rec.metric = "best_" + select;
  rec.metric_value = outcome->best;
  ctx.records->push_back(std::move(rec));
  return FormatDouble(outcome->best, 4);
}

Status SweepEpsilon(const PanelContext& ctx, BenchTaskId id,
                    double row_scale, const std::string& select,
                    const std::vector<double>& epsilons, const char* panel) {
  MODIS_ASSIGN_OR_RETURN(Sweep sweep, MakeSweep(id, row_scale, select));
  if (!ctx.opts->json) {
    std::printf("\n== Figure 8(%s) / %s: %s vs epsilon (maxl=4) ==\n",
                panel, BenchTaskName(id), select.c_str());
    std::printf("%s", PadRight("epsilon", 9).c_str());
    for (Algo a : {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv}) {
      std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
    }
    std::printf("\n");
  }
  for (double eps : epsilons) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 140;
    config.max_level = 4;
    ApplyBenchOptions(*ctx.opts, &config);
    std::string row = PadRight(FormatDouble(eps, 2), 9);
    for (Algo a : {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv}) {
      row += " " + PadRight(Cell(ctx, &sweep, a, config, panel,
                                 BenchTaskName(id), select, "epsilon", eps),
                            11);
    }
    if (!ctx.opts->json) std::printf("%s\n", row.c_str());
  }
  return Status::OK();
}

Status SweepMaxl(const PanelContext& ctx, BenchTaskId id, double row_scale,
                 const std::string& select, const char* panel) {
  MODIS_ASSIGN_OR_RETURN(Sweep sweep, MakeSweep(id, row_scale, select));
  if (!ctx.opts->json) {
    std::printf("\n== Figure 8(%s) / %s: %s vs maxl (epsilon=0.1) ==\n",
                panel, BenchTaskName(id), select.c_str());
    std::printf("%s", PadRight("maxl", 9).c_str());
    for (Algo a : {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv}) {
      std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
    }
    std::printf("\n");
  }
  for (int maxl = 2; maxl <= 6; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.1;
    config.max_states = 140;
    config.max_level = maxl;
    ApplyBenchOptions(*ctx.opts, &config);
    std::string row = PadRight(std::to_string(maxl), 9);
    for (Algo a : {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv}) {
      row += " " + PadRight(Cell(ctx, &sweep, a, config, panel,
                                 BenchTaskName(id), select, "maxl",
                                 double(maxl)),
                            11);
    }
    if (!ctx.opts->json) std::printf("%s\n", row.c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  using modis::BenchTaskId;
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::RunRecord> records;
  modis::bench::PanelContext ctx{&opts, &records};
  if (!opts.json) {
    std::printf("Reproduction of Figure 8 (EDBT'25 MODis): impact factors\n");
  }
  modis::Status s = modis::bench::SweepEpsilon(
      ctx, BenchTaskId::kMovie, 0.3, "acc", {0.5, 0.4, 0.3, 0.2, 0.1}, "a");
  if (!s.ok()) std::fprintf(stderr, "8a failed: %s\n", s.ToString().c_str());
  s = modis::bench::SweepMaxl(ctx, BenchTaskId::kMovie, 0.3, "acc", "b");
  if (!s.ok()) std::fprintf(stderr, "8b failed: %s\n", s.ToString().c_str());
  s = modis::bench::SweepEpsilon(ctx, BenchTaskId::kHouse, 0.5, "f1",
                                 {0.1, 0.08, 0.05, 0.02}, "c");
  if (!s.ok()) std::fprintf(stderr, "8c failed: %s\n", s.ToString().c_str());
  s = modis::bench::SweepMaxl(ctx, BenchTaskId::kHouse, 0.5, "f1", "d");
  if (!s.ok()) std::fprintf(stderr, "8d failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonRecords(records);
  return 0;
}
