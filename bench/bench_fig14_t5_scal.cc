/// Reproduces Figure 14 (appendix) of the paper: scalability of the MODis
/// algorithms on the T5 graph task, varying (a) the graph size (users /
/// items — our analogue of the attribute dimension after the paper's
/// feature aggregation) and (b) the active-domain size (edge clusters).
///
/// Expected shape (paper): bidirectional variants handle growth best;
/// ApxMODis slows fastest as the search space widens.
///
/// Flags: `--json` emits one record per run; `--threads N` /
/// `--record-cache PATH` are forwarded to every run. Note the graph
/// universes differ per sweep point, so the record cache only warms
/// repeated invocations of the same point, not the sweep itself.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

constexpr Algo kAlgos[] = {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv};

void PrintHeader(const char* axis) {
  std::printf("%s", PadRight(axis, 11).c_str());
  for (Algo a : kAlgos) std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
  std::printf("\n");
}

Status Run(const BenchOptions& bench_opts, std::vector<RunRecord>* records) {
  if (!bench_opts.json) {
    std::printf(
        "\n== Figure 14(a) / T5: discovery seconds vs graph scale ==\n");
    PrintHeader("#edges");
  }
  for (double scale : {0.4, 0.6, 0.8, 1.0}) {
    MODIS_ASSIGN_OR_RETURN(GraphBench bench, MakeGraphBench(scale));
    SearchUniverse::Options opts;
    opts.protected_attributes = {"user", "item"};
    opts.max_clusters = 4;
    MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                           SearchUniverse::Build(bench.lake.edge_table, opts));
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 40;
    config.max_level = 3;
    ApplyBenchOptions(bench_opts, &config);
    const size_t edges = bench.lake.edge_table.num_rows();
    if (!bench_opts.json) {
      std::printf("%s", PadRight(std::to_string(edges), 11).c_str());
    }
    for (Algo a : kAlgos) {
      auto evaluator = bench.MakeEvaluator();
      ExactOracle oracle(evaluator.get());
      MODIS_ASSIGN_OR_RETURN(ModisResult result,
                             RunAlgo(a, universe, &oracle, config));
      records->push_back(MakeRunRecord("fig14", "a", "T5", AlgoName(a),
                                       "num_edges", double(edges), result,
                                       ResolvedThreads(bench_opts)));
      if (!bench_opts.json) {
        std::printf(" %s",
                    PadRight(FormatDouble(result.seconds, 3), 11).c_str());
      }
    }
    if (!bench_opts.json) std::printf("\n");
  }

  if (!bench_opts.json) {
    std::printf("\n== Figure 14(b) / T5: discovery seconds vs |adom| (edge "
                "clusters) ==\n");
    PrintHeader("|adom|");
  }
  for (int clusters : {3, 5, 8, 13}) {
    MODIS_ASSIGN_OR_RETURN(GraphBench bench, MakeGraphBench(0.8));
    SearchUniverse::Options opts;
    opts.protected_attributes = {"user", "item"};
    opts.max_clusters = clusters;
    MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                           SearchUniverse::Build(bench.lake.edge_table, opts));
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 40;
    config.max_level = 3;
    ApplyBenchOptions(bench_opts, &config);
    if (!bench_opts.json) {
      std::printf("%s", PadRight(std::to_string(clusters), 11).c_str());
    }
    for (Algo a : kAlgos) {
      auto evaluator = bench.MakeEvaluator();
      ExactOracle oracle(evaluator.get());
      MODIS_ASSIGN_OR_RETURN(ModisResult result,
                             RunAlgo(a, universe, &oracle, config));
      records->push_back(MakeRunRecord("fig14", "b", "T5", AlgoName(a),
                                       "max_clusters", double(clusters),
                                       result,
                                       ResolvedThreads(bench_opts)));
      if (!bench_opts.json) {
        std::printf(" %s",
                    PadRight(FormatDouble(result.seconds, 3), 11).c_str());
      }
    }
    if (!bench_opts.json) std::printf("\n");
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::RunRecord> records;
  if (!opts.json) {
    std::printf("Reproduction of Figure 14 (EDBT'25 MODis): T5 scalability\n");
  }
  modis::Status s = modis::bench::Run(opts, &records);
  if (!s.ok()) std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonRecords(records);
  return 0;
}
