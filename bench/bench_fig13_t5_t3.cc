/// Reproduces Figure 13 (appendix) of the paper: efficiency of the MODis
/// algorithms on T5 (graph link regression) and T3 (avocado regression),
/// sweeping ε and maxl.
///
/// Expected shape (paper): bidirectional variants (BiMODis / NOBiMODis /
/// DivMODis) consistently beat ApxMODis in discovery time; BiMODis is the
/// fastest across settings.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

constexpr Algo kAlgos[] = {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv};

void PrintHeader(const char* axis) {
  std::printf("%s", PadRight(axis, 9).c_str());
  for (Algo a : kAlgos) std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
  std::printf("\n");
}

void PrintRow(const std::string& label, const std::vector<double>& seconds) {
  std::printf("%s", PadRight(label, 9).c_str());
  for (double s : seconds) {
    std::printf(" %s", PadRight(FormatDouble(s, 3), 11).c_str());
  }
  std::printf("\n");
}

Status GraphSweeps() {
  MODIS_ASSIGN_OR_RETURN(GraphBench bench, MakeGraphBench(0.8));
  SearchUniverse::Options opts;
  opts.protected_attributes = {"user", "item"};
  opts.max_clusters = 4;
  MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                         SearchUniverse::Build(bench.lake.edge_table, opts));

  auto time_one = [&](Algo algo, const ModisConfig& config) -> Result<double> {
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    return result.seconds;
  };

  std::printf("\n== Figure 13(a) / T5: discovery seconds vs epsilon "
              "(maxl=3) ==\n");
  PrintHeader("epsilon");
  for (double eps : {0.1, 0.2, 0.3, 0.4}) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 50;
    config.max_level = 3;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, time_one(a, config));
      row.push_back(t);
    }
    PrintRow(FormatDouble(eps, 1), row);
  }

  std::printf("\n== Figure 13(b) / T5: discovery seconds vs maxl "
              "(epsilon=0.2) ==\n");
  PrintHeader("maxl");
  for (int maxl = 2; maxl <= 5; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 50;
    config.max_level = maxl;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, time_one(a, config));
      row.push_back(t);
    }
    PrintRow(std::to_string(maxl), row);
  }
  return Status::OK();
}

Status AvocadoSweeps() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kAvocado, 0.3));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));

  auto time_one = [&](Algo algo, const ModisConfig& config) -> Result<double> {
    auto evaluator = bench.MakeEvaluator();
    MoGbmOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    return result.seconds;
  };

  std::printf("\n== Figure 13(c) / T3: discovery seconds vs epsilon "
              "(maxl=4) ==\n");
  PrintHeader("epsilon");
  for (double eps : {0.1, 0.2, 0.3, 0.4}) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 120;
    config.max_level = 4;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, time_one(a, config));
      row.push_back(t);
    }
    PrintRow(FormatDouble(eps, 1), row);
  }

  std::printf("\n== Figure 13(d) / T3: discovery seconds vs maxl "
              "(epsilon=0.1) ==\n");
  PrintHeader("maxl");
  for (int maxl = 2; maxl <= 5; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.1;
    config.max_states = 120;
    config.max_level = maxl;
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t, time_one(a, config));
      row.push_back(t);
    }
    PrintRow(std::to_string(maxl), row);
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main() {
  std::printf("Reproduction of Figure 13 (EDBT'25 MODis): T5 and T3 "
              "efficiency\n");
  modis::Status s = modis::bench::GraphSweeps();
  if (!s.ok()) std::fprintf(stderr, "T5 failed: %s\n", s.ToString().c_str());
  s = modis::bench::AvocadoSweeps();
  if (!s.ok()) std::fprintf(stderr, "T3 failed: %s\n", s.ToString().c_str());
  return 0;
}
