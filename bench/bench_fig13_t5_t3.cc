/// Reproduces Figure 13 (appendix) of the paper: efficiency of the MODis
/// algorithms on T5 (graph link regression) and T3 (avocado regression),
/// sweeping ε and maxl.
///
/// Expected shape (paper): bidirectional variants (BiMODis / NOBiMODis /
/// DivMODis) consistently beat ApxMODis in discovery time; BiMODis is the
/// fastest across settings.
///
/// Flags: `--json` emits one record per run; `--threads N` /
/// `--record-cache PATH` are forwarded to every run.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

constexpr Algo kAlgos[] = {Algo::kApx, Algo::kNoBi, Algo::kBi, Algo::kDiv};

struct PanelContext {
  const BenchOptions* opts;
  std::vector<RunRecord>* records;
};

void PrintHeader(const char* axis) {
  std::printf("%s", PadRight(axis, 9).c_str());
  for (Algo a : kAlgos) std::printf(" %s", PadRight(AlgoName(a), 11).c_str());
  std::printf("\n");
}

void PrintRow(const std::string& label, const std::vector<double>& seconds) {
  std::printf("%s", PadRight(label, 9).c_str());
  for (double s : seconds) {
    std::printf(" %s", PadRight(FormatDouble(s, 3), 11).c_str());
  }
  std::printf("\n");
}

Status GraphSweeps(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(GraphBench bench, MakeGraphBench(0.8));
  SearchUniverse::Options opts;
  opts.protected_attributes = {"user", "item"};
  opts.max_clusters = 4;
  MODIS_ASSIGN_OR_RETURN(SearchUniverse universe,
                         SearchUniverse::Build(bench.lake.edge_table, opts));

  auto time_one = [&](Algo algo, const ModisConfig& config,
                      const std::string& panel, const std::string& param,
                      double param_value) -> Result<double> {
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    ctx.records->push_back(MakeRunRecord("fig13", panel, "T5",
                                         AlgoName(algo), param, param_value,
                                         result,
                                         ResolvedThreads(*ctx.opts)));
    return result.seconds;
  };

  if (!ctx.opts->json) {
    std::printf("\n== Figure 13(a) / T5: discovery seconds vs epsilon "
                "(maxl=3) ==\n");
    PrintHeader("epsilon");
  }
  for (double eps : {0.1, 0.2, 0.3, 0.4}) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 50;
    config.max_level = 3;
    ApplyBenchOptions(*ctx.opts, &config);
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t,
                             time_one(a, config, "a", "epsilon", eps));
      row.push_back(t);
    }
    if (!ctx.opts->json) PrintRow(FormatDouble(eps, 1), row);
  }

  if (!ctx.opts->json) {
    std::printf("\n== Figure 13(b) / T5: discovery seconds vs maxl "
                "(epsilon=0.2) ==\n");
    PrintHeader("maxl");
  }
  for (int maxl = 2; maxl <= 5; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 50;
    config.max_level = maxl;
    ApplyBenchOptions(*ctx.opts, &config);
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(
          double t, time_one(a, config, "b", "maxl", double(maxl)));
      row.push_back(t);
    }
    if (!ctx.opts->json) PrintRow(std::to_string(maxl), row);
  }
  return Status::OK();
}

Status AvocadoSweeps(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kAvocado, 0.3));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));

  auto time_one = [&](Algo algo, const ModisConfig& config,
                      const std::string& panel, const std::string& param,
                      double param_value) -> Result<double> {
    auto evaluator = bench.MakeEvaluator();
    MoGbmOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    ctx.records->push_back(MakeRunRecord("fig13", panel, "T3",
                                         AlgoName(algo), param, param_value,
                                         result,
                                         ResolvedThreads(*ctx.opts)));
    return result.seconds;
  };

  if (!ctx.opts->json) {
    std::printf("\n== Figure 13(c) / T3: discovery seconds vs epsilon "
                "(maxl=4) ==\n");
    PrintHeader("epsilon");
  }
  for (double eps : {0.1, 0.2, 0.3, 0.4}) {
    ModisConfig config;
    config.epsilon = eps;
    config.max_states = 120;
    config.max_level = 4;
    ApplyBenchOptions(*ctx.opts, &config);
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(double t,
                             time_one(a, config, "c", "epsilon", eps));
      row.push_back(t);
    }
    if (!ctx.opts->json) PrintRow(FormatDouble(eps, 1), row);
  }

  if (!ctx.opts->json) {
    std::printf("\n== Figure 13(d) / T3: discovery seconds vs maxl "
                "(epsilon=0.1) ==\n");
    PrintHeader("maxl");
  }
  for (int maxl = 2; maxl <= 5; ++maxl) {
    ModisConfig config;
    config.epsilon = 0.1;
    config.max_states = 120;
    config.max_level = maxl;
    ApplyBenchOptions(*ctx.opts, &config);
    std::vector<double> row;
    for (Algo a : kAlgos) {
      MODIS_ASSIGN_OR_RETURN(
          double t, time_one(a, config, "d", "maxl", double(maxl)));
      row.push_back(t);
    }
    if (!ctx.opts->json) PrintRow(std::to_string(maxl), row);
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::RunRecord> records;
  modis::bench::PanelContext ctx{&opts, &records};
  if (!opts.json) {
    std::printf("Reproduction of Figure 13 (EDBT'25 MODis): T5 and T3 "
                "efficiency\n");
  }
  modis::Status s = modis::bench::GraphSweeps(ctx);
  if (!s.ok()) std::fprintf(stderr, "T5 failed: %s\n", s.ToString().c_str());
  s = modis::bench::AvocadoSweeps(ctx);
  if (!s.ok()) std::fprintf(stderr, "T3 failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonRecords(records);
  return 0;
}
