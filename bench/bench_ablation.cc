/// Ablation studies for the design choices called out in DESIGN.md:
///  (1) reduce-from-universal vs backward-only augmentation — justifying
///      §5.2's "start dense" argument;
///  (2) correlation-based pruning on/off at matched budgets — valuations
///      saved vs skyline quality kept (Lemma 4 safety, Exp-3 speedups);
///  (3) decisive-measure choice — the paper's remark that any measure can
///      be decisive and results carry over.
///
/// Flags: `--json` emits per-run records (metric `best_f1`); `--threads N`
/// / `--record-cache PATH` are forwarded to every run (the three studies
/// share the T2 house universe, so one cache warms across all of them).

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

struct PanelContext {
  const BenchOptions* opts;
  std::vector<RunRecord>* records;
};

/// Folds one ablation run into the JSON records. The metric (best f1)
/// is omitted when the skyline came out empty, so a failed run is
/// distinguishable from a genuine f1 of 0.
void RecordRun(const PanelContext& ctx, const std::string& panel,
               const std::string& variant, const std::string& param,
               double param_value, const ModisResult& result,
               const Result<MethodReport>& report, size_t f1) {
  RunRecord rec = MakeRunRecord("ablation", panel, "T2", variant, param,
                                param_value, result,
                                ResolvedThreads(*ctx.opts));
  if (report.ok()) {
    rec.metric = "best_f1";
    rec.metric_value = report->eval.raw[f1];
  }
  ctx.records->push_back(std::move(rec));
}

Status ReduceVsAugment(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.6));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t f1 = MeasureIndex(bench.task.measures, "f1");

  if (!ctx.opts->json) {
    std::printf(
        "\n== Ablation 1: reduce-from-universal vs bidirectional ==\n");
  }
  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 150;
  config.max_level = 4;
  ApplyBenchOptions(*ctx.opts, &config);
  for (Algo algo : {Algo::kApx, Algo::kNoBi}) {
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    auto report =
        ReportBestBy(AlgoName(algo), result, f1, universe, evaluator.get());
    RecordRun(ctx, "reduce_vs_augment", AlgoName(algo), "", 0.0, result,
              report, f1);
    if (!report.ok() || ctx.opts->json) continue;
    std::printf("%s best f1=%.4f skyline=%zu valuated=%zu time=%.2fs\n",
                PadRight(AlgoName(algo), 11).c_str(), report->eval.raw[f1],
                result.skyline.size(), result.valuated_states,
                result.seconds);
  }
  if (!ctx.opts->json) {
    std::printf("expected: the universal start already reaches strong f1 at "
                "level 1 (dense data), the bidirectional run adds cheaper "
                "small-table candidates.\n");
  }
  return Status::OK();
}

Status PruningOnOff(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.6));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t f1 = MeasureIndex(bench.task.measures, "f1");

  if (!ctx.opts->json) {
    std::printf("\n== Ablation 2: correlation-based pruning on/off ==\n");
  }
  ModisConfig config;
  config.epsilon = 0.25;
  config.max_states = 200;
  config.max_level = 4;
  ApplyBenchOptions(*ctx.opts, &config);
  for (Algo algo : {Algo::kNoBi, Algo::kBi}) {
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    auto report =
        ReportBestBy(AlgoName(algo), result, f1, universe, evaluator.get());
    RecordRun(ctx, "pruning", AlgoName(algo), "", 0.0, result, report, f1);
    if (ctx.opts->json) continue;
    std::printf("%s pruned=%zu valuated=%zu time=%.2fs best f1=%s\n",
                PadRight(AlgoName(algo), 11).c_str(), result.pruned_states,
                result.valuated_states, result.seconds,
                report.ok() ? FormatDouble(report->eval.raw[f1], 4).c_str()
                            : "-");
  }
  if (!ctx.opts->json) {
    std::printf("expected: BiMODis valuates fewer states at comparable best "
                "f1 (Lemma 4: pruned states are epsilon-dominated).\n");
  }
  return Status::OK();
}

Status DecisiveMeasureChoice(const PanelContext& ctx) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.6));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t f1 = MeasureIndex(bench.task.measures, "f1");

  if (!ctx.opts->json) {
    std::printf("\n== Ablation 3: decisive measure choice ==\n");
  }
  for (size_t decisive = 0; decisive < bench.task.measures.size();
       ++decisive) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 120;
    config.max_level = 3;
    config.decisive_measure = decisive;
    ApplyBenchOptions(*ctx.opts, &config);
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunApxModis(universe, &oracle, config));
    auto report =
        ReportBestBy("ApxMODis", result, f1, universe, evaluator.get());
    RecordRun(ctx, "decisive", bench.task.measures[decisive].name,
              "decisive_measure", double(decisive), result, report, f1);
    if (ctx.opts->json) continue;
    std::printf("decisive=%s skyline=%zu best f1=%s\n",
                PadRight(bench.task.measures[decisive].name, 11).c_str(),
                result.skyline.size(),
                report.ok() ? FormatDouble(report->eval.raw[f1], 4).c_str()
                            : "-");
  }
  if (!ctx.opts->json) {
    std::printf("expected: best f1 stays in a narrow band for every "
                "decisive choice (the paper's 'results carry over' "
                "remark).\n");
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::RunRecord> records;
  modis::bench::PanelContext ctx{&opts, &records};
  if (!opts.json) {
    std::printf("Ablation benches (design choices of the MODis "
                "reproduction)\n");
  }
  for (auto* fn : {modis::bench::ReduceVsAugment, modis::bench::PruningOnOff,
                   modis::bench::DecisiveMeasureChoice}) {
    modis::Status s = fn(ctx);
    if (!s.ok()) std::fprintf(stderr, "ablation failed: %s\n",
                              s.ToString().c_str());
  }
  if (opts.json) modis::bench::PrintJsonRecords(records);
  return 0;
}
