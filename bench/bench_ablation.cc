/// Ablation studies for the design choices called out in DESIGN.md:
///  (1) reduce-from-universal vs backward-only augmentation — justifying
///      §5.2's "start dense" argument;
///  (2) correlation-based pruning on/off at matched budgets — valuations
///      saved vs skyline quality kept (Lemma 4 safety, Exp-3 speedups);
///  (3) decisive-measure choice — the paper's remark that any measure can
///      be decisive and results carry over.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

Status ReduceVsAugment() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.6));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t f1 = MeasureIndex(bench.task.measures, "f1");

  std::printf("\n== Ablation 1: reduce-from-universal vs bidirectional ==\n");
  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 150;
  config.max_level = 4;
  for (Algo algo : {Algo::kApx, Algo::kNoBi}) {
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    auto report =
        ReportBestBy(AlgoName(algo), result, f1, universe, evaluator.get());
    if (!report.ok()) continue;
    std::printf("%s best f1=%.4f skyline=%zu valuated=%zu time=%.2fs\n",
                PadRight(AlgoName(algo), 11).c_str(), report->eval.raw[f1],
                result.skyline.size(), result.valuated_states,
                result.seconds);
  }
  std::printf("expected: the universal start already reaches strong f1 at "
              "level 1 (dense data), the bidirectional run adds cheaper "
              "small-table candidates.\n");
  return Status::OK();
}

Status PruningOnOff() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.6));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t f1 = MeasureIndex(bench.task.measures, "f1");

  std::printf("\n== Ablation 2: correlation-based pruning on/off ==\n");
  ModisConfig config;
  config.epsilon = 0.25;
  config.max_states = 200;
  config.max_level = 4;
  for (Algo algo : {Algo::kNoBi, Algo::kBi}) {
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunAlgo(algo, universe, &oracle, config));
    auto report =
        ReportBestBy(AlgoName(algo), result, f1, universe, evaluator.get());
    std::printf("%s pruned=%zu valuated=%zu time=%.2fs best f1=%s\n",
                PadRight(AlgoName(algo), 11).c_str(), result.pruned_states,
                result.valuated_states, result.seconds,
                report.ok() ? FormatDouble(report->eval.raw[f1], 4).c_str()
                            : "-");
  }
  std::printf("expected: BiMODis valuates fewer states at comparable best "
              "f1 (Lemma 4: pruned states are epsilon-dominated).\n");
  return Status::OK();
}

Status DecisiveMeasureChoice() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kHouse, 0.6));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  const size_t f1 = MeasureIndex(bench.task.measures, "f1");

  std::printf("\n== Ablation 3: decisive measure choice ==\n");
  for (size_t decisive = 0; decisive < bench.task.measures.size();
       ++decisive) {
    ModisConfig config;
    config.epsilon = 0.2;
    config.max_states = 120;
    config.max_level = 3;
    config.decisive_measure = decisive;
    auto evaluator = bench.MakeEvaluator();
    ExactOracle oracle(evaluator.get());
    MODIS_ASSIGN_OR_RETURN(ModisResult result,
                           RunApxModis(universe, &oracle, config));
    auto report =
        ReportBestBy("ApxMODis", result, f1, universe, evaluator.get());
    std::printf("decisive=%s skyline=%zu best f1=%s\n",
                PadRight(bench.task.measures[decisive].name, 11).c_str(),
                result.skyline.size(),
                report.ok() ? FormatDouble(report->eval.raw[f1], 4).c_str()
                            : "-");
  }
  std::printf("expected: best f1 stays in a narrow band for every decisive "
              "choice (the paper's 'results carry over' remark).\n");
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main() {
  std::printf("Ablation benches (design choices of the MODis "
              "reproduction)\n");
  for (auto* fn : {modis::bench::ReduceVsAugment, modis::bench::PruningOnOff,
                   modis::bench::DecisiveMeasureChoice}) {
    modis::Status s = fn();
    if (!s.ok()) std::fprintf(stderr, "ablation failed: %s\n",
                              s.ToString().c_str());
  }
  return 0;
}
