/// Reproduces Table 6 (appendix) of the paper: multi-objective comparison
/// on T1 (movie-gross GBM regression, measures acc/fisher/mi/train) and T3
/// (avocado-price ridge regression, measures mse/mae/train).
///
/// Expected shape (paper): MODis variants take the top spots on the first
/// metric of each task (acc for T1, MSE for T3) with smaller output
/// datasets and lower training cost; NOBiMODis/BiMODis lead most rows.
///
/// Flags: `--json` emits one MethodRecord per method instead of the
/// tables; `--threads N` / `--record-cache PATH` are forwarded to the
/// MODis runs.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

Status RunTask(const BenchOptions& opts, std::vector<MethodRecord>* records,
               BenchTaskId id, double row_scale, const std::string& select,
               bool surrogate) {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench, MakeTabularBench(id, row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto evaluator = bench.MakeEvaluator();

  std::vector<MethodReport> methods;
  MODIS_ASSIGN_OR_RETURN(BaselineResult original,
                         RunOriginal(bench.universal, evaluator.get()));
  methods.push_back(FromBaseline(original));

  MetamOptions metam;
  metam.utility_measure = MeasureIndex(bench.task.measures, select);
  MODIS_ASSIGN_OR_RETURN(BaselineResult m1,
                         RunMetam(bench.lake, evaluator.get(), metam));
  methods.push_back(FromBaseline(m1));
  metam.multi_objective = true;
  MODIS_ASSIGN_OR_RETURN(BaselineResult m2,
                         RunMetam(bench.lake, evaluator.get(), metam));
  methods.push_back(FromBaseline(m2));
  MODIS_ASSIGN_OR_RETURN(BaselineResult st,
                         RunStarmieLite(bench.lake, evaluator.get()));
  methods.push_back(FromBaseline(st));
  MODIS_ASSIGN_OR_RETURN(
      BaselineResult sk,
      RunSkSfm(bench.universal, evaluator.get(), bench.model.get()));
  methods.push_back(FromBaseline(sk));
  MODIS_ASSIGN_OR_RETURN(BaselineResult h2o,
                         RunH2oFs(bench.universal, evaluator.get()));
  methods.push_back(FromBaseline(h2o));

  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 180;
  config.max_level = 4;
  ApplyBenchOptions(opts, &config);
  MODIS_ASSIGN_OR_RETURN(
      std::vector<MethodReport> modis,
      RunAllModis(bench, universe, config,
                  MeasureIndex(bench.task.measures, select), surrogate));
  for (auto& m : modis) methods.push_back(std::move(m));

  for (const MethodReport& m : methods) {
    records->push_back(MakeMethodRecord("table6", "", BenchTaskName(id), m,
                                        bench.task.measures));
  }
  if (!opts.json) {
    PrintMethodTable("Table 6 / " + bench.name + " (select by best " +
                         select + ")",
                     bench.task.measures, methods);
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main(int argc, char** argv) {
  const modis::bench::BenchOptions opts =
      modis::bench::ParseBenchOptions(argc, argv);
  std::vector<modis::bench::MethodRecord> records;
  if (!opts.json) {
    std::printf(
        "Reproduction of Table 6 (EDBT'25 MODis): T1-movie, T3-avocado\n");
  }
  modis::Status s =
      modis::bench::RunTask(opts, &records, modis::BenchTaskId::kMovie, 0.5,
                            "acc", /*surrogate=*/true);
  if (!s.ok()) std::fprintf(stderr, "T1 failed: %s\n", s.ToString().c_str());
  s = modis::bench::RunTask(opts, &records, modis::BenchTaskId::kAvocado,
                            0.4, "mse", /*surrogate=*/false);
  if (!s.ok()) std::fprintf(stderr, "T3 failed: %s\n", s.ToString().c_str());
  if (opts.json) modis::bench::PrintJsonMethodRecords(records);
  return 0;
}
