/// Reproduces the two case studies of Figure 11 / Exp-4.
///
/// Case 1 ("find data with models"): a material-science team improves an
/// X-ray peak classifier. BiMODis generates a small set of skyline
/// datasets whose (accuracy, training-cost, F1) triples beat the original
/// upload; METAM (single-objective on F1) is the comparison point.
///
/// Case 2 ("generating test data for model evaluation"): MODis is
/// configured with explicit bounds — accuracy > 0.85 and training cost
/// < 30 s — and must return a handful of admissible datasets quickly.

#include <cstdio>

#include "bench/bench_util.h"

namespace modis::bench {
namespace {

Status Case1() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kXray, 1.0));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto evaluator = bench.MakeEvaluator();

  MODIS_ASSIGN_OR_RETURN(BaselineResult original,
                         RunOriginal(bench.universal, evaluator.get()));
  std::printf("\n== Case 1: X-ray peak classification ==\n");
  std::printf("original <acc, train, f1> = <%.4f, %.4f, %.4f>\n",
              original.eval.raw[0], original.eval.raw[1],
              original.eval.raw[2]);

  ModisConfig config;
  config.epsilon = 0.15;
  config.max_states = 150;
  config.max_level = 4;
  ExactOracle oracle(evaluator.get());
  MODIS_ASSIGN_OR_RETURN(ModisResult result,
                         RunBiModis(universe, &oracle, config));
  std::printf("BiMODis skyline (%zu datasets):\n", result.skyline.size());
  size_t shown = 0;
  for (const auto& e : result.skyline) {
    MODIS_ASSIGN_OR_RETURN(Evaluation exact,
                           evaluator->Evaluate(universe.Materialize(e.state)));
    std::printf("  D%zu: <%.4f, %.4f, %.4f>  size=(%zu,%zu)\n", ++shown,
                exact.raw[0], exact.raw[1], exact.raw[2], e.rows, e.cols);
    if (shown >= 3) break;
  }

  MetamOptions metam;
  metam.utility_measure = MeasureIndex(bench.task.measures, "f1");
  MODIS_ASSIGN_OR_RETURN(BaselineResult m,
                         RunMetam(bench.lake, evaluator.get(), metam));
  std::printf("METAM (F1 utility): <%.4f, %.4f, %.4f>  size=(%zu,%zu)\n",
              m.eval.raw[0], m.eval.raw[1], m.eval.raw[2],
              m.dataset.num_rows(), m.dataset.num_cols());
  return Status::OK();
}

Status Case2() {
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(BenchTaskId::kFeaturePool, 1.0));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto evaluator = bench.MakeEvaluator();

  std::printf("\n== Case 2: test-data generation with bounds "
              "(acc > 0.85, train < 30 s) ==\n");
  ModisConfig config;
  config.epsilon = 0.2;
  config.max_states = 120;
  config.max_level = 3;
  ExactOracle oracle(evaluator.get());
  MODIS_ASSIGN_OR_RETURN(ModisResult result,
                         RunBiModis(universe, &oracle, config));
  std::printf("generated %zu admissible datasets in %.1f seconds:\n",
              result.skyline.size(), result.seconds);
  size_t shown = 0;
  for (const auto& e : result.skyline) {
    MODIS_ASSIGN_OR_RETURN(Evaluation exact,
                           evaluator->Evaluate(universe.Materialize(e.state)));
    std::printf("  D%zu: <acc=%.2f, train=%.4fs>  size=(%zu,%zu)%s\n", ++shown,
                exact.raw[0], exact.raw[1], e.rows, e.cols,
                exact.raw[0] >= 0.85 ? "" : "  [below bound]");
    if (shown >= 3) break;
  }
  return Status::OK();
}

}  // namespace
}  // namespace modis::bench

int main() {
  std::printf("Reproduction of Exp-4 / Figure 11 (EDBT'25 MODis): case "
              "studies\n");
  modis::Status s = modis::bench::Case1();
  if (!s.ok()) std::fprintf(stderr, "case 1 failed: %s\n",
                            s.ToString().c_str());
  s = modis::bench::Case2();
  if (!s.ok()) std::fprintf(stderr, "case 2 failed: %s\n",
                            s.ToString().c_str());
  return 0;
}
