#ifndef MODIS_TABLE_TABLE_H_
#define MODIS_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace modis {

/// A column of cell values (same length as the owning table's row count).
using Column = std::vector<Value>;

/// A structured table instance D(A1..Am) conforming to a local schema.
///
/// Storage is column-major: the ML bridge and the statistics pass scan
/// columns, and the MODis operators drop whole columns/rows. Rows are
/// addressed by index; `Row(i)` materializes a row vector on demand.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return schema_.num_fields(); }

  /// Appends a row; fails unless `row.size() == num_cols()`.
  Status AppendRow(std::vector<Value> row);

  /// Adds a column of `num_rows()` values; fails on size or name conflicts.
  Status AddColumn(Field field, Column values);

  const Column& column(size_t c) const { return columns_[c]; }
  Column* mutable_column(size_t c) { return &columns_[c]; }

  /// Cell accessors.
  const Value& At(size_t row, size_t col) const { return columns_[col][row]; }
  void Set(size_t row, size_t col, Value v) {
    columns_[col][row] = std::move(v);
  }

  /// Materializes row `r` as a vector of values.
  std::vector<Value> Row(size_t r) const;

  /// Returns a table with only the rows whose index is in `rows` (order
  /// preserved as given).
  Table SelectRows(const std::vector<size_t>& rows) const;

  /// Returns a table with only the columns whose index is in `cols`.
  Result<Table> SelectColumns(const std::vector<size_t>& cols) const;

  /// Returns a table with only the named columns.
  Result<Table> SelectColumnsByName(const std::vector<std::string>& names) const;

  /// Fraction of null cells across the whole table (0 if empty).
  double NullFraction() const;

  /// Number of distinct non-null values in column c.
  size_t DistinctCount(size_t c) const;

  /// Debug rendering of the first `max_rows` rows.
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Distinct non-null values of one attribute across a set of tables — the
/// active domain adom(A) from the paper.
class ActiveDomain {
 public:
  ActiveDomain() = default;

  /// Collects distinct non-null values of `column`.
  void AddColumn(const Column& column);

  size_t size() const { return values_.size(); }
  const std::vector<Value>& values() const { return values_; }
  bool Contains(const Value& v) const;

 private:
  std::vector<Value> values_;  // Sorted for determinism.
};

/// Computes adom(A) for every attribute of `table`.
std::vector<ActiveDomain> ComputeActiveDomains(const Table& table);

}  // namespace modis

#endif  // MODIS_TABLE_TABLE_H_
