#include "table/table.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace modis {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_fields());
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != num_cols()) {
    return Status::InvalidArgument(
        "AppendRow: expected " + std::to_string(num_cols()) + " values, got " +
        std::to_string(row.size()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AddColumn(Field field, Column values) {
  if (values.size() != num_rows_ && num_cols() > 0) {
    return Status::InvalidArgument(
        "AddColumn: column length " + std::to_string(values.size()) +
        " != row count " + std::to_string(num_rows_));
  }
  MODIS_RETURN_IF_ERROR(schema_.AddField(std::move(field)));
  if (num_cols() == 1) num_rows_ = values.size();
  columns_.push_back(std::move(values));
  return Status::OK();
}

std::vector<Value> Table::Row(size_t r) const {
  MODIS_CHECK(r < num_rows_) << "Row index " << r << " out of " << num_rows_;
  std::vector<Value> row;
  row.reserve(num_cols());
  for (size_t c = 0; c < num_cols(); ++c) row.push_back(columns_[c][r]);
  return row;
}

Table Table::SelectRows(const std::vector<size_t>& rows) const {
  Table out(schema_);
  for (size_t c = 0; c < num_cols(); ++c) {
    Column& col = *out.mutable_column(c);
    col.reserve(rows.size());
    for (size_t r : rows) {
      MODIS_DCHECK(r < num_rows_) << "SelectRows index out of range";
      col.push_back(columns_[c][r]);
    }
  }
  out.num_rows_ = rows.size();
  return out;
}

Result<Table> Table::SelectColumns(const std::vector<size_t>& cols) const {
  Schema schema;
  for (size_t c : cols) {
    if (c >= num_cols()) {
      return Status::OutOfRange("SelectColumns: column index out of range");
    }
    MODIS_RETURN_IF_ERROR(schema.AddField(schema_.field(c)));
  }
  Table out(std::move(schema));
  for (size_t i = 0; i < cols.size(); ++i) {
    *out.mutable_column(i) = columns_[cols[i]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

Result<Table> Table::SelectColumnsByName(
    const std::vector<std::string>& names) const {
  std::vector<size_t> cols;
  cols.reserve(names.size());
  for (const auto& n : names) {
    auto idx = schema_.FindField(n);
    if (!idx.has_value()) {
      return Status::NotFound("SelectColumnsByName: no column named " + n);
    }
    cols.push_back(*idx);
  }
  return SelectColumns(cols);
}

double Table::NullFraction() const {
  const size_t total = num_rows_ * num_cols();
  if (total == 0) return 0.0;
  size_t nulls = 0;
  for (const Column& col : columns_) {
    for (const Value& v : col) {
      if (v.is_null()) ++nulls;
    }
  }
  return static_cast<double>(nulls) / static_cast<double>(total);
}

size_t Table::DistinctCount(size_t c) const {
  MODIS_CHECK(c < num_cols()) << "DistinctCount col out of range";
  std::unordered_set<size_t> seen;
  size_t distinct = 0;
  std::set<Value> values;
  for (const Value& v : columns_[c]) {
    if (v.is_null()) continue;
    if (values.insert(v).second) ++distinct;
  }
  return distinct;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + " rows=" + std::to_string(num_rows_);
  out += "\n";
  const size_t n = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_cols(); ++c) {
      if (c > 0) out += " | ";
      out += PadRight(At(r, c).ToString(), 12);
    }
    out += "\n";
  }
  if (n < num_rows_) out += "...\n";
  return out;
}

void ActiveDomain::AddColumn(const Column& column) {
  std::set<Value> merged(values_.begin(), values_.end());
  for (const Value& v : column) {
    if (!v.is_null()) merged.insert(v);
  }
  values_.assign(merged.begin(), merged.end());
}

bool ActiveDomain::Contains(const Value& v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

std::vector<ActiveDomain> ComputeActiveDomains(const Table& table) {
  std::vector<ActiveDomain> domains(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    domains[c].AddColumn(table.column(c));
  }
  return domains;
}

}  // namespace modis
