#ifndef MODIS_TABLE_VALUE_H_
#define MODIS_TABLE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace modis {

/// Runtime type tag for a cell value.
enum class ValueKind { kNull = 0, kInt, kDouble, kString };

/// A single table cell: null, 64-bit integer, double, or string.
///
/// Datasets in the paper may have missing values (t.A = ∅); kNull models
/// those, and the Augment operator fills unknown cells with nulls.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueKind kind() const {
    switch (data_.index()) {
      case 0:
        return ValueKind::kNull;
      case 1:
        return ValueKind::kInt;
      case 2:
        return ValueKind::kDouble;
      default:
        return ValueKind::kString;
    }
  }

  bool is_null() const { return kind() == ValueKind::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDoubleExact() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: ints are widened, doubles returned as-is. Requires a
  /// numeric kind; callers must check `IsNumeric()` (or is_null) first.
  double AsDouble() const {
    if (kind() == ValueKind::kInt) return static_cast<double>(AsInt());
    return AsDoubleExact();
  }

  bool IsNumeric() const {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }

  /// Structural equality. Null == Null; int 3 != double 3.0 (kinds differ).
  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order for sorting/grouping: null < int < double < string, then by
  /// content within a kind.
  friend bool operator<(const Value& a, const Value& b) {
    return a.data_ < b.data_;
  }

  /// Debug / CSV rendering ("" for null).
  std::string ToString() const;

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// std::hash adaptor so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace modis

#endif  // MODIS_TABLE_VALUE_H_
