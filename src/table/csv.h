#ifndef MODIS_TABLE_CSV_H_
#define MODIS_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace modis {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// When true (default), column types are inferred: a column whose non-empty
  /// cells all parse as numbers becomes kNumeric, otherwise kCategorical.
  bool infer_types = true;
};

/// Parses CSV text (first line = header) into a Table. Empty cells become
/// nulls. Quoting is not supported — the synthetic data lakes never emit
/// embedded delimiters.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes `table` to CSV text (header + rows; nulls as empty cells).
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes `table` to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace modis

#endif  // MODIS_TABLE_CSV_H_
