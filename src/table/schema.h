#ifndef MODIS_TABLE_SCHEMA_H_
#define MODIS_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace modis {

/// Declared column type. Numeric columns feed models directly; categorical
/// columns are label-encoded by the ML bridge.
enum class ColumnType { kNumeric, kCategorical };

const char* ColumnTypeName(ColumnType t);

/// A named, typed attribute of a relation schema.
struct Field {
  std::string name;
  ColumnType type = ColumnType::kNumeric;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// An ordered set of uniquely named fields (the local schema R_D of a
/// dataset). The universal schema R_U is the union of local schemas.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Appends a field; fails if the name already exists.
  Status AddField(Field field);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with `name`, or nullopt.
  std::optional<size_t> FindField(const std::string& name) const;

  bool HasField(const std::string& name) const {
    return FindField(name).has_value();
  }

  /// Union of this schema with `other`; on a name collision the field types
  /// must agree (otherwise InvalidArgument).
  Result<Schema> Union(const Schema& other) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace modis

#endif  // MODIS_TABLE_SCHEMA_H_
