#include "table/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace modis {

namespace {

/// Classifies raw string cells of one column: numeric iff every non-empty
/// cell parses as a double.
ColumnType InferColumnType(const std::vector<std::vector<std::string>>& rows,
                           size_t col) {
  bool any_value = false;
  for (const auto& row : rows) {
    const std::string& cell = row[col];
    if (cell.empty()) continue;
    any_value = true;
    double unused;
    if (!ParseDouble(cell, &unused)) return ColumnType::kCategorical;
  }
  return any_value ? ColumnType::kNumeric : ColumnType::kCategorical;
}

Value ParseCell(const std::string& cell, ColumnType type) {
  if (cell.empty()) return Value::Null();
  if (type == ColumnType::kNumeric) {
    int64_t i;
    if (ParseInt64(cell, &i)) return Value(i);
    double d;
    if (ParseDouble(cell, &d)) return Value(d);
    return Value::Null();
  }
  return Value(cell);
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) lines.push_back(line);
    }
  }
  if (lines.empty()) return Status::InvalidArgument("CSV: empty input");

  const std::vector<std::string> header =
      StrSplit(lines[0], options.delimiter);
  const size_t ncols = header.size();

  std::vector<std::vector<std::string>> raw_rows;
  raw_rows.reserve(lines.size() - 1);
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> cells = StrSplit(lines[i], options.delimiter);
    if (cells.size() != ncols) {
      return Status::InvalidArgument(
          "CSV: row " + std::to_string(i) + " has " +
          std::to_string(cells.size()) + " cells, expected " +
          std::to_string(ncols));
    }
    raw_rows.push_back(std::move(cells));
  }

  Schema schema;
  std::vector<ColumnType> types(ncols, ColumnType::kCategorical);
  for (size_t c = 0; c < ncols; ++c) {
    types[c] = options.infer_types ? InferColumnType(raw_rows, c)
                                   : ColumnType::kCategorical;
    MODIS_RETURN_IF_ERROR(
        schema.AddField({std::string(StrTrim(header[c])), types[c]}));
  }

  Table table(std::move(schema));
  for (const auto& raw : raw_rows) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) row.push_back(ParseCell(raw[c], types[c]));
    MODIS_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out += delimiter;
    out += table.schema().field(c).name;
  }
  out += "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out += delimiter;
      out += table.At(r, c).ToString();
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for write");
  out << WriteCsvString(table, delimiter);
  return out.good() ? Status::OK() : Status::IoError("write failed: " + path);
}

}  // namespace modis
