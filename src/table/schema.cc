#include "table/schema.h"

#include "common/logging.h"

namespace modis {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) {
    MODIS_CHECK_OK(AddField(std::move(f)));
  }
}

Status Schema::AddField(Field field) {
  if (index_.count(field.name) > 0) {
    return Status::AlreadyExists("duplicate field name: " + field.name);
  }
  index_[field.name] = fields_.size();
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<Schema> Schema::Union(const Schema& other) const {
  Schema out = *this;
  for (const Field& f : other.fields_) {
    auto existing = out.FindField(f.name);
    if (existing.has_value()) {
      if (out.field(*existing).type != f.type) {
        return Status::InvalidArgument("schema union type conflict on field " +
                                       f.name);
      }
      continue;
    }
    MODIS_RETURN_IF_ERROR(out.AddField(f));
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ColumnTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace modis
