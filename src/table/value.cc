#include "table/value.h"

#include "common/strings.h"

namespace modis {

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble:
      return FormatDouble(AsDoubleExact(), 6);
    case ValueKind::kString:
      return AsString();
  }
  return "";
}

size_t Value::Hash() const {
  const size_t kind_salt = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL;
  switch (kind()) {
    case ValueKind::kNull:
      return kind_salt;
    case ValueKind::kInt:
      return kind_salt ^ std::hash<int64_t>()(AsInt());
    case ValueKind::kDouble:
      return kind_salt ^ std::hash<double>()(AsDoubleExact());
    case ValueKind::kString:
      return kind_salt ^ std::hash<std::string>()(AsString());
  }
  return kind_salt;
}

}  // namespace modis
