#include "baselines/nsga2_modis.h"

#include "common/timer.h"

namespace modis {

Result<Nsga2ModisResult> RunNsga2Modis(const SearchUniverse& universe,
                                       PerformanceOracle* oracle,
                                       const Nsga2Options& options) {
  WallTimer timer;
  const UnitLayout& layout = universe.layout();
  const std::vector<double> upper = UpperBounds(oracle->measures());

  auto repair = [&layout](std::vector<uint8_t> genome) {
    // Protected attributes stay included; cluster bits of excluded
    // attributes are forced on so identical datasets share one genome.
    for (size_t a = 0; a < layout.num_attributes(); ++a) {
      if (!layout.attr_flippable[a]) genome[a] = 1;
    }
    for (size_t cu = 0; cu < layout.clusters.size(); ++cu) {
      const size_t attr = layout.clusters[cu].attr_index;
      if (!genome[attr]) genome[layout.num_attributes() + cu] = 1;
    }
    return genome;
  };

  // Materializations cached by signature: generations revisit genomes, and
  // the final front's row counts become mask popcounts instead of rescans.
  MaterializationCache mats(256);

  Nsga2Fitness fitness =
      [&](const std::vector<uint8_t>& raw) -> std::optional<PerfVector> {
    const std::vector<uint8_t> genome = repair(raw);
    StateBitmap state(genome.size());
    for (size_t i = 0; i < genome.size(); ++i) state.Set(i, genome[i] != 0);
    const std::string sig = state.Signature();
    Result<Evaluation> eval = oracle->Valuate(
        sig, universe.StateFeatures(state), [&]() {
          if (MaterializationPtr hit = mats.Get(sig)) return hit->table;
          MaterializationPtr m = universe.MaterializeRecord(state);
          mats.Put(sig, m);
          return m->table;
        });
    if (!eval.ok()) return std::nullopt;  // Untrainable genome.
    for (size_t j = 0; j < upper.size(); ++j) {
      if (eval->normalized[j] > upper[j] + 1e-12) return std::nullopt;
    }
    return eval->normalized;
  };

  // Seed with the universal state (matching MODis's start).
  std::vector<uint8_t> seed(layout.num_units(), 1);
  Nsga2Result run = RunNsga2(seed, fitness, options);

  Nsga2ModisResult result;
  result.evaluations = run.evaluations;
  for (const auto& ind : run.front) {
    const std::vector<uint8_t> genome = repair(ind.genome);
    SkylineEntry entry;
    entry.state = StateBitmap(genome.size());
    for (size_t i = 0; i < genome.size(); ++i) {
      entry.state.Set(i, genome[i] != 0);
    }
    entry.eval.normalized = ind.objectives;
    entry.eval.raw = ind.objectives;  // Raw values live in the oracle store.
    if (MaterializationPtr hit = mats.Get(entry.state.Signature())) {
      entry.rows = hit->mask.Count();
    } else {
      entry.rows = universe.CountRows(entry.state);
    }
    for (size_t a = 0; a < layout.num_attributes(); ++a) {
      if (entry.state.Get(a)) ++entry.cols;
    }
    result.skyline.push_back(std::move(entry));
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace modis
