#include "baselines/baselines.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "ml/linear.h"
#include "ops/operators.h"

namespace modis {

namespace {

double Utility(const Evaluation& eval, const MetamOptions& options) {
  if (options.multi_objective) {
    return std::accumulate(eval.normalized.begin(), eval.normalized.end(),
                           0.0) /
           static_cast<double>(eval.normalized.size());
  }
  MODIS_CHECK(options.utility_measure < eval.normalized.size())
      << "utility measure index out of range";
  return eval.normalized[options.utility_measure];
}

Result<BaselineResult> Finish(std::string name, Table dataset,
                              SupervisedEvaluator* evaluator,
                              const WallTimer& timer) {
  BaselineResult result;
  result.name = std::move(name);
  MODIS_ASSIGN_OR_RETURN(result.eval, evaluator->Evaluate(dataset));
  result.dataset = std::move(dataset);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace

Result<BaselineResult> RunMetam(const DataLake& lake,
                                SupervisedEvaluator* evaluator,
                                const MetamOptions& options) {
  if (lake.tables.empty()) {
    return Status::InvalidArgument("RunMetam: empty lake");
  }
  WallTimer timer;
  Table current = lake.tables[0];
  MODIS_ASSIGN_OR_RETURN(Evaluation current_eval,
                         evaluator->Evaluate(current));
  double current_utility = Utility(current_eval, options);

  std::vector<bool> used(lake.tables.size(), false);
  used[0] = true;
  int joins = 0;
  while (joins < options.max_joins) {
    int best = -1;
    double best_utility = current_utility;
    Table best_table;
    Evaluation best_eval;
    for (size_t t = 1; t < lake.tables.size(); ++t) {
      if (used[t]) continue;
      Result<Table> joined =
          HashJoin(current, lake.tables[t], lake.key(), JoinType::kLeftOuter);
      if (!joined.ok()) continue;
      Result<Evaluation> eval = evaluator->Evaluate(joined.value());
      if (!eval.ok()) continue;
      const double u = Utility(eval.value(), options);
      if (u < best_utility) {
        best_utility = u;
        best = static_cast<int>(t);
        best_table = std::move(joined).value();
        best_eval = std::move(eval).value();
      }
    }
    if (best < 0) break;  // No candidate improves the utility.
    used[best] = true;
    current = std::move(best_table);
    current_eval = std::move(best_eval);
    current_utility = best_utility;
    ++joins;
  }
  const std::string name = options.multi_objective ? "METAM-MO" : "METAM";
  BaselineResult result;
  result.name = name;
  result.eval = std::move(current_eval);
  result.dataset = std::move(current);
  result.seconds = timer.Seconds();
  return result;
}

namespace {

/// Jaccard similarity of two columns' distinct-value sets — the content
/// signature standing in for Starmie's learned column embeddings.
double ColumnJaccard(const Column& a, const Column& b) {
  std::set<Value> sa, sb;
  for (const Value& v : a) {
    if (!v.is_null()) sa.insert(v);
  }
  for (const Value& v : b) {
    if (!v.is_null()) sb.insert(v);
  }
  if (sa.empty() || sb.empty()) return 0.0;
  size_t inter = 0;
  for (const Value& v : sa) inter += sb.count(v);
  return static_cast<double>(inter) /
         static_cast<double>(sa.size() + sb.size() - inter);
}

}  // namespace

Result<BaselineResult> RunStarmieLite(const DataLake& lake,
                                      SupervisedEvaluator* evaluator,
                                      double sim_threshold) {
  if (lake.tables.empty()) {
    return Status::InvalidArgument("RunStarmieLite: empty lake");
  }
  WallTimer timer;
  const Table& base = lake.tables[0];
  Table current = base;
  for (size_t t = 1; t < lake.tables.size(); ++t) {
    // Max column-pair similarity between base and candidate.
    double best_sim = 0.0;
    for (size_t cb = 0; cb < base.num_cols(); ++cb) {
      for (size_t cc = 0; cc < lake.tables[t].num_cols(); ++cc) {
        best_sim = std::max(
            best_sim, ColumnJaccard(base.column(cb), lake.tables[t].column(cc)));
      }
    }
    if (best_sim < sim_threshold) continue;
    Result<Table> joined =
        HashJoin(current, lake.tables[t], lake.key(), JoinType::kLeftOuter);
    if (joined.ok()) current = std::move(joined).value();
  }
  return Finish("Starmie", std::move(current), evaluator, timer);
}

namespace {

/// Projects `universal` onto the selected feature names plus the task's
/// target and excluded (key) columns.
Result<Table> ProjectSelected(const Table& universal,
                              const SupervisedTask& task,
                              const std::vector<std::string>& selected) {
  std::vector<std::string> names;
  for (size_t c = 0; c < universal.num_cols(); ++c) {
    const std::string& n = universal.schema().field(c).name;
    const bool is_meta =
        n == task.target ||
        std::find(task.exclude.begin(), task.exclude.end(), n) !=
            task.exclude.end();
    const bool keep =
        std::find(selected.begin(), selected.end(), n) != selected.end();
    if (is_meta || keep) names.push_back(n);
  }
  return universal.SelectColumnsByName(names);
}

Result<std::vector<std::string>> SelectByImportance(
    const Table& universal, const SupervisedTask& task, MlModel* model) {
  BridgeOptions bridge;
  bridge.exclude = task.exclude;
  MODIS_ASSIGN_OR_RETURN(
      MlDataset ds, TableToDataset(universal, task.target, task.task, bridge));
  Rng rng(task.seed);
  MODIS_RETURN_IF_ERROR(model->Fit(ds, &rng));
  const std::vector<double> importance = model->FeatureImportance();
  if (importance.empty()) {
    return Status::FailedPrecondition("model exposes no importances");
  }
  const double mean =
      std::accumulate(importance.begin(), importance.end(), 0.0) /
      static_cast<double>(importance.size());
  std::vector<std::string> selected;
  for (size_t i = 0; i < importance.size(); ++i) {
    if (importance[i] >= mean) selected.push_back(ds.feature_names[i]);
  }
  if (selected.empty()) selected.push_back(ds.feature_names.front());
  return selected;
}

}  // namespace

Result<BaselineResult> RunSkSfm(const Table& universal,
                                SupervisedEvaluator* evaluator,
                                MlModel* prototype) {
  WallTimer timer;
  std::unique_ptr<MlModel> model = prototype->Clone();
  MODIS_ASSIGN_OR_RETURN(
      std::vector<std::string> selected,
      SelectByImportance(universal, evaluator->task(), model.get()));
  MODIS_ASSIGN_OR_RETURN(
      Table projected,
      ProjectSelected(universal, evaluator->task(), selected));
  return Finish("SkSFM", std::move(projected), evaluator, timer);
}

Result<BaselineResult> RunH2oFs(const Table& universal,
                                SupervisedEvaluator* evaluator) {
  WallTimer timer;
  const SupervisedTask& task = evaluator->task();
  std::unique_ptr<MlModel> linear;
  if (task.task == TaskKind::kRegression) {
    linear = std::make_unique<RidgeRegressor>(1e-3);
  } else {
    linear = std::make_unique<LogisticRegressor>();
  }
  MODIS_ASSIGN_OR_RETURN(
      std::vector<std::string> selected,
      SelectByImportance(universal, task, linear.get()));
  MODIS_ASSIGN_OR_RETURN(Table projected,
                         ProjectSelected(universal, task, selected));
  return Finish("H2O", std::move(projected), evaluator, timer);
}

Result<BaselineResult> RunHydraGanLite(const DataLake& lake,
                                       SupervisedEvaluator* evaluator,
                                       size_t synth_rows, uint64_t seed) {
  if (lake.tables.empty()) {
    return Status::InvalidArgument("RunHydraGanLite: empty lake");
  }
  WallTimer timer;
  Rng rng(seed);
  Table current = lake.tables[0];

  // Per-column marginals of the base table.
  const size_t n = current.num_rows();
  for (size_t added = 0; added < synth_rows; ++added) {
    std::vector<Value> row;
    row.reserve(current.num_cols());
    for (size_t c = 0; c < current.num_cols(); ++c) {
      const Column& col = current.column(c);
      // Sample an observed value and, for numerics, jitter it (a crude
      // stand-in for the generator network's interpolation).
      const Value& v = col[rng.UniformInt(n)];
      if (v.is_null()) {
        row.push_back(Value::Null());
      } else if (v.IsNumeric()) {
        row.push_back(Value(v.AsDouble() + rng.Normal(0.0, 0.05)));
      } else {
        row.push_back(v);
      }
    }
    MODIS_RETURN_IF_ERROR(current.AppendRow(std::move(row)));
  }
  return Finish("HydraGAN", std::move(current), evaluator, timer);
}

Result<BaselineResult> RunOriginal(const Table& universal,
                                   SupervisedEvaluator* evaluator) {
  WallTimer timer;
  return Finish("Original", universal, evaluator, timer);
}

}  // namespace modis
