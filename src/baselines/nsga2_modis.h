#ifndef MODIS_BASELINES_NSGA2_MODIS_H_
#define MODIS_BASELINES_NSGA2_MODIS_H_

#include "core/engine.h"
#include "moo/nsga2.h"

namespace modis {

/// Outcome of the evolutionary alternative: its final non-dominated front
/// mapped back to skyline entries, plus the evaluation budget it consumed.
struct Nsga2ModisResult {
  std::vector<SkylineEntry> skyline;
  size_t evaluations = 0;
  double seconds = 0.0;
};

/// Runs NSGA-II over the same state-bitmap space as the MODis engine (the
/// alternative discussed in the paper's §5.4 Remarks). Genomes are state
/// bitmaps; protected attribute bits are forced on; fitness is the
/// oracle's normalized performance vector, with the user-defined upper
/// bounds acting as feasibility constraints. Used by bench_nsga2_compare
/// to contrast convergence and cost against the deterministic search.
Result<Nsga2ModisResult> RunNsga2Modis(const SearchUniverse& universe,
                                       PerformanceOracle* oracle,
                                       const Nsga2Options& options);

}  // namespace modis

#endif  // MODIS_BASELINES_NSGA2_MODIS_H_
