#ifndef MODIS_BASELINES_BASELINES_H_
#define MODIS_BASELINES_BASELINES_H_

#include <string>

#include "datagen/data_lake.h"
#include "estimator/supervised_evaluator.h"
#include "ml/model.h"

namespace modis {

/// Output of one baseline data-discovery run: the suggested dataset, its
/// exact evaluation under the task's model, and the discovery wall time.
struct BaselineResult {
  std::string name;
  Table dataset;
  Evaluation eval;
  double seconds = 0.0;
};

/// Options of the METAM-style goal-oriented discovery baseline.
struct MetamOptions {
  /// Index (into the task's measure vector) of the single utility measure
  /// the greedy join search optimizes.
  size_t utility_measure = 0;
  /// METAM-MO: optimize the equal-weight sum of all normalized measures
  /// instead of a single one.
  bool multi_objective = false;
  int max_joins = 16;
};

/// METAM (Galhotra et al., ICDE'23) reimplementation: starting from the
/// base table, greedily left-joins the candidate table that most improves
/// the utility (evaluated with the downstream model), until no candidate
/// improves it.
Result<BaselineResult> RunMetam(const DataLake& lake,
                                SupervisedEvaluator* evaluator,
                                const MetamOptions& options);

/// Starmie-style (VLDB'23) union/join search: ranks candidate tables by
/// column-content similarity to the base table (Jaccard over value
/// samples, a stand-in for its contrastive column embeddings) and joins
/// every candidate above `sim_threshold` — model-agnostic augmentation.
Result<BaselineResult> RunStarmieLite(const DataLake& lake,
                                      SupervisedEvaluator* evaluator,
                                      double sim_threshold = 0.1);

/// scikit-learn SelectFromModel-style feature selection: trains the task
/// model on the universal table, keeps features with importance above the
/// mean, projects.
Result<BaselineResult> RunSkSfm(const Table& universal,
                                SupervisedEvaluator* evaluator,
                                MlModel* prototype);

/// H2O-style feature selection: fits a linear proxy (ridge / logistic) and
/// keeps features whose |standardized coefficient| is above the mean.
Result<BaselineResult> RunH2oFs(const Table& universal,
                                SupervisedEvaluator* evaluator);

/// HydraGAN-style generative augmentation: fits per-column marginals on
/// the base table and appends `synth_rows` sampled rows (no external data
/// used — the paper's contrast in Exp-1/T4).
Result<BaselineResult> RunHydraGanLite(const DataLake& lake,
                                       SupervisedEvaluator* evaluator,
                                       size_t synth_rows, uint64_t seed = 99);

/// Baseline "Original": evaluates the base table joined with nothing.
Result<BaselineResult> RunOriginal(const Table& universal,
                                   SupervisedEvaluator* evaluator);

}  // namespace modis

#endif  // MODIS_BASELINES_BASELINES_H_
