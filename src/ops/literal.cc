#include "ops/literal.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/kmeans.h"
#include "common/strings.h"

namespace modis {

bool Literal::Matches(const Value& v) const {
  if (v.is_null()) return false;
  if (kind == Kind::kEquals) {
    if (value.IsNumeric() && v.IsNumeric()) {
      return value.AsDouble() == v.AsDouble();
    }
    return v == value;
  }
  if (!v.IsNumeric()) return false;
  const double x = v.AsDouble();
  return x >= lo && x < hi;
}

std::string Literal::ToString() const {
  if (kind == Kind::kEquals) {
    return attribute + " = " + value.ToString();
  }
  return attribute + " in [" + FormatDouble(lo, 3) + ", " + FormatDouble(hi, 3) +
         ")";
}

std::vector<AttributeLiterals> DeriveLiterals(const Table& table,
                                              int max_clusters, Rng* rng) {
  std::vector<AttributeLiterals> out;
  out.reserve(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Field& field = table.schema().field(c);
    AttributeLiterals attr;
    attr.attribute = field.name;

    if (field.type == ColumnType::kNumeric) {
      std::vector<double> values;
      values.reserve(table.num_rows());
      for (const Value& v : table.column(c)) {
        if (!v.is_null() && v.IsNumeric()) values.push_back(v.AsDouble());
      }
      if (!values.empty()) {
        KMeans1DResult km = KMeans1D(values, max_clusters, rng);
        const auto& centers = km.centers;
        const double inf = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < centers.size(); ++i) {
          const double lo =
              (i == 0) ? -inf : 0.5 * (centers[i - 1] + centers[i]);
          const double hi = (i + 1 == centers.size())
                                ? inf
                                : 0.5 * (centers[i] + centers[i + 1]);
          attr.literals.push_back(Literal::Range(field.name, lo, hi));
        }
      }
    } else {
      // Frequency-ranked distinct values, most frequent first.
      std::map<Value, size_t> freq;
      for (const Value& v : table.column(c)) {
        if (!v.is_null()) ++freq[v];
      }
      std::vector<std::pair<Value, size_t>> ranked(freq.begin(), freq.end());
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const auto& a, const auto& b) {
                         return a.second > b.second;
                       });
      const size_t keep =
          std::min<size_t>(ranked.size(), static_cast<size_t>(max_clusters));
      for (size_t i = 0; i < keep; ++i) {
        attr.literals.push_back(Literal::Equals(field.name, ranked[i].first));
      }
    }
    out.push_back(std::move(attr));
  }
  return out;
}

}  // namespace modis
