#ifndef MODIS_OPS_LITERAL_H_
#define MODIS_OPS_LITERAL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "table/table.h"

namespace modis {

/// A selection literal c over one attribute, as used by the Augment and
/// Reduct operators (§3 of the paper).
///
/// The paper's literals are equalities `A = a`. After active-domain
/// compression (k-means with max k = 30, §6), a literal may instead denote a
/// value *cluster*: for numeric attributes a half-open range [lo, hi), for
/// categorical attributes an explicit value. Both kinds are supported.
struct Literal {
  enum class Kind { kEquals, kRange };

  std::string attribute;
  Kind kind = Kind::kEquals;
  Value value;       // kEquals payload.
  double lo = 0.0;   // kRange payload: v in [lo, hi).
  double hi = 0.0;

  static Literal Equals(std::string attribute, Value v) {
    Literal l;
    l.attribute = std::move(attribute);
    l.kind = Kind::kEquals;
    l.value = std::move(v);
    return l;
  }

  static Literal Range(std::string attribute, double lo, double hi) {
    Literal l;
    l.attribute = std::move(attribute);
    l.kind = Kind::kRange;
    l.lo = lo;
    l.hi = hi;
    return l;
  }

  /// True if cell `v` satisfies this literal. Nulls never match.
  bool Matches(const Value& v) const;

  std::string ToString() const;
};

/// The derived literal set of one attribute: one literal per active-domain
/// cluster. `literals[i]` covers cluster i; together the literals partition
/// the non-null active domain.
struct AttributeLiterals {
  std::string attribute;
  std::vector<Literal> literals;
};

/// Derives per-cluster literals for every column of `table`:
///  - numeric columns: 1-D k-means over the active domain (at most
///    `max_clusters` clusters), one Range literal per cluster with
///    boundaries at midpoints between adjacent centers;
///  - categorical columns: one Equals literal per distinct value, keeping
///    the `max_clusters` most frequent values (the tail is dropped from the
///    operator set, mirroring the paper's "values of interest" compression).
std::vector<AttributeLiterals> DeriveLiterals(const Table& table,
                                              int max_clusters, Rng* rng);

}  // namespace modis

#endif  // MODIS_OPS_LITERAL_H_
