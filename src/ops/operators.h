#ifndef MODIS_OPS_OPERATORS_H_
#define MODIS_OPS_OPERATORS_H_

#include <vector>

#include "common/status.h"
#include "ops/literal.h"
#include "table/table.h"

namespace modis {

/// Reduct ⊖_c(D_M): selects the tuples of `input` that satisfy `literal` and
/// removes them, returning the reduced table (§3). The attribute named by
/// the literal must exist in the input schema.
Result<Table> Reduct(const Table& input, const Literal& literal);

/// Row indices of `input` satisfying `literal` (the tuples a Reduct would
/// delete). Exposed for tests and for the search's bookkeeping.
Result<std::vector<size_t>> MatchingRows(const Table& input,
                                         const Literal& literal);

/// Augment ⊕_c(D_M, D): per the paper's definition —
///  (a) extends the schema of `base` with the attributes of `source` that it
///      lacks;
///  (b) appends the tuples of `source` satisfying `literal`;
///  (c) fills unknown cells with null.
/// Existing `base` tuples are kept unchanged (null-extended).
Result<Table> AugmentUnion(const Table& base, const Table& source,
                           const Literal& literal);

/// Join flavor for the relational join operators.
enum class JoinType { kInner, kLeftOuter, kFullOuter };

/// Hash equi-join of `left` and `right` on `left.key == right.key`.
/// The output schema is the left schema followed by the right schema minus
/// the (duplicate) key column; unmatched sides are null-padded for outer
/// joins. Null keys never match (SQL semantics).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& key, JoinType type);

/// Joins `tables` left-to-right with full outer joins on the shared `key`
/// attribute, producing the universal table D_U that preserves all attribute
/// values (§5.2 "Reduce-from-Universal"). Every table must contain `key`.
Result<Table> BuildUniversalTable(const std::vector<Table>& tables,
                                  const std::string& key);

}  // namespace modis

#endif  // MODIS_OPS_OPERATORS_H_
