#include "ops/operators.h"

#include <unordered_map>

#include "common/logging.h"

namespace modis {

Result<std::vector<size_t>> MatchingRows(const Table& input,
                                         const Literal& literal) {
  auto col = input.schema().FindField(literal.attribute);
  if (!col.has_value()) {
    return Status::NotFound("literal attribute not in schema: " +
                            literal.attribute);
  }
  std::vector<size_t> rows;
  const Column& column = input.column(*col);
  for (size_t r = 0; r < column.size(); ++r) {
    if (literal.Matches(column[r])) rows.push_back(r);
  }
  return rows;
}

Result<Table> Reduct(const Table& input, const Literal& literal) {
  auto col = input.schema().FindField(literal.attribute);
  if (!col.has_value()) {
    return Status::NotFound("Reduct: attribute not in schema: " +
                            literal.attribute);
  }
  std::vector<size_t> keep;
  keep.reserve(input.num_rows());
  const Column& column = input.column(*col);
  for (size_t r = 0; r < column.size(); ++r) {
    if (!literal.Matches(column[r])) keep.push_back(r);
  }
  return input.SelectRows(keep);
}

Result<Table> AugmentUnion(const Table& base, const Table& source,
                           const Literal& literal) {
  if (!source.schema().HasField(literal.attribute)) {
    return Status::NotFound("Augment: literal attribute not in source: " +
                            literal.attribute);
  }
  MODIS_ASSIGN_OR_RETURN(Schema merged, base.schema().Union(source.schema()));

  Table out(merged);
  // Column mapping from each input into the merged schema.
  auto map_of = [&merged](const Table& t) {
    std::vector<size_t> m(t.num_cols());
    for (size_t c = 0; c < t.num_cols(); ++c) {
      auto idx = merged.FindField(t.schema().field(c).name);
      MODIS_CHECK(idx.has_value()) << "merged schema missing field";
      m[c] = *idx;
    }
    return m;
  };
  const std::vector<size_t> base_map = map_of(base);
  const std::vector<size_t> src_map = map_of(source);

  // (a)+(c): existing base rows, null-extended.
  for (size_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row(merged.num_fields());
    for (size_t c = 0; c < base.num_cols(); ++c) row[base_map[c]] = base.At(r, c);
    MODIS_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  // (b)+(c): source rows satisfying the literal, null-extended.
  MODIS_ASSIGN_OR_RETURN(std::vector<size_t> matches,
                         MatchingRows(source, literal));
  for (size_t r : matches) {
    std::vector<Value> row(merged.num_fields());
    for (size_t c = 0; c < source.num_cols(); ++c) {
      row[src_map[c]] = source.At(r, c);
    }
    MODIS_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& key, JoinType type) {
  auto lk = left.schema().FindField(key);
  auto rk = right.schema().FindField(key);
  if (!lk.has_value() || !rk.has_value()) {
    return Status::NotFound("HashJoin: key '" + key +
                            "' missing from an input");
  }

  // Output schema: left fields, then right fields except the key. Collide-
  // renaming is not supported; shared non-key names are an error.
  Schema schema = left.schema();
  std::vector<size_t> right_cols;  // Right columns carried to the output.
  for (size_t c = 0; c < right.num_cols(); ++c) {
    if (c == *rk) continue;
    const Field& f = right.schema().field(c);
    if (schema.HasField(f.name)) {
      return Status::InvalidArgument("HashJoin: duplicate non-key column " +
                                     f.name);
    }
    MODIS_RETURN_IF_ERROR(schema.AddField(f));
    right_cols.push_back(c);
  }

  // Build hash index on the right key.
  std::unordered_map<Value, std::vector<size_t>, ValueHash> index;
  index.reserve(right.num_rows());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    const Value& v = right.At(r, *rk);
    if (v.is_null()) continue;
    index[v].push_back(r);
  }

  Table out(std::move(schema));
  std::vector<bool> right_matched(right.num_rows(), false);

  auto emit = [&](size_t lrow, std::optional<size_t> rrow) -> Status {
    std::vector<Value> row;
    row.reserve(out.num_cols());
    for (size_t c = 0; c < left.num_cols(); ++c) row.push_back(left.At(lrow, c));
    for (size_t c : right_cols) {
      row.push_back(rrow.has_value() ? right.At(*rrow, c) : Value::Null());
    }
    return out.AppendRow(std::move(row));
  };

  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    const Value& v = left.At(lr, *lk);
    auto it = v.is_null() ? index.end() : index.find(v);
    if (it == index.end()) {
      if (type != JoinType::kInner) {
        MODIS_RETURN_IF_ERROR(emit(lr, std::nullopt));
      }
      continue;
    }
    for (size_t rr : it->second) {
      right_matched[rr] = true;
      MODIS_RETURN_IF_ERROR(emit(lr, rr));
    }
  }

  if (type == JoinType::kFullOuter) {
    // Right rows with no left partner: null-pad the left side but keep the
    // key value (it lives in a left column position).
    for (size_t rr = 0; rr < right.num_rows(); ++rr) {
      if (right_matched[rr]) continue;
      std::vector<Value> row;
      row.reserve(out.num_cols());
      for (size_t c = 0; c < left.num_cols(); ++c) {
        row.push_back(c == *lk ? right.At(rr, *rk) : Value::Null());
      }
      for (size_t c : right_cols) row.push_back(right.At(rr, c));
      MODIS_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

Result<Table> BuildUniversalTable(const std::vector<Table>& tables,
                                  const std::string& key) {
  if (tables.empty()) {
    return Status::InvalidArgument("BuildUniversalTable: no input tables");
  }
  Table acc = tables[0];
  if (!acc.schema().HasField(key)) {
    return Status::NotFound("BuildUniversalTable: table 0 lacks key " + key);
  }
  for (size_t i = 1; i < tables.size(); ++i) {
    MODIS_ASSIGN_OR_RETURN(acc,
                           HashJoin(acc, tables[i], key, JoinType::kFullOuter));
  }
  return acc;
}

}  // namespace modis
