#include "moo/nsga2.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace modis {

std::vector<int> FastNonDominatedSort(
    const std::vector<PerfVector>& objectives) {
  const size_t n = objectives.size();
  std::vector<int> rank(n, -1);
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<size_t>> dominates_set(n);
  std::vector<size_t> current;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (Dominates(objectives[i], objectives[j])) {
        dominates_set[i].push_back(j);
      } else if (Dominates(objectives[j], objectives[i])) {
        ++domination_count[i];
      }
    }
    if (domination_count[i] == 0) {
      rank[i] = 0;
      current.push_back(i);
    }
  }
  int front = 0;
  while (!current.empty()) {
    std::vector<size_t> next;
    for (size_t i : current) {
      for (size_t j : dominates_set[i]) {
        if (--domination_count[j] == 0) {
          rank[j] = front + 1;
          next.push_back(j);
        }
      }
    }
    ++front;
    current = std::move(next);
  }
  return rank;
}

std::vector<double> CrowdingDistance(const std::vector<PerfVector>& front) {
  const size_t n = front.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  const size_t m = front[0].size();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<size_t> order(n);
  for (size_t obj = 0; obj < m; ++obj) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&front, obj](size_t a, size_t b) {
      return front[a][obj] < front[b][obj];
    });
    distance[order.front()] = inf;
    distance[order.back()] = inf;
    const double span =
        front[order.back()][obj] - front[order.front()][obj];
    if (span <= 0.0) continue;
    for (size_t k = 1; k + 1 < n; ++k) {
      distance[order[k]] +=
          (front[order[k + 1]][obj] - front[order[k - 1]][obj]) / span;
    }
  }
  return distance;
}

namespace {

struct Member {
  std::vector<uint8_t> genome;
  PerfVector objectives;
  int rank = 0;
  double crowding = 0.0;
};

/// (rank, -crowding) lexicographic tournament comparator.
bool Better(const Member& a, const Member& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

void AssignRanksAndCrowding(std::vector<Member>* pop) {
  std::vector<PerfVector> objs;
  objs.reserve(pop->size());
  for (const auto& m : *pop) objs.push_back(m.objectives);
  const std::vector<int> ranks = FastNonDominatedSort(objs);
  int max_rank = 0;
  for (size_t i = 0; i < pop->size(); ++i) {
    (*pop)[i].rank = ranks[i];
    max_rank = std::max(max_rank, ranks[i]);
  }
  for (int r = 0; r <= max_rank; ++r) {
    std::vector<size_t> idx;
    std::vector<PerfVector> front;
    for (size_t i = 0; i < pop->size(); ++i) {
      if ((*pop)[i].rank == r) {
        idx.push_back(i);
        front.push_back((*pop)[i].objectives);
      }
    }
    const std::vector<double> crowd = CrowdingDistance(front);
    for (size_t k = 0; k < idx.size(); ++k) {
      (*pop)[idx[k]].crowding = crowd[k];
    }
  }
}

}  // namespace

Nsga2Result RunNsga2(const std::vector<uint8_t>& seed_genome,
                     const Nsga2Fitness& fitness,
                     const Nsga2Options& options) {
  MODIS_CHECK(!seed_genome.empty()) << "NSGA-II: empty seed genome";
  const size_t glen = seed_genome.size();
  const double mutation = options.mutation_rate > 0.0
                              ? options.mutation_rate
                              : 1.0 / static_cast<double>(glen);
  Rng rng(options.seed);
  Nsga2Result result;

  auto evaluate = [&](const std::vector<uint8_t>& genome)
      -> std::optional<PerfVector> {
    if (result.evaluations >= options.max_evaluations) return std::nullopt;
    ++result.evaluations;
    return fitness(genome);
  };

  // Initial population: the seed plus perturbations of it (a few bits
  // flipped). Uniform-random genomes are almost always infeasible in the
  // MODis state space — they delete nearly every row — so initialization
  // stays near the (feasible) seed, like the engine's own start state.
  std::vector<Member> population;
  if (auto obj = evaluate(seed_genome)) {
    population.push_back({seed_genome, *obj});
  }
  size_t init_attempts = 0;
  while (population.size() < options.population &&
         result.evaluations < options.max_evaluations &&
         init_attempts < 4 * options.population) {
    ++init_attempts;
    std::vector<uint8_t> genome = seed_genome;
    // 1..4 flips, growing as the population fills up (diversity ramp).
    const size_t flips =
        1 + rng.UniformInt(1 + population.size() * 4 / options.population);
    for (size_t f = 0; f < flips; ++f) {
      genome[rng.UniformInt(glen)] ^= 1;
    }
    if (auto obj = evaluate(genome)) {
      population.push_back({std::move(genome), *obj});
    }
  }
  if (population.empty()) return result;
  AssignRanksAndCrowding(&population);

  for (int gen = 0; gen < options.generations &&
                    result.evaluations < options.max_evaluations;
       ++gen) {
    // Offspring via tournament + uniform crossover + mutation.
    std::vector<Member> offspring;
    while (offspring.size() < options.population &&
           result.evaluations < options.max_evaluations) {
      auto pick = [&]() -> const Member& {
        const Member& a = population[rng.UniformInt(population.size())];
        const Member& b = population[rng.UniformInt(population.size())];
        return Better(a, b) ? a : b;
      };
      const Member& p1 = pick();
      const Member& p2 = pick();
      std::vector<uint8_t> child(glen);
      const bool crossover = rng.Bernoulli(options.crossover_rate);
      for (size_t i = 0; i < glen; ++i) {
        child[i] = crossover ? (rng.Bernoulli(0.5) ? p1.genome[i]
                                                   : p2.genome[i])
                             : p1.genome[i];
        if (rng.Bernoulli(mutation)) child[i] ^= 1;
      }
      if (auto obj = evaluate(child)) {
        offspring.push_back({std::move(child), *obj});
      }
    }
    // Environmental selection over parents + offspring.
    for (auto& m : offspring) population.push_back(std::move(m));
    AssignRanksAndCrowding(&population);
    std::sort(population.begin(), population.end(), Better);
    if (population.size() > options.population) {
      population.resize(options.population);
    }
  }

  AssignRanksAndCrowding(&population);
  for (const auto& m : population) {
    if (m.rank == 0) result.front.push_back({m.genome, m.objectives});
  }
  return result;
}

}  // namespace modis
