#ifndef MODIS_MOO_PARETO_H_
#define MODIS_MOO_PARETO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace modis {

/// A model performance vector: one normalized value per measure in P, all
/// minimized, each in (0, 1] (§2 of the paper).
using PerfVector = std::vector<double>;

/// True if `a` dominates `b` (a ≤ b in every measure, a < b in at least
/// one) — the dominance relation of §4 with "smaller is better".
bool Dominates(const PerfVector& a, const PerfVector& b);

/// True if `a` (1+ε)-dominates `b`: a_p ≤ (1+ε)·b_p for every measure and
/// a_p* ≤ b_p* for at least one (the decisive measure), per §5.1.
bool EpsilonDominates(const PerfVector& a, const PerfVector& b, double eps);

/// Indices of the non-dominated vectors (quadratic reference algorithm;
/// stable order). Exact skyline over a valuated set.
std::vector<size_t> ParetoFrontNaive(const std::vector<PerfVector>& points);

/// Kung-Luccio-Preparata divide-and-conquer maxima algorithm, O(n log n)
/// for few measures — the multi-objective optimizer named in the paper's
/// fixed-parameter-tractable construction (Theorem 1).
std::vector<size_t> ParetoFrontKung(const std::vector<PerfVector>& points);

/// The discretized grid position of Equation (1):
///   pos(s) = [ floor(log_{1+eps}(P(p_i) / p_l_i)) ]  for i < |P|-1.
/// The last measure is the decisive one and is excluded from the grid.
/// Values are clamped below by p_l to keep the logarithm defined.
std::vector<int64_t> GridPosition(const PerfVector& perf,
                                  const std::vector<double>& lower_bounds,
                                  double eps);

/// Verification helper for tests (Lemma 2): true if for every point there
/// exists a kept point that ε-dominates it.
bool IsEpsilonCover(const std::vector<PerfVector>& all,
                    const std::vector<PerfVector>& kept, double eps);

}  // namespace modis

#endif  // MODIS_MOO_PARETO_H_
