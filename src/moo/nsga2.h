#ifndef MODIS_MOO_NSGA2_H_
#define MODIS_MOO_NSGA2_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "moo/pareto.h"

namespace modis {

/// Options of the NSGA-II optimizer (Deb et al. 2002) — the evolutionary
/// alternative the paper's §5.4 Remarks contrast MODis against ("rely on
/// costly stochastic processes and may require extensive parameter
/// tuning"). Implemented over binary genomes so it can search the same
/// state-bitmap space as the MODis engine.
struct Nsga2Options {
  size_t population = 40;
  int generations = 25;
  double crossover_rate = 0.9;
  /// Per-bit mutation probability; 0 means 1/genome_length.
  double mutation_rate = 0.0;
  /// Hard cap on fitness evaluations (comparable to MODis's N budget).
  size_t max_evaluations = 2000;
  uint64_t seed = 77;
};

/// A genome (candidate state bitmap) with its objective vector.
struct Nsga2Individual {
  std::vector<uint8_t> genome;
  PerfVector objectives;  // Minimized, like all MODis measures.
};

/// Result of a run: the non-dominated front of the final population and
/// the number of fitness evaluations spent.
struct Nsga2Result {
  std::vector<Nsga2Individual> front;
  size_t evaluations = 0;
};

/// Fitness callback: maps a genome to its (minimized) objective vector, or
/// nullopt when the genome is infeasible (e.g. untrainable dataset).
using Nsga2Fitness =
    std::function<std::optional<PerfVector>(const std::vector<uint8_t>&)>;

/// Runs NSGA-II: fast non-dominated sorting + crowding-distance truncation
/// + binary tournament selection + uniform crossover + bit-flip mutation.
/// `seed_genome` joins the initial population (the rest are random); its
/// length fixes the genome length.
Nsga2Result RunNsga2(const std::vector<uint8_t>& seed_genome,
                     const Nsga2Fitness& fitness, const Nsga2Options& options);

/// Exposed for tests: partitions `objectives` into non-dominated fronts
/// (front 0 = Pareto-optimal within the set); returns per-index front rank.
std::vector<int> FastNonDominatedSort(const std::vector<PerfVector>& objectives);

/// Exposed for tests: crowding distance of each member of one front
/// (boundary members get +inf).
std::vector<double> CrowdingDistance(const std::vector<PerfVector>& front);

}  // namespace modis

#endif  // MODIS_MOO_NSGA2_H_
