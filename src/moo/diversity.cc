#include "moo/diversity.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"

namespace modis {

double DiversityDistance(const DiversityItem& a, const DiversityItem& b,
                         double alpha, double euc_max) {
  MODIS_CHECK(euc_max > 0.0) << "DiversityDistance: euc_max must be > 0";
  MODIS_CHECK(alpha >= 0.0 && alpha <= 1.0) << "alpha out of [0,1]";
  const double content = (1.0 - CosineSimilarity(a.bitmap, b.bitmap)) / 2.0;
  const double perf = EuclideanDistance(a.perf, b.perf) / euc_max;
  return alpha * content + (1.0 - alpha) * perf;
}

double DiversityScore(const std::vector<DiversityItem>& items,
                      const std::vector<size_t>& subset, double alpha,
                      double euc_max) {
  double score = 0.0;
  for (size_t i = 0; i < subset.size(); ++i) {
    for (size_t j = i + 1; j < subset.size(); ++j) {
      score +=
          DiversityDistance(items[subset[i]], items[subset[j]], alpha, euc_max);
    }
  }
  return score;
}

std::vector<size_t> DiversifyGreedy(const std::vector<DiversityItem>& items,
                                    size_t k, double alpha, double euc_max,
                                    Rng* rng) {
  const size_t n = items.size();
  if (n <= k) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::vector<size_t> subset = rng->SampleWithoutReplacement(n, k);
  std::vector<bool> in_subset(n, false);
  for (size_t i : subset) in_subset[i] = true;
  double score = DiversityScore(items, subset, alpha, euc_max);

  // Greedy replace: one pass over (member, candidate) pairs, accepting any
  // improving swap (Fig. 6 of the paper).
  for (size_t slot = 0; slot < subset.size(); ++slot) {
    for (size_t cand = 0; cand < n; ++cand) {
      if (in_subset[cand]) continue;
      const size_t old = subset[slot];
      subset[slot] = cand;
      const double next = DiversityScore(items, subset, alpha, euc_max);
      if (next > score) {
        score = next;
        in_subset[old] = false;
        in_subset[cand] = true;
      } else {
        subset[slot] = old;
      }
    }
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

double MaxEuclideanDistance(const std::vector<PerfVector>& perfs) {
  double best = 1e-9;
  for (size_t i = 0; i < perfs.size(); ++i) {
    for (size_t j = i + 1; j < perfs.size(); ++j) {
      best = std::max(best, EuclideanDistance(perfs[i], perfs[j]));
    }
  }
  return best;
}

}  // namespace modis
