#ifndef MODIS_MOO_CORRELATION_H_
#define MODIS_MOO_CORRELATION_H_

#include <vector>

#include "moo/pareto.h"

namespace modis {

/// Spearman rank correlation coefficient of two equal-length samples.
/// Returns 0 when either sample is constant or shorter than 2.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// The correlation graph G_C of §5.3: nodes are measures, an edge (p_i,p_j)
/// exists when |spearman(p_i, p_j)| >= theta over the currently valuated
/// tests. BiMODis consults it to derive parameterized performance ranges
/// for un-valuated measures.
class CorrelationGraph {
 public:
  CorrelationGraph(size_t num_measures, double theta)
      : num_measures_(num_measures), theta_(theta) {}

  /// Recomputes all pairwise correlations from the valuated performance
  /// vectors in `tests` (each of length num_measures).
  void Update(const std::vector<PerfVector>& tests);

  /// Signed Spearman correlation between measures i and j (0 before any
  /// Update or with insufficient data).
  double Corr(size_t i, size_t j) const;

  /// True if |Corr(i,j)| >= theta.
  bool StronglyCorrelated(size_t i, size_t j) const;

  /// Strongly correlated partners of measure i (excluding i itself),
  /// strongest first.
  std::vector<size_t> PartnersOf(size_t i) const;

  size_t num_measures() const { return num_measures_; }
  double theta() const { return theta_; }

 private:
  size_t num_measures_;
  double theta_;
  std::vector<double> corr_;  // Row-major num_measures x num_measures.
};

}  // namespace modis

#endif  // MODIS_MOO_CORRELATION_H_
