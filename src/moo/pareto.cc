#include "moo/pareto.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace modis {

bool Dominates(const PerfVector& a, const PerfVector& b) {
  MODIS_CHECK(a.size() == b.size()) << "Dominates: dimension mismatch";
  bool strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool EpsilonDominates(const PerfVector& a, const PerfVector& b, double eps) {
  MODIS_CHECK(a.size() == b.size()) << "EpsilonDominates: dimension mismatch";
  MODIS_CHECK(eps >= 0.0) << "negative epsilon";
  bool decisive = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > (1.0 + eps) * b[i]) return false;
    if (a[i] <= b[i]) decisive = true;
  }
  return decisive;
}

std::vector<size_t> ParetoFrontNaive(const std::vector<PerfVector>& points) {
  std::vector<size_t> front;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && Dominates(points[j], points[i])) dominated = true;
    }
    // Deduplicate exact ties: keep only the first occurrence.
    if (!dominated) {
      for (size_t j = 0; j < i && !dominated; ++j) {
        if (points[j] == points[i]) dominated = true;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

namespace {

/// Recursive KLP front over `order` (indices sorted by the first measure
/// ascending, ties broken lexicographically). Returns the subsequence of
/// non-dominated indices.
std::vector<size_t> KungRecurse(const std::vector<PerfVector>& points,
                                const std::vector<size_t>& order) {
  if (order.size() <= 1) return order;
  const size_t mid = order.size() / 2;
  std::vector<size_t> top(order.begin(), order.begin() + mid);
  std::vector<size_t> bottom(order.begin() + mid, order.end());
  std::vector<size_t> r_top = KungRecurse(points, top);
  std::vector<size_t> r_bottom = KungRecurse(points, bottom);
  // Points in the bottom half survive only if no top-half survivor
  // dominates them (top half is better or equal on the first measure).
  std::vector<size_t> merged = r_top;
  for (size_t b : r_bottom) {
    bool dominated = false;
    for (size_t t : r_top) {
      if (Dominates(points[t], points[b]) || points[t] == points[b]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(b);
  }
  return merged;
}

}  // namespace

std::vector<size_t> ParetoFrontKung(const std::vector<PerfVector>& points) {
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&points](size_t a, size_t b) {
    return points[a] < points[b];  // Lexicographic: first measure primary.
  });
  std::vector<size_t> front = KungRecurse(points, order);
  std::sort(front.begin(), front.end());
  return front;
}

std::vector<int64_t> GridPosition(const PerfVector& perf,
                                  const std::vector<double>& lower_bounds,
                                  double eps) {
  MODIS_CHECK(perf.size() == lower_bounds.size())
      << "GridPosition: bounds dimension mismatch";
  MODIS_CHECK(eps > 0.0) << "GridPosition: eps must be positive";
  MODIS_CHECK(!perf.empty()) << "GridPosition: empty performance vector";
  const double log_base = std::log(1.0 + eps);
  std::vector<int64_t> pos;
  pos.reserve(perf.size() - 1);
  for (size_t i = 0; i + 1 < perf.size(); ++i) {
    MODIS_CHECK(lower_bounds[i] > 0.0) << "GridPosition: p_l must be > 0";
    const double ratio = std::max(perf[i], lower_bounds[i]) / lower_bounds[i];
    pos.push_back(static_cast<int64_t>(std::floor(std::log(ratio) / log_base +
                                                  1e-12)));
  }
  return pos;
}

bool IsEpsilonCover(const std::vector<PerfVector>& all,
                    const std::vector<PerfVector>& kept, double eps) {
  for (const auto& p : all) {
    bool covered = false;
    for (const auto& q : kept) {
      if (EpsilonDominates(q, p, eps)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace modis
