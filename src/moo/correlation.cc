#include "moo/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace modis {

namespace {

/// Midranks of a sample (1-based; ties share the average rank).
std::vector<double> Midranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&v](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> rank(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double mid = 0.5 * (i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  return rank;
}

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 1e-12 || vb <= 1e-12) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  MODIS_CHECK(a.size() == b.size()) << "Spearman: size mismatch";
  if (a.size() < 2) return 0.0;
  return Pearson(Midranks(a), Midranks(b));
}

void CorrelationGraph::Update(const std::vector<PerfVector>& tests) {
  corr_.assign(num_measures_ * num_measures_, 0.0);
  if (tests.size() < 3) return;  // Too little evidence.
  std::vector<std::vector<double>> columns(num_measures_);
  for (auto& c : columns) c.reserve(tests.size());
  for (const auto& t : tests) {
    MODIS_CHECK(t.size() == num_measures_) << "correlation: perf size";
    for (size_t m = 0; m < num_measures_; ++m) columns[m].push_back(t[m]);
  }
  for (size_t i = 0; i < num_measures_; ++i) {
    corr_[i * num_measures_ + i] = 1.0;
    for (size_t j = i + 1; j < num_measures_; ++j) {
      const double c = SpearmanCorrelation(columns[i], columns[j]);
      corr_[i * num_measures_ + j] = c;
      corr_[j * num_measures_ + i] = c;
    }
  }
}

double CorrelationGraph::Corr(size_t i, size_t j) const {
  if (corr_.empty()) return 0.0;
  MODIS_CHECK(i < num_measures_ && j < num_measures_) << "Corr: index";
  return corr_[i * num_measures_ + j];
}

bool CorrelationGraph::StronglyCorrelated(size_t i, size_t j) const {
  return std::abs(Corr(i, j)) >= theta_;
}

std::vector<size_t> CorrelationGraph::PartnersOf(size_t i) const {
  std::vector<size_t> partners;
  for (size_t j = 0; j < num_measures_; ++j) {
    if (j != i && StronglyCorrelated(i, j)) partners.push_back(j);
  }
  std::sort(partners.begin(), partners.end(), [this, i](size_t a, size_t b) {
    return std::abs(Corr(i, a)) > std::abs(Corr(i, b));
  });
  return partners;
}

}  // namespace modis
