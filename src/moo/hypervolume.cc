#include "moo/hypervolume.h"

#include <algorithm>

#include "common/logging.h"

namespace modis {

double Hypervolume2D(const std::vector<PerfVector>& points,
                     const PerfVector& reference) {
  MODIS_CHECK(reference.size() == 2) << "Hypervolume2D: need 2 objectives";
  // Keep points that dominate the reference box corner.
  std::vector<PerfVector> pts;
  for (const auto& p : points) {
    MODIS_CHECK(p.size() == 2) << "Hypervolume2D: dimension mismatch";
    if (p[0] < reference[0] && p[1] < reference[1]) pts.push_back(p);
  }
  if (pts.empty()) return 0.0;
  std::sort(pts.begin(), pts.end());  // Ascending first objective.
  double volume = 0.0;
  double prev_y = reference[1];
  for (const auto& p : pts) {
    if (p[1] >= prev_y) continue;  // Dominated by an earlier point.
    volume += (reference[0] - p[0]) * (prev_y - p[1]);
    prev_y = p[1];
  }
  return volume;
}

double HypervolumeMonteCarlo(const std::vector<PerfVector>& points,
                             const PerfVector& reference, size_t samples,
                             Rng* rng) {
  MODIS_CHECK(!reference.empty()) << "Hypervolume: empty reference";
  if (points.empty() || samples == 0) return 0.0;
  const size_t d = reference.size();
  // Sampling box: [min over points, reference] per dimension.
  std::vector<double> lo(d);
  for (size_t j = 0; j < d; ++j) {
    double best = reference[j];
    for (const auto& p : points) {
      MODIS_CHECK(p.size() == d) << "Hypervolume: dimension mismatch";
      best = std::min(best, p[j]);
    }
    lo[j] = best;
  }
  double box = 1.0;
  for (size_t j = 0; j < d; ++j) box *= std::max(0.0, reference[j] - lo[j]);
  if (box <= 0.0) return 0.0;

  size_t hits = 0;
  std::vector<double> x(d);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t j = 0; j < d; ++j) x[j] = rng->Uniform(lo[j], reference[j]);
    for (const auto& p : points) {
      bool dominates = true;
      for (size_t j = 0; j < d; ++j) {
        if (p[j] > x[j]) {
          dominates = false;
          break;
        }
      }
      if (dominates) {
        ++hits;
        break;
      }
    }
  }
  return box * static_cast<double>(hits) / static_cast<double>(samples);
}

double Hypervolume(const std::vector<PerfVector>& points,
                   const PerfVector& reference, size_t samples,
                   uint64_t seed) {
  if (reference.size() == 2) return Hypervolume2D(points, reference);
  Rng rng(seed);
  return HypervolumeMonteCarlo(points, reference, samples, &rng);
}

}  // namespace modis
