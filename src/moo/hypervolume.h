#ifndef MODIS_MOO_HYPERVOLUME_H_
#define MODIS_MOO_HYPERVOLUME_H_

#include "common/rng.h"
#include "moo/pareto.h"

namespace modis {

/// Hypervolume indicator: the measure of the objective-space region
/// dominated by `points` and bounded by `reference` (all objectives
/// minimized; points worse than the reference contribute nothing). The
/// standard scalar quality metric for comparing skyline approximations —
/// used by the ablation benches to score MODis vs NSGA-II fronts.
///
/// Exact sweep for 2 objectives.
double Hypervolume2D(const std::vector<PerfVector>& points,
                     const PerfVector& reference);

/// Monte-Carlo estimate for any dimension (relative error ~ 1/sqrt(samples)).
double HypervolumeMonteCarlo(const std::vector<PerfVector>& points,
                             const PerfVector& reference, size_t samples,
                             Rng* rng);

/// Dispatches to the exact 2-D sweep or the Monte-Carlo estimate.
double Hypervolume(const std::vector<PerfVector>& points,
                   const PerfVector& reference, size_t samples = 20000,
                   uint64_t seed = 123);

}  // namespace modis

#endif  // MODIS_MOO_HYPERVOLUME_H_
