#ifndef MODIS_MOO_DIVERSITY_H_
#define MODIS_MOO_DIVERSITY_H_

#include <vector>

#include "common/rng.h"
#include "moo/pareto.h"

namespace modis {

/// One candidate in a diversification pool: its state bitmap L (as 0/1
/// doubles) and its valuated performance vector.
struct DiversityItem {
  std::vector<double> bitmap;
  PerfVector perf;
};

/// Pairwise distance of Equation (2):
///   dis(Di, Dj) = alpha * (1 - cos(L_i, L_j)) / 2
///               + (1 - alpha) * euc(P_i, P_j) / euc_max.
/// `euc_max` normalizes the performance term; it must be positive (use the
/// maximum pairwise distance over historical tests).
double DiversityDistance(const DiversityItem& a, const DiversityItem& b,
                         double alpha, double euc_max);

/// Diversification score div(S) = sum over unordered pairs of
/// DiversityDistance.
double DiversityScore(const std::vector<DiversityItem>& items,
                      const std::vector<size_t>& subset, double alpha,
                      double euc_max);

/// Greedy select-and-replace diversified k-subset (Algorithm 3 /
/// DivMODis): seeds a random k-subset and keeps swapping a member for a
/// pool element while the score improves. Streaming-submodular analysis
/// gives a 1/4 approximation of the optimum (Lemma 5).
std::vector<size_t> DiversifyGreedy(const std::vector<DiversityItem>& items,
                                    size_t k, double alpha, double euc_max,
                                    Rng* rng);

/// Largest pairwise euclidean distance among the given performance vectors
/// (>= small positive floor so it can normalize Eq. 2).
double MaxEuclideanDistance(const std::vector<PerfVector>& perfs);

}  // namespace modis

#endif  // MODIS_MOO_DIVERSITY_H_
