#include "storage/paged_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace modis {

namespace {

/// Index-entry field offsets within its 48 bytes.
constexpr size_t kEnHash = 0;
constexpr size_t kEnFingerprint = 8;
constexpr size_t kEnMinEpoch = 16;
constexpr size_t kEnLastHit = 24;
constexpr size_t kEnPage = 32;
constexpr size_t kEnBytes = 36;
constexpr size_t kEnOffset = 40;
constexpr size_t kEnFlags = 44;

constexpr uint32_t kFlagLive = 0;
constexpr uint32_t kFlagDead = 1;

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xFF;
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xFF;
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

uint64_t KeyHash(uint64_t fingerprint, const std::string& key) {
  return FingerprintBuilder().Add(fingerprint).Add(key).Digest();
}

}  // namespace

Result<std::unique_ptr<PagedStore>> PagedStore::Open(const std::string& path,
                                                     bool read_only,
                                                     const Options& options) {
  PageFile::CreateOptions create;
  create.page_size = options.page_size;
  create.bucket_count = options.bucket_count;
  MODIS_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> file,
                         PageFile::Open(path, read_only, create));
  // AppendStream pins two data pages while chaining; anything below that
  // would deadlock the pool against itself.
  const size_t frames = std::max<size_t>(
      2, options.buffer_frames == 0 ? kDefaultBufferFrames
                                    : options.buffer_frames);
  auto store = std::unique_ptr<PagedStore>(
      new PagedStore(std::move(file), frames, read_only));
  if (store->file_->created()) return store;

  // Sanity-check the two pages the store cannot operate without. A torn
  // directory page in a writable store is rebuilt empty: every record
  // becomes unreachable (lookups retrain and re-insert — safe), which is
  // the quarantine contract applied to the index root. Read-only stores
  // leave the damage in place and degrade every lookup to a miss.
  PageFile::Meta& meta = store->file_->meta();
  bool dir_ok = false;
  {
    auto dir = store->pool_->Fetch(meta.dir_page);
    dir_ok =
        dir.ok() && PageFile::PageTypeOf(dir->data()) == PageFile::kDirectory &&
        PageFile::PageUsed(dir->data()) >= meta.bucket_count * 4 &&
        PageFile::PageUsed(dir->data()) <= store->file_->payload_capacity();
  }  // The directory ref must be released before any rebuild below.
  if (!dir_ok) {
    ++store->quarantined_;
    if (!read_only) {
      auto fresh = store->pool_->Create(meta.dir_page);
      if (!fresh.ok()) return fresh.status();
      PageFile::SetPageType(fresh->data(), PageFile::kDirectory);
      PageFile::SetPageUsed(fresh->data(), meta.bucket_count * 4);
      meta.record_count = 0;
      meta.dead_records = 0;
      meta.active_data_page = 0;
    }
  }
  if (!read_only && meta.active_data_page != 0) {
    auto active = store->pool_->Fetch(meta.active_data_page);
    const bool active_ok =
        active.ok() && PageFile::PageTypeOf(active->data()) == PageFile::kData &&
        PageFile::PageUsed(active->data()) <= store->file_->payload_capacity();
    if (!active_ok) {
      // Abandon the torn tail page; the next insert starts a fresh one.
      ++store->quarantined_;
      meta.active_data_page = 0;
    }
  }
  return store;
}

bool PagedStore::ReadRecordStream(const uint8_t* entry,
                                  std::vector<uint8_t>* bytes) {
  const uint64_t min_epoch = LoadU64(entry + kEnMinEpoch);
  uint32_t page = LoadU32(entry + kEnPage);
  uint32_t total = LoadU32(entry + kEnBytes);
  uint32_t offset = LoadU32(entry + kEnOffset);
  if (total < 5 || total > 4 + RecordLog::kMaxPayloadSize) return false;
  bytes->clear();
  bytes->reserve(total);
  const size_t cap = file_->payload_capacity();
  uint32_t remaining = total;
  uint32_t hops = 0;
  while (remaining > 0) {
    if (page == 0 || ++hops > file_->meta().page_count) return false;
    auto ref = pool_->Fetch(page);
    if (!ref.ok()) return false;
    const uint8_t* data = ref->data();
    if (PageFile::PageTypeOf(data) != PageFile::kData) return false;
    // A page older than the entry that points into it is a stale
    // duplicate image; refuse to serve it.
    if (PageFile::PageEpoch(data) < min_epoch) return false;
    const uint32_t used = PageFile::PageUsed(data);
    if (used > cap || offset >= used) return false;
    const uint32_t n = std::min(remaining, used - offset);
    bytes->insert(bytes->end(), data + PageFile::kPageHeaderSize + offset,
                  data + PageFile::kPageHeaderSize + offset + n);
    remaining -= n;
    offset = 0;
    page = PageFile::PageNext(data);
  }
  return true;
}

bool PagedStore::Lookup(uint64_t fingerprint, const std::string& key,
                        EntryLoc* loc, StoredRecord* record) {
  const uint64_t hash = KeyHash(fingerprint, key);
  const PageFile::Meta& meta = file_->meta();
  uint32_t head = 0;
  {
    auto dir = pool_->Fetch(meta.dir_page);
    if (!dir.ok() ||
        PageFile::PageTypeOf(dir->data()) != PageFile::kDirectory) {
      ++quarantined_;
      return false;
    }
    const uint32_t bucket =
        static_cast<uint32_t>(hash % std::max<uint32_t>(1, meta.bucket_count));
    head = LoadU32(dir->data() + PageFile::kPageHeaderSize + 4 * bucket);
  }
  std::vector<uint8_t> stream;
  uint32_t hops = 0;
  for (uint32_t page = head; page != 0;) {
    if (++hops > meta.page_count) {
      ++quarantined_;
      return false;
    }
    auto ref = pool_->Fetch(page);
    if (!ref.ok() || PageFile::PageTypeOf(ref->data()) != PageFile::kIndex ||
        PageFile::PageUsed(ref->data()) > file_->payload_capacity()) {
      // Broken chain link: entries behind it are unreachable (a miss);
      // the quarantine counter records the degradation.
      ++quarantined_;
      return false;
    }
    const uint8_t* payload = ref->data() + PageFile::kPageHeaderSize;
    const uint32_t n = PageFile::PageUsed(ref->data()) / kIndexEntrySize;
    for (uint32_t slot = 0; slot < n; ++slot) {
      const uint8_t* entry = payload + size_t(slot) * kIndexEntrySize;
      if (LoadU32(entry + kEnFlags) != kFlagLive) continue;
      if (LoadU64(entry + kEnHash) != hash) continue;
      if (LoadU64(entry + kEnFingerprint) != fingerprint) continue;
      if (!ReadRecordStream(entry, &stream)) {
        ++quarantined_;
        continue;
      }
      const uint32_t len = LoadU32(stream.data());
      if (len + 4 != LoadU32(entry + kEnBytes)) {
        ++quarantined_;
        continue;
      }
      StoredRecord decoded;
      if (!RecordLog::DecodePayload(stream.data() + 4, len, &decoded) ||
          decoded.fingerprint != fingerprint) {
        ++quarantined_;
        continue;
      }
      if (decoded.key != key) continue;  // Hash collision; keep looking.
      if (loc != nullptr) {
        loc->ipage = page;
        loc->slot = slot;
      }
      if (record != nullptr) *record = std::move(decoded);
      return true;
    }
    page = PageFile::PageNext(ref->data());
  }
  return false;
}

Status PagedStore::TouchEntry(const EntryLoc& loc) {
  // Recency exists to order evictions, which only a writer performs; a
  // read-only store must not dirty frames it can never write back.
  if (read_only_) return Status::OK();
  MODIS_ASSIGN_OR_RETURN(BufferPool::PageRef ref, pool_->Fetch(loc.ipage));
  uint8_t* entry = ref.data() + PageFile::kPageHeaderSize +
                   size_t(loc.slot) * kIndexEntrySize;
  StoreU64(entry + kEnLastHit, ++file_->meta().tick);
  ref.MarkDirty();
  return Status::OK();
}

bool PagedStore::Contains(uint64_t fingerprint, const std::string& key) {
  return Lookup(fingerprint, key, nullptr, nullptr);
}

bool PagedStore::Touch(uint64_t fingerprint, const std::string& key) {
  EntryLoc loc;
  if (!Lookup(fingerprint, key, &loc, nullptr)) return false;
  (void)TouchEntry(loc);  // Best-effort; a miss here only skews recency.
  return true;
}

bool PagedStore::Get(uint64_t fingerprint, const std::string& key,
                     StoredRecord* out) {
  EntryLoc loc;
  if (!Lookup(fingerprint, key, &loc, out)) return false;
  (void)TouchEntry(loc);
  return true;
}

Status PagedStore::AppendStream(const std::vector<uint8_t>& bytes,
                                uint32_t* page, uint32_t* offset) {
  PageFile::Meta& meta = file_->meta();
  const size_t cap = file_->payload_capacity();
  BufferPool::PageRef ref;
  if (meta.active_data_page != 0) {
    auto active = pool_->Fetch(meta.active_data_page);
    if (active.ok() &&
        PageFile::PageTypeOf(active->data()) == PageFile::kData &&
        PageFile::PageUsed(active->data()) <= cap) {
      ref = std::move(active).value();
    } else {
      ++quarantined_;  // Torn tail page: abandon it, start fresh.
      meta.active_data_page = 0;
    }
  }
  if (!ref) {
    const uint32_t id = file_->AllocatePage();
    MODIS_ASSIGN_OR_RETURN(ref, pool_->Create(id));
    PageFile::SetPageType(ref.data(), PageFile::kData);
    meta.active_data_page = id;
  }
  uint32_t used = PageFile::PageUsed(ref.data());
  *page = 0;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (used == cap) {
      const uint32_t id = file_->AllocatePage();
      MODIS_ASSIGN_OR_RETURN(BufferPool::PageRef next, pool_->Create(id));
      PageFile::SetPageType(next.data(), PageFile::kData);
      PageFile::SetPageNext(ref.data(), id);
      ref.MarkDirty();
      ref = std::move(next);
      used = 0;
      meta.active_data_page = id;
    }
    if (*page == 0) {
      *page = ref.id();
      *offset = used;
    }
    const size_t n = std::min(cap - used, bytes.size() - pos);
    std::memcpy(ref.data() + PageFile::kPageHeaderSize + used,
                bytes.data() + pos, n);
    used += static_cast<uint32_t>(n);
    PageFile::SetPageUsed(ref.data(), used);
    ref.MarkDirty();
    pos += n;
  }
  return Status::OK();
}

Status PagedStore::AppendEntry(uint32_t bucket, const uint8_t* entry) {
  PageFile::Meta& meta = file_->meta();
  const size_t cap = file_->payload_capacity();
  uint32_t head = 0;
  {
    MODIS_ASSIGN_OR_RETURN(BufferPool::PageRef dir,
                           pool_->Fetch(meta.dir_page));
    if (PageFile::PageTypeOf(dir.data()) != PageFile::kDirectory) {
      return Status::IoError("directory page lost its type: " + path_);
    }
    head = LoadU32(dir.data() + PageFile::kPageHeaderSize + 4 * bucket);
  }
  if (head != 0) {
    auto iref = pool_->Fetch(head);
    if (iref.ok() && PageFile::PageTypeOf(iref->data()) == PageFile::kIndex &&
        PageFile::PageUsed(iref->data()) + kIndexEntrySize <= cap) {
      const uint32_t used = PageFile::PageUsed(iref->data());
      std::memcpy(iref->data() + PageFile::kPageHeaderSize + used, entry,
                  kIndexEntrySize);
      PageFile::SetPageUsed(iref->data(), used + kIndexEntrySize);
      iref->MarkDirty();
      return Status::OK();
    }
    // Full — or unreadable, in which case the new head still links to it
    // so any later GC can account for the breakage.
  }
  const uint32_t id = file_->AllocatePage();
  MODIS_ASSIGN_OR_RETURN(BufferPool::PageRef fresh, pool_->Create(id));
  PageFile::SetPageType(fresh.data(), PageFile::kIndex);
  PageFile::SetPageNext(fresh.data(), head);
  std::memcpy(fresh.data() + PageFile::kPageHeaderSize, entry,
              kIndexEntrySize);
  PageFile::SetPageUsed(fresh.data(), kIndexEntrySize);
  MODIS_ASSIGN_OR_RETURN(BufferPool::PageRef dir,
                         pool_->Fetch(meta.dir_page));
  StoreU32(dir.data() + PageFile::kPageHeaderSize + 4 * bucket, id);
  dir.MarkDirty();
  return Status::OK();
}

bool PagedStore::Insert(const StoredRecord& record) {
  if (read_only_) return false;
  if (Lookup(record.fingerprint, record.key, nullptr, nullptr)) {
    return false;  // First write wins, as in the v1 cache.
  }
  const std::vector<uint8_t> payload = RecordLog::EncodePayload(record);
  std::vector<uint8_t> stream;
  stream.reserve(4 + payload.size());
  stream.resize(4);
  StoreU32(stream.data(), static_cast<uint32_t>(payload.size()));
  stream.insert(stream.end(), payload.begin(), payload.end());

  uint32_t page = 0, offset = 0;
  if (!AppendStream(stream, &page, &offset).ok()) return false;

  PageFile::Meta& meta = file_->meta();
  const uint64_t hash = KeyHash(record.fingerprint, record.key);
  uint8_t entry[kIndexEntrySize];
  std::memset(entry, 0, sizeof(entry));
  StoreU64(entry + kEnHash, hash);
  StoreU64(entry + kEnFingerprint, record.fingerprint);
  StoreU64(entry + kEnMinEpoch, file_->working_epoch());
  StoreU64(entry + kEnLastHit, ++meta.tick);
  StoreU32(entry + kEnPage, page);
  StoreU32(entry + kEnBytes, static_cast<uint32_t>(stream.size()));
  StoreU32(entry + kEnOffset, offset);
  StoreU32(entry + kEnFlags, kFlagLive);
  const uint32_t bucket = static_cast<uint32_t>(
      hash % std::max<uint32_t>(1, meta.bucket_count));
  if (!AppendEntry(bucket, entry).ok()) return false;
  ++meta.record_count;
  return true;
}

Status PagedStore::Flush() {
  if (read_only_) return Status::OK();
  MODIS_RETURN_IF_ERROR(pool_->FlushDirty());
  return file_->Commit();
}

Status PagedStore::CollectEntries(std::vector<EntryInfo>* out) {
  const PageFile::Meta& meta = file_->meta();
  std::vector<uint32_t> heads(meta.bucket_count, 0);
  {
    auto dir = pool_->Fetch(meta.dir_page);
    if (!dir.ok() ||
        PageFile::PageTypeOf(dir->data()) != PageFile::kDirectory) {
      ++quarantined_;
      return Status::OK();  // Degraded: nothing reachable.
    }
    for (uint32_t b = 0; b < meta.bucket_count; ++b) {
      heads[b] = LoadU32(dir->data() + PageFile::kPageHeaderSize + 4 * b);
    }
  }
  for (uint32_t b = 0; b < meta.bucket_count; ++b) {
    uint32_t hops = 0;
    for (uint32_t page = heads[b]; page != 0;) {
      if (++hops > meta.page_count) {
        ++quarantined_;
        break;
      }
      auto ref = pool_->Fetch(page);
      if (!ref.ok() ||
          PageFile::PageTypeOf(ref->data()) != PageFile::kIndex ||
          PageFile::PageUsed(ref->data()) > file_->payload_capacity()) {
        ++quarantined_;
        break;
      }
      const uint8_t* payload = ref->data() + PageFile::kPageHeaderSize;
      const uint32_t n = PageFile::PageUsed(ref->data()) / kIndexEntrySize;
      for (uint32_t slot = 0; slot < n; ++slot) {
        const uint8_t* entry = payload + size_t(slot) * kIndexEntrySize;
        if (LoadU32(entry + kEnFlags) != kFlagLive) continue;
        EntryInfo info;
        info.fingerprint = LoadU64(entry + kEnFingerprint);
        info.last_hit = LoadU64(entry + kEnLastHit);
        info.stream_bytes = LoadU32(entry + kEnBytes);
        info.bucket = b;
        info.ipage = page;
        info.slot = slot;
        out->push_back(info);
      }
      page = PageFile::PageNext(ref->data());
    }
  }
  return Status::OK();
}

Status PagedStore::CountRecords(uint64_t fingerprint, size_t* total,
                                size_t* task) {
  std::vector<EntryInfo> entries;
  MODIS_RETURN_IF_ERROR(CollectEntries(&entries));
  *total = entries.size();
  *task = 0;
  for (const EntryInfo& e : entries) {
    if (e.fingerprint == fingerprint) ++*task;
  }
  return Status::OK();
}

Status PagedStore::Tombstone(const std::vector<EntryInfo>& victims) {
  if (read_only_) {
    return Status::FailedPrecondition("cannot evict from a read-only store");
  }
  PageFile::Meta& meta = file_->meta();
  for (const EntryInfo& v : victims) {
    auto ref = pool_->Fetch(v.ipage);
    if (!ref.ok()) {
      ++quarantined_;
      continue;
    }
    uint8_t* entry = ref->data() + PageFile::kPageHeaderSize +
                     size_t(v.slot) * kIndexEntrySize;
    if (LoadU32(entry + kEnFlags) != kFlagLive) continue;
    StoreU32(entry + kEnFlags, kFlagDead);
    ref->MarkDirty();
    if (meta.record_count > 0) --meta.record_count;
    ++meta.dead_records;
  }
  return Status::OK();
}

Result<uint64_t> PagedStore::ProjectedLiveBytes() {
  std::vector<EntryInfo> entries;
  MODIS_RETURN_IF_ERROR(CollectEntries(&entries));
  const PageFile::Meta& meta = file_->meta();
  const uint64_t cap = file_->payload_capacity();
  const uint64_t entries_per_page = cap / kIndexEntrySize;
  std::unordered_map<uint32_t, uint64_t> per_bucket;
  uint64_t stream_bytes = 0;
  for (const EntryInfo& e : entries) {
    stream_bytes += e.stream_bytes;
    ++per_bucket[e.bucket];
  }
  // A GC rebuild packs the record stream contiguously and fills each
  // bucket's index chain page by page, so its size is exactly:
  uint64_t pages = 2;  // Superblock + directory.
  pages += (stream_bytes + cap - 1) / cap;
  for (const auto& [bucket, n] : per_bucket) {
    (void)bucket;
    pages += (n + entries_per_page - 1) / entries_per_page;
  }
  return pages * uint64_t(meta.page_size);
}

Status PagedStore::ReadAllRecords(std::vector<StoredRecord>* out) {
  std::vector<EntryInfo> entries;
  MODIS_RETURN_IF_ERROR(CollectEntries(&entries));
  std::vector<uint8_t> stream;
  for (const EntryInfo& e : entries) {
    auto ref = pool_->Fetch(e.ipage);
    if (!ref.ok()) {
      ++quarantined_;
      continue;
    }
    const uint8_t* entry = ref->data() + PageFile::kPageHeaderSize +
                           size_t(e.slot) * kIndexEntrySize;
    StoredRecord record;
    if (!ReadRecordStream(entry, &stream)) {
      ++quarantined_;
      continue;
    }
    const uint32_t len = LoadU32(stream.data());
    if (len + 4 != LoadU32(entry + kEnBytes) ||
        !RecordLog::DecodePayload(stream.data() + 4, len, &record)) {
      ++quarantined_;
      continue;
    }
    out->push_back(std::move(record));
  }
  return Status::OK();
}

Status PagedStore::Gc(size_t* dropped) {
  if (read_only_) {
    return Status::FailedPrecondition("cannot GC a read-only store");
  }
  const uint64_t dead_before = file_->meta().dead_records;
  const uint64_t old_bytes = file_->file_bytes();

  // Export the live set with its recency, so eviction order survives GC.
  std::vector<EntryInfo> entries;
  MODIS_RETURN_IF_ERROR(CollectEntries(&entries));
  std::vector<std::pair<StoredRecord, uint64_t>> live;
  live.reserve(entries.size());
  {
    std::vector<uint8_t> stream;
    for (const EntryInfo& e : entries) {
      auto ref = pool_->Fetch(e.ipage);
      if (!ref.ok()) {
        ++quarantined_;
        continue;
      }
      const uint8_t* entry = ref->data() + PageFile::kPageHeaderSize +
                             size_t(e.slot) * kIndexEntrySize;
      StoredRecord record;
      if (!ReadRecordStream(entry, &stream)) {
        ++quarantined_;
        continue;
      }
      const uint32_t len = LoadU32(stream.data());
      if (len + 4 != LoadU32(entry + kEnBytes) ||
          !RecordLog::DecodePayload(stream.data() + 4, len, &record)) {
        ++quarantined_;
        continue;
      }
      live.emplace_back(std::move(record), e.last_hit);
    }
  }

  // Build the replacement beside the store and lock it before it becomes
  // visible under path_ — the same no-gap carry as RecordLog::Rewrite.
  const std::string tmp = path_ + ".gc";
  std::remove(tmp.c_str());
  Options rebuild;
  rebuild.page_size = file_->page_size();
  rebuild.bucket_count = file_->meta().bucket_count;
  rebuild.buffer_frames = pool_->frame_budget();
  MODIS_ASSIGN_OR_RETURN(std::unique_ptr<PagedStore> next,
                         Open(tmp, /*read_only=*/false, rebuild));
  uint64_t max_tick = 0;
  for (const auto& [record, last_hit] : live) {
    if (!next->Insert(record)) {
      std::remove(tmp.c_str());
      return Status::IoError("GC rebuild failed to insert a record: " + tmp);
    }
    // Restamp the entry with its original recency (Insert ticked it).
    EntryLoc loc;
    if (next->Lookup(record.fingerprint, record.key, &loc, nullptr)) {
      auto ref = next->pool_->Fetch(loc.ipage);
      if (ref.ok()) {
        StoreU64(ref->data() + PageFile::kPageHeaderSize +
                     size_t(loc.slot) * kIndexEntrySize + kEnLastHit,
                 last_hit);
        ref->MarkDirty();
      }
    }
    max_tick = std::max(max_tick, last_hit);
  }
  next->file_->meta().tick = std::max(file_->meta().tick, max_tick);
  {
    const Status flushed = next->Flush();
    if (!flushed.ok()) {
      std::remove(tmp.c_str());
      return flushed;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot swap GC'd store into place: " + path_);
  }
  // Adopt the replacement; destroying the old PageFile afterwards closes
  // the old inode's lock with the new one already held.
  const uint64_t new_bytes = next->file_->file_bytes();
  file_ = std::move(next->file_);
  pool_ = std::move(next->pool_);
  file_->set_path(path_);
  if (old_bytes > new_bytes) reclaimed_bytes_ += old_bytes - new_bytes;
  if (dropped != nullptr) *dropped = static_cast<size_t>(dead_before);
  return Status::OK();
}

PagedStore::Stats PagedStore::stats() const {
  Stats s;
  const PageFile::Meta& meta = file_->meta();
  s.record_count = meta.record_count;
  s.dead_records = meta.dead_records;
  s.quarantined = quarantined_;
  s.reclaimed_bytes = reclaimed_bytes_;
  s.file_bytes = file_->file_bytes();
  s.page_count = meta.page_count;
  s.page_size = meta.page_size;
  s.discarded_tail_bytes = file_->discarded_tail_bytes();
  s.pool = pool_->stats();
  return s;
}

}  // namespace modis
