#ifndef MODIS_STORAGE_BUFFER_POOL_H_
#define MODIS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"

namespace modis {

/// A fixed-budget page cache between PagedStore and PageFile.
///
/// The pool owns at most `frame_budget` page-sized frames. Fetch() pins a
/// frame (reading it from disk on a miss) and returns an RAII PageRef
/// that unpins on destruction; Create() pins a zero-filled frame for a
/// freshly allocated page without touching disk. Pinned frames are never
/// evicted; when every frame is pinned and none can be recycled, Fetch
/// fails with FailedPrecondition rather than exceeding the budget — the
/// budget is the memory contract the bounded-RSS serving mode relies on.
///
/// Replacement is LRU over unpinned frames. Evicting a dirty frame
/// writes it back first; FlushDirty() writes every dirty frame exactly
/// once and clears its dirty bit, so a second flush with no intervening
/// writes performs zero write-backs.
///
/// Thread safety: the pool's own bookkeeping (pin counts, LRU, dirty
/// bits) is mutex-protected, so refs may be acquired and released from
/// any thread. The bytes behind a PageRef are NOT synchronized by the
/// pool: callers that share a page between threads, or flush while a
/// writer holds a pinned ref, must serialize externally (PagedStore runs
/// under PersistentRecordCache's mutex).
class BufferPool {
 public:
  struct Stats {
    uint64_t fetches = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;      // == pages read from disk.
    uint64_t evictions = 0;
    uint64_t writebacks = 0;  // Dirty pages written (flush or eviction).
    size_t frames_in_use = 0;
    size_t pinned_frames = 0;
    size_t max_frames_in_use = 0;  // High-water mark; never exceeds budget.
  };

  /// A pinned view of one page. Movable; releasing (destruction or
  /// move-assignment over) unpins the frame.
  class PageRef {
   public:
    PageRef() = default;
    ~PageRef() { Release(); }
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        frame_ = other.frame_;
        other.pool_ = nullptr;
      }
      return *this;
    }
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    uint8_t* data();
    const uint8_t* data() const;
    uint32_t id() const;
    /// Marks the frame dirty so the next flush (or eviction) writes it.
    void MarkDirty();
    explicit operator bool() const { return pool_ != nullptr; }

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}
    void Release();

    BufferPool* pool_ = nullptr;
    size_t frame_ = 0;
  };

  /// `file` must outlive the pool. A zero budget is clamped to one frame.
  BufferPool(PageFile* file, size_t frame_budget);

  /// Pins the frame holding `page_id`, reading it from disk on a miss.
  /// A page that fails validation (CRC, epoch bound) is not cached — the
  /// error surfaces to the caller and the frame is recycled.
  Result<PageRef> Fetch(uint32_t page_id);

  /// Pins a zero-filled, dirty frame for freshly allocated `page_id`
  /// without reading disk. The caller sets the header fields.
  Result<PageRef> Create(uint32_t page_id);

  /// Writes every dirty frame back exactly once. Stops at the first
  /// write error.
  Status FlushDirty();

  /// Forgets every frame without writing anything — used after the
  /// storage layer swapped the underlying file (GC). Fails if any frame
  /// is still pinned.
  Status DropAll();

  /// Retargets the pool at a new file after a GC swap (frames must have
  /// been dropped first).
  void Retarget(PageFile* file) { file_ = file; }

  Stats stats() const;
  size_t frame_budget() const { return budget_; }

 private:
  struct Frame {
    uint32_t page_id = 0;
    int pins = 0;
    bool dirty = false;
    uint64_t lru = 0;
    std::vector<uint8_t> bytes;
  };

  /// Finds a reusable frame slot (new, free, or evicted-LRU). Caller
  /// holds mu_. Returns false when every frame is pinned.
  bool AcquireSlotLocked(size_t* slot, Status* evict_error);
  void Unpin(size_t frame);

  mutable std::mutex mu_;
  PageFile* file_;
  const size_t budget_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_slots_;
  std::unordered_map<uint32_t, size_t> by_page_;
  uint64_t lru_clock_ = 0;
  Stats stats_;
};

}  // namespace modis

#endif  // MODIS_STORAGE_BUFFER_POOL_H_
