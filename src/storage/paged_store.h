#ifndef MODIS_STORAGE_PAGED_STORE_H_
#define MODIS_STORAGE_PAGED_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/record_log.h"

namespace modis {

/// Record storage over a PageFile with an on-disk hash index, so a point
/// lookup touches O(1) pages instead of replaying the whole file (the v1
/// RecordLog behavior). This is the paged backend of
/// PersistentRecordCache; the record payload encoding is shared with the
/// v1 log (RecordLog::EncodePayload), so records migrate between the two
/// byte-for-byte.
///
/// On-disk structure (see docs/PERSISTENCE.md for diagrams):
///  - one directory page: u32 head-index-page id per hash bucket;
///  - index pages, chained newest-first per bucket, packed with 48-byte
///    entries: u64 key_hash | u64 fingerprint | u64 min_epoch |
///    u64 last_hit | u32 page | u32 bytes | u32 offset | u32 flags;
///  - data pages holding a byte stream of `u32 length | payload` records
///    that may span pages through the header's `next` link.
///
/// `min_epoch` records the file's working epoch when the entry was
/// written; a data page whose stamped epoch is older is a stale duplicate
/// (an old image resurrected by a misbehaving disk) and the lookup
/// reports a miss instead of serving it. Every lookup re-verifies the
/// decoded record's fingerprint and key against the query, so a hash
/// collision or corrupt-but-CRC-valid frame can never serve wrong bytes.
/// Any validation failure — CRC, epoch, type, bounds, decode — counts as
/// `stats().quarantined` and degrades to a miss, mirroring the v1
/// torn-tail contract at page granularity.
///
/// Compaction is page-level GC: Gc() rebuilds the live set into
/// `path + ".gc"`, locks the replacement, then renames it over the store
/// (the same no-gap lock carry as RecordLog::Rewrite), which both drops
/// tombstoned entries and returns their pages to the filesystem.
///
/// Not thread-safe: PersistentRecordCache wraps every call in its mutex.
class PagedStore {
 public:
  struct Options {
    uint32_t page_size = 0;     // 0 = PageFile::kDefaultPageSize.
    uint32_t bucket_count = 0;  // 0 = derived from the page size.
    size_t buffer_frames = 0;   // 0 = kDefaultBufferFrames.
  };

  static constexpr size_t kDefaultBufferFrames = 64;
  static constexpr size_t kIndexEntrySize = 48;

  struct Stats {
    uint64_t record_count = 0;    // Live entries (per the superblock).
    uint64_t dead_records = 0;    // Tombstoned entries awaiting GC.
    uint64_t quarantined = 0;     // Lookups degraded by invalid pages.
    uint64_t reclaimed_bytes = 0; // File bytes returned by GC (session).
    uint64_t file_bytes = 0;
    uint32_t page_count = 0;
    uint32_t page_size = 0;
    size_t discarded_tail_bytes = 0;
    BufferPool::Stats pool;
  };

  /// Opens (creating if writable and absent) the paged store at `path`.
  /// Error contract matches PageFile::Open.
  static Result<std::unique_ptr<PagedStore>> Open(const std::string& path,
                                                  bool read_only,
                                                  const Options& options);

  /// Existence probe: no recency refresh, no serve accounting.
  bool Contains(uint64_t fingerprint, const std::string& key);

  /// Existence probe + recency refresh (plan-time touch).
  bool Touch(uint64_t fingerprint, const std::string& key);

  /// Copies the record into `*out` (nullptr skips the copy) and
  /// refreshes recency. Returns false on miss or quarantine.
  bool Get(uint64_t fingerprint, const std::string& key, StoredRecord* out);

  /// Appends the record and indexes it. Returns false (a no-op) when the
  /// key already exists — first write wins, as in the v1 cache — or when
  /// the store is read-only or the write failed (the caller degrades to
  /// in-memory caching, as with a failed v1 append).
  bool Insert(const StoredRecord& record);

  /// Writes back dirty pages, then commits the superblock. The store is
  /// crash-consistent at every return from Flush.
  Status Flush();

  /// One index-entry summary, for the eviction policy. `ipage`/`slot`
  /// locate the entry so it can be tombstoned without rehashing.
  struct EntryInfo {
    uint64_t fingerprint = 0;
    uint64_t last_hit = 0;
    uint32_t stream_bytes = 0;
    uint32_t bucket = 0;
    uint32_t ipage = 0;
    uint32_t slot = 0;
  };

  /// Collects every live entry by sweeping the index pages only (data
  /// pages stay untouched, so this does not defeat the O(1)-page lookup
  /// economics). Unreadable pages are skipped and counted as quarantined.
  Status CollectEntries(std::vector<EntryInfo>* out);

  /// Counts live records, and those of `fingerprint`, via an index sweep.
  Status CountRecords(uint64_t fingerprint, size_t* total, size_t* task);

  /// Tombstones the given entries (flags -> dead). The bytes are
  /// reclaimed by the next Gc().
  Status Tombstone(const std::vector<EntryInfo>& victims);

  /// The file size a GC rebuild of the current live set would produce.
  /// Used by the byte-bound eviction loop to pick victims before paying
  /// for the rebuild.
  Result<uint64_t> ProjectedLiveBytes();

  /// Page-level garbage collection: rebuilds the live set into a fresh
  /// file and renames it over this one with the writer lock carried.
  /// `*dropped` (optional) reports dead entries removed. Writable only.
  Status Gc(size_t* dropped);

  /// Reads every live record (index-sweep order) — the GC/migration
  /// export path. Quarantined records are skipped.
  Status ReadAllRecords(std::vector<StoredRecord>* out);

  /// Updates the remembered path after the cache layer renamed this
  /// store's file over another one (one-shot v1 migration lock carry).
  void RenamedTo(const std::string& path) {
    path_ = path;
    file_->set_path(path);
  }

  Stats stats() const;
  uint64_t file_bytes() const { return file_->file_bytes(); }
  const std::string& path() const { return path_; }
  bool read_only() const { return read_only_; }
  uint64_t recency_tick() const { return file_->meta().tick; }

 private:
  PagedStore(std::unique_ptr<PageFile> file, size_t frames, bool read_only)
      : file_(std::move(file)),
        pool_(new BufferPool(file_.get(), frames)),
        read_only_(read_only),
        path_(file_->path()) {}

  struct EntryLoc {
    uint32_t ipage = 0;  // Index page id.
    uint32_t slot = 0;   // Entry ordinal within the page.
  };

  /// Hash-chain lookup with full record verification. On success fills
  /// `*loc` (and `*record` if non-null). Quarantined candidates are
  /// counted and skipped.
  bool Lookup(uint64_t fingerprint, const std::string& key, EntryLoc* loc,
              StoredRecord* record);

  /// Reads + validates the record stream described by an index entry.
  bool ReadRecordStream(const uint8_t* entry, std::vector<uint8_t>* bytes);

  /// Bumps the persisted recency clock and stamps an entry's last_hit.
  Status TouchEntry(const EntryLoc& loc);

  /// Appends `bytes` to the data-page stream; returns the start position.
  Status AppendStream(const std::vector<uint8_t>& bytes, uint32_t* page,
                      uint32_t* offset);

  /// Appends a 48-byte entry to the bucket's index chain.
  Status AppendEntry(uint32_t bucket, const uint8_t* entry);

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  bool read_only_ = false;
  std::string path_;
  uint64_t quarantined_ = 0;
  uint64_t reclaimed_bytes_ = 0;
};

}  // namespace modis

#endif  // MODIS_STORAGE_PAGED_STORE_H_
