#include "storage/buffer_pool.h"

#include <algorithm>
#include <utility>

namespace modis {

uint8_t* BufferPool::PageRef::data() { return pool_->frames_[frame_].bytes.data(); }

const uint8_t* BufferPool::PageRef::data() const {
  return pool_->frames_[frame_].bytes.data();
}

uint32_t BufferPool::PageRef::id() const {
  return pool_->frames_[frame_].page_id;
}

void BufferPool::PageRef::MarkDirty() {
  std::lock_guard<std::mutex> lock(pool_->mu_);
  Frame& f = pool_->frames_[frame_];
  f.dirty = true;
  // A dirty frame is current by definition — write-back will stamp the
  // working epoch (or a later one) into it. Stamp it now so readers of
  // the cached frame don't mistake this session's own fresh bytes for a
  // stale duplicate image (the on-disk copy may carry an older epoch, or
  // none at all for a page created this session).
  PageFile::SetPageEpoch(f.bytes.data(), pool_->file_->working_epoch());
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t frame_budget)
    : file_(file), budget_(std::max<size_t>(1, frame_budget)) {
  // Never reallocated: PageRef::data() reads frames_ without the mutex,
  // so the vector's storage must stay put for the pool's lifetime.
  frames_.reserve(budget_);
}

bool BufferPool::AcquireSlotLocked(size_t* slot, Status* evict_error) {
  if (!free_slots_.empty()) {
    *slot = free_slots_.back();
    free_slots_.pop_back();
    return true;
  }
  if (frames_.size() < budget_) {
    frames_.emplace_back();
    *slot = frames_.size() - 1;
    return true;
  }
  // Evict the least-recently-used unpinned frame.
  size_t victim = frames_.size();
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].pins > 0) continue;
    if (victim == frames_.size() || frames_[i].lru < frames_[victim].lru) {
      victim = i;
    }
  }
  if (victim == frames_.size()) return false;  // Every frame is pinned.
  Frame& f = frames_[victim];
  if (f.dirty) {
    const Status written = file_->WritePage(f.page_id, &f.bytes);
    if (!written.ok()) {
      *evict_error = written;
      return false;
    }
    f.dirty = false;
    ++stats_.writebacks;
  }
  by_page_.erase(f.page_id);
  ++stats_.evictions;
  *slot = victim;
  return true;
}

Result<BufferPool::PageRef> BufferPool::Fetch(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetches;
  auto it = by_page_.find(page_id);
  if (it != by_page_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    f.lru = ++lru_clock_;
    ++stats_.hits;
    return PageRef(this, it->second);
  }
  size_t slot;
  Status evict_error = Status::OK();
  if (!AcquireSlotLocked(&slot, &evict_error)) {
    if (!evict_error.ok()) return evict_error;
    return Status::FailedPrecondition(
        "buffer pool exhausted: all " + std::to_string(budget_) +
        " frames are pinned");
  }
  Frame& f = frames_[slot];
  const Status read = file_->ReadPage(page_id, &f.bytes);
  if (!read.ok()) {
    // An invalid page is never cached; recycle the slot.
    free_slots_.push_back(slot);
    return read;
  }
  f.page_id = page_id;
  f.pins = 1;
  f.dirty = false;
  f.lru = ++lru_clock_;
  by_page_[page_id] = slot;
  ++stats_.misses;
  const size_t in_use = frames_.size() - free_slots_.size();
  stats_.max_frames_in_use = std::max(stats_.max_frames_in_use, in_use);
  return PageRef(this, slot);
}

Result<BufferPool::PageRef> BufferPool::Create(uint32_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetches;
  size_t slot;
  // Re-creating a cached page (a corrupt-directory rebuild) reuses its
  // frame in place so the map never aliases two frames to one page.
  auto it = by_page_.find(page_id);
  if (it != by_page_.end()) {
    Frame& f = frames_[it->second];
    if (f.pins > 0) {
      return Status::FailedPrecondition(
          "cannot recreate pinned page " + std::to_string(page_id));
    }
    f.bytes.assign(file_->page_size(), 0);
    PageFile::SetPageEpoch(f.bytes.data(), file_->working_epoch());
    f.pins = 1;
    f.dirty = true;
    f.lru = ++lru_clock_;
    return PageRef(this, it->second);
  }
  Status evict_error = Status::OK();
  if (!AcquireSlotLocked(&slot, &evict_error)) {
    if (!evict_error.ok()) return evict_error;
    return Status::FailedPrecondition(
        "buffer pool exhausted: all " + std::to_string(budget_) +
        " frames are pinned");
  }
  Frame& f = frames_[slot];
  f.bytes.assign(file_->page_size(), 0);
  // See MarkDirty: the cached frame's epoch must read as current.
  PageFile::SetPageEpoch(f.bytes.data(), file_->working_epoch());
  f.page_id = page_id;
  f.pins = 1;
  f.dirty = true;  // A created page must reach disk.
  f.lru = ++lru_clock_;
  by_page_[page_id] = slot;
  const size_t in_use = frames_.size() - free_slots_.size();
  stats_.max_frames_in_use = std::max(stats_.max_frames_in_use, in_use);
  return PageRef(this, slot);
}

Status BufferPool::FlushDirty() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (!f.dirty) continue;
    MODIS_RETURN_IF_ERROR(file_->WritePage(f.page_id, &f.bytes));
    f.dirty = false;
    ++stats_.writebacks;
  }
  return Status::OK();
}

Status BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Frame& f : frames_) {
    if (f.pins > 0) {
      return Status::FailedPrecondition(
          "cannot drop buffer pool frames: page " +
          std::to_string(f.page_id) + " is pinned");
    }
  }
  frames_.clear();
  free_slots_.clear();
  by_page_.clear();
  return Status::OK();
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  --frames_[frame].pins;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.frames_in_use = frames_.size() - free_slots_.size();
  snapshot.pinned_frames = 0;
  for (const Frame& f : frames_) {
    if (f.pins > 0) ++snapshot.pinned_frames;
  }
  return snapshot;
}

}  // namespace modis
