#include "storage/persistent_record_cache.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace modis {

namespace {

/// What lives at `path` right now, by magic. Short or foreign content is
/// kOther: the selected backend opens it and reports its own typed error.
enum class FileKind { kMissing, kV1Log, kPaged, kOther };

FileKind SniffFormat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return FileKind::kMissing;
  char magic[8] = {0};
  const size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  if (got == sizeof(magic)) {
    if (std::memcmp(magic, RecordLog::kMagic, sizeof(magic)) == 0) {
      return FileKind::kV1Log;
    }
    if (std::memcmp(magic, PageFile::kMagic, sizeof(magic)) == 0) {
      return FileKind::kPaged;
    }
  }
  return FileKind::kOther;
}

PagedStore::Options StoreOptions(const PersistentRecordCache::Options& o) {
  PagedStore::Options s;
  s.page_size = o.page_size;
  s.buffer_frames = o.buffer_pool_frames;
  return s;
}

/// One-shot v1 -> paged migration. The v1 log is replayed under its
/// writer lock (torn tail truncated, last write per key wins — exactly
/// what a v1 load would have indexed), rebuilt into `path + ".migrate"`,
/// and renamed over the log with the replacement's lock already held; the
/// v1 lock on the dead inode is released only afterwards, so the
/// single-writer exclusion has no gap. A crash mid-migration leaves the
/// v1 file untouched and at most a stale tmp file behind.
Result<std::unique_ptr<PagedStore>> MigrateV1ToPaged(
    const std::string& path, const PersistentRecordCache::Options& options) {
  std::vector<StoredRecord> records;
  MODIS_ASSIGN_OR_RETURN(RecordLog log,
                         RecordLog::Open(path, /*read_only=*/false, &records));
  std::unordered_map<uint64_t, std::unordered_map<std::string, size_t>> seen;
  std::vector<StoredRecord> live;
  live.reserve(records.size());
  for (StoredRecord& r : records) {
    auto [it, inserted] = seen[r.fingerprint].try_emplace(r.key, live.size());
    if (inserted) {
      live.push_back(std::move(r));
    } else {
      live[it->second] = std::move(r);
    }
  }
  const std::string tmp = path + ".migrate";
  std::remove(tmp.c_str());
  MODIS_ASSIGN_OR_RETURN(
      std::unique_ptr<PagedStore> store,
      PagedStore::Open(tmp, /*read_only=*/false, StoreOptions(options)));
  for (const StoredRecord& r : live) {
    if (!store->Insert(r)) {
      std::remove(tmp.c_str());
      return Status::IoError("migration failed to insert a record: " + tmp);
    }
  }
  const Status flushed = store->Flush();
  if (!flushed.ok()) {
    std::remove(tmp.c_str());
    return flushed;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot swap migrated cache into place: " + path);
  }
  store->RenamedTo(path);
  return store;
}

}  // namespace

Result<std::unique_ptr<PersistentRecordCache>> PersistentRecordCache::Open(
    const std::string& path, CacheMode mode, uint64_t fingerprint,
    Options options) {
  MODIS_CHECK(mode != CacheMode::kOff)
      << "PersistentRecordCache::Open with CacheMode::kOff";
  const bool want_paged =
      options.engine == Engine::kPaged ||
      (options.engine == Engine::kAuto && options.page_size > 0);
  const FileKind kind = SniffFormat(path);
  bool use_paged = false;
  switch (kind) {
    case FileKind::kPaged:
      use_paged = true;  // An existing file's format always wins.
      break;
    case FileKind::kV1Log:
      use_paged = false;  // Except through migration, below.
      break;
    case FileKind::kMissing:
    case FileKind::kOther:
      use_paged = want_paged;
      break;
  }

  if (use_paged ||
      (kind == FileKind::kV1Log && want_paged &&
       mode == CacheMode::kReadWrite)) {
    std::unique_ptr<PagedStore> store;
    if (use_paged) {
      MODIS_ASSIGN_OR_RETURN(
          store, PagedStore::Open(path, /*read_only=*/mode == CacheMode::kRead,
                                  StoreOptions(options)));
    } else {
      MODIS_ASSIGN_OR_RETURN(store, MigrateV1ToPaged(path, options));
    }
    auto cache = std::unique_ptr<PersistentRecordCache>(
        new PersistentRecordCache(std::move(store), mode, fingerprint,
                                  options));
    PagedStore& s = *cache->store_;
    size_t total = 0, task = 0;
    MODIS_RETURN_IF_ERROR(s.CountRecords(fingerprint, &total, &task));
    cache->stats_.loaded_records = total;
    cache->stats_.task_records = task;
    cache->stats_.discarded_tail_bytes = s.stats().discarded_tail_bytes;
    if (mode == CacheMode::kReadWrite) {
      // Auto-GC at the same threshold as the v1 cache: when at least
      // half the records are dead weight.
      const PagedStore::Stats st = s.stats();
      if (st.dead_records > 0 && st.dead_records >= st.record_count) {
        size_t dropped = 0;
        MODIS_RETURN_IF_ERROR(s.Gc(&dropped));
        cache->stats_.compacted_away += dropped;
      }
      MODIS_RETURN_IF_ERROR(cache->EnforcePagedByteBoundLocked());
    }
    return cache;
  }

  std::vector<StoredRecord> records;
  MODIS_ASSIGN_OR_RETURN(
      RecordLog log,
      RecordLog::Open(path, /*read_only=*/mode == CacheMode::kRead,
                      &records));

  auto cache = std::unique_ptr<PersistentRecordCache>(
      new PersistentRecordCache(std::move(log), mode, fingerprint, options));
  cache->stats_.loaded_records = records.size();
  cache->stats_.discarded_tail_bytes = cache->log_.discarded_tail_bytes();

  // Last record wins per (fingerprint, key): replay order equals the order
  // a run would have ingested them. Load order seeds the recency clock, so
  // a byte-bounded host evicts the oldest cold cargo first. A read-only
  // open can never serve other fingerprints' records nor compact them, so
  // it indexes only its own task's — a kRead engine over a host-sized
  // multi-task file does not pay memory for every other task's cargo.
  const bool keep_all = mode == CacheMode::kReadWrite;
  size_t duplicates = 0;
  for (StoredRecord& r : records) {
    if (!keep_all && r.fingerprint != fingerprint) continue;
    Bucket& bucket = cache->index_[r.fingerprint];
    const uint64_t tick = ++cache->tick_;
    auto [it, inserted] = bucket.entries.try_emplace(r.key);
    if (!inserted) ++duplicates;
    it->second.record = std::move(r);
    it->second.last_hit = tick;
    bucket.last_hit = tick;
  }
  {
    auto it = cache->index_.find(fingerprint);
    cache->stats_.task_records =
        it == cache->index_.end() ? 0 : it->second.entries.size();
  }

  if (mode == CacheMode::kReadWrite) {
    // Auto-compact when at least half the log is dead duplicate weight.
    // (A torn tail needs no compaction: the writable RecordLog::Open above
    // already truncated it in place.)
    if (duplicates > 0 && duplicates * 2 >= records.size()) {
      const Status compacted = cache->CompactLocked();
      if (!compacted.ok()) return compacted;
      cache->stats_.compacted_away = duplicates;
    }
    const Status bounded = cache->EnforceByteBoundLocked();
    if (!bounded.ok()) return bounded;
  }
  return cache;
}

Result<std::unique_ptr<PersistentRecordCache>> PersistentRecordCache::OpenShared(
    const std::string& path, uint64_t fingerprint, Options options) {
  auto cache = std::unique_ptr<PersistentRecordCache>(
      new PersistentRecordCache(path, fingerprint, options));
  std::lock_guard<std::mutex> lock(cache->mu_);
  // Best effort: a live exclusive writer (or a missing file) just means
  // the attachment starts cold and warms at the next refresh.
  (void)cache->LoadSharedSnapshotLocked();
  return cache;
}

Status PersistentRecordCache::LoadSharedSnapshotLocked() {
  std::vector<StoredRecord> records;
  const FileKind kind = SniffFormat(path_);
  switch (kind) {
    case FileKind::kMissing:
      break;  // Nothing published yet: an empty snapshot is correct.
    case FileKind::kV1Log: {
      auto opened = RecordLog::Open(path_, /*read_only=*/true, &records);
      if (!opened.ok()) return opened.status();
      break;  // The read lock is released as `opened` dies.
    }
    case FileKind::kPaged: {
      auto opened =
          PagedStore::Open(path_, /*read_only=*/true, StoreOptions(options_));
      if (!opened.ok()) return opened.status();
      MODIS_RETURN_IF_ERROR(opened.value()->ReadAllRecords(&records));
      break;
    }
    case FileKind::kOther:
      return Status::FailedPrecondition("cache file has an unknown format: " +
                                        path_);
  }
  index_.clear();
  stats_.loaded_records = records.size();
  for (StoredRecord& r : records) {
    Bucket& bucket = index_[r.fingerprint];
    const uint64_t tick = ++tick_;
    auto [it, inserted] = bucket.entries.try_emplace(r.key);
    (void)inserted;  // Last write wins at load, as everywhere.
    it->second.record = std::move(r);
    it->second.last_hit = tick;
    bucket.last_hit = tick;
  }
  // This process's unpublished inserts stay visible (first write wins:
  // a record a sibling published meanwhile is identical by content
  // addressing, so whichever copy the index holds is the same answer).
  for (const StoredRecord& r : pending_) {
    Bucket& bucket = index_[r.fingerprint];
    auto [it, inserted] = bucket.entries.try_emplace(r.key);
    if (!inserted) continue;
    it->second.record = r;
    it->second.last_hit = ++tick_;
    bucket.last_hit = it->second.last_hit;
  }
  {
    auto it = index_.find(fingerprint_);
    stats_.task_records =
        it == index_.end() ? 0 : it->second.entries.size();
  }
  struct stat st;
  if (::stat(path_.c_str(), &st) == 0) {
    snapshot_size_ = static_cast<int64_t>(st.st_size);
    snapshot_mtime_ns_ = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                         st.st_mtim.tv_nsec;
    stats_.log_bytes = static_cast<size_t>(st.st_size);
  } else {
    snapshot_size_ = -1;
    snapshot_mtime_ns_ = -1;
    stats_.log_bytes = 0;
  }
  return Status::OK();
}

Status PersistentRecordCache::RefreshIfChanged() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!shared_) return Status::OK();
  struct stat st;
  int64_t size = -1;
  int64_t mtime_ns = -1;
  if (::stat(path_.c_str(), &st) == 0) {
    size = static_cast<int64_t>(st.st_size);
    mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
               st.st_mtim.tv_nsec;
  }
  if (size == snapshot_size_ && mtime_ns == snapshot_mtime_ns_) {
    return Status::OK();
  }
  const Status loaded = LoadSharedSnapshotLocked();
  if (loaded.code() == StatusCode::kFailedPrecondition) {
    // A sibling's exclusive publish window (or a mid-write file) is
    // transient; keep serving the previous snapshot.
    return Status::OK();
  }
  return loaded;
}

Status PersistentRecordCache::PublishPendingLocked() {
  if (pending_.empty()) return Status::OK();
  // Publish through the existing exclusive-writer path: a short-lived
  // kReadWrite open is a flock EX window, and every durability contract
  // (torn-tail truncation, superblock ping-pong, byte-bound eviction)
  // rides along unchanged. Contention with a sibling's window is brief,
  // so retry with a small backoff before giving up.
  Status last;
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto inner = Open(path_, CacheMode::kReadWrite, fingerprint_, options_);
    if (inner.ok()) {
      for (const StoredRecord& r : pending_) {
        inner.value()->Insert(r.fingerprint, r.key, r.features, r.eval);
      }
      MODIS_RETURN_IF_ERROR(inner.value()->Flush());
      stats_.appended += pending_.size();
      pending_.clear();
      return Status::OK();
    }
    last = inner.status();
    if (last.code() != StatusCode::kFailedPrecondition) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The lock stayed contended for the whole retry budget. Keep the
  // buffer for the next Flush() instead of failing the query — the
  // cache is an accelerator, never the answer.
  return Status::OK();
}

bool PersistentRecordCache::Contains(uint64_t fingerprint,
                                     const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr && store_->Contains(fingerprint, key)) return true;
  // Paged kRead falls through to the in-memory overlay of this session's
  // fresh inserts; v1 falls through to its whole index.
  auto it = index_.find(fingerprint);
  return it != index_.end() && it->second.entries.count(key) > 0;
}

bool PersistentRecordCache::Touch(uint64_t fingerprint,
                                  const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr && store_->Touch(fingerprint, key)) return true;
  auto bucket = index_.find(fingerprint);
  if (bucket == index_.end()) return false;
  auto it = bucket->second.entries.find(key);
  if (it == bucket->second.entries.end()) return false;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket->second.last_hit = tick;
  return true;
}

bool PersistentRecordCache::Get(uint64_t fingerprint, const std::string& key,
                                StoredRecord* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr && store_->Get(fingerprint, key, out)) {
    ++stats_.served;
    return true;
  }
  auto bucket = index_.find(fingerprint);
  if (bucket == index_.end()) return false;
  auto it = bucket->second.entries.find(key);
  if (it == bucket->second.entries.end()) return false;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket->second.last_hit = tick;
  ++stats_.served;
  if (out != nullptr) *out = it->second.record;
  return true;
}

const StoredRecord* PersistentRecordCache::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr && store_->Get(fingerprint_, key, &find_scratch_)) {
    ++stats_.served;
    return &find_scratch_;
  }
  auto bucket = index_.find(fingerprint_);
  if (bucket == index_.end()) return nullptr;
  auto it = bucket->second.entries.find(key);
  if (it == bucket->second.entries.end()) return nullptr;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket->second.last_hit = tick;
  ++stats_.served;
  return &it->second.record;
}

void PersistentRecordCache::Insert(uint64_t fingerprint,
                                   const std::string& key,
                                   const std::vector<double>& features,
                                   const Evaluation& eval) {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    if (mode_ == CacheMode::kReadWrite) {
      StoredRecord record;
      record.fingerprint = fingerprint;
      record.key = key;
      record.features = features;
      record.eval = eval;
      if (store_->Insert(record)) ++stats_.appended;
      // false = already present (first write wins) or a failed write;
      // both degrade to a no-op, mirroring the v1 append contract.
      return;
    }
    // kRead: keep the session's fresh records in the overlay below —
    // unless the store already serves this key.
    if (store_->Contains(fingerprint, key)) return;
  }
  Bucket& bucket = index_[fingerprint];
  auto [it, inserted] = bucket.entries.try_emplace(key);
  if (!inserted) return;  // First write wins at runtime; see class comment.
  StoredRecord& record = it->second.record;
  record.fingerprint = fingerprint;
  record.key = key;
  record.features = features;
  record.eval = eval;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket.last_hit = tick;
  if (shared_) {
    pending_.push_back(record);
    return;
  }
  if (store_ == nullptr && mode_ == CacheMode::kReadWrite) {
    const Status appended = log_.Append(record);
    if (appended.ok()) {
      ++stats_.appended;
    }
    // An append failure (disk full, ...) degrades to in-memory caching for
    // the rest of the run; the search result is unaffected.
  }
}

Status PersistentRecordCache::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shared_) return PublishPendingLocked();
  if (store_ != nullptr) {
    if (mode_ == CacheMode::kReadWrite) {
      MODIS_RETURN_IF_ERROR(store_->Flush());
    }
    return EnforcePagedByteBoundLocked();
  }
  MODIS_RETURN_IF_ERROR(log_.Flush());
  return EnforceByteBoundLocked();
}

Status PersistentRecordCache::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shared_) {
    return Status::FailedPrecondition(
        "a shared cache attachment cannot compact; compaction runs inside "
        "the exclusive publish window");
  }
  if (store_ != nullptr) {
    if (mode_ != CacheMode::kReadWrite) {
      return Status::FailedPrecondition("cannot compact a read-only cache");
    }
    size_t dropped = 0;
    MODIS_RETURN_IF_ERROR(store_->Gc(&dropped));
    stats_.compacted_away += dropped;
    return Status::OK();
  }
  return CompactLocked();
}

Status PersistentRecordCache::CompactLocked() {
  if (mode_ != CacheMode::kReadWrite) {
    return Status::FailedPrecondition("cannot compact a read-only cache");
  }
  std::vector<StoredRecord> live;
  for (const auto& [fp, bucket] : index_) {
    (void)fp;
    for (const auto& [key, entry] : bucket.entries) {
      (void)key;
      live.push_back(entry.record);
    }
  }
  return log_.Rewrite(live);
}

Status PersistentRecordCache::EnforceByteBoundLocked() {
  if (options_.max_bytes == 0 || mode_ != CacheMode::kReadWrite ||
      log_.size_bytes() <= options_.max_bytes) {
    return Status::OK();
  }
  // Live footprint (duplicates in the file die at the rewrite anyway).
  size_t live_bytes = RecordLog::kHeaderSize;
  for (const auto& [fp, bucket] : index_) {
    (void)fp;
    for (const auto& [key, entry] : bucket.entries) {
      (void)key;
      live_bytes += RecordLog::FrameBytes(entry.record);
    }
  }
  if (live_bytes > options_.max_bytes) {
    // Eviction order: least-recently-hit fingerprint first, then
    // least-recently-hit record within it — a whole cold task's cargo
    // goes before any record of a task that is being served.
    struct Victim {
      uint64_t bucket_hit;
      uint64_t record_hit;
      uint64_t fingerprint;
      const std::string* key;
      size_t bytes;
    };
    std::vector<Victim> order;
    for (const auto& [fp, bucket] : index_) {
      for (const auto& [key, entry] : bucket.entries) {
        order.push_back({bucket.last_hit, entry.last_hit, fp, &key,
                         RecordLog::FrameBytes(entry.record)});
      }
    }
    std::sort(order.begin(), order.end(), [](const Victim& a,
                                             const Victim& b) {
      return std::tie(a.bucket_hit, a.record_hit) <
             std::tie(b.bucket_hit, b.record_hit);
    });
    for (const Victim& v : order) {
      if (live_bytes <= options_.max_bytes) break;
      auto bucket = index_.find(v.fingerprint);
      bucket->second.entries.erase(*v.key);
      if (bucket->second.entries.empty()) index_.erase(bucket);
      live_bytes -= v.bytes;
      ++stats_.evicted;
    }
  }
  return CompactLocked();
}

Status PersistentRecordCache::EnforcePagedByteBoundLocked() {
  if (options_.max_bytes == 0 || mode_ != CacheMode::kReadWrite ||
      store_->file_bytes() <= options_.max_bytes) {
    return Status::OK();
  }
  // Each round: pick the coldest victims until the projected post-GC file
  // fits, tombstone them, GC. The projection is exact (the rebuild packs
  // pages deterministically), so one round normally suffices; the loop
  // guards against estimate drift from quarantined pages. The file can
  // never shrink below the two-page floor (superblock + directory).
  for (int round = 0; round < 4; ++round) {
    if (store_->file_bytes() <= options_.max_bytes) return Status::OK();
    std::vector<PagedStore::EntryInfo> entries;
    MODIS_RETURN_IF_ERROR(store_->CollectEntries(&entries));
    size_t evicted_now = 0;
    if (!entries.empty()) {
      // Eviction order mirrors the v1 policy: least-recently-hit
      // fingerprint first (a fingerprint is as warm as its hottest
      // record), then least-recently-hit record within it.
      std::unordered_map<uint64_t, uint64_t> fp_recency;
      for (const auto& e : entries) {
        uint64_t& hit = fp_recency[e.fingerprint];
        hit = std::max(hit, e.last_hit);
      }
      std::sort(entries.begin(), entries.end(),
                [&](const PagedStore::EntryInfo& a,
                    const PagedStore::EntryInfo& b) {
                  return std::tie(fp_recency[a.fingerprint], a.last_hit,
                                  a.ipage, a.slot) <
                         std::tie(fp_recency[b.fingerprint], b.last_hit,
                                  b.ipage, b.slot);
                });
      const PagedStore::Stats st = store_->stats();
      const uint64_t page_size = st.page_size;
      const uint64_t cap = page_size - PageFile::kPageHeaderSize;
      const uint64_t epp = cap / PagedStore::kIndexEntrySize;
      std::unordered_map<uint32_t, uint64_t> per_bucket;
      uint64_t stream_bytes = 0;
      for (const auto& e : entries) {
        stream_bytes += e.stream_bytes;
        ++per_bucket[e.bucket];
      }
      auto projected = [&]() {
        uint64_t pages = 2 + (stream_bytes + cap - 1) / cap;
        for (const auto& [bucket, n] : per_bucket) {
          (void)bucket;
          pages += (n + epp - 1) / epp;
        }
        return pages * page_size;
      };
      std::vector<PagedStore::EntryInfo> victims;
      size_t i = 0;
      while (i < entries.size() && projected() > options_.max_bytes) {
        const PagedStore::EntryInfo& v = entries[i++];
        stream_bytes -= v.stream_bytes;
        auto it = per_bucket.find(v.bucket);
        if (it != per_bucket.end() && --it->second == 0) {
          per_bucket.erase(it);
        }
        victims.push_back(v);
      }
      if (!victims.empty()) {
        MODIS_RETURN_IF_ERROR(store_->Tombstone(victims));
        evicted_now = victims.size();
        stats_.evicted += victims.size();
      }
    }
    size_t dropped = 0;
    MODIS_RETURN_IF_ERROR(store_->Gc(&dropped));
    // Dead weight that predated this round's eviction was auto-compacted.
    stats_.compacted_away += dropped > evicted_now ? dropped - evicted_now : 0;
    if (evicted_now == 0 && dropped == 0) break;  // Floor reached.
  }
  return Status::OK();
}

PersistentRecordCache::Stats PersistentRecordCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  if (store_ != nullptr) {
    const PagedStore::Stats s = store_->stats();
    snapshot.log_bytes = s.file_bytes;
    snapshot.reclaimed_bytes = s.reclaimed_bytes;
    snapshot.quarantined = s.quarantined;
    snapshot.discarded_tail_bytes = s.discarded_tail_bytes;
    snapshot.buffer_frames_in_use = s.pool.frames_in_use;
  } else {
    snapshot.log_bytes = log_.size_bytes();
    snapshot.reclaimed_bytes = log_.reclaimed_bytes();
  }
  return snapshot;
}

size_t PersistentRecordCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  if (store_ != nullptr) {
    size_t total = 0, task = 0;
    if (store_->CountRecords(fingerprint_, &total, &task).ok()) n = task;
  }
  auto it = index_.find(fingerprint_);
  if (it != index_.end()) n += it->second.entries.size();
  return n;
}

}  // namespace modis
