#include "storage/persistent_record_cache.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace modis {

Result<std::unique_ptr<PersistentRecordCache>> PersistentRecordCache::Open(
    const std::string& path, CacheMode mode, uint64_t fingerprint,
    Options options) {
  MODIS_CHECK(mode != CacheMode::kOff)
      << "PersistentRecordCache::Open with CacheMode::kOff";
  std::vector<StoredRecord> records;
  MODIS_ASSIGN_OR_RETURN(
      RecordLog log,
      RecordLog::Open(path, /*read_only=*/mode == CacheMode::kRead,
                      &records));

  auto cache = std::unique_ptr<PersistentRecordCache>(
      new PersistentRecordCache(std::move(log), mode, fingerprint, options));
  cache->stats_.loaded_records = records.size();
  cache->stats_.discarded_tail_bytes = cache->log_.discarded_tail_bytes();

  // Last record wins per (fingerprint, key): replay order equals the order
  // a run would have ingested them. Load order seeds the recency clock, so
  // a byte-bounded host evicts the oldest cold cargo first. A read-only
  // open can never serve other fingerprints' records nor compact them, so
  // it indexes only its own task's — a kRead engine over a host-sized
  // multi-task file does not pay memory for every other task's cargo.
  const bool keep_all = mode == CacheMode::kReadWrite;
  size_t duplicates = 0;
  for (StoredRecord& r : records) {
    if (!keep_all && r.fingerprint != fingerprint) continue;
    Bucket& bucket = cache->index_[r.fingerprint];
    const uint64_t tick = ++cache->tick_;
    auto [it, inserted] = bucket.entries.try_emplace(r.key);
    if (!inserted) ++duplicates;
    it->second.record = std::move(r);
    it->second.last_hit = tick;
    bucket.last_hit = tick;
  }
  {
    auto it = cache->index_.find(fingerprint);
    cache->stats_.task_records =
        it == cache->index_.end() ? 0 : it->second.entries.size();
  }

  if (mode == CacheMode::kReadWrite) {
    // Auto-compact when at least half the log is dead duplicate weight.
    // (A torn tail needs no compaction: the writable RecordLog::Open above
    // already truncated it in place.)
    if (duplicates > 0 && duplicates * 2 >= records.size()) {
      const Status compacted = cache->CompactLocked();
      if (!compacted.ok()) return compacted;
      cache->stats_.compacted_away = duplicates;
    }
    const Status bounded = cache->EnforceByteBoundLocked();
    if (!bounded.ok()) return bounded;
  }
  return cache;
}

bool PersistentRecordCache::Contains(uint64_t fingerprint,
                                     const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fingerprint);
  return it != index_.end() && it->second.entries.count(key) > 0;
}

bool PersistentRecordCache::Touch(uint64_t fingerprint,
                                  const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bucket = index_.find(fingerprint);
  if (bucket == index_.end()) return false;
  auto it = bucket->second.entries.find(key);
  if (it == bucket->second.entries.end()) return false;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket->second.last_hit = tick;
  return true;
}

bool PersistentRecordCache::Get(uint64_t fingerprint, const std::string& key,
                                StoredRecord* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bucket = index_.find(fingerprint);
  if (bucket == index_.end()) return false;
  auto it = bucket->second.entries.find(key);
  if (it == bucket->second.entries.end()) return false;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket->second.last_hit = tick;
  ++stats_.served;
  if (out != nullptr) *out = it->second.record;
  return true;
}

const StoredRecord* PersistentRecordCache::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto bucket = index_.find(fingerprint_);
  if (bucket == index_.end()) return nullptr;
  auto it = bucket->second.entries.find(key);
  if (it == bucket->second.entries.end()) return nullptr;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket->second.last_hit = tick;
  ++stats_.served;
  return &it->second.record;
}

void PersistentRecordCache::Insert(uint64_t fingerprint,
                                   const std::string& key,
                                   const std::vector<double>& features,
                                   const Evaluation& eval) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = index_[fingerprint];
  auto [it, inserted] = bucket.entries.try_emplace(key);
  if (!inserted) return;  // First write wins at runtime; see class comment.
  StoredRecord& record = it->second.record;
  record.fingerprint = fingerprint;
  record.key = key;
  record.features = features;
  record.eval = eval;
  const uint64_t tick = ++tick_;
  it->second.last_hit = tick;
  bucket.last_hit = tick;
  if (mode_ == CacheMode::kReadWrite) {
    const Status appended = log_.Append(record);
    if (appended.ok()) {
      ++stats_.appended;
    }
    // An append failure (disk full, ...) degrades to in-memory caching for
    // the rest of the run; the search result is unaffected.
  }
}

Status PersistentRecordCache::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  MODIS_RETURN_IF_ERROR(log_.Flush());
  return EnforceByteBoundLocked();
}

Status PersistentRecordCache::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Status PersistentRecordCache::CompactLocked() {
  if (mode_ != CacheMode::kReadWrite) {
    return Status::FailedPrecondition("cannot compact a read-only cache");
  }
  std::vector<StoredRecord> live;
  for (const auto& [fp, bucket] : index_) {
    (void)fp;
    for (const auto& [key, entry] : bucket.entries) {
      (void)key;
      live.push_back(entry.record);
    }
  }
  return log_.Rewrite(live);
}

Status PersistentRecordCache::EnforceByteBoundLocked() {
  if (options_.max_bytes == 0 || mode_ != CacheMode::kReadWrite ||
      log_.size_bytes() <= options_.max_bytes) {
    return Status::OK();
  }
  // Live footprint (duplicates in the file die at the rewrite anyway).
  size_t live_bytes = RecordLog::kHeaderSize;
  for (const auto& [fp, bucket] : index_) {
    (void)fp;
    for (const auto& [key, entry] : bucket.entries) {
      (void)key;
      live_bytes += RecordLog::FrameBytes(entry.record);
    }
  }
  if (live_bytes > options_.max_bytes) {
    // Eviction order: least-recently-hit fingerprint first, then
    // least-recently-hit record within it — a whole cold task's cargo
    // goes before any record of a task that is being served.
    struct Victim {
      uint64_t bucket_hit;
      uint64_t record_hit;
      uint64_t fingerprint;
      const std::string* key;
      size_t bytes;
    };
    std::vector<Victim> order;
    for (const auto& [fp, bucket] : index_) {
      for (const auto& [key, entry] : bucket.entries) {
        order.push_back({bucket.last_hit, entry.last_hit, fp, &key,
                         RecordLog::FrameBytes(entry.record)});
      }
    }
    std::sort(order.begin(), order.end(), [](const Victim& a,
                                             const Victim& b) {
      return std::tie(a.bucket_hit, a.record_hit) <
             std::tie(b.bucket_hit, b.record_hit);
    });
    for (const Victim& v : order) {
      if (live_bytes <= options_.max_bytes) break;
      auto bucket = index_.find(v.fingerprint);
      bucket->second.entries.erase(*v.key);
      if (bucket->second.entries.empty()) index_.erase(bucket);
      live_bytes -= v.bytes;
      ++stats_.evicted;
    }
  }
  return CompactLocked();
}

PersistentRecordCache::Stats PersistentRecordCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.log_bytes = log_.size_bytes();
  return snapshot;
}

size_t PersistentRecordCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fingerprint_);
  return it == index_.end() ? 0 : it->second.entries.size();
}

}  // namespace modis
