#include "storage/persistent_record_cache.h"

#include <utility>

#include "common/logging.h"

namespace modis {

Result<std::unique_ptr<PersistentRecordCache>> PersistentRecordCache::Open(
    const std::string& path, CacheMode mode, uint64_t fingerprint) {
  MODIS_CHECK(mode != CacheMode::kOff)
      << "PersistentRecordCache::Open with CacheMode::kOff";
  std::vector<StoredRecord> records;
  MODIS_ASSIGN_OR_RETURN(
      RecordLog log,
      RecordLog::Open(path, /*read_only=*/mode == CacheMode::kRead,
                      &records));

  auto cache = std::unique_ptr<PersistentRecordCache>(
      new PersistentRecordCache(std::move(log), mode, fingerprint));
  cache->stats_.loaded_records = records.size();
  cache->stats_.discarded_tail_bytes = cache->log_.discarded_tail_bytes();

  // Last record wins per (fingerprint, key): replay order equals the order
  // a run would have ingested them. Foreign-task records exist only so a
  // Compact() can preserve them, so a read-only open (which can never
  // compact) does not hold them in memory.
  const bool keep_foreign = mode == CacheMode::kReadWrite;
  std::unordered_map<std::string, size_t> foreign_index;
  size_t duplicates = 0;
  for (StoredRecord& r : records) {
    if (r.fingerprint == fingerprint) {
      duplicates += cache->index_.count(r.key);
      cache->index_[r.key] = std::move(r);
    } else if (keep_foreign) {
      // Foreign keys are qualified by their fingerprint to dedup within
      // their own task only.
      const std::string qualified =
          std::to_string(r.fingerprint) + "/" + r.key;
      auto it = foreign_index.find(qualified);
      if (it != foreign_index.end()) {
        ++duplicates;
        cache->foreign_[it->second] = std::move(r);
      } else {
        foreign_index.emplace(qualified, cache->foreign_.size());
        cache->foreign_.push_back(std::move(r));
      }
    }
  }
  cache->stats_.task_records = cache->index_.size();

  // Auto-compact when at least half the log is dead duplicate weight.
  // (A torn tail needs no compaction: the writable RecordLog::Open above
  // already truncated it in place.)
  if (mode == CacheMode::kReadWrite && duplicates > 0 &&
      duplicates * 2 >= records.size()) {
    const Status compacted = cache->Compact();
    if (!compacted.ok()) return compacted;
    cache->stats_.compacted_away = duplicates;
  }
  return cache;
}

const StoredRecord* PersistentRecordCache::Find(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  ++stats_.served;
  return &it->second;
}

void PersistentRecordCache::Insert(const std::string& key,
                                   const std::vector<double>& features,
                                   const Evaluation& eval) {
  StoredRecord record;
  record.fingerprint = fingerprint_;
  record.key = key;
  record.features = features;
  record.eval = eval;
  if (mode_ == CacheMode::kReadWrite) {
    const Status appended = log_.Append(record);
    if (appended.ok()) {
      ++stats_.appended;
    }
    // An append failure (disk full, ...) degrades to in-memory caching for
    // the rest of the run; the search result is unaffected.
  }
  index_[key] = std::move(record);
}

Status PersistentRecordCache::Flush() { return log_.Flush(); }

Status PersistentRecordCache::Compact() {
  if (mode_ != CacheMode::kReadWrite) {
    return Status::FailedPrecondition("cannot compact a read-only cache");
  }
  std::vector<StoredRecord> live;
  live.reserve(foreign_.size() + index_.size());
  for (const StoredRecord& r : foreign_) live.push_back(r);
  for (const auto& [key, r] : index_) {
    (void)key;
    live.push_back(r);
  }
  return log_.Rewrite(live);
}

}  // namespace modis
