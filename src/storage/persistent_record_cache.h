#ifndef MODIS_STORAGE_PERSISTENT_RECORD_CACHE_H_
#define MODIS_STORAGE_PERSISTENT_RECORD_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "storage/paged_store.h"
#include "storage/record_log.h"

namespace modis {

/// Cross-run valuation-record cache over one of two storage backends.
///
/// Two backends share this one front door:
///  - the v1 RecordLog (default): Open() replays the whole log once and
///    indexes every record in memory;
///  - the v2 PagedStore (opt-in via Options::engine or a nonzero
///    Options::page_size): records live behind an on-disk hash index and
///    a bounded buffer pool, so Open() sweeps only the index pages and a
///    point lookup touches O(1) pages — memory stays bounded by the
///    frame budget no matter how large the file grows.
/// An existing file's format always wins (detected by magic), so a v2
/// file is served paged even when the options say nothing, and a v1 file
/// stays readable everywhere. Requesting the paged engine on a v1 file in
/// kReadWrite mode migrates it once: the records are replayed under the
/// v1 writer lock, rebuilt into a paged file beside it, and renamed over
/// with the lock carried — a crash mid-migration leaves the v1 file
/// untouched.
///
/// One open cache can serve many tasks at once — the shape the
/// long-lived discovery service needs, where concurrent queries over
/// different task fingerprints share a single locked cache file. The
/// single-task callers (ModisEngine owning its own cache) pass their
/// fingerprint at Open and use the unqualified convenience methods,
/// which bind to that default fingerprint.
///
/// During a running the oracle consults Contains() while planning a batch —
/// a hit means the state's exact training is skipped and the recorded
/// evaluation is replayed (fetched with Get) — and Insert()s every freshly
/// trained record during the batch commit; Flush() after each commit makes
/// the log crash-consistent at batch granularity.
///
/// Duplicate keys can appear in the log (two cold runs racing before
/// locking existed, or a run killed between commit and flush and re-run):
/// the last record wins at load, matching the order a replay would ingest
/// them. At runtime, inserting an already-present (fingerprint, key) is a
/// no-op — records are content-addressed results of deterministic
/// trainings, so the incumbent is identical, and skipping keeps concurrent
/// sessions from appending duplicate frames. When more than half of an
/// opened log is dead weight (duplicates or a torn tail), a writable open
/// compacts it in place.
///
/// Thread safety: every method locks an internal mutex, so one cache
/// object may be shared by concurrent in-process sessions (the discovery
/// service shares one per cache file). Find() returns a pointer into the
/// index that stays valid only until the next eviction or compaction —
/// fine for the single-session pattern of copying immediately, but shared
/// sessions should prefer Get(), which copies under the lock.
/// Cross-process sharing is governed by the RecordLog flock contract:
/// single writer, many readers.
///
/// Bounded logs: Options::max_bytes caps the log file. When a Flush()
/// leaves the log over the cap, the cache evicts least-recently-hit
/// fingerprints first (then least-recently-hit records within a
/// fingerprint) until the live set fits, and compacts the log down to it.
/// Recency is session-local (ticks start at load order), which is exactly
/// the signal a long-lived host accumulates.
class PersistentRecordCache {
 public:
  /// Storage backend selection. kAuto keeps the v1 log for new files
  /// unless Options::page_size opts into the paged engine; existing
  /// files are always served in their own format (a v1 file under kPaged
  /// + kReadWrite is migrated once).
  enum class Engine : uint8_t { kAuto, kLog, kPaged };

  struct Options {
    /// Byte budget of the cache file; 0 = unbounded. Enforced after
    /// every Flush() (and once at open) by recency eviction + compaction
    /// (v1: log rewrite; v2: tombstoning + page GC). The paged engine's
    /// floor is two pages (superblock + directory).
    /// (Initialized in the constructor, not inline: an inline default
    /// would make `Options()` as a default argument of Open —
    /// syntactically inside the enclosing class — ill-formed.)
    uint64_t max_bytes;
    /// Backend choice; see Engine.
    Engine engine;
    /// Page size for a paged file created (or migrated) by this open;
    /// nonzero implies the paged engine under kAuto. 0 = 4 KiB when the
    /// paged engine is selected by other means.
    uint32_t page_size;
    /// Buffer-pool frame budget for the paged engine; 0 = 64 frames.
    /// The pool never holds more pages in memory than this.
    size_t buffer_pool_frames;

    Options()
        : max_bytes(0),
          engine(Engine::kAuto),
          page_size(0),
          buffer_pool_frames(0) {}
  };

  struct Stats {
    size_t loaded_records = 0;   // All valid records in the file at open.
    size_t task_records = 0;     // Subset matching the default fingerprint.
    size_t served = 0;           // Find()/Get() hits.
    size_t appended = 0;         // Insert()s written this session.
    size_t compacted_away = 0;   // Dead records dropped by auto-compaction.
    size_t evicted = 0;          // Live records dropped by the byte bound.
    size_t discarded_tail_bytes = 0;
    size_t log_bytes = 0;        // Valid file bytes at the snapshot.
    /// File bytes returned by compaction this session (v1 rewrites and
    /// page-level GC report through the same counter).
    size_t reclaimed_bytes = 0;
    /// Paged engine only: lookups degraded to misses by invalid pages.
    size_t quarantined = 0;
    /// Paged engine only: buffer-pool frames currently holding a page
    /// (live gauge, not a counter). 0 under the v1 log backend, which
    /// has no pool.
    size_t buffer_frames_in_use = 0;
  };

  /// Opens `path` for the task identified by `fingerprint` (the default
  /// fingerprint of the unqualified methods; a multi-task host may pass
  /// 0 and use only the qualified ones). kRead fails if the file does not
  /// exist; kReadWrite creates it. Passing kOff is a programming error —
  /// callers gate on the mode before opening. A lock conflict (another
  /// live writer on the file) fails with FailedPrecondition.
  static Result<std::unique_ptr<PersistentRecordCache>> Open(
      const std::string& path, CacheMode mode, uint64_t fingerprint,
      Options options = Options());

  /// Opens `path` in *shared* mode: a writable attachment that holds no
  /// file handle and no lock between operations, so any number of
  /// processes (the worker pool; docs/MULTIPROCESS.md) can share one
  /// cache file under the unchanged single-writer flock contract.
  ///
  /// Reads serve from an in-memory snapshot (loaded via a short-lived
  /// read-only open; RefreshIfChanged() reloads it when the file grew
  /// under a sibling's publish). Insert() buffers records in memory;
  /// Flush() publishes the buffer through a short-lived exclusive
  /// kReadWrite open — the existing writer path, lock window and all —
  /// retrying briefly when a sibling holds the window. First-write-wins
  /// semantics make re-publishing after a crash idempotent. Never fails
  /// a query on lock contention: an unpublishable buffer is kept for
  /// the next Flush(), and a snapshot that cannot be refreshed serves
  /// the previous view (degrading to cold, exactly like the in-process
  /// host does when its open loses the lock race).
  static Result<std::unique_ptr<PersistentRecordCache>> OpenShared(
      const std::string& path, uint64_t fingerprint,
      Options options = Options());

  /// Shared mode only (no-op otherwise): reloads the snapshot when the
  /// file changed on disk since it was last read. A conflicting live
  /// writer is not an error — the current snapshot is kept.
  Status RefreshIfChanged();

  bool shared() const { return shared_; }

  /// True when a record exists for (fingerprint, key). Does not count
  /// stats.served or refresh recency — batch planning probes with this,
  /// then the commit fetches with Get/Find, so served equals records
  /// actually replayed.
  bool Contains(uint64_t fingerprint, const std::string& key) const;
  bool Contains(const std::string& key) const {
    return Contains(fingerprint_, key);
  }

  /// Contains + recency refresh, without counting stats.served. The
  /// oracle probes with this at plan time so a record it is about to
  /// replay becomes most-recently-hit — a concurrent session's eviction
  /// pass then prefers any other victim. (Eviction between plan and
  /// commit is still possible; the oracle degrades that to a fresh
  /// training.)
  bool Touch(uint64_t fingerprint, const std::string& key);

  /// Copies the record for (fingerprint, key) into `*out` (either may be
  /// skipped by passing nullptr). Counts stats.served and refreshes the
  /// recency of both the record and its fingerprint. The safe lookup for
  /// shared sessions.
  bool Get(uint64_t fingerprint, const std::string& key, StoredRecord* out);

  /// The recorded evaluation for a state signature under the default
  /// fingerprint, or nullptr. Counts stats.served on hit. The returned
  /// pointer is invalidated by eviction/compaction — single-session use.
  const StoredRecord* Find(const std::string& key);

  /// Records a fresh valuation: indexed immediately; appended to the log
  /// in kReadWrite mode (no-op write in kRead). Inserting an existing
  /// (fingerprint, key) is a no-op — see the class comment.
  void Insert(uint64_t fingerprint, const std::string& key,
              const std::vector<double>& features, const Evaluation& eval);
  void Insert(const std::string& key, const std::vector<double>& features,
              const Evaluation& eval) {
    Insert(fingerprint_, key, features, eval);
  }

  /// Persists appends buffered since the last flush, then enforces the
  /// byte bound (eviction + compaction) if one is configured.
  Status Flush();

  /// Rewrites the log keeping one live record per (fingerprint, key) —
  /// all fingerprints survive.
  Status Compact();

  Stats stats() const;
  uint64_t fingerprint() const { return fingerprint_; }
  CacheMode mode() const { return mode_; }
  const std::string& path() const { return path_; }
  /// Records of the default fingerprint.
  size_t size() const;

 private:
  struct Entry {
    StoredRecord record;
    uint64_t last_hit = 0;
  };
  struct Bucket {
    std::unordered_map<std::string, Entry> entries;
    uint64_t last_hit = 0;
  };

  PersistentRecordCache(RecordLog log, CacheMode mode, uint64_t fingerprint,
                        Options options)
      : log_(std::move(log)),
        mode_(mode),
        fingerprint_(fingerprint),
        options_(options),
        path_(log_.path()) {}

  PersistentRecordCache(std::unique_ptr<PagedStore> store, CacheMode mode,
                        uint64_t fingerprint, Options options)
      : store_(std::move(store)),
        mode_(mode),
        fingerprint_(fingerprint),
        options_(options),
        path_(store_->path()) {}

  /// Shared mode: no backend owned; log_ stays unopened.
  PersistentRecordCache(std::string path, uint64_t fingerprint,
                        Options options)
      : mode_(CacheMode::kReadWrite),
        fingerprint_(fingerprint),
        options_(options),
        path_(std::move(path)),
        shared_(true) {}

  /// Shared mode: replaces the snapshot from the file (read-only short
  /// open, both backends), then re-overlays pending_. Caller holds mu_.
  Status LoadSharedSnapshotLocked();
  /// Shared mode: publishes pending_ via a short exclusive window.
  /// Caller holds mu_.
  Status PublishPendingLocked();

  /// Rewrites the log from the live index. Caller holds mu_.
  Status CompactLocked();
  /// Evicts + compacts until the live set fits Options::max_bytes.
  /// Caller holds mu_. v1 backend.
  Status EnforceByteBoundLocked();
  /// The paged equivalent: tombstone coldest entries, GC, re-check.
  /// Caller holds mu_.
  Status EnforcePagedByteBoundLocked();

  mutable std::mutex mu_;
  RecordLog log_;
  /// Non-null selects the paged backend; log_ is then unused.
  std::unique_ptr<PagedStore> store_;
  CacheMode mode_;
  uint64_t fingerprint_;
  Options options_;
  std::string path_;
  Stats stats_;
  /// Logical clock for recency: bumped on every hit and insert.
  uint64_t tick_ = 0;
  /// Find()'s stable-pointer contract over the paged backend: the hit is
  /// copied here and the pointer handed out (single-session use only, as
  /// documented on Find).
  StoredRecord find_scratch_;

  /// v1 backend: live records, fingerprint -> (key -> entry),
  /// last-write-wins at load, first-write-wins at runtime.
  /// Paged backend, kRead mode only: the in-memory overlay holding this
  /// session's fresh Inserts (a read-only store cannot append them).
  /// Shared mode: the whole snapshot + this process's fresh inserts.
  std::unordered_map<uint64_t, Bucket> index_;

  /// Shared mode state. pending_ holds inserts not yet published to the
  /// file; the stamp is the (size, mtime) of the file as last loaded,
  /// the change signal RefreshIfChanged() compares against.
  bool shared_ = false;
  std::vector<StoredRecord> pending_;
  int64_t snapshot_size_ = -1;
  int64_t snapshot_mtime_ns_ = -1;
};

}  // namespace modis

#endif  // MODIS_STORAGE_PERSISTENT_RECORD_CACHE_H_
