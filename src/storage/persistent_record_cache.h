#ifndef MODIS_STORAGE_PERSISTENT_RECORD_CACHE_H_
#define MODIS_STORAGE_PERSISTENT_RECORD_CACHE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "storage/record_log.h"

namespace modis {

/// Cross-run valuation-record cache over a RecordLog.
///
/// Open() replays the whole log once and indexes the records whose
/// fingerprint matches the task this cache was opened for (records of
/// other tasks are retained for compaction but never served). During a
/// running the oracle consults Find() while planning a batch — a hit means
/// the state's exact training is skipped and the recorded evaluation is
/// replayed — and Insert()s every freshly trained record during the batch
/// commit; Flush() after each commit makes the log crash-consistent at
/// batch granularity.
///
/// Duplicate keys can appear in the log (two concurrent cold runs, or a
/// run killed between commit and flush and re-run): the last record wins,
/// matching the order a replay would ingest them. When more than half of
/// an opened log is dead weight (duplicates or a torn tail), a writable
/// open compacts it in place.
///
/// Not thread-safe. All oracle-side access happens on the batch caller
/// thread; sharing one cache *file* across processes is sequential-only
/// (last-write-wins on duplicates, no file locking).
class PersistentRecordCache {
 public:
  struct Stats {
    size_t loaded_records = 0;   // All valid records in the log at open.
    size_t task_records = 0;     // Subset matching this task's fingerprint.
    size_t served = 0;           // Find() hits.
    size_t appended = 0;         // Insert()s written this session.
    size_t compacted_away = 0;   // Dead records dropped by auto-compaction.
    size_t discarded_tail_bytes = 0;
  };

  /// Opens `path` for the task identified by `fingerprint`. kRead fails
  /// if the file does not exist; kReadWrite creates it. Passing kOff is a
  /// programming error — callers gate on the mode before opening.
  static Result<std::unique_ptr<PersistentRecordCache>> Open(
      const std::string& path, CacheMode mode, uint64_t fingerprint);

  /// True when a record exists for this task's fingerprint. Does not
  /// count stats.served — batch planning probes with this, then the
  /// commit fetches with Find, so served equals records actually
  /// replayed.
  bool Contains(const std::string& key) const {
    return index_.count(key) > 0;
  }

  /// The recorded evaluation for a state signature under this task's
  /// fingerprint, or nullptr. Counts stats.served on hit.
  const StoredRecord* Find(const std::string& key);

  /// Records a fresh valuation: indexed immediately; appended to the log
  /// in kReadWrite mode (no-op write in kRead). Re-inserting an existing
  /// key replaces the served record.
  void Insert(const std::string& key, const std::vector<double>& features,
              const Evaluation& eval);

  /// Persists appends buffered since the last flush.
  Status Flush();

  /// Rewrites the log keeping one live record per (fingerprint, key) —
  /// this task's and other tasks' records both survive.
  Status Compact();

  const Stats& stats() const { return stats_; }
  uint64_t fingerprint() const { return fingerprint_; }
  CacheMode mode() const { return mode_; }
  size_t size() const { return index_.size(); }

 private:
  PersistentRecordCache(RecordLog log, CacheMode mode, uint64_t fingerprint)
      : log_(std::move(log)), mode_(mode), fingerprint_(fingerprint) {}

  RecordLog log_;
  CacheMode mode_;
  uint64_t fingerprint_;
  Stats stats_;

  /// This task's records, last-write-wins by key.
  std::unordered_map<std::string, StoredRecord> index_;
  /// Other tasks' records, deduped, kept only so Compact() preserves them.
  std::vector<StoredRecord> foreign_;
};

}  // namespace modis

#endif  // MODIS_STORAGE_PERSISTENT_RECORD_CACHE_H_
