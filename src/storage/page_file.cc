#include "storage/page_file.h"

#include <algorithm>
#include <cstring>

#include "storage/record_log.h"  // Crc32.

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace modis {

namespace {

/// Byte offsets of the superblock slot fields; the CRC covers [0, 64).
constexpr size_t kSbMagic = 0;
constexpr size_t kSbVersion = 8;
constexpr size_t kSbPageSize = 12;
constexpr size_t kSbEpoch = 16;
constexpr size_t kSbPageCount = 24;
constexpr size_t kSbDirPage = 28;
constexpr size_t kSbBucketCount = 32;
constexpr size_t kSbActiveDataPage = 36;
constexpr size_t kSbRecordCount = 40;
constexpr size_t kSbDeadRecords = 48;
constexpr size_t kSbTick = 56;
constexpr size_t kSbCrc = 64;

/// Page-header byte offsets (see the class comment in page_file.h).
constexpr size_t kPhCrc = 0;
constexpr size_t kPhEpoch = 4;
constexpr size_t kPhNext = 12;
constexpr size_t kPhUsed = 16;
constexpr size_t kPhType = 20;

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xFF;
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = (v >> (8 * i)) & 0xFF;
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

#if !defined(_WIN32)

bool PreadFull(int fd, void* buf, size_t size, off_t offset) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (size > 0) {
    const ssize_t n = ::pread(fd, p, size, offset);
    if (n <= 0) return false;
    p += n;
    size -= size_t(n);
    offset += n;
  }
  return true;
}

bool PwriteFull(int fd, const void* buf, size_t size, off_t offset) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, p, size, offset);
    if (n <= 0) return false;
    p += n;
    size -= size_t(n);
    offset += n;
  }
  return true;
}

#endif  // !_WIN32

void EncodeSuperblock(const PageFile::Meta& meta, uint64_t epoch,
                      uint8_t* slot) {
  std::memset(slot, 0, PageFile::kSuperblockSlotSize);
  std::memcpy(slot + kSbMagic, PageFile::kMagic, sizeof(PageFile::kMagic));
  StoreU32(slot + kSbVersion, PageFile::kFormatVersion);
  StoreU32(slot + kSbPageSize, meta.page_size);
  StoreU64(slot + kSbEpoch, epoch);
  StoreU32(slot + kSbPageCount, meta.page_count);
  StoreU32(slot + kSbDirPage, meta.dir_page);
  StoreU32(slot + kSbBucketCount, meta.bucket_count);
  StoreU32(slot + kSbActiveDataPage, meta.active_data_page);
  StoreU64(slot + kSbRecordCount, meta.record_count);
  StoreU64(slot + kSbDeadRecords, meta.dead_records);
  StoreU64(slot + kSbTick, meta.tick);
  StoreU32(slot + kSbCrc, Crc32(slot, kSbCrc));
}

/// One superblock slot decoded, or a reason it is unusable.
struct SlotState {
  bool valid = false;            // Meta + epoch are trustworthy.
  bool version_mismatch = false; // Magic + CRC fine, foreign version.
  PageFile::Meta meta;
  uint64_t epoch = 0;
};

SlotState DecodeSuperblock(const uint8_t* slot) {
  SlotState s;
  if (std::memcmp(slot + kSbMagic, PageFile::kMagic,
                  sizeof(PageFile::kMagic)) != 0) {
    return s;
  }
  if (Crc32(slot, kSbCrc) != LoadU32(slot + kSbCrc)) return s;
  if (LoadU32(slot + kSbVersion) != PageFile::kFormatVersion) {
    s.version_mismatch = true;
    return s;
  }
  s.meta.page_size = LoadU32(slot + kSbPageSize);
  s.epoch = LoadU64(slot + kSbEpoch);
  s.meta.page_count = LoadU32(slot + kSbPageCount);
  s.meta.dir_page = LoadU32(slot + kSbDirPage);
  s.meta.bucket_count = LoadU32(slot + kSbBucketCount);
  s.meta.active_data_page = LoadU32(slot + kSbActiveDataPage);
  s.meta.record_count = LoadU64(slot + kSbRecordCount);
  s.meta.dead_records = LoadU64(slot + kSbDeadRecords);
  s.meta.tick = LoadU64(slot + kSbTick);
  // Structural sanity: a CRC-valid slot with impossible geometry is still
  // corruption (the CRC was computed over already-bad bytes).
  const bool sane =
      s.meta.page_size >= PageFile::kMinPageSize &&
      s.meta.page_size <= PageFile::kMaxPageSize &&
      s.meta.page_size % PageFile::kMinPageSize == 0 &&
      s.meta.page_count >= 2 && s.meta.dir_page >= 1 &&
      s.meta.dir_page < s.meta.page_count && s.meta.bucket_count >= 1 &&
      uint64_t(s.meta.bucket_count) * 4 <=
          s.meta.page_size - PageFile::kPageHeaderSize &&
      s.meta.active_data_page < s.meta.page_count && s.epoch >= 1;
  s.valid = sane;
  return s;
}

}  // namespace

constexpr char PageFile::kMagic[8];

uint64_t PageFile::PageEpoch(const uint8_t* page) {
  return LoadU64(page + kPhEpoch);
}
void PageFile::SetPageEpoch(uint8_t* page, uint64_t epoch) {
  StoreU64(page + kPhEpoch, epoch);
}
uint32_t PageFile::PageNext(const uint8_t* page) {
  return LoadU32(page + kPhNext);
}
void PageFile::SetPageNext(uint8_t* page, uint32_t next) {
  StoreU32(page + kPhNext, next);
}
uint32_t PageFile::PageUsed(const uint8_t* page) {
  return LoadU32(page + kPhUsed);
}
void PageFile::SetPageUsed(uint8_t* page, uint32_t used) {
  StoreU32(page + kPhUsed, used);
}
uint8_t PageFile::PageTypeOf(const uint8_t* page) { return page[kPhType]; }
void PageFile::SetPageType(uint8_t* page, uint8_t type) {
  page[kPhType] = type;
}

PageFile::~PageFile() {
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);  // Releases the advisory lock.
#endif
}

#if !defined(_WIN32)

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 bool read_only,
                                                 const CreateOptions& create) {
  auto file = std::unique_ptr<PageFile>(new PageFile());
  file->path_ = path;
  file->read_only_ = read_only;

  const int flags =
      read_only ? (O_RDONLY | O_CLOEXEC) : (O_RDWR | O_CREAT | O_CLOEXEC);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (read_only) return Status::NotFound("page file not found: " + path);
    return Status::IoError("cannot open page file: " + path);
  }
  // Single-writer / many-reader discipline, as for the v1 record log —
  // but a reader holds its shared lock for the PageFile's lifetime, since
  // point lookups keep touching the file.
  if (::flock(fd, (read_only ? LOCK_SH : LOCK_EX) | LOCK_NB) != 0) {
    ::close(fd);
    return Status::FailedPrecondition(
        read_only
            ? "page file is write-locked by a live host: " + path
            : "page file is locked by another writer (single-writer "
              "contract): " +
                  path);
  }
  file->fd_ = fd;

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IoError("cannot stat page file: " + path);
  }

  uint8_t slots[2 * kSuperblockSlotSize];
  std::memset(slots, 0, sizeof(slots));
  size_t got = 0;
  if (st.st_size > 0) {
    const size_t want =
        std::min(sizeof(slots), static_cast<size_t>(st.st_size));
    if (!PreadFull(fd, slots, want, 0)) {
      return Status::IoError("cannot read page file superblock: " + path);
    }
    got = want;
  }

  const SlotState a = DecodeSuperblock(slots);
  const SlotState b = DecodeSuperblock(slots + kSuperblockSlotSize);
  const SlotState* best = nullptr;
  if (a.valid && (!b.valid || a.epoch >= b.epoch)) best = &a;
  else if (b.valid) best = &b;

  if (best == nullptr) {
    if (a.version_mismatch || b.version_mismatch) {
      return Status::FailedPrecondition(
          path +
          ": page file format version is not the supported version " +
          std::to_string(kFormatVersion) +
          " (delete the file; the cache is derived data)");
    }
    // No committed superblock. A writable open may start fresh when the
    // bytes are clearly our own torn creation (all zero, or a prefix of
    // our magic); foreign content is rejected, not clobbered.
    bool own_debris = true;
    for (size_t i = 0; i < got; ++i) {
      const uint8_t expect = i < sizeof(kMagic) ? uint8_t(kMagic[i]) : 0;
      if (slots[i] != 0 && slots[i] != expect) {
        own_debris = false;
        break;
      }
    }
    if (read_only || !own_debris) {
      return Status::IoError(
          "corrupt or truncated page file superblock: " + path);
    }
    // Fresh creation.
    uint32_t page_size =
        create.page_size == 0 ? kDefaultPageSize : create.page_size;
    if (page_size < kMinPageSize || page_size > kMaxPageSize ||
        page_size % kMinPageSize != 0) {
      return Status::InvalidArgument(
          "page size must be a multiple of 512 in [512, 1 MiB], got " +
          std::to_string(page_size));
    }
    const size_t payload = page_size - kPageHeaderSize;
    uint32_t bucket_count = create.bucket_count;
    if (bucket_count == 0) {
      bucket_count = static_cast<uint32_t>(std::min<size_t>(128, payload / 4));
    }
    if (uint64_t(bucket_count) * 4 > payload) {
      return Status::InvalidArgument(
          "bucket directory does not fit one page: " +
          std::to_string(bucket_count) + " buckets, page size " +
          std::to_string(page_size));
    }
    file->meta_.page_size = page_size;
    file->meta_.page_count = 2;
    file->meta_.dir_page = 1;
    file->meta_.bucket_count = bucket_count;
    file->committed_epoch_ = 0;
    file->working_epoch_ = 1;
    file->created_ = true;
    if (::ftruncate(fd, 0) != 0) {
      return Status::IoError("cannot reset page file: " + path);
    }
    std::vector<uint8_t> dir(page_size, 0);
    SetPageType(dir.data(), kDirectory);
    SetPageUsed(dir.data(), bucket_count * 4);
    MODIS_RETURN_IF_ERROR(file->WritePage(1, &dir));
    MODIS_RETURN_IF_ERROR(file->Commit());
    return file;
  }

  file->meta_ = best->meta;
  file->committed_epoch_ = best->epoch;
  // Skip past any epoch a crashed predecessor may have stamped on pages
  // it never committed (its working epoch was at most committed + 2).
  file->working_epoch_ = best->epoch + 2;

  const uint64_t expected =
      uint64_t(file->meta_.page_count) * file->meta_.page_size;
  if (static_cast<uint64_t>(st.st_size) > expected) {
    // Pages allocated but never committed by a crashed session. Writers
    // cut them off so future allocations reuse the space; readers just
    // never reach them (the committed index cannot point past the
    // committed page count).
    file->discarded_tail_bytes_ =
        static_cast<size_t>(st.st_size - off_t(expected));
    if (!read_only && ::ftruncate(fd, off_t(expected)) != 0) {
      return Status::IoError("cannot truncate page file tail: " + path);
    }
  }
  return file;
}

Status PageFile::ReadPage(uint32_t id, std::vector<uint8_t>* buf) const {
  if (id == 0 || id >= meta_.page_count) {
    return Status::IoError("page " + std::to_string(id) +
                           " out of bounds in " + path_);
  }
  buf->resize(meta_.page_size);
  if (!PreadFull(fd_, buf->data(), meta_.page_size,
                 off_t(uint64_t(id) * meta_.page_size))) {
    return Status::IoError("short read of page " + std::to_string(id) +
                           " in " + path_);
  }
  const uint32_t want = LoadU32(buf->data() + kPhCrc);
  const uint32_t have =
      Crc32(buf->data() + kPhEpoch, meta_.page_size - kPhEpoch);
  if (want != have) {
    return Status::IoError("page " + std::to_string(id) +
                           " failed its CRC in " + path_);
  }
  if (PageEpoch(buf->data()) > working_epoch_) {
    return Status::IoError("page " + std::to_string(id) +
                           " carries an epoch from the future in " + path_);
  }
  return Status::OK();
}

Status PageFile::WritePage(uint32_t id, std::vector<uint8_t>* buf) {
  if (read_only_) {
    return Status::FailedPrecondition("page file is read-only: " + path_);
  }
  if (id == 0 || id >= meta_.page_count ||
      buf->size() != meta_.page_size) {
    return Status::Internal("bad page write: id " + std::to_string(id));
  }
  StoreU64(buf->data() + kPhEpoch, working_epoch_);
  StoreU32(buf->data() + kPhCrc,
           Crc32(buf->data() + kPhEpoch, meta_.page_size - kPhEpoch));
  if (!PwriteFull(fd_, buf->data(), meta_.page_size,
                  off_t(uint64_t(id) * meta_.page_size))) {
    return Status::IoError("cannot write page " + std::to_string(id) +
                           " in " + path_);
  }
  return Status::OK();
}

Status PageFile::Commit() {
  if (read_only_) {
    return Status::FailedPrecondition("page file is read-only: " + path_);
  }
  uint8_t slot[kSuperblockSlotSize];
  EncodeSuperblock(meta_, working_epoch_, slot);
  const off_t offset =
      (working_epoch_ % 2 == 0) ? off_t(kSuperblockSlotSize) : 0;
  if (!PwriteFull(fd_, slot, sizeof(slot), offset)) {
    return Status::IoError("cannot write page file superblock: " + path_);
  }
  committed_epoch_ = working_epoch_;
  ++working_epoch_;
  return Status::OK();
}

#else  // _WIN32: the paged engine needs pread/pwrite + flock; the v1
       // record log remains the portable backend.

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 bool, const CreateOptions&) {
  return Status::Unimplemented("paged record cache on Windows: " + path);
}

Status PageFile::ReadPage(uint32_t, std::vector<uint8_t>*) const {
  return Status::Unimplemented("paged record cache on Windows");
}

Status PageFile::WritePage(uint32_t, std::vector<uint8_t>*) {
  return Status::Unimplemented("paged record cache on Windows");
}

Status PageFile::Commit() {
  return Status::Unimplemented("paged record cache on Windows");
}

#endif  // _WIN32

}  // namespace modis
