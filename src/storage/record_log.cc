#include "storage/record_log.h"

#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace modis {

namespace {

/// Lazily built table for the reflected CRC-32 (poly 0xEDB88320).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) buf->push_back((v >> (8 * i)) & 0xFF);
}

void PutU64(std::vector<uint8_t>* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf->push_back((v >> (8 * i)) & 0xFF);
}

void PutF64(std::vector<uint8_t>* buf, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(buf, bits);
}

void PutDoubles(std::vector<uint8_t>* buf, const std::vector<double>& v) {
  PutU32(buf, static_cast<uint32_t>(v.size()));
  for (double d : v) PutF64(buf, d);
}

void PutString(std::vector<uint8_t>* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->insert(buf->end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over a payload span.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* out) {
    if (pos_ + 4 > size_) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }

  bool U64(uint64_t* out) {
    if (pos_ + 8 > size_) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return true;
  }

  bool F64(double* out) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }

  bool Doubles(std::vector<double>* out) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (size_t(n) * 8 > size_ - pos_) return false;
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!F64(&(*out)[i])) return false;
    }
    return true;
  }

  bool String(std::string* out) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (size_t(n) > size_ - pos_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

FingerprintBuilder& FingerprintBuilder::Add(const std::string& s) {
  const uint64_t n = s.size();
  Mix(&n, sizeof(n));
  Mix(s.data(), s.size());
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(uint64_t v) {
  Mix(&v, sizeof(v));
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Add(bits);
}

void FingerprintBuilder::Mix(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= 1099511628211ull;  // FNV-1a prime.
  }
}

std::vector<uint8_t> RecordLog::EncodePayload(const StoredRecord& record) {
  std::vector<uint8_t> payload;
  payload.reserve(24 + record.key.size() +
                  8 * (record.features.size() + record.eval.raw.size() +
                       record.eval.normalized.size()));
  PutU64(&payload, record.fingerprint);
  PutString(&payload, record.key);
  PutDoubles(&payload, record.features);
  PutDoubles(&payload, record.eval.raw);
  PutDoubles(&payload, record.eval.normalized);
  return payload;
}

bool RecordLog::DecodePayload(const uint8_t* data, size_t size,
                              StoredRecord* out) {
  Reader reader(data, size);
  return reader.U64(&out->fingerprint) && reader.String(&out->key) &&
         reader.Doubles(&out->features) && reader.Doubles(&out->eval.raw) &&
         reader.Doubles(&out->eval.normalized) && reader.exhausted();
}

RecordLog::~RecordLog() {
  if (file_ != nullptr) std::fclose(file_);
}

RecordLog::RecordLog(RecordLog&& other) noexcept { *this = std::move(other); }

RecordLog& RecordLog::operator=(RecordLog&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  path_ = std::move(other.path_);
  file_ = other.file_;
  read_only_ = other.read_only_;
  discarded_tail_bytes_ = other.discarded_tail_bytes_;
  other.file_ = nullptr;
  return *this;
}

Result<RecordLog> RecordLog::Open(const std::string& path, bool read_only,
                                  std::vector<StoredRecord>* out) {
  RecordLog log;
  log.path_ = path;
  log.read_only_ = read_only;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  size_t valid_bytes = kHeaderSize;
  bool fresh = false;
  if (f == nullptr) {
    if (read_only) {
      return Status::NotFound("record log not found: " + path);
    }
    fresh = true;
  } else {
    // Header. A file shorter than the header can hold no records; if its
    // bytes are a prefix of our header (a crash between create and the
    // header write), a writable open may safely rewrite it as fresh —
    // but a short *foreign* file is still rejected, not clobbered.
    uint8_t header[kHeaderSize];
    const size_t got = std::fread(header, 1, kHeaderSize, f);
    uint8_t expected[kHeaderSize] = {};
    std::memcpy(expected, kMagic, sizeof(kMagic));
    for (int i = 0; i < 4; ++i) {
      expected[8 + i] = (kFormatVersion >> (8 * i)) & 0xFF;
    }
    if (got == 0) {
      fresh = true;  // Empty file: (re)write the header below.
    } else if (got < kHeaderSize) {
      if (read_only || std::memcmp(header, expected, got) != 0) {
        std::fclose(f);
        return Status::IoError("truncated record log header: " + path);
      }
      fresh = true;  // Our own torn header: rewrite it.
    } else if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
      std::fclose(f);
      return Status::IoError("not a MODis record log: " + path);
    } else {
      uint32_t version = 0;
      for (int i = 0; i < 4; ++i) {
        version |= uint32_t(header[8 + i]) << (8 * i);
      }
      if (version != kFormatVersion) {
        std::fclose(f);
        return Status::FailedPrecondition(
            path + ": record log format version " + std::to_string(version) +
            " != supported " + std::to_string(kFormatVersion) +
            " (delete the file; the cache is derived data)");
      }
      // Records, until EOF or the first torn/corrupt frame.
      std::vector<uint8_t> payload;
      for (;;) {
        uint8_t frame[8];
        if (std::fread(frame, 1, 8, f) != 8) break;
        uint32_t payload_size = 0, crc = 0;
        for (int i = 0; i < 4; ++i) {
          payload_size |= uint32_t(frame[i]) << (8 * i);
          crc |= uint32_t(frame[4 + i]) << (8 * i);
        }
        if (payload_size == 0 || payload_size > kMaxPayloadSize) break;
        payload.resize(payload_size);
        if (std::fread(payload.data(), 1, payload_size, f) != payload_size) {
          break;
        }
        if (Crc32(payload.data(), payload_size) != crc) break;
        StoredRecord record;
        if (!DecodePayload(payload.data(), payload_size, &record)) break;
        if (out != nullptr) out->push_back(std::move(record));
        valid_bytes += 8 + payload_size;
      }
      // Whatever follows the last valid frame is a torn tail.
      std::fseek(f, 0, SEEK_END);
      const long end = std::ftell(f);
      if (end > 0 && size_t(end) > valid_bytes) {
        log.discarded_tail_bytes_ = size_t(end) - valid_bytes;
      }
    }
    std::fclose(f);
  }

  if (read_only) return log;

  if (fresh) {
    std::FILE* w = std::fopen(path.c_str(), "wb");
    if (w == nullptr) {
      return Status::IoError("cannot create record log: " + path);
    }
    uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    for (int i = 0; i < 4; ++i) {
      header[8 + i] = (kFormatVersion >> (8 * i)) & 0xFF;
    }
    if (std::fwrite(header, 1, kHeaderSize, w) != kHeaderSize) {
      std::fclose(w);
      return Status::IoError("cannot write record log header: " + path);
    }
    log.file_ = w;
    return log;
  }

  // Existing log: drop the torn tail (if any), then append.
  std::FILE* w = std::fopen(path.c_str(), "rb+");
  if (w == nullptr) {
    return Status::IoError("cannot open record log for append: " + path);
  }
  if (log.discarded_tail_bytes_ > 0) {
    // C has no portable ftruncate; rewrite-in-place by reopening is not
    // needed — seeking and letting Rewrite() handle shrinkage would leave
    // garbage, so truncate through the POSIX layer where available.
#if defined(_WIN32)
    std::fclose(w);
    return Status::Unimplemented("torn-tail truncation on Windows");
#else
    if (std::fflush(w) != 0 ||
        ftruncate(fileno(w), static_cast<long>(valid_bytes)) != 0) {
      std::fclose(w);
      return Status::IoError("cannot truncate torn tail: " + path);
    }
#endif
  }
  if (std::fseek(w, static_cast<long>(valid_bytes), SEEK_SET) != 0) {
    std::fclose(w);
    return Status::IoError("cannot seek record log: " + path);
  }
  log.file_ = w;
  return log;
}

Status RecordLog::WriteFrame(std::FILE* f, const StoredRecord& record) {
  const std::vector<uint8_t> payload = EncodePayload(record);
  const uint32_t payload_size = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  uint8_t frame[8];
  for (int i = 0; i < 4; ++i) {
    frame[i] = (payload_size >> (8 * i)) & 0xFF;
    frame[4 + i] = (crc >> (8 * i)) & 0xFF;
  }
  if (std::fwrite(frame, 1, 8, f) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), f) != payload.size()) {
    return Status::IoError("record log append failed: " + path_);
  }
  return Status::OK();
}

Status RecordLog::Append(const StoredRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("record log not open for writing");
  }
  return WriteFrame(file_, record);
}

Status RecordLog::Flush() {
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IoError("record log flush failed: " + path_);
  }
  return Status::OK();
}

Status RecordLog::Rewrite(const std::vector<StoredRecord>& records) {
  if (read_only_) {
    return Status::FailedPrecondition("cannot rewrite a read-only log");
  }
  const std::string tmp = path_ + ".compact";
  std::FILE* w = std::fopen(tmp.c_str(), "wb");
  if (w == nullptr) {
    return Status::IoError("cannot create compaction file: " + tmp);
  }
  uint8_t header[kHeaderSize] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = (kFormatVersion >> (8 * i)) & 0xFF;
  }
  Status status = Status::OK();
  if (std::fwrite(header, 1, kHeaderSize, w) != kHeaderSize) {
    status = Status::IoError("cannot write compaction header: " + tmp);
  }
  for (const StoredRecord& r : records) {
    if (!status.ok()) break;
    status = WriteFrame(w, r);
  }
  if (status.ok() && std::fflush(w) != 0) {
    status = Status::IoError("compaction flush failed: " + tmp);
  }
  std::fclose(w);
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }

  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot swap compacted log into place: " + path_);
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IoError("cannot reopen compacted log: " + path_);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek compacted log: " + path_);
  }
  file_ = f;
  discarded_tail_bytes_ = 0;
  return Status::OK();
}

}  // namespace modis
