#include "storage/record_log.h"

#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace modis {

namespace {

/// Lazily built table for the reflected CRC-32 (poly 0xEDB88320).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) buf->push_back((v >> (8 * i)) & 0xFF);
}

void PutU64(std::vector<uint8_t>* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) buf->push_back((v >> (8 * i)) & 0xFF);
}

void PutF64(std::vector<uint8_t>* buf, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(buf, bits);
}

void PutDoubles(std::vector<uint8_t>* buf, const std::vector<double>& v) {
  PutU32(buf, static_cast<uint32_t>(v.size()));
  for (double d : v) PutF64(buf, d);
}

void PutString(std::vector<uint8_t>* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->insert(buf->end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over a payload span.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* out) {
    if (pos_ + 4 > size_) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }

  bool U64(uint64_t* out) {
    if (pos_ + 8 > size_) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return true;
  }

  bool F64(double* out) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }

  bool Doubles(std::vector<double>* out) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (size_t(n) * 8 > size_ - pos_) return false;
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!F64(&(*out)[i])) return false;
    }
    return true;
  }

  bool String(std::string* out) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (size_t(n) > size_ - pos_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void FillHeader(uint8_t (&header)[RecordLog::kHeaderSize]) {
  std::memset(header, 0, RecordLog::kHeaderSize);
  std::memcpy(header, RecordLog::kMagic, sizeof(RecordLog::kMagic));
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = (RecordLog::kFormatVersion >> (8 * i)) & 0xFF;
  }
}

/// Header classification of an open log stream (positioned at offset 0 on
/// entry; positioned just past the header on kValid).
enum class HeaderState {
  kValid,          // Full, current-version header; records may follow.
  kEmpty,          // Zero bytes: a freshly created file.
  kTornOwnPrefix,  // A prefix of our own header (crash mid-create).
};

Result<HeaderState> CheckHeader(std::FILE* f, const std::string& path,
                                bool read_only) {
  uint8_t header[RecordLog::kHeaderSize];
  const size_t got = std::fread(header, 1, RecordLog::kHeaderSize, f);
  uint8_t expected[RecordLog::kHeaderSize];
  FillHeader(expected);
  if (got == 0) return HeaderState::kEmpty;
  if (got < RecordLog::kHeaderSize) {
    // A file shorter than the header can hold no records; if its bytes
    // are a prefix of our header (a crash between create and the header
    // write), a writable open may safely rewrite it as fresh — but a
    // short *foreign* file is still rejected, not clobbered.
    if (read_only || std::memcmp(header, expected, got) != 0) {
      return Status::IoError("truncated record log header: " + path);
    }
    return HeaderState::kTornOwnPrefix;
  }
  if (std::memcmp(header, RecordLog::kMagic, sizeof(RecordLog::kMagic)) !=
      0) {
    return Status::IoError("not a MODis record log: " + path);
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) version |= uint32_t(header[8 + i]) << (8 * i);
  if (version != RecordLog::kFormatVersion) {
    return Status::FailedPrecondition(
        path + ": record log format version " + std::to_string(version) +
        " != supported " + std::to_string(RecordLog::kFormatVersion) +
        " (delete the file; the cache is derived data)");
  }
  return HeaderState::kValid;
}

/// Scans record frames from just past the header until EOF or the first
/// torn/corrupt frame. Returns the valid byte count including the header.
size_t ScanRecords(std::FILE* f, std::vector<StoredRecord>* out) {
  size_t valid_bytes = RecordLog::kHeaderSize;
  std::vector<uint8_t> payload;
  for (;;) {
    uint8_t frame[8];
    if (std::fread(frame, 1, 8, f) != 8) break;
    uint32_t payload_size = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      payload_size |= uint32_t(frame[i]) << (8 * i);
      crc |= uint32_t(frame[4 + i]) << (8 * i);
    }
    if (payload_size == 0 || payload_size > RecordLog::kMaxPayloadSize) break;
    payload.resize(payload_size);
    if (std::fread(payload.data(), 1, payload_size, f) != payload_size) {
      break;
    }
    if (Crc32(payload.data(), payload_size) != crc) break;
    StoredRecord record;
    if (!RecordLog::DecodePayload(payload.data(), payload_size, &record)) {
      break;
    }
    if (out != nullptr) out->push_back(std::move(record));
    valid_bytes += 8 + payload_size;
  }
  return valid_bytes;
}

/// Bytes of the file beyond `valid_bytes` (0 when the log ends cleanly).
size_t TailBytes(std::FILE* f, size_t valid_bytes) {
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end > 0 && size_t(end) > valid_bytes) return size_t(end) - valid_bytes;
  return 0;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

FingerprintBuilder& FingerprintBuilder::Add(const std::string& s) {
  const uint64_t n = s.size();
  Mix(&n, sizeof(n));
  Mix(s.data(), s.size());
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(uint64_t v) {
  Mix(&v, sizeof(v));
  return *this;
}

FingerprintBuilder& FingerprintBuilder::Add(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Add(bits);
}

void FingerprintBuilder::Mix(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= 1099511628211ull;  // FNV-1a prime.
  }
}

std::vector<uint8_t> RecordLog::EncodePayload(const StoredRecord& record) {
  std::vector<uint8_t> payload;
  payload.reserve(24 + record.key.size() +
                  8 * (record.features.size() + record.eval.raw.size() +
                       record.eval.normalized.size()));
  PutU64(&payload, record.fingerprint);
  PutString(&payload, record.key);
  PutDoubles(&payload, record.features);
  PutDoubles(&payload, record.eval.raw);
  PutDoubles(&payload, record.eval.normalized);
  return payload;
}

bool RecordLog::DecodePayload(const uint8_t* data, size_t size,
                              StoredRecord* out) {
  Reader reader(data, size);
  return reader.U64(&out->fingerprint) && reader.String(&out->key) &&
         reader.Doubles(&out->features) && reader.Doubles(&out->eval.raw) &&
         reader.Doubles(&out->eval.normalized) && reader.exhausted();
}

size_t RecordLog::FrameBytes(const StoredRecord& record) {
  return 8 /* frame header */ + 8 /* fingerprint */ +
         (4 + record.key.size()) + (4 + 8 * record.features.size()) +
         (4 + 8 * record.eval.raw.size()) +
         (4 + 8 * record.eval.normalized.size());
}

RecordLog::~RecordLog() {
  if (file_ != nullptr) std::fclose(file_);
}

RecordLog::RecordLog(RecordLog&& other) noexcept { *this = std::move(other); }

RecordLog& RecordLog::operator=(RecordLog&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  path_ = std::move(other.path_);
  file_ = other.file_;
  read_only_ = other.read_only_;
  discarded_tail_bytes_ = other.discarded_tail_bytes_;
  size_bytes_ = other.size_bytes_;
  reclaimed_bytes_ = other.reclaimed_bytes_;
  other.file_ = nullptr;
  return *this;
}

#if !defined(_WIN32)

Result<RecordLog> RecordLog::Open(const std::string& path, bool read_only,
                                  std::vector<StoredRecord>* out) {
  RecordLog log;
  log.path_ = path;
  log.read_only_ = read_only;

  if (read_only) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::NotFound("record log not found: " + path);
    }
    // Readers share; a live writer excludes them (the process hosting the
    // file answers queries instead — callers degrade to a cold run).
    if (::flock(fd, LOCK_SH | LOCK_NB) != 0) {
      ::close(fd);
      return Status::FailedPrecondition(
          "record log is write-locked by a live host: " + path);
    }
    std::FILE* f = ::fdopen(fd, "rb");
    if (f == nullptr) {
      ::close(fd);
      return Status::IoError("cannot open record log: " + path);
    }
    auto header = CheckHeader(f, path, /*read_only=*/true);
    if (!header.ok()) {
      std::fclose(f);
      return header.status();
    }
    if (header.value() == HeaderState::kValid) {
      const size_t valid_bytes = ScanRecords(f, out);
      log.discarded_tail_bytes_ = TailBytes(f, valid_bytes);
      log.size_bytes_ = valid_bytes;
    }
    std::fclose(f);  // Releases the shared lock.
    return log;
  }

  // Writable: take the exclusive lock BEFORE scanning, so no other writer
  // can append between our scan and our truncate/append — the scan result
  // stays authoritative for the log's whole open lifetime.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open record log: " + path);
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::FailedPrecondition(
        "record log is locked by another writer (single-writer "
        "contract): " +
        path);
  }
  std::FILE* f = ::fdopen(fd, "r+b");
  if (f == nullptr) {
    ::close(fd);
    return Status::IoError("cannot open record log: " + path);
  }
  auto header = CheckHeader(f, path, /*read_only=*/false);
  if (!header.ok()) {
    std::fclose(f);
    return header.status();
  }
  size_t valid_bytes = kHeaderSize;
  if (header.value() == HeaderState::kValid) {
    valid_bytes = ScanRecords(f, out);
    log.discarded_tail_bytes_ = TailBytes(f, valid_bytes);
  } else {
    // Empty or torn-header file: (re)write the header, drop the rest.
    uint8_t fresh[kHeaderSize];
    FillHeader(fresh);
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(fresh, 1, kHeaderSize, f) != kHeaderSize ||
        std::fflush(f) != 0) {
      std::fclose(f);
      return Status::IoError("cannot write record log header: " + path);
    }
  }
  // Cut the torn tail (or the torn header's residue) through the POSIX
  // layer, then position for appending.
  if (std::fflush(f) != 0 ||
      ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      std::fseek(f, static_cast<long>(valid_bytes), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("cannot truncate/seek record log: " + path);
  }
  log.file_ = f;
  log.size_bytes_ = valid_bytes;
  return log;
}

#else  // _WIN32: no advisory locking; sharing a file is sequential-only.

Result<RecordLog> RecordLog::Open(const std::string& path, bool read_only,
                                  std::vector<StoredRecord>* out) {
  RecordLog log;
  log.path_ = path;
  log.read_only_ = read_only;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  size_t valid_bytes = kHeaderSize;
  bool fresh = false;
  if (f == nullptr) {
    if (read_only) {
      return Status::NotFound("record log not found: " + path);
    }
    fresh = true;
  } else {
    auto header = CheckHeader(f, path, read_only);
    if (!header.ok()) {
      std::fclose(f);
      return header.status();
    }
    if (header.value() == HeaderState::kValid) {
      valid_bytes = ScanRecords(f, out);
      log.discarded_tail_bytes_ = TailBytes(f, valid_bytes);
    } else {
      fresh = true;
    }
    std::fclose(f);
  }

  if (read_only) {
    log.size_bytes_ = fresh ? 0 : valid_bytes;
    return log;
  }

  if (fresh) {
    std::FILE* w = std::fopen(path.c_str(), "wb");
    if (w == nullptr) {
      return Status::IoError("cannot create record log: " + path);
    }
    uint8_t header[kHeaderSize];
    FillHeader(header);
    if (std::fwrite(header, 1, kHeaderSize, w) != kHeaderSize) {
      std::fclose(w);
      return Status::IoError("cannot write record log header: " + path);
    }
    log.file_ = w;
    log.size_bytes_ = kHeaderSize;
    log.discarded_tail_bytes_ = 0;
    return log;
  }

  if (log.discarded_tail_bytes_ > 0) {
    return Status::Unimplemented("torn-tail truncation on Windows");
  }
  std::FILE* w = std::fopen(path.c_str(), "rb+");
  if (w == nullptr) {
    return Status::IoError("cannot open record log for append: " + path);
  }
  if (std::fseek(w, static_cast<long>(valid_bytes), SEEK_SET) != 0) {
    std::fclose(w);
    return Status::IoError("cannot seek record log: " + path);
  }
  log.file_ = w;
  log.size_bytes_ = valid_bytes;
  return log;
}

#endif  // _WIN32

Status RecordLog::WriteFrame(std::FILE* f, const StoredRecord& record) {
  const std::vector<uint8_t> payload = EncodePayload(record);
  const uint32_t payload_size = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  uint8_t frame[8];
  for (int i = 0; i < 4; ++i) {
    frame[i] = (payload_size >> (8 * i)) & 0xFF;
    frame[4 + i] = (crc >> (8 * i)) & 0xFF;
  }
  if (std::fwrite(frame, 1, 8, f) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), f) != payload.size()) {
    return Status::IoError("record log append failed: " + path_);
  }
  return Status::OK();
}

Status RecordLog::Append(const StoredRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("record log not open for writing");
  }
  MODIS_RETURN_IF_ERROR(WriteFrame(file_, record));
  size_bytes_ += FrameBytes(record);
  return Status::OK();
}

Status RecordLog::Flush() {
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IoError("record log flush failed: " + path_);
  }
  return Status::OK();
}

Status RecordLog::Rewrite(const std::vector<StoredRecord>& records) {
  if (read_only_) {
    return Status::FailedPrecondition("cannot rewrite a read-only log");
  }
  const std::string tmp = path_ + ".compact";

#if !defined(_WIN32)
  const int tfd =
      ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tfd < 0) {
    return Status::IoError("cannot create compaction file: " + tmp);
  }
  // Lock the replacement before it becomes visible under path_, so the
  // single-writer exclusion has no gap across the rename.
  if (::flock(tfd, LOCK_EX | LOCK_NB) != 0) {
    ::close(tfd);
    std::remove(tmp.c_str());
    return Status::FailedPrecondition("compaction file is locked: " + tmp);
  }
  std::FILE* w = ::fdopen(tfd, "r+b");
  if (w == nullptr) {
    ::close(tfd);
    std::remove(tmp.c_str());
    return Status::IoError("cannot open compaction file: " + tmp);
  }
#else
  std::FILE* w = std::fopen(tmp.c_str(), "wb");
  if (w == nullptr) {
    return Status::IoError("cannot create compaction file: " + tmp);
  }
#endif

  uint8_t header[kHeaderSize];
  FillHeader(header);
  Status status = Status::OK();
  size_t new_bytes = kHeaderSize;
  if (std::fwrite(header, 1, kHeaderSize, w) != kHeaderSize) {
    status = Status::IoError("cannot write compaction header: " + tmp);
  }
  for (const StoredRecord& r : records) {
    if (!status.ok()) break;
    status = WriteFrame(w, r);
    new_bytes += FrameBytes(r);
  }
  if (status.ok() && std::fflush(w) != 0) {
    status = Status::IoError("compaction flush failed: " + tmp);
  }
  if (!status.ok()) {
    std::fclose(w);
    std::remove(tmp.c_str());
    return status;
  }

#if !defined(_WIN32)
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::fclose(w);
    std::remove(tmp.c_str());
    return Status::IoError("cannot swap compacted log into place: " + path_);
  }
  // The locked tmp stream (positioned at the tail) becomes the log's
  // stream; closing the old stream releases the lock on the dead inode.
  if (file_ != nullptr) std::fclose(file_);
  file_ = w;
#else
  std::fclose(w);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot swap compacted log into place: " + path_);
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IoError("cannot reopen compacted log: " + path_);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek compacted log: " + path_);
  }
  file_ = f;
#endif

  // The rewrite's shrinkage is the compaction's yield; growth (never
  // expected — Rewrite only drops records) reclaims nothing.
  if (size_bytes_ > new_bytes) reclaimed_bytes_ += size_bytes_ - new_bytes;
  size_bytes_ = new_bytes;
  discarded_tail_bytes_ = 0;
  return Status::OK();
}

}  // namespace modis
