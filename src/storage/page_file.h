#ifndef MODIS_STORAGE_PAGE_FILE_H_
#define MODIS_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace modis {

/// A fixed-size-page file with a versioned, double-buffered superblock,
/// per-page CRC-32 framing and an LSN-style epoch stamp. This is the raw
/// block layer under PagedStore — it knows pages, not records.
///
/// Layout: page 0 holds two 256-byte superblock slots (A at offset 0, B at
/// offset 256). Commits alternate between the slots, so a torn superblock
/// write can never destroy the previous committed state: Open picks the
/// slot with a valid CRC and the highest epoch. Every other page starts
/// with a 24-byte header:
///
///   u32 crc32(page[4..page_size)) | u64 epoch | u32 next | u32 used |
///   u8 type | u8[3] reserved
///
/// followed by `page_size - 24` payload bytes. `used`, `next` and `type`
/// belong to the layer above; ReadPage verifies the CRC and that the
/// epoch is not from the future, WritePage stamps the current working
/// epoch and recomputes the CRC.
///
/// Epochs: the superblock carries the epoch of the last commit. A
/// writable Open resumes at `committed + 2` — skipping the epoch a
/// crashed predecessor may have stamped on pages it never committed — and
/// each Commit() publishes the working epoch and advances it. A page
/// whose epoch exceeds the working epoch cannot have been written by any
/// legitimate generation and is treated as corrupt. Stale-but-intact old
/// page images (a duplicate page restored by a misbehaving disk) pass the
/// CRC check here; the layer above rejects them by comparing the page
/// epoch against the minimum epoch its index entry recorded.
///
/// Crash recovery: a writable Open truncates the file to the committed
/// page count (pages a crashed session allocated but never committed are
/// discarded — allocation only ever extends the file), and any page that
/// fails its CRC is quarantined at read time rather than served. The
/// recovery contract therefore matches the v1 record log: truncate or
/// quarantine to the last valid state, never serve corrupt bytes.
///
/// Locking (POSIX): same single-writer flock(2) discipline as RecordLog,
/// except a read-only PageFile keeps its shared lock for its whole
/// lifetime (point lookups keep touching the file, unlike the v1 scan-
/// once reader). A second writer fails fast with FailedPrecondition.
///
/// Not thread-safe; PagedStore (via PersistentRecordCache's mutex)
/// serializes access.
class PageFile {
 public:
  static constexpr char kMagic[8] = {'M', 'O', 'D', 'I', 'S', 'P', 'G', '2'};
  static constexpr uint32_t kFormatVersion = 2;
  static constexpr uint32_t kMinPageSize = 512;
  static constexpr uint32_t kMaxPageSize = 1u << 20;
  static constexpr uint32_t kDefaultPageSize = 4096;
  static constexpr size_t kPageHeaderSize = 24;
  static constexpr size_t kSuperblockSlotSize = 256;

  enum PageType : uint8_t {
    kFree = 0,
    kData = 1,
    kIndex = 2,
    kDirectory = 3,
  };

  /// The committed/working metadata published through the superblock.
  /// `page_count`, `active_data_page`, `record_count`, `dead_records` and
  /// `tick` are owned by the layer above; Commit() persists the current
  /// values.
  struct Meta {
    uint32_t page_size = 0;
    uint32_t page_count = 0;  // Pages in the file, including page 0.
    uint32_t dir_page = 0;
    uint32_t bucket_count = 0;
    uint32_t active_data_page = 0;  // Tail of the record stream; 0 = none.
    uint64_t record_count = 0;
    uint64_t dead_records = 0;
    uint64_t tick = 0;  // Recency clock, persisted across sessions.
  };

  struct CreateOptions {
    uint32_t page_size;     // 0 = kDefaultPageSize.
    uint32_t bucket_count;  // 0 = derived from the page size.

    // Constructor instead of inline defaults: an NSDMI would make
    // `CreateOptions()` as a default argument of Open — syntactically
    // inside the enclosing class — ill-formed.
    CreateOptions() : page_size(0), bucket_count(0) {}
  };

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens `path`, creating it (per `create`) when writable and absent.
  /// kRead-style opens fail with NotFound on a missing file. A lock
  /// conflict fails with FailedPrecondition; a corrupt or truncated
  /// superblock fails with IoError; a future format version fails with
  /// FailedPrecondition (the cache is derived data — delete and rebuild).
  static Result<std::unique_ptr<PageFile>> Open(
      const std::string& path, bool read_only,
      const CreateOptions& create = CreateOptions());

  /// Reads page `id` (1-based; page 0 is the superblock) into `*buf`,
  /// verifying the CRC and the epoch bound. Failure means the page is
  /// quarantined: the caller treats dependent records as missing.
  Status ReadPage(uint32_t id, std::vector<uint8_t>* buf) const;

  /// Stamps the working epoch and CRC into `*buf` and writes it as page
  /// `id`. The buffer must be page_size bytes with header fields (type,
  /// used, next) already set.
  Status WritePage(uint32_t id, std::vector<uint8_t>* buf);

  /// Extends the file by one page and returns its id. The page becomes
  /// durable only after WritePage + Commit.
  uint32_t AllocatePage() { return meta_.page_count++; }

  /// Publishes the current Meta under the working epoch by writing the
  /// alternate superblock slot, then advances the working epoch. Pages
  /// dirtied under the old working epoch must be written back first
  /// (BufferPool::FlushDirty does this).
  Status Commit();

  /// Page-header field accessors over a raw page buffer.
  static uint64_t PageEpoch(const uint8_t* page);
  static void SetPageEpoch(uint8_t* page, uint64_t epoch);
  static uint32_t PageNext(const uint8_t* page);
  static void SetPageNext(uint8_t* page, uint32_t next);
  static uint32_t PageUsed(const uint8_t* page);
  static void SetPageUsed(uint8_t* page, uint32_t used);
  static uint8_t PageTypeOf(const uint8_t* page);
  static void SetPageType(uint8_t* page, uint8_t type);

  Meta& meta() { return meta_; }
  const Meta& meta() const { return meta_; }
  uint32_t page_size() const { return meta_.page_size; }
  size_t payload_capacity() const { return meta_.page_size - kPageHeaderSize; }
  uint64_t committed_epoch() const { return committed_epoch_; }
  uint64_t working_epoch() const { return working_epoch_; }
  /// Logical file size: committed-or-allocated pages times page size.
  uint64_t file_bytes() const {
    return uint64_t(meta_.page_count) * meta_.page_size;
  }
  /// Bytes beyond the committed page count dropped by a writable Open.
  size_t discarded_tail_bytes() const { return discarded_tail_bytes_; }
  const std::string& path() const { return path_; }
  bool read_only() const { return read_only_; }
  /// True when Open created a fresh file (nothing to scan).
  bool created() const { return created_; }

  /// Updates the remembered path after the storage layer renames the
  /// underlying file over another one (GC / migration lock carry).
  void set_path(const std::string& path) { path_ = path; }

 private:
  PageFile() = default;

  std::string path_;
  int fd_ = -1;
  bool read_only_ = false;
  bool created_ = false;
  Meta meta_;
  uint64_t committed_epoch_ = 0;
  uint64_t working_epoch_ = 0;
  size_t discarded_tail_bytes_ = 0;
};

}  // namespace modis

#endif  // MODIS_STORAGE_PAGE_FILE_H_
