#ifndef MODIS_STORAGE_RECORD_LOG_H_
#define MODIS_STORAGE_RECORD_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "estimator/measure.h"

namespace modis {

/// One persisted valuation record: the on-disk mirror of a
/// TestRecordStore entry, qualified by the task fingerprint so a single
/// log file can hold records of many dataset/task combinations.
/// `key` is the canonical state signature (StateBitmap::Signature()).
struct StoredRecord {
  uint64_t fingerprint = 0;
  std::string key;
  std::vector<double> features;
  Evaluation eval;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip one) over a byte span.
/// Used to frame log records; exposed for tests.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Accumulates a stable 64-bit FNV-1a hash over typed fields. Used to
/// derive the dataset/task fingerprint that scopes cached records: any
/// drift in the hashed inputs (schema, unit layout, measure set) yields a
/// new fingerprint, so stale records are ignored rather than served.
class FingerprintBuilder {
 public:
  FingerprintBuilder& Add(const std::string& s);
  FingerprintBuilder& Add(uint64_t v);
  FingerprintBuilder& Add(double v);
  uint64_t Digest() const { return hash_; }

 private:
  void Mix(const void* data, size_t size);

  uint64_t hash_ = 1469598103934665603ull;  // FNV-1a offset basis.
};

/// A versioned, append-only binary log of StoredRecords.
///
/// Layout: an 16-byte header (magic "MODISRLG", u32 format version, u32
/// reserved) followed by length-prefixed, CRC-framed records:
///
///   u32 payload_size | u32 crc32(payload) | payload
///
/// where payload = fingerprint(u64) | key(u32 + bytes) | features(u32 +
/// f64...) | raw(u32 + f64...) | normalized(u32 + f64...), all
/// little-endian. See docs/PERSISTENCE.md for the full format contract.
///
/// A torn tail (partial final record after a crash, or a CRC mismatch) is
/// not an error: ReadAll stops at the first bad frame and reports how many
/// bytes of valid prefix it consumed; opening for append truncates the
/// file to that prefix so the next Append never writes after garbage.
/// Version mismatches ARE an error — the format owns no migration story,
/// the cache is derived data and can always be regenerated.
///
/// Locking (POSIX): a log file has a single-writer / many-reader advisory
/// contract enforced with flock(2). A writable Open acquires LOCK_EX
/// (non-blocking) *before* scanning and holds it for the log's lifetime,
/// so two writers can never interleave scan-truncate-append sequences; a
/// read-only Open holds LOCK_SH only for the duration of its scan (the
/// returned log keeps no file handle). A second writer — another process,
/// or another open in the same process — fails fast with
/// FailedPrecondition instead of corrupting the tail. Readers that arrive
/// while a writer is live also fail fast (the host owning the file is the
/// one to ask; see docs/SERVING.md); callers such as ModisEngine degrade
/// to a cold run. Rewrite is lock-aware: the replacement file is locked
/// before it is renamed over the log, so the writer lock has no gap.
///
/// Methods of one RecordLog instance are not thread-safe; callers
/// serialize access (PersistentRecordCache wraps every log touch in its
/// own mutex).
class RecordLog {
 public:
  static constexpr char kMagic[8] = {'M', 'O', 'D', 'I', 'S', 'R', 'L', 'G'};
  static constexpr uint32_t kFormatVersion = 1;
  static constexpr size_t kHeaderSize = 16;
  /// Frames larger than this are treated as corruption, not records.
  static constexpr uint32_t kMaxPayloadSize = 64u << 20;

  RecordLog() = default;
  ~RecordLog();
  RecordLog(RecordLog&&) noexcept;
  RecordLog& operator=(RecordLog&&) noexcept;
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Opens (creating if absent unless `read_only`) and scans the log.
  /// Valid records are appended to `*out`. In writable mode the file is
  /// truncated to the valid prefix, positioned for appending, and held
  /// under an exclusive advisory lock. A lock conflict (live writer, or —
  /// for writable opens — a live reader mid-scan) fails with
  /// FailedPrecondition.
  static Result<RecordLog> Open(const std::string& path, bool read_only,
                                std::vector<StoredRecord>* out);

  /// Serializes one record at the tail. Buffered; call Flush to persist.
  Status Append(const StoredRecord& record);

  /// Flushes buffered appends to the OS.
  Status Flush();

  /// Atomically rewrites the log to contain exactly `records` (write to
  /// `path + ".compact"`, lock it, then rename over — the writer lock is
  /// carried to the new file with no unlocked gap). The log stays open for
  /// appending afterwards. Writable logs only.
  Status Rewrite(const std::vector<StoredRecord>& records);

  const std::string& path() const { return path_; }
  bool read_only() const { return read_only_; }
  /// Bytes of corrupt/torn tail discarded by Open (0 for a clean log).
  size_t discarded_tail_bytes() const { return discarded_tail_bytes_; }
  /// Valid bytes currently in the log: header + every frame scanned at
  /// Open plus every frame appended (or written by Rewrite) since. This
  /// is the file size the byte-bounded eviction policy budgets against.
  size_t size_bytes() const { return size_bytes_; }
  /// Bytes returned to the filesystem by Rewrite() this session (the sum
  /// of every rewrite's shrinkage). Matches the page-GC counter of the
  /// paged backend, so the service metrics expose one compaction gauge
  /// for both engines.
  size_t reclaimed_bytes() const { return reclaimed_bytes_; }

  /// Serialization of one record into/out of a payload buffer; exposed for
  /// tests (corruption crafting) and the compactor.
  static std::vector<uint8_t> EncodePayload(const StoredRecord& record);
  static bool DecodePayload(const uint8_t* data, size_t size,
                            StoredRecord* out);

  /// On-disk bytes one record occupies (8-byte frame header + payload),
  /// computed without encoding. Used by the eviction budgeter.
  static size_t FrameBytes(const StoredRecord& record);

 private:
  Status WriteFrame(std::FILE* f, const StoredRecord& record);

  std::string path_;
  std::FILE* file_ = nullptr;  // Null for read-only logs.
  bool read_only_ = false;
  size_t discarded_tail_bytes_ = 0;
  size_t size_bytes_ = 0;
  size_t reclaimed_bytes_ = 0;
};

}  // namespace modis

#endif  // MODIS_STORAGE_RECORD_LOG_H_
