#include "service/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace modis {

namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over a text span. Error positions are byte
/// offsets — line-delimited documents are short enough that this locates
/// the problem.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Document() {
    SkipWhitespace();
    JsonValue value;
    MODIS_RETURN_IF_ERROR(Value(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ObjectValue(out, depth);
    if (c == '[') return ArrayValue(out, depth);
    if (c == '"') {
      std::string s;
      MODIS_RETURN_IF_ERROR(StringLiteral(&s));
      *out = JsonValue(std::move(s));
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue(nullptr);
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue(false);
      return Status::OK();
    }
    return NumberValue(out);
  }

  Status NumberValue(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      return Fail("malformed number");
    }
    *out = JsonValue(v);
    return Status::OK();
  }

  Status StringLiteral(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — signatures and task names
          // are ASCII, so this never matters in practice).
          if (code < 0x80) {
            out->push_back(char(code));
          } else if (code < 0x800) {
            out->push_back(char(0xC0 | (code >> 6)));
            out->push_back(char(0x80 | (code & 0x3F)));
          } else {
            out->push_back(char(0xE0 | (code >> 12)));
            out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ArrayValue(JsonValue* out, int depth) {
    Consume('[');
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue(std::move(items));
      return Status::OK();
    }
    for (;;) {
      JsonValue item;
      MODIS_RETURN_IF_ERROR(Value(&item, depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
    *out = JsonValue(std::move(items));
    return Status::OK();
  }

  Status ObjectValue(JsonValue* out, int depth) {
    Consume('{');
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      MODIS_RETURN_IF_ERROR(StringLiteral(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      MODIS_RETURN_IF_ERROR(Value(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
    *out = JsonValue(std::move(members));
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c & 0xFF);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double v, std::string* out) {
  // Integers (budgets, counters, levels) print without a decimal point;
  // everything else round-trips through %.17g.
  if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out->append(buf);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void DumpValue(const JsonValue& value, std::string* out);

void DumpArray(const JsonValue::Array& items, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out->push_back(',');
    DumpValue(items[i], out);
  }
  out->push_back(']');
}

void DumpObject(const JsonValue::Object& members, std::string* out) {
  out->push_back('{');
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out->push_back(',');
    DumpString(members[i].first, out);
    out->push_back(':');
    DumpValue(members[i].second, out);
  }
  out->push_back('}');
}

void DumpValue(const JsonValue& value, std::string* out) {
  if (value.is_null()) {
    out->append("null");
  } else if (value.is_bool()) {
    out->append(value.AsBool() ? "true" : "false");
  } else if (value.is_number()) {
    DumpNumber(value.AsNumber(), out);
  } else if (value.is_string()) {
    DumpString(value.AsString(), out);
  } else if (value.is_array()) {
    DumpArray(value.AsArray(), out);
  } else {
    DumpObject(value.AsObject(), out);
  }
}

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Document();
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : AsObject()) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_string() ? v->AsString()
                                        : std::move(fallback);
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Get(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

void JsonValue::Set(std::string key, JsonValue value) {
  std::get<Object>(data_).emplace_back(std::move(key), std::move(value));
}

}  // namespace modis
