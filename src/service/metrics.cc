#include "service/metrics.h"

#include <algorithm>

namespace modis {

double LatencyHistogram::Snapshot::QuantileMs(double q) const {
  if (count == 0) return 0.0;
  const double target = q * double(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (double(cumulative) >= target) {
      return i + 1 == kBuckets ? max_ms
                               : std::min(BucketBoundMs(i), max_ms);
    }
  }
  return max_ms;
}

void LatencyHistogram::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.count;
  data_.sum_ms += ms;
  data_.max_ms = std::max(data_.max_ms, ms);
  size_t bucket = 0;
  while (bucket + 1 < kBuckets && ms > BucketBoundMs(bucket)) ++bucket;
  ++data_.buckets[bucket];
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.accepted = accepted.load();
  snapshot.rejected = rejected.load();
  snapshot.served = served.load();
  snapshot.failed = failed.load();
  snapshot.context_builds = context_builds.load();
  snapshot.context_evictions = context_evictions.load();
  snapshot.queries_fused = queries_fused.load();
  snapshot.trainings_shared = trainings_shared.load();
  snapshot.mask_fast_path_hits = mask_fast_path_hits.load();
  snapshot.connections_opened = connections_opened.load();
  snapshot.connections_active = connections_active.load();
  snapshot.lines_served = lines_served.load();
  snapshot.oversized_lines = oversized_lines.load();
  snapshot.dropped_connections = dropped_connections.load();
  snapshot.draining = draining.load();
  snapshot.queue_ms = queue_ms.snapshot();
  snapshot.run_ms = run_ms.snapshot();
  snapshot.total_ms = total_ms.snapshot();
  return snapshot;
}

}  // namespace modis
