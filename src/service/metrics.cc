#include "service/metrics.h"

#include <algorithm>

namespace modis {

double LatencyHistogram::Snapshot::QuantileMs(double q) const {
  if (count == 0) return 0.0;
  const double target = q * double(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (double(cumulative) >= target) {
      return i + 1 == kBuckets ? max_ms
                               : std::min(BucketBoundMs(i), max_ms);
    }
  }
  return max_ms;
}

void LatencyHistogram::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.count;
  data_.sum_ms += ms;
  data_.max_ms = std::max(data_.max_ms, ms);
  size_t bucket = 0;
  while (bucket + 1 < kBuckets && ms > BucketBoundMs(bucket)) ++bucket;
  ++data_.buckets[bucket];
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

const std::vector<ScalarMetricDesc>& ScalarMetricDescriptors() {
  static const std::vector<ScalarMetricDesc> kDescriptors = {
      {"accepted", "modis_accepted_total", true, &MetricsSnapshot::accepted,
       "Requests admitted to the queue."},
      {"rejected", "modis_rejected_total", true, &MetricsSnapshot::rejected,
       "Requests rejected at the door (rate/quota/queue)."},
      {"served", "modis_served_total", true, &MetricsSnapshot::served,
       "Queries completed OK."},
      {"failed", "modis_failed_total", true, &MetricsSnapshot::failed,
       "Queries completed with an error."},
      {"queue_depth", "modis_queue_depth", false,
       &MetricsSnapshot::queue_depth, "Requests waiting for a session."},
      {"live_contexts", "modis_live_contexts", false,
       &MetricsSnapshot::live_contexts, "Task contexts held in memory."},
      {"context_builds", "modis_context_builds_total", true,
       &MetricsSnapshot::context_builds, "Task contexts built."},
      {"context_evictions", "modis_context_evictions_total", true,
       &MetricsSnapshot::context_evictions, "Task contexts evicted."},
      {"cache_files", "modis_cache_files", false,
       &MetricsSnapshot::cache_files, "Open record-cache files."},
      {"cache_bytes", "modis_cache_bytes", false,
       &MetricsSnapshot::cache_bytes, "Valid bytes across open caches."},
      {"cache_records", "modis_cache_records", false,
       &MetricsSnapshot::cache_records, "Records loaded at cache open."},
      {"cache_replays", "modis_cache_replays_total", true,
       &MetricsSnapshot::cache_replays, "Record-cache hits served."},
      {"cache_appends", "modis_cache_appends_total", true,
       &MetricsSnapshot::cache_appends, "Records appended to caches."},
      {"cache_evictions", "modis_cache_evictions_total", true,
       &MetricsSnapshot::cache_evictions, "Records evicted from caches."},
      {"cache_reclaimed_bytes", "modis_cache_reclaimed_bytes_total", true,
       &MetricsSnapshot::cache_reclaimed_bytes,
       "Bytes reclaimed by cache compaction/GC."},
      {"buffer_pool_frames", "modis_buffer_pool_frames", false,
       &MetricsSnapshot::buffer_pool_frames,
       "Buffer-pool frames in use across open paged caches."},
      {"queries_fused", "modis_queries_fused_total", true,
       &MetricsSnapshot::queries_fused,
       "Queries that consumed at least one fused training."},
      {"trainings_shared", "modis_trainings_shared_total", true,
       &MetricsSnapshot::trainings_shared,
       "Exact trainings consumed from another query."},
      {"mask_fast_path_hits", "modis_mask_fast_path_hits_total", true,
       &MetricsSnapshot::mask_fast_path_hits,
       "Row counts served from cached bitset masks."},
      {"connections_opened", "modis_connections_opened_total", true,
       &MetricsSnapshot::connections_opened, "Connections accepted."},
      {"connections_active", "modis_connections_active", false,
       &MetricsSnapshot::connections_active, "Connections being served."},
      {"lines_served", "modis_lines_served_total", true,
       &MetricsSnapshot::lines_served, "Line-JSON requests answered."},
      {"oversized_lines", "modis_oversized_lines_total", true,
       &MetricsSnapshot::oversized_lines,
       "Request lines rejected for size."},
      {"dropped_connections", "modis_dropped_connections_total", true,
       &MetricsSnapshot::dropped_connections,
       "Connections lost mid-request or mid-response."},
      {"http_requests", "modis_http_requests_total", true,
       &MetricsSnapshot::http_requests, "HTTP requests parsed."},
      {"http_errors", "modis_http_errors_total", true,
       &MetricsSnapshot::http_errors,
       "HTTP 4xx/5xx responses, parse failures included."},
      {"qos_rate_limited", "modis_qos_rate_limited_total", true,
       &MetricsSnapshot::qos_rate_limited,
       "Requests rejected by a tenant token bucket."},
      {"qos_quota_rejected", "modis_qos_quota_rejected_total", true,
       &MetricsSnapshot::qos_quota_rejected,
       "Requests rejected by a tenant in-flight quota."},
      {"qos_shed", "modis_qos_shed_total", true, &MetricsSnapshot::qos_shed,
       "Requests shed under overload (queued victims + full-queue "
       "rejections)."},
      {"worker_processes", "modis_worker_processes", false,
       &MetricsSnapshot::worker_processes,
       "Configured worker-process pool size (0 = in-process mode)."},
      {"worker_restarts", "modis_worker_restarts_total", true,
       &MetricsSnapshot::worker_restarts,
       "Worker processes respawned after an exit or crash."},
      {"ring_installed", "modis_ring_installed_total", true,
       &MetricsSnapshot::ring_installed,
       "Jobs installed into the shared-memory ring."},
      {"ring_shed", "modis_ring_shed_total", true,
       &MetricsSnapshot::ring_shed, "Jobs shed because the ring was full."},
      {"ring_requeued", "modis_ring_requeued_total", true,
       &MetricsSnapshot::ring_requeued,
       "Jobs requeued after their worker died mid-claim."},
      {"ring_poisoned", "modis_ring_poisoned_total", true,
       &MetricsSnapshot::ring_poisoned,
       "Jobs poisoned after max_attempts crashed claims."},
      {"ring_owner_deaths", "modis_ring_owner_deaths_total", true,
       &MetricsSnapshot::ring_owner_deaths,
       "Robust-mutex owner-death recoveries on the ring."},
      {"ring_depth", "modis_ring_depth", false, &MetricsSnapshot::ring_depth,
       "Jobs installed in the ring and not yet claimed."},
      {"ring_inflight", "modis_ring_inflight", false,
       &MetricsSnapshot::ring_inflight,
       "Jobs currently claimed by a worker."},
  };
  return kDescriptors;
}

const std::vector<TenantMetricDesc>& TenantMetricDescriptors() {
  static const std::vector<TenantMetricDesc> kDescriptors = {
      {"admitted", "modis_tenant_admitted_total", true,
       &TenantMetricsSnapshot::admitted, "Requests admitted."},
      {"rate_limited", "modis_tenant_rate_limited_total", true,
       &TenantMetricsSnapshot::rate_limited, "Token-bucket rejections."},
      {"quota_rejected", "modis_tenant_quota_rejected_total", true,
       &TenantMetricsSnapshot::quota_rejected,
       "In-flight quota rejections."},
      {"shed", "modis_tenant_shed_total", true,
       &TenantMetricsSnapshot::shed, "Requests shed under overload."},
      {"served", "modis_tenant_served_total", true,
       &TenantMetricsSnapshot::served, "Queries completed OK."},
      {"failed", "modis_tenant_failed_total", true,
       &TenantMetricsSnapshot::failed, "Queries completed with an error."},
      {"in_flight", "modis_tenant_in_flight", false,
       &TenantMetricsSnapshot::in_flight, "Queued + executing requests."},
  };
  return kDescriptors;
}

const std::vector<WorkerMetricDesc>& WorkerMetricDescriptors() {
  static const std::vector<WorkerMetricDesc> kDescriptors = {
      {"alive", "modis_worker_alive", false, &WorkerMetricsSnapshot::alive,
       "Whether the worker process is currently running (0/1)."},
      {"restarts", "modis_worker_restarts", true,
       &WorkerMetricsSnapshot::restarts,
       "Times this worker slot was respawned."},
      {"jobs_claimed", "modis_worker_jobs_claimed_total", true,
       &WorkerMetricsSnapshot::jobs_claimed,
       "Ring jobs claimed by this worker."},
      {"jobs_completed", "modis_worker_jobs_completed_total", true,
       &WorkerMetricsSnapshot::jobs_completed,
       "Ring jobs this worker finished (OK or failed)."},
      {"jobs_requeued", "modis_worker_jobs_requeued_total", true,
       &WorkerMetricsSnapshot::jobs_requeued,
       "Ring jobs requeued because this worker died holding them."},
  };
  return kDescriptors;
}

const std::vector<HistogramMetricDesc>& HistogramMetricDescriptors() {
  static const std::vector<HistogramMetricDesc> kDescriptors = {
      {"queue_ms", "modis_queue_ms", &MetricsSnapshot::queue_ms,
       "Admission-queue wait per query (ms)."},
      {"run_ms", "modis_run_ms", &MetricsSnapshot::run_ms,
       "Engine running time per query (ms)."},
      {"total_ms", "modis_total_ms", &MetricsSnapshot::total_ms,
       "Queue + run time per query (ms)."},
      {"phase_admission_ms", "modis_phase_admission_ms",
       &MetricsSnapshot::phase_admission_ms,
       "Trace-derived admission-span time per query (ms)."},
      {"phase_context_ms", "modis_phase_context_ms",
       &MetricsSnapshot::phase_context_ms,
       "Trace-derived task-context time per query (ms)."},
      {"phase_plan_ms", "modis_phase_plan_ms",
       &MetricsSnapshot::phase_plan_ms,
       "Trace-derived batch-planning time per query (ms)."},
      {"phase_train_ms", "modis_phase_train_ms",
       &MetricsSnapshot::phase_train_ms,
       "Trace-derived exact-training fan-out time per query (ms)."},
      {"phase_commit_ms", "modis_phase_commit_ms",
       &MetricsSnapshot::phase_commit_ms,
       "Trace-derived batch-commit time per query (ms)."},
      {"phase_flush_ms", "modis_phase_flush_ms",
       &MetricsSnapshot::phase_flush_ms,
       "Trace-derived cache-flush time per query (ms)."},
      {"phase_respond_ms", "modis_phase_respond_ms",
       &MetricsSnapshot::phase_respond_ms,
       "Trace-derived response-write time per query (ms)."},
  };
  return kDescriptors;
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.accepted = accepted.load();
  snapshot.rejected = rejected.load();
  snapshot.served = served.load();
  snapshot.failed = failed.load();
  snapshot.context_builds = context_builds.load();
  snapshot.context_evictions = context_evictions.load();
  snapshot.queries_fused = queries_fused.load();
  snapshot.trainings_shared = trainings_shared.load();
  snapshot.mask_fast_path_hits = mask_fast_path_hits.load();
  snapshot.connections_opened = connections_opened.load();
  snapshot.connections_active = connections_active.load();
  snapshot.lines_served = lines_served.load();
  snapshot.oversized_lines = oversized_lines.load();
  snapshot.dropped_connections = dropped_connections.load();
  snapshot.http_requests = http_requests.load();
  snapshot.http_errors = http_errors.load();
  snapshot.qos_rate_limited = qos_rate_limited.load();
  snapshot.qos_quota_rejected = qos_quota_rejected.load();
  snapshot.qos_shed = qos_shed.load();
  snapshot.draining = draining.load();
  snapshot.queue_ms = queue_ms.snapshot();
  snapshot.run_ms = run_ms.snapshot();
  snapshot.total_ms = total_ms.snapshot();
  snapshot.phase_admission_ms = phase_admission_ms.snapshot();
  snapshot.phase_context_ms = phase_context_ms.snapshot();
  snapshot.phase_plan_ms = phase_plan_ms.snapshot();
  snapshot.phase_train_ms = phase_train_ms.snapshot();
  snapshot.phase_commit_ms = phase_commit_ms.snapshot();
  snapshot.phase_flush_ms = phase_flush_ms.snapshot();
  snapshot.phase_respond_ms = phase_respond_ms.snapshot();
  return snapshot;
}

}  // namespace modis
