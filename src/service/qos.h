#ifndef MODIS_SERVICE_QOS_H_
#define MODIS_SERVICE_QOS_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace modis {

/// One tenant of the multi-tenant QoS admission layer (docs/SERVING.md
/// §7). Requests carry an API key; the DiscoveryService maps the key to a
/// tenant and applies its token bucket, in-flight quota, and priority at
/// Submit() time. A spec with an empty `api_key` is the default tenant:
/// requests with no key — or an unknown key — land there.
struct TenantSpec {
  /// Label of the tenant's metric series; [A-Za-z0-9_-]+.
  std::string name;
  std::string api_key;
  /// Token-bucket refill rate (tokens/second); one request costs one
  /// token. 0 = the bucket never refills.
  double rate_per_s = 0.0;
  /// Bucket capacity. 0 = no bucket (rate limiting off for the tenant).
  double burst = 0.0;
  /// Most queued + executing requests at once; 0 = unlimited.
  size_t max_in_flight = 0;
  /// Higher runs first; admission sheds lower-priority work first.
  int priority = 0;
};

/// Parses the user-facing tenant spelling of `modis_server --tenant`:
///
///   NAME:API_KEY[:RATE[:BURST[:MAX_IN_FLIGHT[:PRIORITY]]]]
///
/// e.g. "gold:sk_gold:100:200:8:10". Omitted numeric fields keep the
/// TenantSpec defaults (unlimited). An empty API_KEY makes this the
/// default tenant.
Result<TenantSpec> ParseTenantSpec(const std::string& spec);

/// A typed QoS rejection: ResourceExhausted (the HTTP facade maps it to
/// 429) with a machine-readable retry hint embedded in the message as
/// "[retry_after_s=N]".
Status QosRejected(const std::string& tenant, const std::string& what,
                   double retry_after_s);

/// The retry hint of a QosRejected() status, 0 when none is embedded.
double RetryAfterSeconds(const Status& status);

}  // namespace modis

#endif  // MODIS_SERVICE_QOS_H_
