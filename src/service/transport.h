#ifndef MODIS_SERVICE_TRANSPORT_H_
#define MODIS_SERVICE_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/http.h"
#include "service/metrics.h"

namespace modis {

/// A serving address of the discovery host: a unix-domain socket path or
/// a TCP host:port. Both speak the same line-delimited JSON protocol
/// (docs/SERVING.md §1) through the same accept loop (LineServer).
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;   // kUnix.
  std::string host;   // kTcp; numeric IPv4 or "localhost".
  uint16_t port = 0;  // kTcp; 0 = ephemeral, resolved at bind.

  std::string ToString() const;  // "unix:PATH" | "tcp:HOST:PORT".
};

/// Parses the user-facing endpoint spelling, shared by `modis_server
/// --listen`, `modis_cli --connect`, and `bench_serving --connect`:
///
///   "unix:PATH"                      explicit unix socket
///   "tcp:HOST:PORT"                  explicit TCP
///   "HOST:PORT"                      TCP shorthand
///   anything else (e.g. "/a.sock")   unix socket path
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// Client side of the protocol: one connection, line-oriented. Move-only;
/// the destructor closes the socket.
class ClientChannel {
 public:
  static Result<ClientChannel> Connect(const Endpoint& endpoint);

  ClientChannel() = default;
  ~ClientChannel();
  ClientChannel(ClientChannel&& other) noexcept;
  ClientChannel& operator=(ClientChannel&& other) noexcept;
  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  /// Writes `line` plus the terminating '\n'.
  Status SendLine(const std::string& line);

  /// Writes exactly `bytes`, no framing. Exists so fault-injection tests
  /// can craft truncated frames (a partial line with no newline).
  Status SendRaw(const std::string& bytes);

  /// Reads one '\n'-terminated line (the newline is stripped). EOF before
  /// any byte — or a line beyond `max_bytes` — is an IoError.
  Result<std::string> ReceiveLine(size_t max_bytes = 1u << 20);

  /// Reads up to `max_bytes` raw bytes, blocking until at least one
  /// arrives; a clean EOF returns the empty string. Serves any bytes
  /// already buffered by ReceiveLine() first. Exists for clients of
  /// non-line protocols (the HTTP tests frame by Content-Length).
  Result<std::string> ReceiveRaw(size_t max_bytes = 4096);

  /// SendLine + ReceiveLine.
  Result<std::string> RoundTrip(const std::string& line);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit ClientChannel(int fd) : fd_(fd) {}

  int fd_ = -1;
  /// Receive buffering: a chunked recv may deliver more than one line
  /// (or a fraction of one); the unconsumed tail carries over between
  /// ReceiveLine() calls.
  std::string rx_buffer_;
  size_t rx_pos_ = 0;
};

/// The accept loop every transport of the discovery host shares. Listens
/// on any number of endpoints (unix and TCP side by side), serves each
/// connection on its own thread through a line handler, and owns the
/// graceful-drain choreography:
///
///   RequestStop() — async-signal-safe (one write(2) to an internal
///   pipe), so a SIGTERM handler may call it directly — makes Serve():
///     1. stop accepting (listeners closed, unix paths unlinked),
///     2. half-close every open connection (shutdown(SHUT_RD)): a
///        session blocked reading gets EOF, a session mid-request still
///        writes its response — accepted work is completed, not dropped,
///     3. join every connection thread, then return.
///
/// Oversized request lines are answered with one `{"ok":false,...}` line
/// and a close (the stream cannot be resynced); a client that disconnects
/// mid-request or mid-response never takes the host down — both paths are
/// counted in ServiceMetrics and exercised by tests/transport_test.cc.
class LineServer {
 public:
  struct Options {
    /// Request lines beyond this are rejected and the connection closed.
    /// (Initialized in the constructor: an inline default would make
    /// `Options()` as a default argument of the enclosing class's own
    /// constructor ill-formed.)
    size_t max_line_bytes;
    int listen_backlog;
    /// Parser caps for HTTP connections (only consulted when an HTTP
    /// handler is installed).
    HttpParser::Limits http;

    Options() : max_line_bytes(1u << 20), listen_backlog(16) {}
  };

  /// Maps one request line to one response line. Runs on the connection's
  /// thread; must be thread-safe (the service's Answer() is).
  using Handler = std::function<std::string(const std::string& line)>;

  /// Maps one parsed HTTP request to one response. Runs on the
  /// connection's thread; must be thread-safe.
  using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

  LineServer(Handler handler, Options options = Options(),
             ServiceMetrics* metrics = nullptr);
  /// Implies RequestStop(); joins any still-running connection threads.
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds + listens. May be called repeatedly to serve several endpoints
  /// from one accept loop. TCP port 0 is resolved to the kernel-assigned
  /// port, visible through endpoints().
  Status Listen(const Endpoint& endpoint);

  /// The bound endpoints, in Listen() order.
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

  /// Blocking accept loop; returns once RequestStop() was called and the
  /// drain completed (every accepted request answered, every connection
  /// thread joined).
  void Serve();

  /// Stops Serve() and starts the drain. Async-signal-safe; idempotent.
  void RequestStop();

  /// Enables per-connection protocol sniffing: a connection whose first
  /// bytes spell an HTTP method is served by `handler` through the
  /// incremental HttpParser; anything else takes the line-JSON path, so
  /// both dialects share one port. Install before Serve(); without it
  /// the accept loop is byte-for-byte the pre-HTTP line server.
  void set_http_handler(HttpHandler handler) {
    http_handler_ = std::move(handler);
  }

 private:
  void ServeConnection(uint64_t id, int fd);
  /// HTTP side of a sniffed connection: keep-alive/pipelining loop until
  /// close, parse error (answered with a typed 4xx/5xx, then close), or
  /// EOF. `initial` holds the sniffed bytes already read.
  void ServeHttpConnection(int fd, const std::string& initial);
  /// Joins connection threads that have finished. Caller holds conn_mu_.
  void ReapFinishedLocked();

  Handler handler_;
  HttpHandler http_handler_;
  Options options_;
  ServiceMetrics* metrics_;  // Never null (falls back to an owned one).
  ServiceMetrics owned_metrics_;

  std::vector<int> listener_fds_;
  std::vector<Endpoint> endpoints_;
  int stop_pipe_[2] = {-1, -1};

  std::mutex conn_mu_;
  std::map<uint64_t, std::thread> threads_;
  std::map<uint64_t, int> live_fds_;
  std::vector<uint64_t> finished_;
  uint64_t next_id_ = 0;
  bool draining_ = false;
};

}  // namespace modis

#endif  // MODIS_SERVICE_TRANSPORT_H_
