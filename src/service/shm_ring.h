#ifndef MODIS_SERVICE_SHM_RING_H_
#define MODIS_SERVICE_SHM_RING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace modis {

/// A fixed-capacity job ring in a file-backed shared-memory segment,
/// the hand-off between the coordinator process and its worker
/// processes (docs/MULTIPROCESS.md).
///
/// Layout: one page-aligned header (robust process-shared mutex, two
/// futex eventcounts, counters, per-worker liveness generations), an
/// array of job slots, and two fixed-size transfer buffers per slot —
/// one carries the request line in, the other the response line out.
/// Sleep/wake is raw futex rather than process-shared condvars because
/// condvars are not kill-safe: a waiter SIGKILLed mid-wait leaks
/// glibc-internal group state that wedges the next broadcast, while a
/// dead futex waiter leaves nothing behind.
///
/// Concurrency contract: every slot transition happens under the one
/// robust mutex, and the `state` field is always written last, so it is
/// the commit point — a process killed mid-transition leaves the slot
/// in its previous state. When a lock owner dies the next locker gets
/// EOWNERDEAD, marks the mutex consistent, and proceeds; slot-level
/// recovery is generation-driven (the supervisor bumps the dead
/// worker's generation and calls ReclaimStale(), which requeues the
/// orphaned job or — after `max_attempts` claims — poisons it with a
/// deterministic typed error). No accepted job is ever lost, and no
/// ticket is answered twice: recovery only touches kClaimed slots,
/// never finished ones, and Await() consumes a ticket exactly once.
///
/// All waits are timed (bounded re-check loops), so a crashed peer can
/// delay a caller but never wedge it.
class ShmRing {
 public:
  /// Upper bound on worker indices (size of the generation table).
  static constexpr uint32_t kMaxWorkers = 64;

  struct Options {
    /// Number of job slots. Installing into a full ring sheds with a
    /// typed ResourceExhausted, mirroring the admission queue.
    uint32_t slots = 16;
    /// Bytes per transfer buffer; bounds both the request line and the
    /// response line. Oversized either way is a typed OutOfRange.
    uint32_t buffer_bytes = 1 << 20;
    /// A job whose worker died is requeued until it has been claimed
    /// this many times, then poisoned (typed Internal) so a
    /// crash-inducing request cannot loop forever.
    uint32_t max_attempts = 3;
  };

  /// One claimed job, as handed to a worker by NextJob().
  struct Job {
    uint32_t slot = 0;
    uint64_t ticket = 0;
    uint32_t attempt = 0;  // 1-based claim count, includes this claim.
    std::string request;
  };

  struct Stats {
    uint64_t installed = 0;
    uint64_t shed = 0;
    uint64_t completed = 0;  // Finished OK.
    uint64_t failed = 0;     // Finished with an error status.
    uint64_t requeued = 0;
    uint64_t poisoned = 0;
    uint64_t owner_deaths = 0;  // EOWNERDEAD recoveries.
    uint32_t ready = 0;         // Instantaneous queue depth.
    uint32_t claimed = 0;       // Instantaneous in-flight count.
    uint32_t slots = 0;
    std::vector<uint64_t> claimed_by;    // Per worker index.
    std::vector<uint64_t> completed_by;  // Per worker index.
    std::vector<uint64_t> requeued_by;   // Per worker index.
  };

  /// Creates (truncating) the segment file and initialises the ring.
  static Status Create(const std::string& path, const Options& options,
                       std::unique_ptr<ShmRing>* out);

  /// Maps an existing segment created by Create() in another process.
  static Status Attach(const std::string& path, std::unique_ptr<ShmRing>* out);

  ~ShmRing();
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  // --- Coordinator side -------------------------------------------------

  /// Installs a request line into a free slot and returns its ticket.
  /// Ring full → ResourceExhausted (shed); oversized → OutOfRange;
  /// stopping → FailedPrecondition.
  Status Install(const std::string& request, uint64_t* ticket);

  /// Blocks until `ticket`'s job finishes, then returns its outcome:
  /// OK with the response line, or the job's typed error (including the
  /// poison status for jobs whose workers kept dying). Consumes the
  /// slot. On deadline the job is cancelled (a never-claimed job is
  /// freed; a claimed one is marked so its eventual completion is
  /// discarded) and Internal is returned.
  Status Await(uint64_t ticket, int timeout_ms, std::string* response);

  // --- Worker side ------------------------------------------------------

  /// Claims the oldest ready job for `worker`. NotFound on timeout with
  /// no job; FailedPrecondition once stop was requested.
  Status NextJob(uint32_t worker, int timeout_ms, Job* out);

  /// Publishes `job`'s outcome: the response line when `job_status` is
  /// OK, the typed error otherwise. A completion for a slot that was
  /// reclaimed or cancelled in the meantime is dropped
  /// (FailedPrecondition); an oversized response poisons the job with
  /// OutOfRange and returns it.
  Status Complete(const Job& job, const Status& job_status,
                  const std::string& response);

  // --- Supervision ------------------------------------------------------

  /// Raises the stop flag and wakes every waiter.
  void RequestStop();
  bool stop_requested() const;

  /// Advances `worker`'s liveness generation. Jobs the worker claimed
  /// under an older generation become stale and are picked up by
  /// ReclaimStale(); a straggler Complete() from the old incarnation is
  /// dropped by the generation check.
  void BumpWorkerGeneration(uint32_t worker);
  uint64_t WorkerGeneration(uint32_t worker) const;

  /// Requeues (or, at `max_attempts`, poisons) every claimed slot whose
  /// claim generation is stale. Returns the number of slots touched.
  uint32_t ReclaimStale();

  Stats SnapshotStats() const;

  uint32_t slot_count() const;
  uint32_t buffer_bytes() const;

  /// Test hook: runs inside Complete() between the response write and
  /// the state publish, while the ring mutex is held. A SIGKILL here is
  /// the "mid_response" crash point — it orphans the mutex and forces
  /// the EOWNERDEAD path.
  void SetCompleteHookForTest(std::function<void()> hook);

 private:
  struct Header;
  struct Slot;

  ShmRing() = default;

  Status LockMu() const;
  void UnlockMu() const;
  Slot* SlotAt(uint32_t index) const;
  char* BufferAt(uint32_t index) const;
  char* ResponseBufferAt(uint32_t index) const;
  uint32_t PoisonLocked(Slot* slot, const Status& why);

  Header* header_ = nullptr;
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
  int fd_ = -1;
  std::function<void()> complete_hook_;
};

}  // namespace modis

#endif  // MODIS_SERVICE_SHM_RING_H_
