#include "service/shm_ring.h"

#include <errno.h>
#include <fcntl.h>
#include <limits.h>
#include <linux/futex.h>
#include <pthread.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

namespace modis {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'D', 'I', 'S', 'H', 'M', 'R'};
constexpr uint32_t kVersion = 1;

// Slot states. `state` is written last in every transition, so a
// process killed mid-update leaves the slot observably in its old
// state (the transfer buffer may hold torn bytes, but nothing reads
// them until the state says so).
constexpr uint32_t kFree = 0;
constexpr uint32_t kReady = 1;
constexpr uint32_t kClaimed = 2;
constexpr uint32_t kDone = 3;

constexpr size_t kAlign = 64;

size_t RoundUp(size_t n) { return (n + kAlign - 1) / kAlign * kAlign; }

// Absolute CLOCK_MONOTONIC deadline `ms` from now.
timespec DeadlineIn(int ms) {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  ts.tv_sec += ms / 1000;
  ts.tv_nsec += static_cast<long>(ms % 1000) * 1000000L;
  if (ts.tv_nsec >= 1000000000L) {
    ts.tv_sec += 1;
    ts.tv_nsec -= 1000000000L;
  }
  return ts;
}

bool DeadlinePassed(const timespec& deadline) {
  timespec now;
  clock_gettime(CLOCK_MONOTONIC, &now);
  if (now.tv_sec != deadline.tv_sec) return now.tv_sec > deadline.tv_sec;
  return now.tv_nsec >= deadline.tv_nsec;
}

// Caps each individual sleep so a missed wake-up (possible when a
// peer dies between a state write and its wake) costs at most one
// re-check interval, never a wedge.
int NextWaitMs(const timespec& deadline) {
  timespec now;
  clock_gettime(CLOCK_MONOTONIC, &now);
  long remaining_ms = (deadline.tv_sec - now.tv_sec) * 1000L +
                      (deadline.tv_nsec - now.tv_nsec) / 1000000L;
  return static_cast<int>(std::max(1L, std::min(remaining_ms, 100L)));
}

// Cross-process sleep/wake is raw futex on a sequence word — NOT a
// pthread condvar. A process-shared condvar is not kill-safe: a waiter
// SIGKILLed inside pthread_cond_timedwait leaks its group reference,
// and the next signaller's group switch waits forever for the dead
// waiter to release it (glibc has no EOWNERDEAD equivalent for
// condvars). A futex eventcount keeps no per-waiter state in the
// segment, so a dead waiter costs nothing.
//
// Protocol: waiters read the sequence word under the ring mutex,
// unlock, and FUTEX_WAIT for it to change (bounded); wakers bump the
// word under the mutex and FUTEX_WAKE. A wake between the read and the
// wait makes the wait return EAGAIN immediately — no lost wake-ups.
void FutexWait(uint32_t* word, uint32_t seen, int timeout_ms) {
  timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  // Deliberately not FUTEX_PRIVATE_FLAG: the word is in a MAP_SHARED
  // segment and must wake across processes.
  ::syscall(SYS_futex, word, FUTEX_WAIT, seen, &ts, nullptr, 0);
}

void FutexBumpAndWakeAll(uint32_t* word) {
  __atomic_fetch_add(word, 1, __ATOMIC_RELEASE);
  ::syscall(SYS_futex, word, FUTEX_WAKE, INT_MAX, nullptr, nullptr, 0);
}

}  // namespace

struct ShmRing::Slot {
  uint32_t state;
  uint32_t cancelled;  // Await gave up; discard the eventual completion.
  uint32_t attempts;   // Times this job has been claimed.
  uint32_t claim_worker;
  uint64_t claim_generation;
  uint64_t ticket;
  uint32_t request_len;
  uint32_t response_len;
  int32_t status_code;  // StatusCode of the outcome once kDone.
  uint32_t pad_;
};

struct ShmRing::Header {
  char magic[8];
  uint32_t version;
  uint32_t slot_count;
  uint32_t buffer_bytes;
  uint32_t max_attempts;
  pthread_mutex_t mu;
  uint32_t job_ready_seq;  // Futex eventcount: bumped when a slot turns kReady.
  uint32_t job_done_seq;   // Futex eventcount: bumped when a slot turns kDone.
  uint32_t stop;
  uint32_t alloc_cursor;  // Rotates free-slot allocation (wraparound).
  uint64_t next_ticket;
  uint64_t installed;
  uint64_t shed;
  uint64_t completed;
  uint64_t failed;
  uint64_t requeued;
  uint64_t poisoned;
  uint64_t owner_deaths;
  uint64_t worker_generation[kMaxWorkers];
  uint64_t claimed_by[kMaxWorkers];
  uint64_t completed_by[kMaxWorkers];
  uint64_t requeued_by[kMaxWorkers];
};

ShmRing::Slot* ShmRing::SlotAt(uint32_t index) const {
  char* base = static_cast<char*>(map_) + RoundUp(sizeof(Header));
  return reinterpret_cast<Slot*>(base + index * RoundUp(sizeof(Slot)));
}

// Each slot owns TWO disjoint buffer_bytes regions: the request region
// and the response region. They must not be shared — a worker killed
// inside Complete() has already copied its response bytes, and the
// requeued claim must still read the original request intact.
char* ShmRing::BufferAt(uint32_t index) const {
  char* base = static_cast<char*>(map_) + RoundUp(sizeof(Header)) +
               header_->slot_count * RoundUp(sizeof(Slot));
  return base + static_cast<size_t>(index) * 2 * header_->buffer_bytes;
}

char* ShmRing::ResponseBufferAt(uint32_t index) const {
  return BufferAt(index) + header_->buffer_bytes;
}

namespace {
size_t SegmentBytes(const ShmRing::Options& options, size_t header_bytes,
                    size_t slot_bytes) {
  return RoundUp(header_bytes) + options.slots * RoundUp(slot_bytes) +
         static_cast<size_t>(options.slots) * 2 * options.buffer_bytes;
}
}  // namespace

Status ShmRing::Create(const std::string& path, const Options& options,
                       std::unique_ptr<ShmRing>* out) {
  if (options.slots == 0 || options.slots > 4096) {
    return Status::InvalidArgument("job ring needs 1..4096 slots");
  }
  if (options.buffer_bytes < 256) {
    return Status::InvalidArgument("job ring buffer_bytes must be >= 256");
  }
  if (options.max_attempts == 0) {
    return Status::InvalidArgument("job ring max_attempts must be >= 1");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    return Status::IoError("cannot create job ring segment " + path + ": " +
                           strerror(errno));
  }
  size_t bytes = SegmentBytes(options, sizeof(Header), sizeof(Slot));
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("cannot size job ring segment: " +
                           std::string(strerror(err)));
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    int err = errno;
    ::close(fd);
    return Status::IoError("cannot map job ring segment: " +
                           std::string(strerror(err)));
  }
  memset(map, 0, RoundUp(sizeof(Header)) +
                     options.slots * RoundUp(sizeof(Slot)));
  auto* header = static_cast<Header*>(map);
  header->version = kVersion;
  header->slot_count = options.slots;
  header->buffer_bytes = options.buffer_bytes;
  header->max_attempts = options.max_attempts;

  pthread_mutexattr_t mattr;
  pthread_mutexattr_init(&mattr);
  pthread_mutexattr_setpshared(&mattr, PTHREAD_PROCESS_SHARED);
  pthread_mutexattr_setrobust(&mattr, PTHREAD_MUTEX_ROBUST);
  pthread_mutex_init(&header->mu, &mattr);
  pthread_mutexattr_destroy(&mattr);

  // The eventcounts (job_ready_seq / job_done_seq) are plain words and
  // were zeroed with the rest of the header — nothing to initialise.

  // Magic last: an attacher that sees it sees a fully initialised ring.
  memcpy(header->magic, kMagic, sizeof(kMagic));

  auto ring = std::unique_ptr<ShmRing>(new ShmRing());
  ring->map_ = map;
  ring->map_bytes_ = bytes;
  ring->fd_ = fd;
  ring->header_ = header;
  *out = std::move(ring);
  return Status::OK();
}

Status ShmRing::Attach(const std::string& path, std::unique_ptr<ShmRing>* out) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("cannot open job ring segment " + path + ": " +
                           strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 ||
      static_cast<size_t>(st.st_size) < sizeof(Header)) {
    ::close(fd);
    return Status::FailedPrecondition("job ring segment " + path +
                                      " is truncated");
  }
  size_t bytes = static_cast<size_t>(st.st_size);
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    int err = errno;
    ::close(fd);
    return Status::IoError("cannot map job ring segment: " +
                           std::string(strerror(err)));
  }
  auto* header = static_cast<Header*>(map);
  if (memcmp(header->magic, kMagic, sizeof(kMagic)) != 0 ||
      header->version != kVersion) {
    ::munmap(map, bytes);
    ::close(fd);
    return Status::FailedPrecondition("job ring segment " + path +
                                      " has a bad magic or version");
  }
  Options shape;
  shape.slots = header->slot_count;
  shape.buffer_bytes = header->buffer_bytes;
  if (bytes < SegmentBytes(shape, sizeof(Header), sizeof(Slot))) {
    ::munmap(map, bytes);
    ::close(fd);
    return Status::FailedPrecondition("job ring segment " + path +
                                      " is smaller than its header claims");
  }
  auto ring = std::unique_ptr<ShmRing>(new ShmRing());
  ring->map_ = map;
  ring->map_bytes_ = bytes;
  ring->fd_ = fd;
  ring->header_ = header;
  *out = std::move(ring);
  return Status::OK();
}

ShmRing::~ShmRing() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

Status ShmRing::LockMu() const {
  int rc = pthread_mutex_lock(&header_->mu);
  if (rc == EOWNERDEAD) {
    // The previous owner died holding the lock. State transitions
    // commit via the slot `state` field, so the ring data is still
    // consistent; mark the mutex usable and count the recovery.
    pthread_mutex_consistent(&header_->mu);
    header_->owner_deaths++;
    rc = 0;
  }
  if (rc != 0) {
    return Status::Internal("job ring mutex is unrecoverable: " +
                            std::string(strerror(rc)));
  }
  return Status::OK();
}

void ShmRing::UnlockMu() const { pthread_mutex_unlock(&header_->mu); }

Status ShmRing::Install(const std::string& request, uint64_t* ticket) {
  if (request.size() > header_->buffer_bytes) {
    return Status::OutOfRange(
        "job ring transfer buffer overflow: request of " +
        std::to_string(request.size()) + " bytes exceeds the " +
        std::to_string(header_->buffer_bytes) + "-byte slot buffer");
  }
  MODIS_RETURN_IF_ERROR(LockMu());
  if (header_->stop != 0) {
    UnlockMu();
    return Status::FailedPrecondition("job ring is stopping");
  }
  Slot* slot = nullptr;
  uint32_t index = 0;
  for (uint32_t i = 0; i < header_->slot_count; ++i) {
    uint32_t probe = (header_->alloc_cursor + i) % header_->slot_count;
    if (SlotAt(probe)->state == kFree) {
      slot = SlotAt(probe);
      index = probe;
      break;
    }
  }
  if (slot == nullptr) {
    header_->shed++;
    UnlockMu();
    return Status::ResourceExhausted(
        "job ring full: " + std::to_string(header_->slot_count) +
        " jobs in flight; retry later");
  }
  header_->alloc_cursor = (index + 1) % header_->slot_count;
  memcpy(BufferAt(index), request.data(), request.size());
  slot->request_len = static_cast<uint32_t>(request.size());
  slot->response_len = 0;
  slot->status_code = 0;
  slot->attempts = 0;
  slot->cancelled = 0;
  slot->claim_worker = 0;
  slot->claim_generation = 0;
  slot->ticket = ++header_->next_ticket;
  header_->installed++;
  slot->state = kReady;  // Commit point.
  *ticket = slot->ticket;
  FutexBumpAndWakeAll(&header_->job_ready_seq);
  UnlockMu();
  return Status::OK();
}

Status ShmRing::NextJob(uint32_t worker, int timeout_ms, Job* out) {
  if (worker >= kMaxWorkers) {
    return Status::InvalidArgument("worker index out of range");
  }
  timespec deadline = DeadlineIn(timeout_ms);
  MODIS_RETURN_IF_ERROR(LockMu());
  for (;;) {
    if (header_->stop != 0) {
      UnlockMu();
      return Status::FailedPrecondition("job ring is stopping");
    }
    // Claim the oldest ready job (smallest ticket) so requeued work is
    // not starved by fresh installs.
    Slot* best = nullptr;
    uint32_t best_index = 0;
    for (uint32_t i = 0; i < header_->slot_count; ++i) {
      Slot* slot = SlotAt(i);
      if (slot->state != kReady) continue;
      if (best == nullptr || slot->ticket < best->ticket) {
        best = slot;
        best_index = i;
      }
    }
    if (best != nullptr) {
      best->claim_worker = worker;
      best->claim_generation = header_->worker_generation[worker];
      best->attempts++;
      header_->claimed_by[worker]++;
      out->slot = best_index;
      out->ticket = best->ticket;
      out->attempt = best->attempts;
      out->request.assign(BufferAt(best_index), best->request_len);
      best->state = kClaimed;  // Commit point.
      UnlockMu();
      return Status::OK();
    }
    if (DeadlinePassed(deadline)) {
      UnlockMu();
      return Status::NotFound("no job ready");
    }
    uint32_t seen = __atomic_load_n(&header_->job_ready_seq, __ATOMIC_ACQUIRE);
    UnlockMu();
    FutexWait(&header_->job_ready_seq, seen, NextWaitMs(deadline));
    MODIS_RETURN_IF_ERROR(LockMu());
  }
}

Status ShmRing::Complete(const Job& job, const Status& job_status,
                         const std::string& response) {
  Status outcome = job_status;
  std::string payload = outcome.ok() ? response : outcome.message();
  bool overflow = false;
  if (payload.size() > header_->buffer_bytes) {
    overflow = true;
    outcome = Status::OutOfRange(
        "job ring transfer buffer overflow: response of " +
        std::to_string(payload.size()) + " bytes exceeds the " +
        std::to_string(header_->buffer_bytes) + "-byte slot buffer");
    payload = outcome.message();
  }
  MODIS_RETURN_IF_ERROR(LockMu());
  Slot* slot = SlotAt(job.slot);
  // A reclaim (worker presumed dead) or cancel may have raced this
  // completion. The (ticket, attempt) pair identifies the exact claim
  // this Job came from — after a requeue the slot carries the same
  // ticket with a higher attempt count, so a straggler from a worker's
  // previous incarnation never publishes over the live claim. The
  // generation check additionally drops completions racing the
  // supervisor between its generation bump and its reclaim.
  bool stale =
      slot->state != kClaimed || slot->ticket != job.ticket ||
      slot->attempts != job.attempt ||
      slot->claim_generation != header_->worker_generation[slot->claim_worker];
  if (stale) {
    UnlockMu();
    return Status::FailedPrecondition(
        "stale completion dropped: slot was reclaimed or reassigned");
  }
  if (slot->cancelled != 0) {
    // The awaiting side gave up; release the slot quietly.
    slot->state = kFree;
    UnlockMu();
    return Status::FailedPrecondition("completion dropped: job was cancelled");
  }
  memcpy(ResponseBufferAt(job.slot), payload.data(), payload.size());
  slot->response_len = static_cast<uint32_t>(payload.size());
  slot->status_code = static_cast<int32_t>(outcome.code());
  if (complete_hook_) complete_hook_();  // "mid_response" crash point.
  if (outcome.ok()) {
    header_->completed++;
  } else {
    header_->failed++;
  }
  header_->completed_by[slot->claim_worker]++;
  slot->state = kDone;  // Commit point.
  FutexBumpAndWakeAll(&header_->job_done_seq);
  UnlockMu();
  // Publishing an error OUTCOME is still a successful Complete(); only
  // the overflow case reports back (the caller's response was dropped).
  return overflow ? outcome : Status::OK();
}

Status ShmRing::Await(uint64_t ticket, int timeout_ms, std::string* response) {
  timespec deadline = DeadlineIn(timeout_ms);
  MODIS_RETURN_IF_ERROR(LockMu());
  for (;;) {
    Slot* found = nullptr;
    uint32_t found_index = 0;
    for (uint32_t i = 0; i < header_->slot_count; ++i) {
      Slot* slot = SlotAt(i);
      if (slot->state != kFree && slot->ticket == ticket) {
        found = slot;
        found_index = i;
        break;
      }
    }
    if (found == nullptr) {
      UnlockMu();
      return Status::NotFound("ticket " + std::to_string(ticket) +
                              " is not in the ring (already consumed?)");
    }
    if (found->state == kDone) {
      Status outcome;
      if (found->status_code == 0) {
        response->assign(ResponseBufferAt(found_index),
                         found->response_len);
      } else {
        outcome = Status(static_cast<StatusCode>(found->status_code),
                         std::string(ResponseBufferAt(found_index),
                                     found->response_len));
      }
      found->state = kFree;
      UnlockMu();
      return outcome;
    }
    if (DeadlinePassed(deadline)) {
      // Cancel: free a job nobody started; mark a claimed one so its
      // eventual completion (or reclaim) releases the slot silently.
      if (found->state == kReady) {
        found->state = kFree;
      } else {
        found->cancelled = 1;
      }
      UnlockMu();
      return Status::Internal("job " + std::to_string(ticket) +
                              " missed its " + std::to_string(timeout_ms) +
                              "ms deadline and was cancelled");
    }
    uint32_t seen = __atomic_load_n(&header_->job_done_seq, __ATOMIC_ACQUIRE);
    UnlockMu();
    FutexWait(&header_->job_done_seq, seen, NextWaitMs(deadline));
    MODIS_RETURN_IF_ERROR(LockMu());
  }
}

void ShmRing::RequestStop() {
  if (LockMu().ok()) {
    header_->stop = 1;
    FutexBumpAndWakeAll(&header_->job_ready_seq);
    FutexBumpAndWakeAll(&header_->job_done_seq);
    UnlockMu();
  }
}

bool ShmRing::stop_requested() const {
  if (!LockMu().ok()) return true;
  bool stop = header_->stop != 0;
  UnlockMu();
  return stop;
}

void ShmRing::BumpWorkerGeneration(uint32_t worker) {
  if (worker >= kMaxWorkers) return;
  if (!LockMu().ok()) return;
  header_->worker_generation[worker]++;
  UnlockMu();
}

uint64_t ShmRing::WorkerGeneration(uint32_t worker) const {
  if (worker >= kMaxWorkers) return 0;
  if (!LockMu().ok()) return 0;
  uint64_t generation = header_->worker_generation[worker];
  UnlockMu();
  return generation;
}

uint32_t ShmRing::PoisonLocked(Slot* slot, const Status& why) {
  uint32_t index = 0;
  for (uint32_t i = 0; i < header_->slot_count; ++i) {
    if (SlotAt(i) == slot) {
      index = i;
      break;
    }
  }
  const std::string& message = why.message();
  size_t len = std::min<size_t>(message.size(), header_->buffer_bytes);
  memcpy(ResponseBufferAt(index), message.data(), len);
  slot->response_len = static_cast<uint32_t>(len);
  slot->status_code = static_cast<int32_t>(why.code());
  header_->poisoned++;
  header_->failed++;
  slot->state = kDone;  // Commit point.
  return index;
}

uint32_t ShmRing::ReclaimStale() {
  if (!LockMu().ok()) return 0;
  uint32_t touched = 0;
  for (uint32_t i = 0; i < header_->slot_count; ++i) {
    Slot* slot = SlotAt(i);
    if (slot->state != kClaimed) continue;
    if (slot->claim_generation ==
        header_->worker_generation[slot->claim_worker]) {
      continue;
    }
    touched++;
    if (slot->cancelled != 0) {
      slot->state = kFree;
      continue;
    }
    if (slot->attempts >= header_->max_attempts) {
      PoisonLocked(slot,
                   Status::Internal(
                       "job poisoned after " + std::to_string(slot->attempts) +
                       " claims ended in worker crashes"));
      FutexBumpAndWakeAll(&header_->job_done_seq);
    } else {
      header_->requeued++;
      header_->requeued_by[slot->claim_worker]++;
      slot->state = kReady;  // Commit point.
      FutexBumpAndWakeAll(&header_->job_ready_seq);
    }
  }
  UnlockMu();
  return touched;
}

ShmRing::Stats ShmRing::SnapshotStats() const {
  Stats stats;
  if (!LockMu().ok()) return stats;
  stats.installed = header_->installed;
  stats.shed = header_->shed;
  stats.completed = header_->completed;
  stats.failed = header_->failed;
  stats.requeued = header_->requeued;
  stats.poisoned = header_->poisoned;
  stats.owner_deaths = header_->owner_deaths;
  stats.slots = header_->slot_count;
  for (uint32_t i = 0; i < header_->slot_count; ++i) {
    uint32_t state = SlotAt(i)->state;
    if (state == kReady) stats.ready++;
    if (state == kClaimed) stats.claimed++;
  }
  stats.claimed_by.assign(header_->claimed_by,
                          header_->claimed_by + kMaxWorkers);
  stats.completed_by.assign(header_->completed_by,
                            header_->completed_by + kMaxWorkers);
  stats.requeued_by.assign(header_->requeued_by,
                           header_->requeued_by + kMaxWorkers);
  UnlockMu();
  return stats;
}

uint32_t ShmRing::slot_count() const { return header_->slot_count; }
uint32_t ShmRing::buffer_bytes() const { return header_->buffer_bytes; }

void ShmRing::SetCompleteHookForTest(std::function<void()> hook) {
  complete_hook_ = std::move(hook);
}

}  // namespace modis
