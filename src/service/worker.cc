#include "service/worker.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "service/wire.h"

namespace modis {

namespace {

// The span-name trigger of the mid_train / pre_commit crash points.
// Process-global because the span observer is: a worker process arms at
// most one crash point for its whole life, so a plain pointer is enough.
const char* g_crash_span = nullptr;

void CrashOnSpan(const char* name) {
  if (g_crash_span != nullptr && strcmp(name, g_crash_span) == 0) {
    ::kill(::getpid(), SIGKILL);
  }
}

void SelfKill() { ::kill(::getpid(), SIGKILL); }

}  // namespace

Status RunWorkerLoop(DiscoveryService* service, const WorkerOptions& options) {
  std::unique_ptr<ShmRing> ring;
  MODIS_RETURN_IF_ERROR(ShmRing::Attach(options.ring_path, &ring));
  if (options.worker_index >= ShmRing::kMaxWorkers) {
    return Status::InvalidArgument("worker index out of range");
  }
  if (options.crash_at == "mid_train") {
    g_crash_span = "train";
    SetGlobalSpanObserver(&CrashOnSpan);
  } else if (options.crash_at == "pre_commit") {
    g_crash_span = "commit";
    SetGlobalSpanObserver(&CrashOnSpan);
  } else if (options.crash_at == "mid_response") {
    ring->SetCompleteHookForTest(&SelfKill);
  } else if (!options.crash_at.empty() && options.crash_at != "claimed") {
    return Status::InvalidArgument("unknown crash_at point: " +
                                   options.crash_at);
  }
  MODIS_LOG(INFO, "worker") << "worker " << options.worker_index
                            << " draining ring " << options.ring_path;
  for (;;) {
    ShmRing::Job job;
    const Status next =
        ring->NextJob(options.worker_index, options.poll_ms, &job);
    if (next.code() == StatusCode::kNotFound) continue;  // Poll tick.
    if (!next.ok()) {
      // Stop was requested (FailedPrecondition) or the ring is gone.
      return next.code() == StatusCode::kFailedPrecondition ? Status::OK()
                                                            : next;
    }
    if (options.crash_at == "claimed") SelfKill();
    // The dispatcher never throws and always yields a response line —
    // a malformed request becomes its typed error line, which is an
    // answered job, not a failed one.
    const std::string response = HandleServiceLine(service, job.request);
    const Status completed = ring->Complete(job, Status::OK(), response);
    if (!completed.ok() &&
        completed.code() != StatusCode::kFailedPrecondition) {
      MODIS_LOG(WARN, "worker")
          << "worker " << options.worker_index
          << " could not publish job " << job.ticket << ": "
          << completed.ToString();
    }
  }
}

Status WorkerPool::Start(const Options& options,
                         std::unique_ptr<WorkerPool>* out) {
  if (options.workers == 0 || options.workers > ShmRing::kMaxWorkers) {
    return Status::InvalidArgument("worker pool needs 1..64 workers");
  }
  if (!options.spawn) {
    return Status::InvalidArgument("worker pool needs a spawn function");
  }
  auto pool = std::unique_ptr<WorkerPool>(new WorkerPool());
  pool->options_ = options;
  MODIS_RETURN_IF_ERROR(
      ShmRing::Create(options.ring_path, options.ring, &pool->ring_));
  pool->slots_.resize(options.workers);
  const auto now = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < options.workers; ++i) {
    Slot& slot = pool->slots_[i];
    slot.pid = options.spawn(i);
    slot.alive = slot.pid > 0;
    slot.spawned_at = now;
    slot.backoff_ms = options.respawn_ms;
    if (!slot.alive) slot.respawn_at = now;
  }
  pool->supervisor_ = std::thread(&WorkerPool::SupervisorLoop, pool.get());
  *out = std::move(pool);
  return Status::OK();
}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::SupervisorLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      const auto now = std::chrono::steady_clock::now();
      for (uint32_t i = 0; i < slots_.size(); ++i) {
        Slot& slot = slots_[i];
        if (slot.alive) {
          int wstatus = 0;
          const pid_t got = ::waitpid(slot.pid, &wstatus, WNOHANG);
          if (got != slot.pid) continue;
          // The worker died. Stale-claim recovery first (generation
          // bump + reclaim), so its orphaned job is requeued before any
          // respawn — no accepted query waits for the backoff.
          slot.alive = false;
          restarts_total_++;
          slot.restarts++;
          ring_->BumpWorkerGeneration(i);
          const uint32_t reclaimed = ring_->ReclaimStale();
          const bool stable =
              now - slot.spawned_at >
              std::chrono::milliseconds(options_.stable_ms);
          slot.backoff_ms =
              stable ? options_.respawn_ms
                     : std::min(slot.backoff_ms * 2, options_.respawn_max_ms);
          slot.respawn_at = now + std::chrono::milliseconds(slot.backoff_ms);
          MODIS_LOG(WARN, "worker")
              << "worker " << i << " (pid " << slot.pid << ") exited"
              << (WIFSIGNALED(wstatus)
                      ? " on signal " + std::to_string(WTERMSIG(wstatus))
                      : " with code " +
                            std::to_string(WEXITSTATUS(wstatus)))
              << "; reclaimed " << reclaimed << " jobs, respawn in "
              << slot.backoff_ms << "ms";
        } else if (now >= slot.respawn_at) {
          slot.pid = options_.spawn(i);
          slot.alive = slot.pid > 0;
          slot.spawned_at = now;
          if (!slot.alive) {
            slot.respawn_at = now + std::chrono::milliseconds(slot.backoff_ms);
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void WorkerPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (ring_ != nullptr) ring_->RequestStop();
  if (supervisor_.joinable()) supervisor_.join();
  // Grace period: workers poll the stop flag at poll_ms granularity and
  // exit on their own; SIGTERM hurries stragglers, SIGKILL ends them.
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (!slot.alive) continue;
    ::kill(slot.pid, SIGTERM);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  for (Slot& slot : slots_) {
    if (!slot.alive) continue;
    for (;;) {
      int wstatus = 0;
      const pid_t got = ::waitpid(slot.pid, &wstatus, WNOHANG);
      if (got == slot.pid || (got < 0 && errno == ECHILD)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(slot.pid, SIGKILL);
        ::waitpid(slot.pid, &wstatus, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    slot.alive = false;
  }
}

Status WorkerPool::Submit(const std::string& request_line,
                          std::string* response_line) {
  uint64_t ticket = 0;
  MODIS_RETURN_IF_ERROR(ring_->Install(request_line, &ticket));
  return ring_->Await(ticket, options_.job_timeout_ms, response_line);
}

std::vector<WorkerPool::WorkerState> WorkerPool::SnapshotWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerState> out;
  out.reserve(slots_.size());
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    WorkerState state;
    state.index = i;
    state.pid = slots_[i].pid;
    state.alive = slots_[i].alive;
    state.restarts = slots_[i].restarts;
    out.push_back(state);
  }
  return out;
}

uint64_t WorkerPool::restarts_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_total_;
}

void WorkerPool::FillMetrics(MetricsSnapshot* snapshot) const {
  const ShmRing::Stats ring = ring_->SnapshotStats();
  snapshot->ring_installed = ring.installed;
  snapshot->ring_shed = ring.shed;
  snapshot->ring_requeued = ring.requeued;
  snapshot->ring_poisoned = ring.poisoned;
  snapshot->ring_owner_deaths = ring.owner_deaths;
  snapshot->ring_depth = ring.ready;
  snapshot->ring_inflight = ring.claimed;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->worker_processes = slots_.size();
  snapshot->worker_restarts = restarts_total_;
  snapshot->workers.clear();
  snapshot->workers.reserve(slots_.size());
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    WorkerMetricsSnapshot worker;
    worker.index = i;
    worker.alive = slots_[i].alive ? 1 : 0;
    worker.restarts = slots_[i].restarts;
    worker.jobs_claimed = ring.claimed_by[i];
    worker.jobs_completed = ring.completed_by[i];
    worker.jobs_requeued = ring.requeued_by[i];
    snapshot->workers.push_back(worker);
  }
}

}  // namespace modis
