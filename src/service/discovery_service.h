#ifndef MODIS_SERVICE_DISCOVERY_SERVICE_H_
#define MODIS_SERVICE_DISCOVERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <set>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/engine.h"
#include "datagen/tasks.h"
#include "estimator/training_fuser.h"
#include "service/metrics.h"
#include "service/qos.h"
#include "storage/persistent_record_cache.h"

namespace modis {

/// One discovery query against the long-lived service: which task, which
/// MODis variant, which slice of the task's measure set, and the knobs of
/// the (N, ε)-approximation. The wire codec (service/wire.h) maps this
/// 1:1 onto the line-delimited JSON protocol of docs/SERVING.md.
struct DiscoveryRequest {
  /// Bench task: "T1".."T4", "case1"/"case2", or a full BenchTaskName
  /// ("T2-house"). The service loads each task's lake and universe once.
  std::string task;
  /// "apx" | "nobi" | "bi" | "div".
  std::string variant = "bi";
  /// "exact" | "gbm" (the MO-GBM surrogate oracle).
  std::string oracle = "exact";
  /// Names of the task measures to optimize, in the task's canonical
  /// order; empty = the task's full measure set. Dropping wall-clock
  /// measures ("train_time") is how clients get bit-reproducible answers.
  std::vector<std::string> measures;
  double epsilon = 0.2;
  size_t budget = 120;  // ModisConfig::max_states.
  int maxl = 4;
  size_t k = 5;         // DivMODis skyline cap.
  double alpha = 0.5;
  /// Record-cache override; empty = the service's default cache (if any).
  std::string cache_path;
  /// "" (service default) | "off" | "read" | "read_write".
  std::string cache_mode;
  std::string cache_namespace;
  uint64_t seed = 1;
  /// Tenant credential for the QoS admission layer; empty = the default
  /// tenant. Never part of the query fingerprint — answers are identical
  /// across tenants.
  std::string api_key;
  /// Echo the query's span tree inline on the response (wire
  /// `"trace":true` / HTTP `X-Modis-Trace: 1`). Every query is recorded
  /// either way (for the debug ring and the phase histograms); this flag
  /// only controls the inline echo. Like api_key it is never part of the
  /// query fingerprint or the warmth key — tracing cannot perturb
  /// admission or the answer.
  bool trace = false;
};

/// One skyline member of a response, flattened for the wire.
struct DiscoverySkylineRow {
  std::string signature;
  int level = 0;
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> raw;
  std::vector<double> normalized;
};

/// Everything a client gets back: the ε-skyline plus per-query stats.
struct DiscoveryResponse {
  std::string task;     // Canonical task name ("T2-house").
  std::string variant;
  std::vector<std::string> measure_names;  // Order of raw/normalized.
  std::vector<DiscoverySkylineRow> skyline;

  // Per-query search/valuation counters (this query's oracle only).
  size_t valuated_states = 0;
  size_t generated_states = 0;
  size_t pruned_states = 0;
  size_t exact_evals = 0;
  size_t persistent_hits = 0;
  size_t surrogate_evals = 0;
  size_t cache_hits = 0;
  size_t failed_evals = 0;
  /// Exact trainings this query consumed from another query's concurrent
  /// (or just-finished) identical training instead of running its own
  /// (cross-query fusion; counted separately from exact_evals).
  size_t fused_hits = 0;
  /// Row counts / feature vectors served from a cached materialization's
  /// bitset mask (popcount) instead of a rescan of D_U.
  size_t mask_fast_path_hits = 0;
  bool cache_active = false;

  double queue_ms = 0.0;  // Admission-queue wait.
  double run_ms = 0.0;    // Engine wall time.
  double total_ms = 0.0;  // Queue + context + engine, as the client saw it.

  /// Host-assigned id of the accepted query ("q-000042"): appears in
  /// logs, traces, the response wire, and the X-Modis-Request-Id HTTP
  /// header. Empty on the detached (service-free) path.
  std::string request_id;
  /// The query's span tree; populated only when the request set `trace`.
  std::vector<TraceSpan> trace_spans;
};

/// The long-lived discovery host: loads each task's data lake and
/// SearchUniverse once, owns one shared ThreadPool for all valuation
/// fan-out and one PersistentRecordCache per cache file, and answers
/// discovery queries concurrently through a bounded admission queue.
///
/// Concurrency contract: `sessions` worker threads drain the queue; each
/// query gets its own evaluator + oracle + ModisEngine over the shared
/// universe/pool/cache (EngineRuntime). Because every recorded evaluation
/// replays exactly what the deterministic training that produced it
/// returned, queries whose measure set excludes wall-clock measures
/// produce skylines byte-identical to a serial execution, no matter how
/// the concurrent sessions interleave on the shared cache — the property
/// tests/service_test.cc pins down. Submit() fails fast with
/// FailedPrecondition when the queue is at capacity (bounded admission:
/// shed load at the door, never stall the socket loop).
class DiscoveryService {
 public:
  struct Options {
    /// Default byte budget per cache file. A host is long-lived: an
    /// unbounded log would grow with every novel query forever, so the
    /// production default bounds it (explicitly pass 0 to opt out).
    static constexpr uint64_t kDefaultCacheMaxBytes = 256ull << 20;

    /// Concurrent query executors (each runs one engine at a time).
    size_t sessions = 2;
    /// Bounded admission: Submit() rejects beyond this many queued
    /// requests (requests being executed do not count).
    size_t queue_capacity = 8;
    /// Workers of the shared valuation pool; 0 = hardware concurrency.
    size_t valuation_threads = 0;
    /// Cache file served when a request does not name one; empty = no
    /// default cache.
    std::string default_cache_path;
    /// Mode applied when a request leaves cache_mode empty.
    CacheMode default_cache_mode = CacheMode::kReadWrite;
    /// Byte budget per cache file (0 = unbounded); see
    /// PersistentRecordCache::Options::max_bytes.
    uint64_t cache_max_bytes = kDefaultCacheMaxBytes;
    /// Page size of the paged cache engine; 0 keeps the v1 log for new
    /// files. See PersistentRecordCache::Options::page_size.
    uint32_t cache_page_size = 0;
    /// Buffer-pool frame budget of the paged engine; 0 = 64 frames.
    size_t cache_buffer_pool_frames = 0;
    /// Row scale of the generated bench lakes (1.0 = paper scale; tests
    /// and smoke runs shrink it).
    double task_row_scale = 1.0;
    /// Most task contexts (lake + universal table + universe) held at
    /// once; 0 = unbounded. Exceeding the cap evicts the context whose
    /// last query is oldest (LRU). A context in use by a running query
    /// stays alive until that query finishes; the next query of an
    /// evicted task rebuilds it transparently — contexts are derived,
    /// deterministic data, so the answer is identical.
    size_t max_task_contexts = 0;
    /// Idle TTL: a context not queried for this long is evicted by the
    /// sweep that runs on every context lookup. 0 = no TTL.
    double context_idle_ttl_s = 0.0;
    /// Multi-tenant QoS: API-key → token bucket + in-flight quota +
    /// priority (docs/SERVING.md §7). Empty = QoS off (every request is
    /// admitted up to queue_capacity, FIFO — the pre-QoS behavior). When
    /// non-empty, requests with no key (or an unknown one) land on the
    /// spec with the empty api_key, or on a built-in unlimited
    /// "anonymous" tenant if none is configured.
    std::vector<TenantSpec> tenants;
    /// Slow-query log threshold (ms): any query whose total latency
    /// reaches it gets one structured WARN line with its request id,
    /// tenant, task, and per-phase breakdown. 0 = off.
    double slow_query_ms = 0.0;
    /// Completed-trace retention: the N most recent and the N slowest
    /// traces, served by the `trace` wire verb / GET /v1/debug/traces.
    size_t trace_recent_capacity = 16;
    size_t trace_slow_capacity = 16;
    /// Multi-process mode: open every cache file as a *shared*
    /// attachment (PersistentRecordCache::OpenShared) instead of
    /// holding the lifetime writer lock, so sibling worker processes
    /// can serve the same file (docs/MULTIPROCESS.md). The attachment
    /// re-reads the file before each query that touches it, making a
    /// sibling's published trainings warm hits here.
    bool shared_cache = false;
    /// Prefix of minted request ids ("q-" → "q-000001"). A worker
    /// process sets "q-w<N>-" so ids stay unique across the pool.
    std::string request_id_prefix = "q-";
  };

  struct Stats {
    size_t accepted = 0;
    size_t rejected = 0;
    size_t served = 0;   // Completed OK.
    size_t failed = 0;   // Completed with an error.
  };

  using Callback = std::function<void(Result<DiscoveryResponse>)>;

  explicit DiscoveryService(Options options);
  /// Drains the queue (accepted work is finished, not dropped), then
  /// joins the sessions and flushes every shared cache.
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Builds a task's context (lake, universal table, universe) eagerly so
  /// the first query doesn't pay for it.
  Status Preload(const std::string& task);

  /// Asynchronous submission: `done` runs exactly once for every
  /// admitted request. Fails fast without invoking `done`:
  ///   - FailedPrecondition when the service is shutting down;
  ///   - ResourceExhausted (HTTP 429, with a retry_after_s hint) when the
  ///     tenant's token bucket or in-flight quota rejects the request, or
  ///     when the queue is full and the request does not outrank any
  ///     queued work.
  /// Under overload a full queue sheds the cheapest-to-retry queued job
  /// first — lowest priority, cold before warm, youngest on ties — whose
  /// own callback then gets the ResourceExhausted status. Work that a
  /// session already picked up is never shed.
  Status Submit(DiscoveryRequest request, Callback done);

  /// Synchronous convenience over Submit: blocks until the response.
  Result<DiscoveryResponse> Answer(const DiscoveryRequest& request);

  /// One-shot, service-free execution of a request: fresh lake, fresh
  /// universe, own pool, self-opened cache (if the request names one).
  /// This is the "cold process-per-query" baseline the serving bench
  /// compares against, and the `modis_server --batch` reference mode.
  static Result<DiscoveryResponse> AnswerDetached(
      const DiscoveryRequest& request, double task_row_scale = 1.0);

  Stats stats() const;
  const Options& options() const { return options_; }

  /// The shared counter registry. The transport layer (LineServer) and
  /// the server binary write transport counters into the same registry so
  /// one `{"verb":"metrics"}` snapshot covers the whole host.
  ServiceMetrics* metrics() { return &metrics_; }

  /// One consistent export of every counter, gauge (queue depth, live
  /// contexts, open-cache totals), and latency histogram — the payload of
  /// the `"metrics"` wire verb and of the shutdown dump.
  MetricsSnapshot SnapshotMetrics() const;

  /// Completed traces retained by the host debug ring — the payload of
  /// the `trace` wire verb and GET /v1/debug/traces.
  std::vector<Trace> RecentTraces() const { return trace_ring_.Recent(); }
  std::vector<Trace> SlowestTraces() const { return trace_ring_.Slowest(); }

 private:
  struct TaskContext {
    TabularBench bench;
    SearchUniverse universe;
    /// Eviction bookkeeping, guarded by context_mu_.
    uint64_t last_used_tick = 0;
    std::chrono::steady_clock::time_point last_used_at;

    TaskContext(TabularBench b, SearchUniverse u)
        : bench(std::move(b)), universe(std::move(u)) {}
  };

  struct Job {
    DiscoveryRequest request;
    Callback done;
    WallTimer queued;
    /// Index into tenants_; SIZE_MAX when QoS is off.
    size_t tenant = size_t(-1);
    int priority = 0;
    /// An identical request completed OK before (cheap to re-answer, so
    /// expensive to shed relative to cold work).
    bool warm = false;
    /// Host-assigned id of this accepted query, minted at admission.
    std::string request_id;
    /// Monotonic admission sequence (the numeric half of request_id).
    uint64_t sequence = 0;
    /// Every accepted query records spans (the recorder is cheap and
    /// feeds the debug ring + phase histograms even when the client did
    /// not opt into the inline echo). shared_ptr: the job is moved
    /// between queue and session.
    std::shared_ptr<TraceRecorder> recorder;
    SpanId root_span = kNoSpan;
    SpanId admission_span = kNoSpan;
  };

  /// One tenant's live QoS state; guarded by queue_mu_.
  struct Tenant {
    TenantSpec spec;
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
    size_t in_flight = 0;  // Queued + executing.
    uint64_t admitted = 0;
    uint64_t rate_limited = 0;
    uint64_t quota_rejected = 0;
    uint64_t shed = 0;
    uint64_t served = 0;
    uint64_t failed = 0;
  };

  /// Resolves (building on first use) the shared context of a task. The
  /// returned shared_ptr keeps the context alive across an eviction that
  /// races with the query using it.
  Result<std::shared_ptr<TaskContext>> GetContext(const std::string& task);

  /// Applies the idle TTL and the LRU cap; `keep` is never evicted.
  /// `reserve` is 1 when a new context is about to be inserted (the cap
  /// must leave room for it) and 0 on a plain lookup. Caller holds
  /// context_mu_.
  void EvictContextsLocked(const std::string& keep, size_t reserve);

  /// Resolves (opening on first use) the shared cache for a request;
  /// null when the request and the service default both disable caching.
  Result<PersistentRecordCache*> GetCache(const DiscoveryRequest& request,
                                          CacheMode* effective_mode);

  /// Runs one query end to end on the calling (session) thread. `trace`
  /// (with its root span) records the context/run phases; both may be
  /// null/kNoSpan for an untraced execution.
  Result<DiscoveryResponse> Execute(const DiscoveryRequest& request,
                                    TraceRecorder* trace, SpanId root);

  void SessionLoop();

  /// Tenant of `api_key` (falling back to the default/anonymous tenant).
  /// Only meaningful when QoS is on. Caller holds queue_mu_.
  size_t ResolveTenantLocked(const std::string& api_key) const;

  /// QoS admission: bucket + quota checks, shed-victim selection. On
  /// rejection returns non-OK; when a queued victim must be shed, moves
  /// its callback into *shed so the caller can fail it outside the lock.
  /// Caller holds queue_mu_.
  Status AdmitLocked(const DiscoveryRequest& request, size_t* tenant_index,
                     int* priority, bool* warm, Job* shed);

  Options options_;
  ThreadPool pool_;
  /// Cross-query exact-training fuser shared by every engine the service
  /// constructs (EngineRuntime::fuser). Engines scope it by their own
  /// TaskFingerprint, so only queries over identical data, layout,
  /// measures, and model identity ever share a training. Declared before
  /// the session threads so it outlives every engine they run.
  TrainingFuser fuser_;

  mutable std::mutex context_mu_;
  /// Keyed by canonical task name; values are shared_ptrs so an eviction
  /// only drops the map's reference — queries running on the context
  /// keep it alive until they finish.
  std::map<std::string, std::shared_ptr<TaskContext>> contexts_;
  /// Logical clock for context LRU; bumped on every lookup.
  uint64_t context_tick_ = 0;

  mutable std::mutex cache_mu_;
  /// Keyed by cache path as given; one open (locked) cache per file,
  /// shared by every query that names it.
  std::map<std::string, std::unique_ptr<PersistentRecordCache>> caches_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;

  // QoS state, guarded by queue_mu_ (admission and completion touch it
  // on the same paths that touch the queue).
  bool qos_enabled_ = false;
  std::vector<Tenant> tenants_;
  std::map<std::string, size_t> tenant_by_key_;
  size_t default_tenant_ = size_t(-1);
  /// Serialized requests (api_key stripped) that completed OK — the
  /// warmth signal of the shed ordering. Bounded; cleared when large.
  std::set<std::string> warm_keys_;

  /// Counters + histograms; see metrics.h. Declared after the maps it
  /// aggregates from in SnapshotMetrics, destroyed after the sessions
  /// that write into it.
  ServiceMetrics metrics_;

  /// Completed-trace retention (thread-safe; see common/trace.h).
  TraceRing trace_ring_;
  /// Mints request ids ("q-000001", ...); starts at 1.
  std::atomic<uint64_t> next_request_id_{1};

  std::vector<std::thread> sessions_;
};

}  // namespace modis

#endif  // MODIS_SERVICE_DISCOVERY_SERVICE_H_
