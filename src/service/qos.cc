#include "service/qos.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace modis {

namespace {

bool ValidTenantName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::string> SplitColons(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

Result<double> ParseNonNegative(const std::string& text, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(value) ||
      value < 0.0) {
    return Status::InvalidArgument(std::string(what) + " '" + text +
                                   "' must be a non-negative number");
  }
  return value;
}

}  // namespace

Result<TenantSpec> ParseTenantSpec(const std::string& spec) {
  const std::vector<std::string> parts = SplitColons(spec);
  if (parts.size() < 2 || parts.size() > 6) {
    return Status::InvalidArgument(
        "tenant spec '" + spec +
        "' is not NAME:API_KEY[:RATE[:BURST[:MAX_IN_FLIGHT[:PRIORITY]]]]");
  }
  TenantSpec tenant;
  tenant.name = parts[0];
  if (!ValidTenantName(tenant.name)) {
    return Status::InvalidArgument("tenant name '" + parts[0] +
                                   "' must be [A-Za-z0-9_-]+");
  }
  tenant.api_key = parts[1];
  if (parts.size() > 2 && !parts[2].empty()) {
    MODIS_ASSIGN_OR_RETURN(tenant.rate_per_s,
                           ParseNonNegative(parts[2], "tenant rate"));
  }
  if (parts.size() > 3 && !parts[3].empty()) {
    MODIS_ASSIGN_OR_RETURN(tenant.burst,
                           ParseNonNegative(parts[3], "tenant burst"));
  }
  if (parts.size() > 4 && !parts[4].empty()) {
    MODIS_ASSIGN_OR_RETURN(const double in_flight,
                           ParseNonNegative(parts[4], "tenant max-in-flight"));
    if (std::nearbyint(in_flight) != in_flight || in_flight > 1e9) {
      return Status::InvalidArgument("tenant max-in-flight '" + parts[4] +
                                     "' must be an integer in [0, 1e9]");
    }
    tenant.max_in_flight = size_t(in_flight);
  }
  if (parts.size() > 5 && !parts[5].empty()) {
    char* end = nullptr;
    const long priority = std::strtol(parts[5].c_str(), &end, 10);
    if (end == parts[5].c_str() || *end != '\0' || priority < -1000 ||
        priority > 1000) {
      return Status::InvalidArgument("tenant priority '" + parts[5] +
                                     "' must be an integer in [-1000, 1000]");
    }
    tenant.priority = int(priority);
  }
  if (tenant.rate_per_s > 0.0 && tenant.burst == 0.0) {
    return Status::InvalidArgument(
        "tenant '" + tenant.name +
        "' has a refill rate but burst 0 (no bucket); set a burst");
  }
  return tenant;
}

Status QosRejected(const std::string& tenant, const std::string& what,
                   double retry_after_s) {
  if (!std::isfinite(retry_after_s) || retry_after_s < 0.0) {
    retry_after_s = 1.0;
  }
  char hint[64];
  std::snprintf(hint, sizeof(hint), " [retry_after_s=%.3f]", retry_after_s);
  return Status::ResourceExhausted("tenant '" + tenant + "': " + what +
                                   hint);
}

double RetryAfterSeconds(const Status& status) {
  static constexpr char kTag[] = "[retry_after_s=";
  const std::string& message = status.message();
  const size_t tag = message.rfind(kTag);
  if (tag == std::string::npos) return 0.0;
  const char* begin = message.c_str() + tag + sizeof(kTag) - 1;
  char* end = nullptr;
  const double seconds = std::strtod(begin, &end);
  if (end == begin || *end != ']' || !std::isfinite(seconds) ||
      seconds < 0.0) {
    return 0.0;
  }
  return seconds;
}

}  // namespace modis
