#ifndef MODIS_SERVICE_METRICS_H_
#define MODIS_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace modis {

/// Fixed-bucket latency histogram. Bucket i covers latencies up to
/// 0.25 * 2^i milliseconds (0.25 ms .. ~35 min); the last bucket absorbs
/// everything beyond. Thread-safe: Record() and snapshot() take one
/// internal mutex, which is fine at the per-query (not per-training)
/// granularity the service records at.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 24;

  /// Upper bound (ms) of bucket `i`.
  static double BucketBoundMs(size_t i) { return 0.25 * double(1u << i); }

  struct Snapshot {
    uint64_t count = 0;
    double sum_ms = 0.0;
    double max_ms = 0.0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Upper-bound estimate of the q-quantile (q in [0,1]): the bound of
    /// the first bucket whose cumulative count reaches q * count. The
    /// last bucket reports the exact observed max.
    double QuantileMs(double q) const;
  };

  void Record(double ms);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot data_;
};

/// Per-tenant admission counters (QoS; docs/SERVING.md §7). Collected by
/// DiscoveryService::SnapshotMetrics() from the tenant table; exported on
/// both wire surfaces (the `"tenants"` array of the metrics verb and the
/// `modis_tenant_*{tenant="..."}` Prometheus series).
struct TenantMetricsSnapshot {
  std::string name;
  int priority = 0;
  uint64_t admitted = 0;
  uint64_t rate_limited = 0;
  uint64_t quota_rejected = 0;
  uint64_t shed = 0;
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t in_flight = 0;  // Gauge: queued + executing.
};

/// Per-worker-process counters (multi-process mode; docs/MULTIPROCESS.md).
/// Filled by the coordinator from the job ring's per-worker tallies and
/// the pool supervisor's restart ledger; exported as the `"workers"`
/// array of the metrics verb and the `modis_worker_*{worker="..."}`
/// Prometheus series. Empty in the in-process (`--workers 0`) mode.
struct WorkerMetricsSnapshot {
  uint32_t index = 0;
  uint64_t alive = 0;  // Gauge: 1 when the process is currently running.
  uint64_t restarts = 0;
  uint64_t jobs_claimed = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_requeued = 0;
};

/// One flat snapshot of everything the service exports — the schema of
/// the `{"verb":"metrics"}` wire response (docs/SERVING.md §5). Counter
/// fields are filled from ServiceMetrics; the gauges only the service can
/// compute (queue depth, live contexts, cache totals) are filled by
/// DiscoveryService::SnapshotMetrics().
struct MetricsSnapshot {
  // Admission.
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t queue_depth = 0;  // Gauge.

  // Task contexts.
  uint64_t live_contexts = 0;  // Gauge.
  uint64_t context_builds = 0;
  uint64_t context_evictions = 0;

  // Shared record caches, aggregated over every open cache file.
  uint64_t cache_files = 0;        // Gauge.
  uint64_t cache_bytes = 0;        // Gauge: valid log bytes.
  uint64_t cache_records = 0;      // Gauge: records loaded at open.
  uint64_t cache_replays = 0;      // Get/Find hits served.
  uint64_t cache_appends = 0;
  uint64_t cache_evictions = 0;
  /// Bytes returned by cache compaction this session — the v1 log
  /// rewrite and the paged engine's page GC feed the same counter.
  uint64_t cache_reclaimed_bytes = 0;
  /// Gauge: buffer-pool frames holding a page, summed over every open
  /// paged cache (0 when every cache runs the v1 log backend).
  uint64_t buffer_pool_frames = 0;

  // Cross-query exact-training fusion + columnar mask fast path.
  /// Queries that consumed at least one fused training.
  uint64_t queries_fused = 0;
  /// Exact trainings consumed from another query's identical concurrent
  /// (or just-finished) training instead of re-executed.
  uint64_t trainings_shared = 0;
  /// Row counts / feature vectors served from a cached bitset row mask
  /// (popcount) instead of a rescan of D_U.
  uint64_t mask_fast_path_hits = 0;

  // Transport (filled by LineServer when one is attached).
  uint64_t connections_opened = 0;
  uint64_t connections_active = 0;  // Gauge.
  uint64_t lines_served = 0;
  uint64_t oversized_lines = 0;
  uint64_t dropped_connections = 0;

  // HTTP facade (service/http.h, served by the same LineServer).
  uint64_t http_requests = 0;
  /// 4xx/5xx responses, parse failures included.
  uint64_t http_errors = 0;

  // Multi-tenant QoS admission (aggregates over every tenant).
  uint64_t qos_rate_limited = 0;
  uint64_t qos_quota_rejected = 0;
  /// Admitted-then-shed plus rejected-at-full-queue requests.
  uint64_t qos_shed = 0;

  // Multi-process worker pool (zero in in-process mode). Overlaid onto
  // the snapshot by the coordinator, not by ServiceMetrics.
  uint64_t worker_processes = 0;  // Gauge: configured pool size.
  uint64_t worker_restarts = 0;
  uint64_t ring_installed = 0;
  uint64_t ring_shed = 0;
  uint64_t ring_requeued = 0;
  uint64_t ring_poisoned = 0;
  uint64_t ring_owner_deaths = 0;
  uint64_t ring_depth = 0;     // Gauge: jobs ready and unclaimed.
  uint64_t ring_inflight = 0;  // Gauge: jobs claimed by a worker.

  bool draining = false;

  // Per-phase latency distributions (one query each).
  LatencyHistogram::Snapshot queue_ms;
  LatencyHistogram::Snapshot run_ms;
  LatencyHistogram::Snapshot total_ms;

  // Trace-derived phase distributions: per query, the summed duration of
  // all spans of that name in its trace (docs/OBSERVABILITY.md). Fed by
  // the session loop from the completed span tree, so Prometheus
  // `modis_phase_*` agrees with `/v1/debug/traces` by construction.
  LatencyHistogram::Snapshot phase_admission_ms;
  LatencyHistogram::Snapshot phase_context_ms;
  LatencyHistogram::Snapshot phase_plan_ms;
  LatencyHistogram::Snapshot phase_train_ms;
  LatencyHistogram::Snapshot phase_commit_ms;
  LatencyHistogram::Snapshot phase_flush_ms;
  LatencyHistogram::Snapshot phase_respond_ms;

  /// One entry per configured tenant (empty when QoS is off).
  std::vector<TenantMetricsSnapshot> tenants;

  /// One entry per worker process (empty in in-process mode).
  std::vector<WorkerMetricsSnapshot> workers;
};

/// Descriptor of one scalar MetricsSnapshot field, binding its wire-JSON
/// member name to its Prometheus series name. Both exports iterate this
/// one table, so the exposition-parity contract (every counter present on
/// both surfaces, value-for-value) holds by construction — the property
/// tests/http_test.cc pins down.
struct ScalarMetricDesc {
  const char* json_name;
  const char* prom_name;
  /// Prometheus metric type: true = counter, false = gauge.
  bool counter;
  uint64_t MetricsSnapshot::*field;
  const char* help;
};

/// Every scalar (non-histogram, non-tenant, non-bool) snapshot field.
const std::vector<ScalarMetricDesc>& ScalarMetricDescriptors();

/// Same contract for the per-tenant counters (priority is exported
/// separately: it is an int, not a uint64_t counter).
struct TenantMetricDesc {
  const char* json_name;
  const char* prom_name;
  bool counter;
  uint64_t TenantMetricsSnapshot::*field;
  const char* help;
};

const std::vector<TenantMetricDesc>& TenantMetricDescriptors();

/// Same contract for the per-worker counters (the worker index is the
/// label, exported separately).
struct WorkerMetricDesc {
  const char* json_name;
  const char* prom_name;
  bool counter;
  uint64_t WorkerMetricsSnapshot::*field;
  const char* help;
};

const std::vector<WorkerMetricDesc>& WorkerMetricDescriptors();

/// Same contract for the latency histograms: one table binding each
/// histogram's wire-JSON member name to its Prometheus series prefix
/// (`<prom_name>_bucket/_sum/_count`), iterated by both exports and the
/// parity test.
struct HistogramMetricDesc {
  const char* json_name;
  const char* prom_name;
  LatencyHistogram::Snapshot MetricsSnapshot::*field;
  const char* help;
};

const std::vector<HistogramMetricDesc>& HistogramMetricDescriptors();

/// The shared counter registry. The DiscoveryService owns one; the
/// transport layer (LineServer) and the session loops both write into it
/// lock-free. Gauges live with their owners and are collected into the
/// snapshot by DiscoveryService::SnapshotMetrics().
class ServiceMetrics {
 public:
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> failed{0};

  std::atomic<uint64_t> context_builds{0};
  std::atomic<uint64_t> context_evictions{0};

  std::atomic<uint64_t> queries_fused{0};
  std::atomic<uint64_t> trainings_shared{0};
  std::atomic<uint64_t> mask_fast_path_hits{0};

  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> lines_served{0};
  std::atomic<uint64_t> oversized_lines{0};
  std::atomic<uint64_t> dropped_connections{0};

  std::atomic<uint64_t> http_requests{0};
  std::atomic<uint64_t> http_errors{0};

  std::atomic<uint64_t> qos_rate_limited{0};
  std::atomic<uint64_t> qos_quota_rejected{0};
  std::atomic<uint64_t> qos_shed{0};

  std::atomic<bool> draining{false};

  LatencyHistogram queue_ms;
  LatencyHistogram run_ms;
  LatencyHistogram total_ms;

  // Trace-derived per-phase histograms (see MetricsSnapshot).
  LatencyHistogram phase_admission_ms;
  LatencyHistogram phase_context_ms;
  LatencyHistogram phase_plan_ms;
  LatencyHistogram phase_train_ms;
  LatencyHistogram phase_commit_ms;
  LatencyHistogram phase_flush_ms;
  LatencyHistogram phase_respond_ms;

  /// Copies every counter and histogram; gauges are left zero for the
  /// caller to fill.
  MetricsSnapshot Snapshot() const;
};

}  // namespace modis

#endif  // MODIS_SERVICE_METRICS_H_
