#include "service/transport.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "service/json.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace modis {

namespace {

#if !defined(_WIN32)
#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;  // EPIPE instead of SIGPIPE.
#else
constexpr int kSendFlags = 0;
#endif
#endif  // !_WIN32

bool ParsePort(const std::string& text, uint16_t* port) {
  if (text.empty() || text.size() > 5) return false;
  uint32_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + uint32_t(c - '0');
  }
  if (value > 65535) return false;
  *port = uint16_t(value);
  return true;
}

Result<Endpoint> ParseTcpSpec(const std::string& spec,
                              const std::string& rest) {
  const size_t colon = rest.rfind(':');
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  if (colon == std::string::npos || colon == 0 ||
      !ParsePort(rest.substr(colon + 1), &endpoint.port)) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' is not HOST:PORT (port 0..65535)");
  }
  endpoint.host = rest.substr(0, colon);
  return endpoint;
}

/// One `{"ok":false,...}` line for errors the transport itself produces
/// (the handler is never consulted for an unreadable stream).
std::string TransportErrorLine(const std::string& message) {
  JsonValue doc{JsonValue::Object{}};
  doc.Set("ok", false);
  doc.Set("code", "InvalidArgument");
  doc.Set("error", message);
  return doc.Dump();
}

}  // namespace

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("empty endpoint");
  if (spec.rfind("unix:", 0) == 0) {
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' is missing the socket path");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) return ParseTcpSpec(spec, spec.substr(4));
  if (spec.find('/') != std::string::npos) {
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = spec;
    return endpoint;
  }
  if (spec.find(':') != std::string::npos) return ParseTcpSpec(spec, spec);
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = spec;
  return endpoint;
}

#if !defined(_WIN32)

namespace {

Result<in_addr> ResolveHost(const std::string& host, bool for_bind) {
  std::string name = host;
  if (name.empty()) name = for_bind ? "0.0.0.0" : "127.0.0.1";
  if (name == "localhost") name = "127.0.0.1";
  in_addr addr{};
  if (::inet_pton(AF_INET, name.c_str(), &addr) != 1) {
    return Status::InvalidArgument("cannot resolve host '" + host +
                                   "' (numeric IPv4 or localhost)");
  }
  return addr;
}

Result<int> OpenSocket(const Endpoint& endpoint) {
  const int family =
      endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  return fd;
}

Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  *addr = sockaddr_un{};
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::strncpy(addr->sun_path, path.c_str(), sizeof(addr->sun_path) - 1);
  return Status::OK();
}

bool WriteAllFd(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, kSendFlags);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += size_t(n);
  }
  return true;
}

enum class ReadLineResult {
  kLine,        // A complete '\n'-terminated line.
  kPartial,     // EOF with a non-empty unterminated tail (truncated frame).
  kEof,         // Clean EOF, nothing buffered.
  kOversized,   // Line exceeded the cap; the stream cannot be resynced.
  kError,       // recv failed.
};

/// Buffered line framing over recv(2): `buffer`/`pos` carry unconsumed
/// bytes between calls (a chunked recv may deliver several lines, or a
/// fraction of one). One syscall per ~4 KiB instead of one per byte —
/// this path is the transport cost the serving benchmarks measure.
ReadLineResult ReadLineBuffered(int fd, std::string* buffer, size_t* pos,
                                size_t max_bytes, std::string* line) {
  line->clear();
  for (;;) {
    const size_t newline = buffer->find('\n', *pos);
    if (newline != std::string::npos) {
      if (newline - *pos > max_bytes) {
        *pos = newline + 1;
        return ReadLineResult::kOversized;
      }
      line->assign(*buffer, *pos, newline - *pos);
      *pos = newline + 1;
      if (*pos == buffer->size()) {
        buffer->clear();
        *pos = 0;
      }
      return ReadLineResult::kLine;
    }
    if (buffer->size() - *pos > max_bytes) return ReadLineResult::kOversized;
    if (*pos > 0) {
      buffer->erase(0, *pos);
      *pos = 0;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      if (buffer->empty()) return ReadLineResult::kEof;
      line->assign(*buffer);
      buffer->clear();
      return ReadLineResult::kPartial;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadLineResult::kError;
    }
    buffer->append(chunk, size_t(n));
  }
}

}  // namespace

// ------------------------------------------------------------ ClientChannel

Result<ClientChannel> ClientChannel::Connect(const Endpoint& endpoint) {
  MODIS_ASSIGN_OR_RETURN(const int fd, OpenSocket(endpoint));
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (Status filled = FillUnixAddr(endpoint.path, &addr); !filled.ok()) {
      ::close(fd);
      return filled;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      return Status::IoError("cannot connect to " + endpoint.ToString() +
                             ": " + std::strerror(errno));
    }
    return ClientChannel(fd);
  }
  auto host = ResolveHost(endpoint.host, /*for_bind=*/false);
  if (!host.ok()) {
    ::close(fd);
    return host.status();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  addr.sin_addr = host.value();
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::IoError("cannot connect to " + endpoint.ToString() +
                           ": " + std::strerror(errno));
  }
  return ClientChannel(fd);
}

ClientChannel::~ClientChannel() { Close(); }

ClientChannel::ClientChannel(ClientChannel&& other) noexcept
    : fd_(other.fd_),
      rx_buffer_(std::move(other.rx_buffer_)),
      rx_pos_(other.rx_pos_) {
  other.fd_ = -1;
  other.rx_buffer_.clear();
  other.rx_pos_ = 0;
}

ClientChannel& ClientChannel::operator=(ClientChannel&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    rx_buffer_ = std::move(other.rx_buffer_);
    rx_pos_ = other.rx_pos_;
    other.fd_ = -1;
    other.rx_buffer_.clear();
    other.rx_pos_ = 0;
  }
  return *this;
}

Status ClientChannel::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Status ClientChannel::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("channel is closed");
  if (!WriteAllFd(fd_, bytes)) {
    return Status::IoError("send failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> ClientChannel::ReceiveLine(size_t max_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("channel is closed");
  std::string line;
  switch (ReadLineBuffered(fd_, &rx_buffer_, &rx_pos_, max_bytes, &line)) {
    case ReadLineResult::kLine:
    case ReadLineResult::kPartial:  // Server's final line before close.
      if (!line.empty()) return line;
      [[fallthrough]];
    case ReadLineResult::kEof:
      return Status::IoError("server closed the connection");
    case ReadLineResult::kOversized:
      return Status::IoError("response line exceeds " +
                             std::to_string(max_bytes) + " bytes");
    case ReadLineResult::kError:
      return Status::IoError("recv failed: " +
                             std::string(std::strerror(errno)));
  }
  return Status::Internal("unreachable");
}

Result<std::string> ClientChannel::ReceiveRaw(size_t max_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("channel is closed");
  if (rx_pos_ < rx_buffer_.size()) {
    const size_t available = rx_buffer_.size() - rx_pos_;
    const size_t take = available < max_bytes ? available : max_bytes;
    std::string out = rx_buffer_.substr(rx_pos_, take);
    rx_pos_ += take;
    if (rx_pos_ == rx_buffer_.size()) {
      rx_buffer_.clear();
      rx_pos_ = 0;
    }
    return out;
  }
  std::string out(max_bytes, '\0');
  for (;;) {
    const ssize_t n = ::recv(fd_, &out[0], max_bytes, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IoError("recv failed: " +
                             std::string(std::strerror(errno)));
    }
    out.resize(size_t(n));
    return out;
  }
}

Result<std::string> ClientChannel::RoundTrip(const std::string& line) {
  MODIS_RETURN_IF_ERROR(SendLine(line));
  return ReceiveLine();
}

void ClientChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_buffer_.clear();
  rx_pos_ = 0;
}

// --------------------------------------------------------------- LineServer

LineServer::LineServer(Handler handler, Options options,
                       ServiceMetrics* metrics)
    : handler_(std::move(handler)),
      options_(options),
      metrics_(metrics != nullptr ? metrics : &owned_metrics_) {
  if (::pipe(stop_pipe_) != 0) {
    stop_pipe_[0] = stop_pipe_[1] = -1;
  }
}

LineServer::~LineServer() {
  RequestStop();
  std::map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    draining_ = true;
    for (auto& [id, fd] : live_fds_) {
      (void)id;
      ::shutdown(fd, SHUT_RD);
    }
    threads.swap(threads_);
  }
  for (auto& [id, thread] : threads) {
    (void)id;
    if (thread.joinable()) thread.join();
  }
  for (int fd : listener_fds_) {
    if (fd >= 0) ::close(fd);
  }
  for (const Endpoint& endpoint : endpoints_) {
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint.path.c_str());
    }
  }
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

Status LineServer::Listen(const Endpoint& endpoint) {
  if (stop_pipe_[0] < 0) {
    // Without the pipe, RequestStop() would be a silent no-op and the
    // drain contract (SIGTERM -> exit 0) unfulfillable: refuse to serve.
    return Status::Internal(
        "stop-pipe creation failed at construction (fd exhaustion?); "
        "refusing to serve without a working drain trigger");
  }
  MODIS_ASSIGN_OR_RETURN(const int fd, OpenSocket(endpoint));
  Endpoint bound = endpoint;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (Status filled = FillUnixAddr(endpoint.path, &addr); !filled.ok()) {
      ::close(fd);
      return filled;
    }
    ::unlink(endpoint.path.c_str());  // Stale socket from a dead host.
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const std::string error = std::strerror(errno);
      ::close(fd);
      return Status::IoError("bind " + endpoint.ToString() + ": " + error);
    }
  } else {
    auto host = ResolveHost(endpoint.host, /*for_bind=*/true);
    if (!host.ok()) {
      ::close(fd);
      return host.status();
    }
    const int reuse = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    addr.sin_addr = host.value();
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      const std::string error = std::strerror(errno);
      ::close(fd);
      return Status::IoError("bind " + endpoint.ToString() + ": " + error);
    }
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      bound.port = ntohs(actual.sin_port);
    }
  }
  if (::listen(fd, options_.listen_backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen " + endpoint.ToString() + ": " + error);
  }
  listener_fds_.push_back(fd);
  endpoints_.push_back(std::move(bound));
  return Status::OK();
}

void LineServer::Serve() {
  std::vector<pollfd> fds;
  for (;;) {
    fds.clear();
    for (int fd : listener_fds_) fds.push_back(pollfd{fd, POLLIN, 0});
    fds.push_back(pollfd{stop_pipe_[0], POLLIN, 0});
    if (::poll(fds.data(), nfds_t(fds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds.back().revents != 0) break;  // RequestStop().
    for (size_t i = 0; i + 1 < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn = ::accept(listener_fds_[i], nullptr, nullptr);
      if (conn < 0) continue;
      metrics_->connections_opened.fetch_add(1);
      metrics_->connections_active.fetch_add(1);
      std::lock_guard<std::mutex> lock(conn_mu_);
      ReapFinishedLocked();
      const uint64_t id = next_id_++;
      live_fds_[id] = conn;
      if (draining_) ::shutdown(conn, SHUT_RD);
      threads_.emplace(id,
                       std::thread([this, id, conn] {
                         ServeConnection(id, conn);
                       }));
    }
  }

  // Drain: stop accepting, half-close every session so blocked reads see
  // EOF while in-flight responses still go out, then join.
  for (int fd : listener_fds_) {
    if (fd >= 0) ::close(fd);
  }
  listener_fds_.clear();
  for (const Endpoint& endpoint : endpoints_) {
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint.path.c_str());
    }
  }
  metrics_->draining.store(true);
  std::map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    draining_ = true;
    for (auto& [id, fd] : live_fds_) {
      (void)id;
      ::shutdown(fd, SHUT_RD);
    }
    threads.swap(threads_);
    finished_.clear();
  }
  for (auto& [id, thread] : threads) {
    (void)id;
    if (thread.joinable()) thread.join();
  }
}

void LineServer::RequestStop() {
  // Only async-signal-safe calls here: SIGTERM handlers call this.
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    ssize_t n = ::write(stop_pipe_[1], &byte, 1);
    (void)n;
  }
}

void LineServer::ReapFinishedLocked() {
  for (uint64_t id : finished_) {
    auto it = threads_.find(id);
    if (it == threads_.end()) continue;
    if (it->second.joinable()) it->second.join();
    threads_.erase(it);
  }
  finished_.clear();
}

void LineServer::ServeConnection(uint64_t id, int fd) {
  std::string line;
  std::string buffer;
  size_t pos = 0;
  bool http = false;
  if (http_handler_) {
    // Protocol sniffing: the first bytes decide the dialect. Every HTTP
    // method name fits in 8 bytes ("OPTIONS "), so the loop terminates
    // as soon as that many arrive — or earlier, when the prefix already
    // cannot be a method.
    ProtocolGuess guess = SniffProtocol(buffer);
    while (guess == ProtocolGuess::kNeedMoreBytes) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF/error before the protocol was clear:
                          // the line loop below settles the connection.
      buffer.append(chunk, size_t(n));
      guess = SniffProtocol(buffer);
    }
    http = guess == ProtocolGuess::kHttp;
  }
  if (http) {
    ServeHttpConnection(fd, buffer);
    ::close(fd);
    metrics_->connections_active.fetch_sub(1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    live_fds_.erase(id);
    finished_.push_back(id);
    return;
  }
  for (bool open = true; open;) {
    const ReadLineResult read = ReadLineBuffered(
        fd, &buffer, &pos, options_.max_line_bytes, &line);
    switch (read) {
      case ReadLineResult::kLine:
      case ReadLineResult::kPartial: {
        // A partial line is a truncated frame (the client died or gave
        // up mid-request): it still gets one parse -> one clean error
        // line (the write usually fails — that is fine), never a crash.
        if (line.empty()) {
          open = read == ReadLineResult::kLine;
          break;
        }
        const std::string response = handler_(line);
        metrics_->lines_served.fetch_add(1);
        if (!WriteAllFd(fd, response + "\n")) {
          metrics_->dropped_connections.fetch_add(1);
          open = false;
          break;
        }
        open = read == ReadLineResult::kLine;
        break;
      }
      case ReadLineResult::kOversized:
        metrics_->oversized_lines.fetch_add(1);
        (void)WriteAllFd(
            fd, TransportErrorLine("request line exceeds " +
                                   std::to_string(options_.max_line_bytes) +
                                   " bytes") +
                    "\n");
        open = false;
        break;
      case ReadLineResult::kError:
        metrics_->dropped_connections.fetch_add(1);
        open = false;
        break;
      case ReadLineResult::kEof:
        open = false;
        break;
    }
  }
  ::close(fd);
  metrics_->connections_active.fetch_sub(1);
  std::lock_guard<std::mutex> lock(conn_mu_);
  live_fds_.erase(id);
  finished_.push_back(id);
}

void LineServer::ServeHttpConnection(int fd, const std::string& initial) {
  HttpParser parser(options_.http);
  parser.Feed(initial);
  for (;;) {
    while (parser.has_request()) {
      const HttpRequest request = parser.TakeRequest();
      metrics_->http_requests.fetch_add(1);
      HttpResponse response = http_handler_(request);
      if (!request.keep_alive) response.close = true;
      if (response.status >= 400) metrics_->http_errors.fetch_add(1);
      if (!WriteAllFd(fd, response.Serialize())) {
        metrics_->dropped_connections.fetch_add(1);
        return;
      }
      if (response.close) return;
    }
    if (parser.has_error()) {
      // Malformed or over-limit input: one typed error response, then
      // close — the stream cannot be resynced after a framing error.
      metrics_->http_errors.fetch_add(1);
      HttpResponse response =
          MakeHttpError(parser.error_status(), parser.error_message());
      response.close = true;
      (void)WriteAllFd(fd, response.Serialize());
      return;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      metrics_->dropped_connections.fetch_add(1);
      return;
    }
    if (n == 0) return;  // EOF: clean between requests, truncated inside
                         // one — either way there is nobody to answer.
    parser.Feed(chunk, size_t(n));
  }
}

#else  // _WIN32

Result<ClientChannel> ClientChannel::Connect(const Endpoint&) {
  return Status::Unimplemented("transport requires POSIX sockets");
}
ClientChannel::~ClientChannel() = default;
ClientChannel::ClientChannel(ClientChannel&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}
ClientChannel& ClientChannel::operator=(ClientChannel&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
Status ClientChannel::SendLine(const std::string&) {
  return Status::Unimplemented("transport requires POSIX sockets");
}
Status ClientChannel::SendRaw(const std::string&) {
  return Status::Unimplemented("transport requires POSIX sockets");
}
Result<std::string> ClientChannel::ReceiveLine(size_t) {
  return Status::Unimplemented("transport requires POSIX sockets");
}
Result<std::string> ClientChannel::ReceiveRaw(size_t) {
  return Status::Unimplemented("transport requires POSIX sockets");
}
Result<std::string> ClientChannel::RoundTrip(const std::string&) {
  return Status::Unimplemented("transport requires POSIX sockets");
}
void ClientChannel::Close() {}

LineServer::LineServer(Handler handler, Options options,
                       ServiceMetrics* metrics)
    : handler_(std::move(handler)),
      options_(options),
      metrics_(metrics != nullptr ? metrics : &owned_metrics_) {}
LineServer::~LineServer() = default;
Status LineServer::Listen(const Endpoint&) {
  return Status::Unimplemented("transport requires POSIX sockets");
}
void LineServer::Serve() {}
void LineServer::RequestStop() {}
void LineServer::ReapFinishedLocked() {}
void LineServer::ServeConnection(uint64_t, int) {}
void LineServer::ServeHttpConnection(int, const std::string&) {}

#endif  // _WIN32

}  // namespace modis
