#ifndef MODIS_SERVICE_JSON_H_
#define MODIS_SERVICE_JSON_H_

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace modis {

/// A minimal, dependency-free JSON document model for the discovery
/// service's line-delimited wire protocol (docs/SERVING.md). Supports the
/// full value grammar (null / bool / number / string / array / object)
/// with the usual escape sequences; numbers are doubles (integers
/// round-trip exactly up to 2^53, far beyond any budget or counter we
/// serialize). Object member order is preserved. Not a general-purpose
/// JSON library: no comments, no trailing commas, 64-deep nesting cap —
/// exactly what a wire format wants.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}       // NOLINT
  JsonValue(bool b) : data_(b) {}                     // NOLINT
  JsonValue(double d) : data_(d) {}                   // NOLINT
  JsonValue(int i) : data_(double(i)) {}              // NOLINT
  JsonValue(size_t n) : data_(double(n)) {}           // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}   // NOLINT
  JsonValue(const char* s) : data_(std::string(s)) {} // NOLINT
  JsonValue(Array a) : data_(std::move(a)) {}         // NOLINT
  JsonValue(Object o) : data_(std::move(o)) {}        // NOLINT

  /// Parses one JSON document (surrounding whitespace tolerated; trailing
  /// non-whitespace is an error).
  static Result<JsonValue> Parse(const std::string& text);

  /// Compact single-line serialization (the wire framing is one document
  /// per line, so Dump never emits a newline).
  std::string Dump() const;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool AsBool() const { return std::get<bool>(data_); }
  double AsNumber() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Array& AsArray() const { return std::get<Array>(data_); }
  const Object& AsObject() const { return std::get<Object>(data_); }

  /// Object member lookup (first match), or nullptr when this is not an
  /// object or has no such key.
  const JsonValue* Get(const std::string& key) const;

  /// Typed lookups with fallbacks — the tolerant-reader shape the wire
  /// decoder wants (absent or mistyped members keep their defaults).
  double GetNumber(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key, std::string fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Appends a member (object values only).
  void Set(std::string key, JsonValue value);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

}  // namespace modis

#endif  // MODIS_SERVICE_JSON_H_
