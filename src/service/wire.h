#ifndef MODIS_SERVICE_WIRE_H_
#define MODIS_SERVICE_WIRE_H_

#include <string>

#include "common/status.h"
#include "service/discovery_service.h"
#include "service/json.h"

namespace modis {

/// The line-delimited JSON wire protocol of the discovery service
/// (docs/SERVING.md): one request object per line in, one response object
/// per line out. These codecs are the single source of truth for the
/// field names; modis_server, modis_cli --connect, and the smoke test all
/// go through them.

/// Decodes one request line. Unknown members are ignored; absent members
/// keep the DiscoveryRequest defaults; a wrong-typed or malformed
/// document is an InvalidArgument.
Result<DiscoveryRequest> ParseDiscoveryRequest(const std::string& line);

/// Encodes a request as one line (no trailing newline).
std::string SerializeDiscoveryRequest(const DiscoveryRequest& request);

/// Encodes a response as `{"ok":true, ...}` on one line.
std::string SerializeDiscoveryResponse(const DiscoveryResponse& response);

/// Encodes a failure as `{"ok":false,"code":...,"error":...}`.
std::string SerializeDiscoveryError(const Status& status);

/// Decodes a response line (client side). A well-formed
/// `{"ok":false,...}` document decodes into the transported Status.
Result<DiscoveryResponse> ParseDiscoveryResponse(const std::string& line);

}  // namespace modis

#endif  // MODIS_SERVICE_WIRE_H_
