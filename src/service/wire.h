#ifndef MODIS_SERVICE_WIRE_H_
#define MODIS_SERVICE_WIRE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "service/discovery_service.h"
#include "service/json.h"

namespace modis {

/// The line-delimited JSON wire protocol of the discovery service
/// (docs/SERVING.md): one request object per line in, one response object
/// per line out. These codecs are the single source of truth for the
/// field names; modis_server, modis_cli --connect, and the smoke test all
/// go through them.

/// Decodes one request line. Unknown members are ignored; absent members
/// keep the DiscoveryRequest defaults; a wrong-typed or malformed
/// document is an InvalidArgument.
Result<DiscoveryRequest> ParseDiscoveryRequest(const std::string& line);

/// Same, over an already-parsed document (the handler parses once to
/// dispatch on the "verb" member).
Result<DiscoveryRequest> ParseDiscoveryRequestDoc(const JsonValue& doc);

/// Encodes a request as one line (no trailing newline).
std::string SerializeDiscoveryRequest(const DiscoveryRequest& request);

/// Encodes a response as `{"ok":true, ...}` on one line.
std::string SerializeDiscoveryResponse(const DiscoveryResponse& response);

/// Encodes a failure as `{"ok":false,"code":...,"error":...}`.
std::string SerializeDiscoveryError(const Status& status);

/// Decodes a response line (client side). A well-formed
/// `{"ok":false,...}` document decodes into the transported Status.
Result<DiscoveryResponse> ParseDiscoveryResponse(const std::string& line);

/// Encodes a metrics snapshot as `{"ok":true,"metrics":{...}}` — the
/// response of the `"metrics"` verb and the host's shutdown dump. The
/// member names are the metrics schema documented in docs/SERVING.md §5.
std::string SerializeServiceMetrics(const MetricsSnapshot& snapshot);

/// Encodes the debug trace ring as one
/// `{"ok":true,"traceEvents":[...]}` document in the Chrome
/// `trace_event` format (complete "X" events, timestamps/durations in
/// microseconds), loadable as-is in about:tracing or ui.perfetto.dev.
/// Each retained trace becomes one process (pid = request sequence)
/// named after its request id; shared by the `"trace"` wire verb and
/// `GET /v1/debug/traces` (docs/OBSERVABILITY.md).
std::string SerializeTraceDebug(const std::vector<Trace>& slowest,
                                const std::vector<Trace>& recent);

/// THE request dispatcher of the protocol: maps one request line to one
/// response line, shared by `modis_server` (socket + stdio), and the
/// in-process servers of tests/transport_test.cc. Dispatches on the
/// optional "verb" member — absent or "discover" runs a discovery query
/// through Answer(); "metrics" snapshots the host; "trace" dumps the
/// retained slow/recent traces; anything else is an InvalidArgument
/// line. Never throws, never returns an empty string.
std::string HandleServiceLine(DiscoveryService* service,
                              const std::string& line);

class WorkerPool;

/// Pool-aware dispatcher of the multi-process host
/// (docs/MULTIPROCESS.md): "discover" lines are installed into the
/// shared-memory job ring and answered by a worker process (the typed
/// ring errors — full ring, oversized line, poisoned job — come back as
/// error lines); "metrics" serves the coordinator's snapshot overlaid
/// with the pool + ring series. A null `pool` is exactly the in-process
/// dispatcher above.
std::string HandleServiceLine(DiscoveryService* service, WorkerPool* pool,
                              const std::string& line);

}  // namespace modis

#endif  // MODIS_SERVICE_WIRE_H_
