#include "service/wire.h"

#include <cmath>
#include <utility>

#include "service/qos.h"
#include "service/worker.h"

namespace modis {

namespace {

/// Reads a non-negative integer member from untrusted input. Absent (or
/// non-number) members keep `fallback`; present ones must be finite
/// integers in [0, max] — a negative or huge double cast straight to an
/// unsigned type would be undefined behavior, so validation happens
/// before any cast.
Result<uint64_t> GetCount(const JsonValue& doc, const char* key,
                          uint64_t fallback, uint64_t max) {
  const JsonValue* v = doc.Get(key);
  if (v == nullptr || !v->is_number()) return fallback;
  const double n = v->AsNumber();
  if (!std::isfinite(n) || n < 0.0 || n > double(max) ||
      std::nearbyint(n) != n) {
    return Status::InvalidArgument(std::string("\"") + key +
                                   "\" must be an integer in [0, " +
                                   std::to_string(max) + "]");
  }
  return uint64_t(n);
}

JsonValue::Array NumbersToJson(const std::vector<double>& values) {
  JsonValue::Array array;
  array.reserve(values.size());
  for (double v : values) array.emplace_back(v);
  return array;
}

JsonValue::Array StringsToJson(const std::vector<std::string>& values) {
  JsonValue::Array array;
  array.reserve(values.size());
  for (const std::string& v : values) array.emplace_back(v);
  return array;
}

std::vector<double> NumbersFromJson(const JsonValue& value) {
  std::vector<double> out;
  if (!value.is_array()) return out;
  for (const JsonValue& v : value.AsArray()) {
    if (v.is_number()) out.push_back(v.AsNumber());
  }
  return out;
}

}  // namespace

Result<DiscoveryRequest> ParseDiscoveryRequest(const std::string& line) {
  MODIS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  return ParseDiscoveryRequestDoc(doc);
}

Result<DiscoveryRequest> ParseDiscoveryRequestDoc(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  DiscoveryRequest request;
  request.task = doc.GetString("task", "");
  if (request.task.empty()) {
    return Status::InvalidArgument("request is missing \"task\"");
  }
  request.variant = doc.GetString("variant", request.variant);
  request.oracle = doc.GetString("oracle", request.oracle);
  if (const JsonValue* measures = doc.Get("measures");
      measures != nullptr && measures->is_array()) {
    for (const JsonValue& m : measures->AsArray()) {
      if (!m.is_string()) {
        return Status::InvalidArgument("\"measures\" must be strings");
      }
      request.measures.push_back(m.AsString());
    }
  }
  request.epsilon = doc.GetNumber("epsilon", request.epsilon);
  if (!std::isfinite(request.epsilon) || request.epsilon <= 0.0 ||
      request.epsilon > 100.0) {
    return Status::InvalidArgument("\"epsilon\" must be in (0, 100]");
  }
  {
    MODIS_ASSIGN_OR_RETURN(
        const uint64_t budget,
        GetCount(doc, "budget", request.budget, 100'000'000));
    request.budget = size_t(budget);
    MODIS_ASSIGN_OR_RETURN(const uint64_t maxl,
                           GetCount(doc, "maxl", uint64_t(request.maxl),
                                    100'000));
    request.maxl = int(maxl);
    MODIS_ASSIGN_OR_RETURN(const uint64_t k,
                           GetCount(doc, "k", request.k, 100'000'000));
    request.k = size_t(k);
    MODIS_ASSIGN_OR_RETURN(
        request.seed,
        GetCount(doc, "seed", request.seed, uint64_t(1) << 53));
  }
  request.alpha = doc.GetNumber("alpha", request.alpha);
  if (!std::isfinite(request.alpha) || request.alpha < 0.0 ||
      request.alpha > 1.0) {
    return Status::InvalidArgument("\"alpha\" must be in [0, 1]");
  }
  request.cache_path = doc.GetString("cache", request.cache_path);
  request.cache_mode = doc.GetString("cache_mode", request.cache_mode);
  request.cache_namespace =
      doc.GetString("namespace", request.cache_namespace);
  request.api_key = doc.GetString("api_key", request.api_key);
  request.trace = doc.GetBool("trace", request.trace);
  return request;
}

std::string SerializeDiscoveryRequest(const DiscoveryRequest& request) {
  JsonValue doc{JsonValue::Object{}};
  doc.Set("task", request.task);
  doc.Set("variant", request.variant);
  doc.Set("oracle", request.oracle);
  if (!request.measures.empty()) {
    doc.Set("measures", StringsToJson(request.measures));
  }
  doc.Set("epsilon", request.epsilon);
  doc.Set("budget", request.budget);
  doc.Set("maxl", request.maxl);
  doc.Set("k", request.k);
  doc.Set("alpha", request.alpha);
  if (!request.cache_path.empty()) doc.Set("cache", request.cache_path);
  if (!request.cache_mode.empty()) {
    doc.Set("cache_mode", request.cache_mode);
  }
  if (!request.cache_namespace.empty()) {
    doc.Set("namespace", request.cache_namespace);
  }
  if (!request.api_key.empty()) doc.Set("api_key", request.api_key);
  // Emitted only when set so traced and untraced requests serialize to
  // the same line otherwise — the warm-key / shed fingerprints that hash
  // serialized requests stay stable.
  if (request.trace) doc.Set("trace", true);
  doc.Set("seed", double(request.seed));
  return doc.Dump();
}

namespace {

/// One TraceSpan as a wire object. Spans still open when snapshotted
/// carry duration_ms < 0 internally; the wire clamps to 0 so consumers
/// never see a negative duration.
JsonValue SpanToJson(const TraceSpan& span) {
  JsonValue doc{JsonValue::Object{}};
  doc.Set("id", span.id);
  doc.Set("name", span.name);
  doc.Set("parent", span.parent);
  doc.Set("start_ms", span.start_ms);
  doc.Set("duration_ms", span.duration_ms < 0.0 ? 0.0 : span.duration_ms);
  if (!span.attrs.empty()) {
    JsonValue attrs{JsonValue::Object{}};
    for (const auto& [key, value] : span.attrs) {
      attrs.Set(key, double(value));
    }
    doc.Set("attrs", std::move(attrs));
  }
  return doc;
}

JsonValue::Array SpansToJson(const std::vector<TraceSpan>& spans) {
  JsonValue::Array array;
  array.reserve(spans.size());
  for (const TraceSpan& span : spans) array.push_back(SpanToJson(span));
  return array;
}

}  // namespace

std::string SerializeDiscoveryResponse(const DiscoveryResponse& response) {
  JsonValue doc{JsonValue::Object{}};
  doc.Set("ok", true);
  doc.Set("request_id", response.request_id);
  doc.Set("task", response.task);
  doc.Set("variant", response.variant);
  doc.Set("measures", StringsToJson(response.measure_names));
  JsonValue::Array skyline;
  skyline.reserve(response.skyline.size());
  for (const DiscoverySkylineRow& row : response.skyline) {
    JsonValue entry{JsonValue::Object{}};
    entry.Set("signature", row.signature);
    entry.Set("level", row.level);
    entry.Set("rows", row.rows);
    entry.Set("cols", row.cols);
    entry.Set("raw", NumbersToJson(row.raw));
    entry.Set("normalized", NumbersToJson(row.normalized));
    skyline.push_back(std::move(entry));
  }
  doc.Set("skyline", std::move(skyline));
  JsonValue stats{JsonValue::Object{}};
  stats.Set("valuated_states", response.valuated_states);
  stats.Set("generated_states", response.generated_states);
  stats.Set("pruned_states", response.pruned_states);
  stats.Set("exact_evals", response.exact_evals);
  stats.Set("persistent_hits", response.persistent_hits);
  stats.Set("surrogate_evals", response.surrogate_evals);
  stats.Set("cache_hits", response.cache_hits);
  stats.Set("failed_evals", response.failed_evals);
  stats.Set("fused_hits", response.fused_hits);
  stats.Set("mask_fast_path_hits", response.mask_fast_path_hits);
  stats.Set("cache_active", response.cache_active);
  stats.Set("queue_ms", response.queue_ms);
  stats.Set("run_ms", response.run_ms);
  stats.Set("total_ms", response.total_ms);
  doc.Set("stats", std::move(stats));
  // Inline span tree, present only when the request opted in with
  // `"trace":true` (docs/OBSERVABILITY.md §3).
  if (!response.trace_spans.empty()) {
    doc.Set("trace", SpansToJson(response.trace_spans));
  }
  return doc.Dump();
}

std::string SerializeDiscoveryError(const Status& status) {
  JsonValue doc{JsonValue::Object{}};
  doc.Set("ok", false);
  doc.Set("code", StatusCodeName(status.code()));
  doc.Set("error", status.message());
  // QoS rejections carry a machine-readable retry hint; surface it as a
  // member so line-protocol clients need not parse the message.
  if (const double retry_after = RetryAfterSeconds(status);
      retry_after > 0.0) {
    doc.Set("retry_after_s", retry_after);
  }
  return doc.Dump();
}

namespace {

JsonValue HistogramToJson(const LatencyHistogram::Snapshot& h) {
  JsonValue doc{JsonValue::Object{}};
  doc.Set("count", h.count);
  doc.Set("sum_ms", h.sum_ms);
  doc.Set("max_ms", h.max_ms);
  doc.Set("p50_ms", h.QuantileMs(0.50));
  doc.Set("p90_ms", h.QuantileMs(0.90));
  doc.Set("p99_ms", h.QuantileMs(0.99));
  // Sparse bucket list: [upper_bound_ms, count] for non-empty buckets.
  JsonValue::Array buckets;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    JsonValue::Array bucket;
    bucket.emplace_back(LatencyHistogram::BucketBoundMs(i));
    bucket.emplace_back(h.buckets[i]);
    buckets.emplace_back(std::move(bucket));
  }
  doc.Set("buckets_le_ms", std::move(buckets));
  return doc;
}

}  // namespace

std::string SerializeServiceMetrics(const MetricsSnapshot& snapshot) {
  JsonValue metrics{JsonValue::Object{}};
  // One descriptor table drives this JSON and the Prometheus exposition
  // (service/http.cc), so the two surfaces cannot drift apart — the
  // parity contract tests/http_test.cc pins down.
  for (const ScalarMetricDesc& desc : ScalarMetricDescriptors()) {
    metrics.Set(desc.json_name, snapshot.*desc.field);
  }
  metrics.Set("draining", snapshot.draining);
  if (!snapshot.tenants.empty()) {
    JsonValue::Array tenants;
    tenants.reserve(snapshot.tenants.size());
    for (const TenantMetricsSnapshot& tenant : snapshot.tenants) {
      JsonValue entry{JsonValue::Object{}};
      entry.Set("name", tenant.name);
      entry.Set("priority", tenant.priority);
      for (const TenantMetricDesc& desc : TenantMetricDescriptors()) {
        entry.Set(desc.json_name, tenant.*desc.field);
      }
      tenants.push_back(std::move(entry));
    }
    metrics.Set("tenants", std::move(tenants));
  }
  if (!snapshot.workers.empty()) {
    JsonValue::Array workers;
    workers.reserve(snapshot.workers.size());
    for (const WorkerMetricsSnapshot& worker : snapshot.workers) {
      JsonValue entry{JsonValue::Object{}};
      entry.Set("index", static_cast<uint64_t>(worker.index));
      for (const WorkerMetricDesc& desc : WorkerMetricDescriptors()) {
        entry.Set(desc.json_name, worker.*desc.field);
      }
      workers.push_back(std::move(entry));
    }
    metrics.Set("workers", std::move(workers));
  }
  for (const HistogramMetricDesc& desc : HistogramMetricDescriptors()) {
    metrics.Set(desc.json_name, HistogramToJson(snapshot.*desc.field));
  }
  JsonValue doc{JsonValue::Object{}};
  doc.Set("ok", true);
  doc.Set("metrics", std::move(metrics));
  return doc.Dump();
}

std::string SerializeTraceDebug(const std::vector<Trace>& slowest,
                                const std::vector<Trace>& recent) {
  JsonValue::Array events;
  // One process per retained trace, pid = the host-unique request
  // sequence, so a trace in both sets (slow AND recent) folds onto one
  // timeline instead of rendering twice.
  std::vector<const Trace*> traces;
  traces.reserve(slowest.size() + recent.size());
  for (const Trace& t : slowest) traces.push_back(&t);
  for (const Trace& t : recent) {
    bool seen = false;
    for (const Trace& s : slowest) seen = seen || s.sequence == t.sequence;
    if (!seen) traces.push_back(&t);
  }
  for (const Trace* trace : traces) {
    const size_t pid = size_t(trace->sequence);
    JsonValue meta{JsonValue::Object{}};
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", pid);
    JsonValue meta_args{JsonValue::Object{}};
    meta_args.Set("name", trace->request_id + " " + trace->task +
                              (trace->tenant.empty()
                                   ? std::string()
                                   : " [" + trace->tenant + "]"));
    meta.Set("args", std::move(meta_args));
    events.push_back(std::move(meta));
    for (const TraceSpan& span : trace->spans) {
      JsonValue event{JsonValue::Object{}};
      event.Set("name", span.name);
      event.Set("ph", "X");
      event.Set("pid", pid);
      // One track per span keeps concurrent "exact" spans from
      // overlapping on a shared row, which trace viewers reject.
      event.Set("tid", span.id);
      event.Set("ts", span.start_ms * 1000.0);
      event.Set("dur",
                span.duration_ms < 0.0 ? 0.0 : span.duration_ms * 1000.0);
      JsonValue args{JsonValue::Object{}};
      args.Set("parent", span.parent);
      for (const auto& [key, value] : span.attrs) {
        args.Set(key, double(value));
      }
      event.Set("args", std::move(args));
      events.push_back(std::move(event));
    }
  }
  JsonValue doc{JsonValue::Object{}};
  doc.Set("ok", true);
  doc.Set("traceEvents", std::move(events));
  return doc.Dump();
}

std::string HandleServiceLine(DiscoveryService* service,
                              const std::string& line) {
  return HandleServiceLine(service, /*pool=*/nullptr, line);
}

std::string HandleServiceLine(DiscoveryService* service, WorkerPool* pool,
                              const std::string& line) {
  auto doc = JsonValue::Parse(line);
  if (!doc.ok()) return SerializeDiscoveryError(doc.status());
  if (doc->is_object()) {
    const std::string verb = doc->GetString("verb", "");
    if (verb == "metrics") {
      MetricsSnapshot snapshot = service->SnapshotMetrics();
      if (pool != nullptr) pool->FillMetrics(&snapshot);
      return SerializeServiceMetrics(snapshot);
    }
    if (verb == "trace") {
      return SerializeTraceDebug(service->SlowestTraces(),
                                 service->RecentTraces());
    }
    if (!verb.empty() && verb != "discover") {
      return SerializeDiscoveryError(Status::InvalidArgument(
          "unknown verb '" + verb + "' (discover | metrics | trace)"));
    }
  }
  auto request = ParseDiscoveryRequestDoc(*doc);
  if (!request.ok()) return SerializeDiscoveryError(request.status());
  if (pool != nullptr) {
    // Validated above, so a malformed line is rejected here and never
    // occupies a ring slot. The raw line travels; the worker's own
    // dispatcher re-parses it — one codec, both modes.
    std::string response;
    const Status submitted = pool->Submit(line, &response);
    if (!submitted.ok()) return SerializeDiscoveryError(submitted);
    return response;
  }
  auto response = service->Answer(request.value());
  if (!response.ok()) return SerializeDiscoveryError(response.status());
  return SerializeDiscoveryResponse(response.value());
}

Result<DiscoveryResponse> ParseDiscoveryResponse(const std::string& line) {
  MODIS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  if (!doc.GetBool("ok", false)) {
    return Status(StatusCode::kInternal,
                  "server error [" + doc.GetString("code", "?") + "]: " +
                      doc.GetString("error", "malformed error response"));
  }
  DiscoveryResponse response;
  response.request_id = doc.GetString("request_id", "");
  response.task = doc.GetString("task", "");
  response.variant = doc.GetString("variant", "");
  if (const JsonValue* measures = doc.Get("measures");
      measures != nullptr && measures->is_array()) {
    for (const JsonValue& m : measures->AsArray()) {
      if (m.is_string()) response.measure_names.push_back(m.AsString());
    }
  }
  if (const JsonValue* skyline = doc.Get("skyline");
      skyline != nullptr && skyline->is_array()) {
    for (const JsonValue& entry : skyline->AsArray()) {
      DiscoverySkylineRow row;
      row.signature = entry.GetString("signature", "");
      row.level = static_cast<int>(entry.GetNumber("level", 0));
      row.rows = static_cast<size_t>(entry.GetNumber("rows", 0));
      row.cols = static_cast<size_t>(entry.GetNumber("cols", 0));
      if (const JsonValue* raw = entry.Get("raw")) {
        row.raw = NumbersFromJson(*raw);
      }
      if (const JsonValue* normalized = entry.Get("normalized")) {
        row.normalized = NumbersFromJson(*normalized);
      }
      response.skyline.push_back(std::move(row));
    }
  }
  if (const JsonValue* stats = doc.Get("stats");
      stats != nullptr && stats->is_object()) {
    response.valuated_states =
        static_cast<size_t>(stats->GetNumber("valuated_states", 0));
    response.generated_states =
        static_cast<size_t>(stats->GetNumber("generated_states", 0));
    response.pruned_states =
        static_cast<size_t>(stats->GetNumber("pruned_states", 0));
    response.exact_evals =
        static_cast<size_t>(stats->GetNumber("exact_evals", 0));
    response.persistent_hits =
        static_cast<size_t>(stats->GetNumber("persistent_hits", 0));
    response.surrogate_evals =
        static_cast<size_t>(stats->GetNumber("surrogate_evals", 0));
    response.cache_hits =
        static_cast<size_t>(stats->GetNumber("cache_hits", 0));
    response.failed_evals =
        static_cast<size_t>(stats->GetNumber("failed_evals", 0));
    response.fused_hits =
        static_cast<size_t>(stats->GetNumber("fused_hits", 0));
    response.mask_fast_path_hits =
        static_cast<size_t>(stats->GetNumber("mask_fast_path_hits", 0));
    response.cache_active = stats->GetBool("cache_active", false);
    response.queue_ms = stats->GetNumber("queue_ms", 0.0);
    response.run_ms = stats->GetNumber("run_ms", 0.0);
    response.total_ms = stats->GetNumber("total_ms", 0.0);
  }
  if (const JsonValue* trace = doc.Get("trace");
      trace != nullptr && trace->is_array()) {
    for (const JsonValue& entry : trace->AsArray()) {
      TraceSpan span;
      span.name = entry.GetString("name", "");
      span.id = static_cast<SpanId>(entry.GetNumber("id", kNoSpan));
      span.parent =
          static_cast<SpanId>(entry.GetNumber("parent", kNoSpan));
      span.start_ms = entry.GetNumber("start_ms", 0.0);
      span.duration_ms = entry.GetNumber("duration_ms", 0.0);
      if (const JsonValue* attrs = entry.Get("attrs");
          attrs != nullptr && attrs->is_object()) {
        for (const auto& [key, value] : attrs->AsObject()) {
          if (value.is_number()) {
            span.attrs.emplace_back(key,
                                    static_cast<int64_t>(value.AsNumber()));
          }
        }
      }
      response.trace_spans.push_back(std::move(span));
    }
  }
  return response;
}

}  // namespace modis
