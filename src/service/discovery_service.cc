#include "service/discovery_service.h"

#include <cstdio>
#include <future>
#include <utility>

#include "common/logging.h"
#include "core/algorithms.h"
#include "estimator/oracle.h"
#include "estimator/supervised_evaluator.h"

namespace modis {

namespace {

/// Maps the wire task spelling onto a bench task id: "T1".."T4",
/// "case1"/"case2", or the full BenchTaskName ("T2-house", ...).
Result<BenchTaskId> ParseBenchTask(const std::string& name) {
  static constexpr BenchTaskId kAll[] = {
      BenchTaskId::kMovie, BenchTaskId::kHouse,       BenchTaskId::kAvocado,
      BenchTaskId::kMental, BenchTaskId::kXray,       BenchTaskId::kFeaturePool,
  };
  for (BenchTaskId id : kAll) {
    const std::string full = BenchTaskName(id);
    if (name == full) return id;
    const size_t dash = full.find('-');
    if (dash != std::string::npos && name == full.substr(0, dash)) return id;
  }
  return Status::InvalidArgument(
      "unknown task '" + name +
      "' (expected T1..T4, case1, case2, or a full bench task name)");
}

/// The task's measure set filtered to the requested names, in the task's
/// canonical order (so permuted requests share one fingerprint).
Result<std::vector<MeasureSpec>> FilterMeasures(
    const std::vector<MeasureSpec>& all,
    const std::vector<std::string>& wanted) {
  if (wanted.empty()) return all;
  std::vector<MeasureSpec> filtered;
  for (const MeasureSpec& m : all) {
    for (const std::string& name : wanted) {
      if (m.name == name) {
        filtered.push_back(m);
        break;
      }
    }
  }
  if (filtered.size() != wanted.size()) {
    std::string known;
    for (const MeasureSpec& m : all) {
      if (!known.empty()) known += ", ";
      known += m.name;
    }
    return Status::InvalidArgument(
        "request names a measure the task does not have (task measures: " +
        known + ")");
  }
  return filtered;
}

/// Everything Execute/AnswerDetached share once a universe + evaluator
/// exist: build the oracle + engine, run, flatten the response.
Result<DiscoveryResponse> RunQuery(const DiscoveryRequest& request,
                                   const std::string& canonical_task,
                                   const SearchUniverse& universe,
                                   SupervisedEvaluator* evaluator,
                                   const ModisConfig& config,
                                   EngineRuntime runtime) {
  std::unique_ptr<PerformanceOracle> oracle;
  if (request.oracle == "exact") {
    oracle = std::make_unique<ExactOracle>(evaluator);
  } else if (request.oracle == "gbm") {
    oracle = std::make_unique<MoGbmOracle>(evaluator);
  } else {
    return Status::InvalidArgument("unknown oracle '" + request.oracle +
                                   "' (exact | gbm)");
  }

  WallTimer run_timer;
  ModisEngine engine(&universe, oracle.get(), config, runtime);
  MODIS_ASSIGN_OR_RETURN(ModisResult result, engine.Run());

  DiscoveryResponse response;
  response.task = canonical_task;
  response.variant = request.variant;
  for (const MeasureSpec& m : evaluator->measures()) {
    response.measure_names.push_back(m.name);
  }
  for (const SkylineEntry& entry : result.skyline) {
    DiscoverySkylineRow row;
    row.signature = entry.state.Signature();
    row.level = entry.level;
    row.rows = entry.rows;
    row.cols = entry.cols;
    row.raw = entry.eval.raw;
    row.normalized = entry.eval.normalized;
    response.skyline.push_back(std::move(row));
  }
  response.valuated_states = result.valuated_states;
  response.generated_states = result.generated_states;
  response.pruned_states = result.pruned_states;
  response.exact_evals = result.oracle_stats.exact_evals;
  response.persistent_hits = result.oracle_stats.persistent_hits;
  response.surrogate_evals = result.oracle_stats.surrogate_evals;
  response.cache_hits = result.oracle_stats.cache_hits;
  response.failed_evals = result.oracle_stats.failed_evals;
  response.fused_hits = result.oracle_stats.fused_hits;
  response.mask_fast_path_hits = result.mask_fast_path_hits;
  response.cache_active = result.record_cache_active;
  response.run_ms = run_timer.Millis();
  return response;
}

ModisConfig ConfigFromRequest(const DiscoveryRequest& request) {
  ModisConfig config;
  config.epsilon = request.epsilon;
  config.max_states = request.budget;
  config.max_level = request.maxl;
  config.diversify_k = request.k;
  config.alpha = request.alpha;
  config.seed = request.seed;
  config.record_cache_namespace = request.cache_namespace;
  return config;
}

}  // namespace

DiscoveryService::DiscoveryService(Options options)
    : options_(options), pool_(options.valuation_threads) {
  const size_t sessions = options_.sessions == 0 ? 1 : options_.sessions;
  sessions_.reserve(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    sessions_.emplace_back([this] { SessionLoop(); });
  }
}

DiscoveryService::~DiscoveryService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& session : sessions_) session.join();
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (auto& [path, cache] : caches_) {
    (void)path;
    const Status flushed = cache->Flush();
    (void)flushed;
  }
}

Status DiscoveryService::Preload(const std::string& task) {
  return GetContext(task).status();
}

void DiscoveryService::EvictContextsLocked(const std::string& keep,
                                           size_t reserve) {
  // Idle TTL first: drop every context (other than the one being looked
  // up) whose last query is older than the TTL.
  if (options_.context_idle_ttl_s > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    const auto ttl = std::chrono::duration<double>(
        options_.context_idle_ttl_s);
    for (auto it = contexts_.begin(); it != contexts_.end();) {
      if (it->first != keep && now - it->second->last_used_at > ttl) {
        it = contexts_.erase(it);
        metrics_.context_evictions.fetch_add(1);
      } else {
        ++it;
      }
    }
  }
  // LRU cap: evict oldest-by-last-query until the map (plus the entry
  // about to be inserted, when `reserve` is 1) fits. A lookup that hits
  // passes reserve 0 and evicts nothing at exactly the cap — a cap of N
  // really holds N contexts.
  if (options_.max_task_contexts == 0) return;
  while (contexts_.size() + reserve > options_.max_task_contexts) {
    auto victim = contexts_.end();
    for (auto it = contexts_.begin(); it != contexts_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == contexts_.end() ||
          it->second->last_used_tick < victim->second->last_used_tick) {
        victim = it;
      }
    }
    if (victim == contexts_.end()) return;  // Only `keep` is left.
    contexts_.erase(victim);
    metrics_.context_evictions.fetch_add(1);
  }
}

Result<std::shared_ptr<DiscoveryService::TaskContext>>
DiscoveryService::GetContext(const std::string& task) {
  MODIS_ASSIGN_OR_RETURN(BenchTaskId id, ParseBenchTask(task));
  const std::string canonical = BenchTaskName(id);
  std::lock_guard<std::mutex> lock(context_mu_);
  const uint64_t tick = ++context_tick_;
  const auto now = std::chrono::steady_clock::now();
  auto it = contexts_.find(canonical);
  if (it != contexts_.end()) {
    it->second->last_used_tick = tick;
    it->second->last_used_at = now;
    EvictContextsLocked(canonical, /*reserve=*/0);
    return it->second;
  }
  // Build while holding the lock: queries of other tasks wait, which is
  // the simple, predictable behavior a host wants during warm-up
  // (Preload() exists to take this hit before serving).
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(id, options_.task_row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto context = std::make_shared<TaskContext>(std::move(bench),
                                               std::move(universe));
  context->last_used_tick = tick;
  context->last_used_at = now;
  metrics_.context_builds.fetch_add(1);
  EvictContextsLocked(canonical, /*reserve=*/1);
  contexts_.emplace(canonical, context);
  return context;
}

Result<PersistentRecordCache*> DiscoveryService::GetCache(
    const DiscoveryRequest& request, CacheMode* effective_mode) {
  CacheMode mode = options_.default_cache_mode;
  if (!request.cache_mode.empty()) {
    MODIS_ASSIGN_OR_RETURN(mode, ParseCacheMode(request.cache_mode));
  }
  *effective_mode = mode;
  if (mode == CacheMode::kOff) return static_cast<PersistentRecordCache*>(
      nullptr);
  const std::string path = request.cache_path.empty()
                               ? options_.default_cache_path
                               : request.cache_path;
  if (path.empty()) {
    *effective_mode = CacheMode::kOff;
    return static_cast<PersistentRecordCache*>(nullptr);
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = caches_.find(path);
  if (it != caches_.end()) return it->second.get();
  // The host opens every shared cache read-write (it owns the file and
  // the writer lock); per-query kRead is enforced as a no-append view at
  // attach time (EngineRuntime + ModisConfig::cache_mode).
  PersistentRecordCache::Options cache_options;
  cache_options.max_bytes = options_.cache_max_bytes;
  cache_options.page_size = options_.cache_page_size;
  cache_options.buffer_pool_frames = options_.cache_buffer_pool_frames;
  auto opened = PersistentRecordCache::Open(path, CacheMode::kReadWrite,
                                            /*fingerprint=*/0,
                                            cache_options);
  MODIS_RETURN_IF_ERROR(opened.status());
  PersistentRecordCache* raw = opened.value().get();
  caches_.emplace(path, std::move(opened).value());
  return raw;
}

Result<DiscoveryResponse> DiscoveryService::Execute(
    const DiscoveryRequest& request) {
  MODIS_ASSIGN_OR_RETURN(std::shared_ptr<TaskContext> context,
                         GetContext(request.task));

  SupervisedTask task = context->bench.task;
  MODIS_ASSIGN_OR_RETURN(task.measures,
                         FilterMeasures(context->bench.task.measures,
                                        request.measures));
  SupervisedEvaluator evaluator(task, context->bench.model->Clone());

  ModisConfig config = ConfigFromRequest(request);
  MODIS_RETURN_IF_ERROR(ApplyVariantFlags(request.variant, &config));

  CacheMode mode = CacheMode::kOff;
  PersistentRecordCache* cache = nullptr;
  auto resolved = GetCache(request, &mode);
  if (resolved.ok()) {
    cache = resolved.value();
  } else {
    // A broken/locked cache file must never fail queries — serve cold,
    // the same degradation ModisEngine applies to a self-owned cache.
    std::fprintf(stderr, "modis service: record cache disabled: %s\n",
                 resolved.status().ToString().c_str());
    mode = CacheMode::kOff;
  }
  config.cache_mode = mode;

  EngineRuntime runtime;
  runtime.pool = &pool_;
  runtime.record_cache = cache;
  runtime.fuser = &fuser_;
  auto response = RunQuery(request, context->bench.name, context->universe,
                           &evaluator, config, runtime);
  if (response.ok()) {
    const DiscoveryResponse& resp = response.value();
    metrics_.trainings_shared.fetch_add(resp.fused_hits);
    metrics_.mask_fast_path_hits.fetch_add(resp.mask_fast_path_hits);
    if (resp.fused_hits > 0) metrics_.queries_fused.fetch_add(1);
  }
  return response;
}

Result<DiscoveryResponse> DiscoveryService::AnswerDetached(
    const DiscoveryRequest& request, double task_row_scale) {
  MODIS_ASSIGN_OR_RETURN(BenchTaskId id, ParseBenchTask(request.task));
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(id, task_row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));

  SupervisedTask task = bench.task;
  MODIS_ASSIGN_OR_RETURN(
      task.measures, FilterMeasures(bench.task.measures, request.measures));
  SupervisedEvaluator evaluator(task, bench.model->Clone());

  ModisConfig config = ConfigFromRequest(request);
  MODIS_RETURN_IF_ERROR(ApplyVariantFlags(request.variant, &config));
  config.record_cache_path = request.cache_path;
  if (!request.cache_mode.empty()) {
    MODIS_ASSIGN_OR_RETURN(config.cache_mode,
                           ParseCacheMode(request.cache_mode));
  } else if (request.cache_path.empty()) {
    config.cache_mode = CacheMode::kOff;
  }

  WallTimer total;
  MODIS_ASSIGN_OR_RETURN(
      DiscoveryResponse response,
      RunQuery(request, bench.name, universe, &evaluator, config,
               EngineRuntime{}));
  response.total_ms = total.Millis();
  return response;
}

Status DiscoveryService::Submit(DiscoveryRequest request, Callback done) {
  MODIS_CHECK(done != nullptr) << "Submit: null callback";
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return Status::FailedPrecondition("discovery service is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      metrics_.rejected.fetch_add(1);
      return Status::FailedPrecondition(
          "admission queue full (" +
          std::to_string(options_.queue_capacity) +
          " pending); retry later");
    }
    metrics_.accepted.fetch_add(1);
    queue_.push_back(Job{std::move(request), std::move(done), WallTimer()});
  }
  queue_cv_.notify_one();
  return Status::OK();
}

Result<DiscoveryResponse> DiscoveryService::Answer(
    const DiscoveryRequest& request) {
  std::promise<Result<DiscoveryResponse>> promise;
  std::future<Result<DiscoveryResponse>> future = promise.get_future();
  MODIS_RETURN_IF_ERROR(
      Submit(request, [&promise](Result<DiscoveryResponse> response) {
        promise.set_value(std::move(response));
      }));
  return future.get();
}

DiscoveryService::Stats DiscoveryService::stats() const {
  Stats stats;
  stats.accepted = metrics_.accepted.load();
  stats.rejected = metrics_.rejected.load();
  stats.served = metrics_.served.load();
  stats.failed = metrics_.failed.load();
  return stats;
}

MetricsSnapshot DiscoveryService::SnapshotMetrics() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    snapshot.queue_depth = queue_.size();
  }
  {
    std::lock_guard<std::mutex> lock(context_mu_);
    snapshot.live_contexts = contexts_.size();
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    snapshot.cache_files = caches_.size();
    for (const auto& [path, cache] : caches_) {
      (void)path;
      const PersistentRecordCache::Stats stats = cache->stats();
      snapshot.cache_bytes += stats.log_bytes;
      snapshot.cache_records += stats.loaded_records;
      snapshot.cache_replays += stats.served;
      snapshot.cache_appends += stats.appended;
      snapshot.cache_evictions += stats.evicted;
      snapshot.cache_reclaimed_bytes += stats.reclaimed_bytes;
    }
  }
  return snapshot;
}

void DiscoveryService::SessionLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const double queue_ms = job.queued.Millis();
    Result<DiscoveryResponse> response = Execute(job.request);
    metrics_.queue_ms.Record(queue_ms);
    if (response.ok()) {
      response.value().queue_ms = queue_ms;
      response.value().total_ms = job.queued.Millis();
      metrics_.run_ms.Record(response.value().run_ms);
      metrics_.total_ms.Record(response.value().total_ms);
      metrics_.served.fetch_add(1);
    } else {
      metrics_.failed.fetch_add(1);
    }
    job.done(std::move(response));
  }
}

}  // namespace modis
