#include "service/discovery_service.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <utility>

#include "common/logging.h"
#include "core/algorithms.h"
#include "estimator/oracle.h"
#include "estimator/supervised_evaluator.h"
#include "service/wire.h"

namespace modis {

namespace {

/// Maps the wire task spelling onto a bench task id: "T1".."T4",
/// "case1"/"case2", or the full BenchTaskName ("T2-house", ...).
Result<BenchTaskId> ParseBenchTask(const std::string& name) {
  static constexpr BenchTaskId kAll[] = {
      BenchTaskId::kMovie, BenchTaskId::kHouse,       BenchTaskId::kAvocado,
      BenchTaskId::kMental, BenchTaskId::kXray,       BenchTaskId::kFeaturePool,
  };
  for (BenchTaskId id : kAll) {
    const std::string full = BenchTaskName(id);
    if (name == full) return id;
    const size_t dash = full.find('-');
    if (dash != std::string::npos && name == full.substr(0, dash)) return id;
  }
  return Status::InvalidArgument(
      "unknown task '" + name +
      "' (expected T1..T4, case1, case2, or a full bench task name)");
}

/// The task's measure set filtered to the requested names, in the task's
/// canonical order (so permuted requests share one fingerprint).
Result<std::vector<MeasureSpec>> FilterMeasures(
    const std::vector<MeasureSpec>& all,
    const std::vector<std::string>& wanted) {
  if (wanted.empty()) return all;
  std::vector<MeasureSpec> filtered;
  for (const MeasureSpec& m : all) {
    for (const std::string& name : wanted) {
      if (m.name == name) {
        filtered.push_back(m);
        break;
      }
    }
  }
  if (filtered.size() != wanted.size()) {
    std::string known;
    for (const MeasureSpec& m : all) {
      if (!known.empty()) known += ", ";
      known += m.name;
    }
    return Status::InvalidArgument(
        "request names a measure the task does not have (task measures: " +
        known + ")");
  }
  return filtered;
}

/// Everything Execute/AnswerDetached share once a universe + evaluator
/// exist: build the oracle + engine, run, flatten the response.
Result<DiscoveryResponse> RunQuery(const DiscoveryRequest& request,
                                   const std::string& canonical_task,
                                   const SearchUniverse& universe,
                                   SupervisedEvaluator* evaluator,
                                   const ModisConfig& config,
                                   EngineRuntime runtime) {
  std::unique_ptr<PerformanceOracle> oracle;
  if (request.oracle == "exact") {
    oracle = std::make_unique<ExactOracle>(evaluator);
  } else if (request.oracle == "gbm") {
    oracle = std::make_unique<MoGbmOracle>(evaluator);
  } else {
    return Status::InvalidArgument("unknown oracle '" + request.oracle +
                                   "' (exact | gbm)");
  }

  WallTimer run_timer;
  ModisEngine engine(&universe, oracle.get(), config, runtime);
  MODIS_ASSIGN_OR_RETURN(ModisResult result, engine.Run());

  DiscoveryResponse response;
  response.task = canonical_task;
  response.variant = request.variant;
  for (const MeasureSpec& m : evaluator->measures()) {
    response.measure_names.push_back(m.name);
  }
  for (const SkylineEntry& entry : result.skyline) {
    DiscoverySkylineRow row;
    row.signature = entry.state.Signature();
    row.level = entry.level;
    row.rows = entry.rows;
    row.cols = entry.cols;
    row.raw = entry.eval.raw;
    row.normalized = entry.eval.normalized;
    response.skyline.push_back(std::move(row));
  }
  response.valuated_states = result.valuated_states;
  response.generated_states = result.generated_states;
  response.pruned_states = result.pruned_states;
  response.exact_evals = result.oracle_stats.exact_evals;
  response.persistent_hits = result.oracle_stats.persistent_hits;
  response.surrogate_evals = result.oracle_stats.surrogate_evals;
  response.cache_hits = result.oracle_stats.cache_hits;
  response.failed_evals = result.oracle_stats.failed_evals;
  response.fused_hits = result.oracle_stats.fused_hits;
  response.mask_fast_path_hits = result.mask_fast_path_hits;
  response.cache_active = result.record_cache_active;
  response.run_ms = run_timer.Millis();
  return response;
}

/// The warmth key of the shed ordering: the serialized request with the
/// tenant credential and the trace echo flag stripped (warmth is a
/// property of the query, not of who asks it or whether they want the
/// span tree back — a traced query must hit the same warm/shed path as
/// its untraced twin).
std::string WarmKeyOf(const DiscoveryRequest& request) {
  DiscoveryRequest copy = request;
  copy.api_key.clear();
  copy.trace = false;
  return SerializeDiscoveryRequest(copy);
}

ModisConfig ConfigFromRequest(const DiscoveryRequest& request) {
  ModisConfig config;
  config.epsilon = request.epsilon;
  config.max_states = request.budget;
  config.max_level = request.maxl;
  config.diversify_k = request.k;
  config.alpha = request.alpha;
  config.seed = request.seed;
  config.record_cache_namespace = request.cache_namespace;
  return config;
}

}  // namespace

DiscoveryService::DiscoveryService(Options options)
    : options_(options),
      pool_(options.valuation_threads),
      trace_ring_(options.trace_recent_capacity,
                  options.trace_slow_capacity) {
  qos_enabled_ = !options_.tenants.empty();
  if (qos_enabled_) {
    const auto now = std::chrono::steady_clock::now();
    for (const TenantSpec& spec : options_.tenants) {
      const size_t index = tenants_.size();
      if (!tenant_by_key_.emplace(spec.api_key, index).second) {
        MODIS_LOG(WARN, "service").Tag("tenant", spec.name)
            << "tenant reuses an api key already mapped; ignoring it";
        continue;
      }
      Tenant tenant;
      tenant.spec = spec;
      tenant.tokens = spec.burst;
      tenant.last_refill = now;
      tenants_.push_back(std::move(tenant));
      if (spec.api_key.empty()) default_tenant_ = index;
    }
    if (default_tenant_ == size_t(-1)) {
      // Unknown/absent keys need somewhere to land: an unlimited,
      // priority-0 tenant (configure a spec with an empty api_key to
      // constrain them instead).
      Tenant anonymous;
      anonymous.spec.name = "anonymous";
      anonymous.last_refill = now;
      default_tenant_ = tenants_.size();
      tenants_.push_back(std::move(anonymous));
    }
  }
  const size_t sessions = options_.sessions == 0 ? 1 : options_.sessions;
  sessions_.reserve(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    sessions_.emplace_back([this] { SessionLoop(); });
  }
}

DiscoveryService::~DiscoveryService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& session : sessions_) session.join();
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (auto& [path, cache] : caches_) {
    (void)path;
    const Status flushed = cache->Flush();
    (void)flushed;
  }
}

Status DiscoveryService::Preload(const std::string& task) {
  return GetContext(task).status();
}

void DiscoveryService::EvictContextsLocked(const std::string& keep,
                                           size_t reserve) {
  // Idle TTL first: drop every context (other than the one being looked
  // up) whose last query is older than the TTL.
  if (options_.context_idle_ttl_s > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    const auto ttl = std::chrono::duration<double>(
        options_.context_idle_ttl_s);
    for (auto it = contexts_.begin(); it != contexts_.end();) {
      if (it->first != keep && now - it->second->last_used_at > ttl) {
        it = contexts_.erase(it);
        metrics_.context_evictions.fetch_add(1);
      } else {
        ++it;
      }
    }
  }
  // LRU cap: evict oldest-by-last-query until the map (plus the entry
  // about to be inserted, when `reserve` is 1) fits. A lookup that hits
  // passes reserve 0 and evicts nothing at exactly the cap — a cap of N
  // really holds N contexts.
  if (options_.max_task_contexts == 0) return;
  while (contexts_.size() + reserve > options_.max_task_contexts) {
    auto victim = contexts_.end();
    for (auto it = contexts_.begin(); it != contexts_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == contexts_.end() ||
          it->second->last_used_tick < victim->second->last_used_tick) {
        victim = it;
      }
    }
    if (victim == contexts_.end()) return;  // Only `keep` is left.
    contexts_.erase(victim);
    metrics_.context_evictions.fetch_add(1);
  }
}

Result<std::shared_ptr<DiscoveryService::TaskContext>>
DiscoveryService::GetContext(const std::string& task) {
  MODIS_ASSIGN_OR_RETURN(BenchTaskId id, ParseBenchTask(task));
  const std::string canonical = BenchTaskName(id);
  std::lock_guard<std::mutex> lock(context_mu_);
  const uint64_t tick = ++context_tick_;
  const auto now = std::chrono::steady_clock::now();
  auto it = contexts_.find(canonical);
  if (it != contexts_.end()) {
    it->second->last_used_tick = tick;
    it->second->last_used_at = now;
    EvictContextsLocked(canonical, /*reserve=*/0);
    return it->second;
  }
  // Build while holding the lock: queries of other tasks wait, which is
  // the simple, predictable behavior a host wants during warm-up
  // (Preload() exists to take this hit before serving).
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(id, options_.task_row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));
  auto context = std::make_shared<TaskContext>(std::move(bench),
                                               std::move(universe));
  context->last_used_tick = tick;
  context->last_used_at = now;
  metrics_.context_builds.fetch_add(1);
  EvictContextsLocked(canonical, /*reserve=*/1);
  contexts_.emplace(canonical, context);
  return context;
}

Result<PersistentRecordCache*> DiscoveryService::GetCache(
    const DiscoveryRequest& request, CacheMode* effective_mode) {
  CacheMode mode = options_.default_cache_mode;
  if (!request.cache_mode.empty()) {
    MODIS_ASSIGN_OR_RETURN(mode, ParseCacheMode(request.cache_mode));
  }
  *effective_mode = mode;
  if (mode == CacheMode::kOff) return static_cast<PersistentRecordCache*>(
      nullptr);
  const std::string path = request.cache_path.empty()
                               ? options_.default_cache_path
                               : request.cache_path;
  if (path.empty()) {
    *effective_mode = CacheMode::kOff;
    return static_cast<PersistentRecordCache*>(nullptr);
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = caches_.find(path);
  if (it != caches_.end()) {
    // A shared attachment re-reads the file when it changed, so records
    // a sibling worker published since the last query are warm here.
    if (it->second->shared()) (void)it->second->RefreshIfChanged();
    return it->second.get();
  }
  // The host opens every shared cache read-write (it owns the file and
  // the writer lock); per-query kRead is enforced as a no-append view at
  // attach time (EngineRuntime + ModisConfig::cache_mode). A worker
  // process instead takes a lock-free shared attachment so the whole
  // pool can serve the one file (docs/MULTIPROCESS.md).
  PersistentRecordCache::Options cache_options;
  cache_options.max_bytes = options_.cache_max_bytes;
  cache_options.page_size = options_.cache_page_size;
  cache_options.buffer_pool_frames = options_.cache_buffer_pool_frames;
  auto opened =
      options_.shared_cache
          ? PersistentRecordCache::OpenShared(path, /*fingerprint=*/0,
                                              cache_options)
          : PersistentRecordCache::Open(path, CacheMode::kReadWrite,
                                        /*fingerprint=*/0, cache_options);
  MODIS_RETURN_IF_ERROR(opened.status());
  PersistentRecordCache* raw = opened.value().get();
  caches_.emplace(path, std::move(opened).value());
  return raw;
}

Result<DiscoveryResponse> DiscoveryService::Execute(
    const DiscoveryRequest& request, TraceRecorder* trace, SpanId root) {
  const SpanId context_span =
      trace != nullptr ? trace->Begin("context", root) : kNoSpan;
  MODIS_ASSIGN_OR_RETURN(std::shared_ptr<TaskContext> context,
                         GetContext(request.task));
  if (trace != nullptr) trace->End(context_span);

  SupervisedTask task = context->bench.task;
  MODIS_ASSIGN_OR_RETURN(task.measures,
                         FilterMeasures(context->bench.task.measures,
                                        request.measures));
  SupervisedEvaluator evaluator(task, context->bench.model->Clone());

  ModisConfig config = ConfigFromRequest(request);
  MODIS_RETURN_IF_ERROR(ApplyVariantFlags(request.variant, &config));

  CacheMode mode = CacheMode::kOff;
  PersistentRecordCache* cache = nullptr;
  auto resolved = GetCache(request, &mode);
  if (resolved.ok()) {
    cache = resolved.value();
  } else {
    // A broken/locked cache file must never fail queries — serve cold,
    // the same degradation ModisEngine applies to a self-owned cache.
    MODIS_LOG(WARN, "service")
        << "record cache disabled: " << resolved.status().ToString();
    mode = CacheMode::kOff;
  }
  config.cache_mode = mode;

  EngineRuntime runtime;
  runtime.pool = &pool_;
  runtime.record_cache = cache;
  runtime.fuser = &fuser_;
  const SpanId run_span =
      trace != nullptr ? trace->Begin("run", root) : kNoSpan;
  runtime.trace = trace;
  runtime.trace_parent = run_span;
  auto response = RunQuery(request, context->bench.name, context->universe,
                           &evaluator, config, runtime);
  if (trace != nullptr) trace->End(run_span);
  if (response.ok()) {
    const DiscoveryResponse& resp = response.value();
    metrics_.trainings_shared.fetch_add(resp.fused_hits);
    metrics_.mask_fast_path_hits.fetch_add(resp.mask_fast_path_hits);
    if (resp.fused_hits > 0) metrics_.queries_fused.fetch_add(1);
  }
  return response;
}

Result<DiscoveryResponse> DiscoveryService::AnswerDetached(
    const DiscoveryRequest& request, double task_row_scale) {
  MODIS_ASSIGN_OR_RETURN(BenchTaskId id, ParseBenchTask(request.task));
  MODIS_ASSIGN_OR_RETURN(TabularBench bench,
                         MakeTabularBench(id, task_row_scale));
  MODIS_ASSIGN_OR_RETURN(
      SearchUniverse universe,
      SearchUniverse::Build(bench.universal, bench.universe_options));

  SupervisedTask task = bench.task;
  MODIS_ASSIGN_OR_RETURN(
      task.measures, FilterMeasures(bench.task.measures, request.measures));
  SupervisedEvaluator evaluator(task, bench.model->Clone());

  ModisConfig config = ConfigFromRequest(request);
  MODIS_RETURN_IF_ERROR(ApplyVariantFlags(request.variant, &config));
  config.record_cache_path = request.cache_path;
  if (!request.cache_mode.empty()) {
    MODIS_ASSIGN_OR_RETURN(config.cache_mode,
                           ParseCacheMode(request.cache_mode));
  } else if (request.cache_path.empty()) {
    config.cache_mode = CacheMode::kOff;
  }

  WallTimer total;
  MODIS_ASSIGN_OR_RETURN(
      DiscoveryResponse response,
      RunQuery(request, bench.name, universe, &evaluator, config,
               EngineRuntime{}));
  response.total_ms = total.Millis();
  return response;
}

size_t DiscoveryService::ResolveTenantLocked(
    const std::string& api_key) const {
  const auto it = tenant_by_key_.find(api_key);
  return it != tenant_by_key_.end() ? it->second : default_tenant_;
}

Status DiscoveryService::AdmitLocked(const DiscoveryRequest& request,
                                     size_t* tenant_index, int* priority,
                                     bool* warm, Job* shed) {
  *tenant_index = size_t(-1);
  *priority = 0;
  *warm = false;
  Tenant* tenant = nullptr;
  if (qos_enabled_) {
    *tenant_index = ResolveTenantLocked(request.api_key);
    tenant = &tenants_[*tenant_index];
    *priority = tenant->spec.priority;
    if (tenant->spec.burst > 0.0) {
      const auto now = std::chrono::steady_clock::now();
      const double elapsed =
          std::chrono::duration<double>(now - tenant->last_refill).count();
      tenant->last_refill = now;
      tenant->tokens =
          std::min(tenant->spec.burst,
                   tenant->tokens + elapsed * tenant->spec.rate_per_s);
      if (tenant->tokens < 1.0) {
        ++tenant->rate_limited;
        metrics_.qos_rate_limited.fetch_add(1);
        metrics_.rejected.fetch_add(1);
        const double wait =
            tenant->spec.rate_per_s > 0.0
                ? (1.0 - tenant->tokens) / tenant->spec.rate_per_s
                : 1.0;
        return QosRejected(tenant->spec.name,
                           "rate limited (token bucket empty)", wait);
      }
    }
    if (tenant->spec.max_in_flight > 0 &&
        tenant->in_flight >= tenant->spec.max_in_flight) {
      ++tenant->quota_rejected;
      metrics_.qos_quota_rejected.fetch_add(1);
      metrics_.rejected.fetch_add(1);
      return QosRejected(tenant->spec.name,
                         "in-flight quota (" +
                             std::to_string(tenant->spec.max_in_flight) +
                             ") reached",
                         1.0);
    }
    *warm = warm_keys_.count(WarmKeyOf(request)) > 0;
  }
  if (queue_.size() >= options_.queue_capacity) {
    // Load shedding: displace the cheapest-to-retry queued job iff the
    // incoming request strictly outranks it. Cheapest first = lowest
    // priority, cold before warm (a warm answer is nearly free to
    // produce, so the cold one is the better retry candidate), youngest
    // on ties (it has waited least). Deterministic by construction —
    // tests/service_test.cc pins the ordering.
    const auto rank = [](int priority, bool warm_job) {
      return std::make_pair(priority, warm_job ? 1 : 0);
    };
    auto victim = queue_.end();
    if (qos_enabled_) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (victim == queue_.end() ||
            rank(it->priority, it->warm) <=
                rank(victim->priority, victim->warm)) {
          victim = it;
        }
      }
    }
    if (victim != queue_.end() &&
        rank(*priority, *warm) > rank(victim->priority, victim->warm)) {
      *shed = std::move(*victim);
      queue_.erase(victim);
      if (shed->tenant < tenants_.size()) {
        Tenant& displaced = tenants_[shed->tenant];
        --displaced.in_flight;
        ++displaced.shed;
      }
      metrics_.qos_shed.fetch_add(1);
      // Fall through: the incoming request takes the freed slot.
    } else {
      metrics_.rejected.fetch_add(1);
      const std::string detail = "admission queue full (" +
                                 std::to_string(options_.queue_capacity) +
                                 " pending)";
      if (tenant != nullptr) {
        ++tenant->shed;
        metrics_.qos_shed.fetch_add(1);
        return QosRejected(tenant->spec.name, detail, 1.0);
      }
      return Status::ResourceExhausted(detail +
                                       "; retry later [retry_after_s=1.000]");
    }
  }
  if (tenant != nullptr) {
    if (tenant->spec.burst > 0.0) tenant->tokens -= 1.0;
    ++tenant->in_flight;
    ++tenant->admitted;
  }
  metrics_.accepted.fetch_add(1);
  return Status::OK();
}

Status DiscoveryService::Submit(DiscoveryRequest request, Callback done) {
  MODIS_CHECK(done != nullptr) << "Submit: null callback";
  Job shed;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return Status::FailedPrecondition("discovery service is shutting down");
    }
    size_t tenant_index;
    int priority;
    bool warm;
    MODIS_RETURN_IF_ERROR(
        AdmitLocked(request, &tenant_index, &priority, &warm, &shed));
    Job job;
    job.request = std::move(request);
    job.done = std::move(done);
    job.queued = WallTimer();
    job.tenant = tenant_index;
    job.priority = priority;
    job.warm = warm;
    // Every accepted query gets an id and a span recorder: the id stamps
    // logs/response/headers, the recorder feeds the debug ring and the
    // phase histograms whether or not the client asked for the inline
    // echo. The admission span stays open until a session dequeues it.
    job.sequence = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%06llu",
                  static_cast<unsigned long long>(job.sequence));
    job.request_id = options_.request_id_prefix + suffix;
    job.recorder = std::make_shared<TraceRecorder>();
    job.root_span = job.recorder->Begin("query", kNoSpan);
    job.admission_span = job.recorder->Begin("admission", job.root_span);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  if (shed.done) {
    // Fail the displaced job outside the lock: its submitter may be
    // blocked in Answer(), and its callback may re-enter the service.
    const std::string name = shed.tenant < tenants_.size()
                                 ? tenants_[shed.tenant].spec.name
                                 : std::string("default");
    shed.done(Result<DiscoveryResponse>(QosRejected(
        name, "shed under overload (displaced by higher-priority work)",
        1.0)));
  }
  return Status::OK();
}

Result<DiscoveryResponse> DiscoveryService::Answer(
    const DiscoveryRequest& request) {
  std::promise<Result<DiscoveryResponse>> promise;
  std::future<Result<DiscoveryResponse>> future = promise.get_future();
  MODIS_RETURN_IF_ERROR(
      Submit(request, [&promise](Result<DiscoveryResponse> response) {
        promise.set_value(std::move(response));
      }));
  return future.get();
}

DiscoveryService::Stats DiscoveryService::stats() const {
  Stats stats;
  stats.accepted = metrics_.accepted.load();
  stats.rejected = metrics_.rejected.load();
  stats.served = metrics_.served.load();
  stats.failed = metrics_.failed.load();
  return stats;
}

MetricsSnapshot DiscoveryService::SnapshotMetrics() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    snapshot.queue_depth = queue_.size();
    snapshot.tenants.reserve(tenants_.size());
    for (const Tenant& tenant : tenants_) {
      TenantMetricsSnapshot entry;
      entry.name = tenant.spec.name;
      entry.priority = tenant.spec.priority;
      entry.admitted = tenant.admitted;
      entry.rate_limited = tenant.rate_limited;
      entry.quota_rejected = tenant.quota_rejected;
      entry.shed = tenant.shed;
      entry.served = tenant.served;
      entry.failed = tenant.failed;
      entry.in_flight = tenant.in_flight;
      snapshot.tenants.push_back(std::move(entry));
    }
  }
  {
    std::lock_guard<std::mutex> lock(context_mu_);
    snapshot.live_contexts = contexts_.size();
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    snapshot.cache_files = caches_.size();
    for (const auto& [path, cache] : caches_) {
      (void)path;
      const PersistentRecordCache::Stats stats = cache->stats();
      snapshot.cache_bytes += stats.log_bytes;
      snapshot.cache_records += stats.loaded_records;
      snapshot.cache_replays += stats.served;
      snapshot.cache_appends += stats.appended;
      snapshot.cache_evictions += stats.evicted;
      snapshot.cache_reclaimed_bytes += stats.reclaimed_bytes;
      snapshot.buffer_pool_frames += stats.buffer_frames_in_use;
    }
  }
  return snapshot;
}

void DiscoveryService::SessionLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained.
      // Priority-aware pick: highest priority first, FIFO within one
      // priority (the deque keeps insertion order, so the first maximum
      // is the oldest). With QoS off every job has priority 0 — plain
      // FIFO, the pre-QoS behavior.
      auto best = queue_.begin();
      if (qos_enabled_) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (it->priority > best->priority) best = it;
        }
      }
      job = std::move(*best);
      queue_.erase(best);
    }
    TraceRecorder* const trace = job.recorder.get();
    trace->End(job.admission_span);
    const double queue_ms = job.queued.Millis();
    Result<DiscoveryResponse> response =
        Execute(job.request, trace, job.root_span);
    metrics_.queue_ms.Record(queue_ms);

    // Response assembly (request id, phase-histogram feeding, debug-ring
    // retention) is itself a phase: the "respond" span. It and the root
    // are ended before the snapshots below, so both the inline echo and
    // the retained trace carry complete durations.
    const SpanId respond_span = trace->Begin("respond", job.root_span);
    if (response.ok()) {
      response.value().request_id = job.request_id;
      response.value().queue_ms = queue_ms;
      response.value().total_ms = job.queued.Millis();
      metrics_.run_ms.Record(response.value().run_ms);
      metrics_.total_ms.Record(response.value().total_ms);
      metrics_.served.fetch_add(1);
    } else {
      metrics_.failed.fetch_add(1);
    }
    trace->End(respond_span);
    trace->End(job.root_span);
    if (response.ok() && job.request.trace) {
      response.value().trace_spans = trace->Snapshot();
    }

    // spec.name is immutable after the constructor and tenants_ is never
    // resized, so reading it without queue_mu_ is safe.
    const std::string tenant_name =
        job.tenant < tenants_.size() ? tenants_[job.tenant].spec.name
                                     : std::string("default");

    // Fold the completed span tree into the debug ring and the per-phase
    // histograms. The histograms are derived from the same spans the
    // trace surfaces export, so `modis_phase_*` agrees with
    // /v1/debug/traces by construction.
    Trace completed;
    completed.request_id = job.request_id;
    completed.tenant = tenant_name;
    completed.task = job.request.task;
    completed.ok = response.ok();
    completed.sequence = job.sequence;
    completed.spans = trace->Snapshot();
    const double total_ms = !completed.spans.empty()
                                ? completed.spans.front().duration_ms
                                : job.queued.Millis();
    completed.total_ms = total_ms;
    const double admission_ms = SumSpanMs(completed.spans, "admission");
    const double context_ms = SumSpanMs(completed.spans, "context");
    const double plan_ms = SumSpanMs(completed.spans, "plan");
    const double train_ms = SumSpanMs(completed.spans, "train");
    const double commit_ms = SumSpanMs(completed.spans, "commit");
    const double flush_ms = SumSpanMs(completed.spans, "flush");
    const double respond_ms = SumSpanMs(completed.spans, "respond");
    metrics_.phase_admission_ms.Record(admission_ms);
    metrics_.phase_context_ms.Record(context_ms);
    metrics_.phase_plan_ms.Record(plan_ms);
    metrics_.phase_train_ms.Record(train_ms);
    metrics_.phase_commit_ms.Record(commit_ms);
    metrics_.phase_flush_ms.Record(flush_ms);
    metrics_.phase_respond_ms.Record(respond_ms);
    trace_ring_.Add(std::move(completed));

    if (options_.slow_query_ms > 0.0 && total_ms >= options_.slow_query_ms) {
      MODIS_LOG(WARN, "service")
              .Tag("request_id", job.request_id)
              .Tag("tenant", tenant_name)
              .Tag("task", job.request.task)
              .Tag("total_ms", total_ms)
              .Tag("admission_ms", admission_ms)
              .Tag("context_ms", context_ms)
              .Tag("plan_ms", plan_ms)
              .Tag("train_ms", train_ms)
              .Tag("commit_ms", commit_ms)
              .Tag("flush_ms", flush_ms)
              .Tag("respond_ms", respond_ms)
          << "slow query";
    }

    if (qos_enabled_) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (response.ok()) {
        if (warm_keys_.size() > 65536) warm_keys_.clear();
        warm_keys_.insert(WarmKeyOf(job.request));
      }
      if (job.tenant < tenants_.size()) {
        Tenant& tenant = tenants_[job.tenant];
        --tenant.in_flight;
        if (response.ok()) {
          ++tenant.served;
        } else {
          ++tenant.failed;
        }
      }
    }
    // Per-query completion line: DEBUG in steady state, INFO while
    // draining so a shutting-down host shows each accepted query it is
    // finishing, by request id.
    const bool draining = metrics_.draining.load();
    if (draining) {
      MODIS_LOG(INFO, "service")
              .Tag("request_id", job.request_id)
              .Tag("tenant", tenant_name)
              .Tag("task", job.request.task)
              .Tag("ok", response.ok() ? int64_t{1} : int64_t{0})
              .Tag("total_ms", total_ms)
          << "drained query";
    } else {
      MODIS_LOG(DEBUG, "service")
              .Tag("request_id", job.request_id)
              .Tag("tenant", tenant_name)
              .Tag("task", job.request.task)
              .Tag("ok", response.ok() ? int64_t{1} : int64_t{0})
              .Tag("total_ms", total_ms)
          << "query complete";
    }
    job.done(std::move(response));
  }
}

}  // namespace modis
