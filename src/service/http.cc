#include "service/http.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include "service/discovery_service.h"
#include "service/json.h"
#include "service/qos.h"
#include "service/wire.h"
#include "service/worker.h"

namespace modis {

namespace {

bool IsTokenChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

bool IsToken(const std::string& text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

std::string ToLower(std::string text) {
  for (char& c : text) {
    if (c >= 'A' && c <= 'Z') c = char(c - 'A' + 'a');
  }
  return text;
}

std::string TrimOws(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

/// True when the comma-separated token list `value` contains `token`
/// (case-insensitive) — the Connection header grammar.
bool TokenListContains(const std::string& value, const char* token) {
  const std::string lower = ToLower(value);
  size_t start = 0;
  while (start <= lower.size()) {
    size_t comma = lower.find(',', start);
    if (comma == std::string::npos) comma = lower.size();
    if (TrimOws(lower.substr(start, comma - start)) == token) return true;
    start = comma + 1;
  }
  return false;
}

bool ParseDecimal(const std::string& text, uint64_t* value) {
  if (text.empty() || text.size() > 15) return false;
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + uint64_t(c - '0');
  }
  *value = out;
  return true;
}

bool ParseHex(const std::string& text, uint64_t* value) {
  if (text.empty() || text.size() > 12) return false;
  uint64_t out = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = uint64_t(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = uint64_t(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = uint64_t(c - 'A' + 10);
    } else {
      return false;
    }
    out = out * 16 + digit;
  }
  *value = out;
  return true;
}

std::string FormatMetricNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendHistogram(const char* name, const LatencyHistogram::Snapshot& h,
                     const char* help, std::string* out) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += " histogram\n";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += h.buckets[i];
    *out += name;
    // The final bucket absorbs everything beyond its bound, so it is the
    // +Inf bucket of the exposition (cumulative == count there).
    if (i + 1 == LatencyHistogram::kBuckets) {
      *out += "_bucket{le=\"+Inf\"} ";
    } else {
      *out += "_bucket{le=\"" +
              FormatMetricNumber(LatencyHistogram::BucketBoundMs(i)) +
              "\"} ";
    }
    *out += std::to_string(cumulative);
    *out += '\n';
  }
  *out += name;
  *out += "_sum " + FormatMetricNumber(h.sum_ms) + "\n";
  *out += name;
  *out += "_count " + std::to_string(h.count) + "\n";
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusReason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += body;
  return out;
}

// ---------------------------------------------------------------- parser

HttpParser::HttpParser(Limits limits) : limits_(limits) {}

void HttpParser::Fail(int status, std::string message) {
  phase_ = Phase::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  ready_ = false;
}

bool HttpParser::TakeLine(size_t limit, int limit_status, const char* what,
                          std::string* line) {
  const size_t newline = buffer_.find('\n', pos_);
  if (newline == std::string::npos) {
    if (buffer_.size() - pos_ > limit) {
      Fail(limit_status, std::string(what) + " exceeds " +
                             std::to_string(limit) + " bytes");
    }
    return false;
  }
  if (newline - pos_ > limit) {
    Fail(limit_status,
         std::string(what) + " exceeds " + std::to_string(limit) + " bytes");
    return false;
  }
  line->assign(buffer_, pos_, newline - pos_);
  pos_ = newline + 1;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

void HttpParser::ParseRequestLine(const std::string& line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return Fail(400, "malformed request line");
  }
  current_.method = line.substr(0, sp1);
  current_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (!IsToken(current_.method)) return Fail(400, "malformed method");
  if (current_.target.empty() || current_.target[0] != '/' ||
      current_.target.find(' ') != std::string::npos) {
    return Fail(400, "request target must be an origin-form path");
  }
  if (version.size() != 8 || version.compare(0, 5, "HTTP/") != 0 ||
      version[5] < '0' || version[5] > '9' || version[6] != '.' ||
      version[7] < '0' || version[7] > '9') {
    return Fail(400, "malformed HTTP version");
  }
  if (version[5] != '1') {
    return Fail(505, "only HTTP/1.x is supported");
  }
  current_.version_minor = version[7] - '0';
  current_.keep_alive = current_.version_minor >= 1;
  phase_ = Phase::kHeaders;
}

void HttpParser::ParseHeaderLine(const std::string& line) {
  if (line.empty()) return FinishHeaders();
  if (line[0] == ' ' || line[0] == '\t') {
    return Fail(400, "obsolete header line folding");
  }
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    return Fail(400, "malformed header line");
  }
  std::string name = line.substr(0, colon);
  if (!IsToken(name)) return Fail(400, "malformed header name");
  if (current_.headers.size() >= limits_.max_headers) {
    return Fail(431, "more than " + std::to_string(limits_.max_headers) +
                         " headers");
  }
  current_.headers.emplace_back(ToLower(std::move(name)),
                                TrimOws(line.substr(colon + 1)));
}

void HttpParser::FinishHeaders() {
  const std::string* connection = current_.FindHeader("connection");
  if (connection != nullptr) {
    if (TokenListContains(*connection, "close")) {
      current_.keep_alive = false;
    } else if (TokenListContains(*connection, "keep-alive")) {
      current_.keep_alive = true;
    }
  }
  const std::string* transfer = current_.FindHeader("transfer-encoding");
  const std::string* length = current_.FindHeader("content-length");
  if (transfer != nullptr) {
    if (length != nullptr) {
      // Framing ambiguity is the request-smuggling vector: refuse.
      return Fail(400, "both Content-Length and Transfer-Encoding");
    }
    if (ToLower(TrimOws(*transfer)) != "chunked") {
      return Fail(501, "unsupported transfer encoding '" + *transfer + "'");
    }
    body_total_ = 0;
    phase_ = Phase::kChunkSize;
    return;
  }
  if (length != nullptr) {
    // Every repeat of the header must agree byte-for-byte.
    for (const auto& [name, value] : current_.headers) {
      if (name == "content-length" && value != *length) {
        return Fail(400, "conflicting Content-Length headers");
      }
    }
    uint64_t bytes = 0;
    if (!ParseDecimal(*length, &bytes)) {
      return Fail(400, "malformed Content-Length '" + *length + "'");
    }
    if (bytes > limits_.max_body_bytes) {
      return Fail(413, "body of " + std::to_string(bytes) +
                           " bytes exceeds " +
                           std::to_string(limits_.max_body_bytes));
    }
    if (bytes == 0) {
      phase_ = Phase::kComplete;
      return;
    }
    body_remaining_ = size_t(bytes);
    phase_ = Phase::kFixedBody;
    return;
  }
  phase_ = Phase::kComplete;
}

void HttpParser::Advance() {
  // Bounded tolerance for blank lines before the request line (RFC 9112
  // §2.2); beyond that the peer is not speaking HTTP.
  int leading_blanks = 0;
  while (!ready_ && phase_ != Phase::kError) {
    switch (phase_) {
      case Phase::kRequestLine: {
        std::string line;
        if (!TakeLine(limits_.max_request_line_bytes, 414, "request line",
                      &line)) {
          return;
        }
        if (line.empty()) {
          if (++leading_blanks > 4) Fail(400, "expected a request line");
          break;
        }
        ParseRequestLine(line);
        break;
      }
      case Phase::kHeaders:
      case Phase::kTrailers: {
        std::string line;
        if (!TakeLine(limits_.max_header_bytes, 431, "header section",
                      &line)) {
          return;
        }
        header_bytes_ += line.size() + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          Fail(431, "header section exceeds " +
                        std::to_string(limits_.max_header_bytes) + " bytes");
          break;
        }
        if (phase_ == Phase::kTrailers) {
          // Trailer fields are accepted and discarded.
          if (line.empty()) phase_ = Phase::kComplete;
          break;
        }
        ParseHeaderLine(line);
        break;
      }
      case Phase::kFixedBody:
      case Phase::kChunkData: {
        const size_t available = buffer_.size() - pos_;
        if (available == 0) return;
        const size_t take =
            available < body_remaining_ ? available : body_remaining_;
        current_.body.append(buffer_, pos_, take);
        pos_ += take;
        body_remaining_ -= take;
        if (body_remaining_ != 0) return;
        phase_ = phase_ == Phase::kFixedBody ? Phase::kComplete
                                             : Phase::kChunkDataEnd;
        break;
      }
      case Phase::kChunkSize: {
        std::string line;
        if (!TakeLine(/*limit=*/256, 400, "chunk size line", &line)) return;
        const size_t semicolon = line.find(';');  // Extensions: ignored.
        uint64_t size = 0;
        if (!ParseHex(TrimOws(line.substr(0, semicolon)), &size)) {
          Fail(400, "malformed chunk size '" + line + "'");
          break;
        }
        if (body_total_ + size > limits_.max_body_bytes) {
          Fail(413, "chunked body exceeds " +
                        std::to_string(limits_.max_body_bytes) + " bytes");
          break;
        }
        if (size == 0) {
          phase_ = Phase::kTrailers;
          break;
        }
        body_total_ += size_t(size);
        body_remaining_ = size_t(size);
        phase_ = Phase::kChunkData;
        break;
      }
      case Phase::kChunkDataEnd: {
        const size_t available = buffer_.size() - pos_;
        if (available == 0) return;
        if (buffer_[pos_] == '\n') {
          pos_ += 1;
        } else if (buffer_[pos_] == '\r') {
          if (available < 2) return;
          if (buffer_[pos_ + 1] != '\n') {
            Fail(400, "chunk data not terminated by CRLF");
            break;
          }
          pos_ += 2;
        } else {
          Fail(400, "chunk data not terminated by CRLF");
          break;
        }
        phase_ = Phase::kChunkSize;
        break;
      }
      case Phase::kComplete:
        ready_ = true;
        buffer_.erase(0, pos_);
        pos_ = 0;
        return;
      case Phase::kError:
        return;
    }
  }
}

void HttpParser::Feed(const char* data, size_t size) {
  if (phase_ == Phase::kError) return;
  buffer_.append(data, size);
  if (!ready_) Advance();
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest request = std::move(current_);
  current_ = HttpRequest{};
  ready_ = false;
  phase_ = Phase::kRequestLine;
  header_bytes_ = 0;
  body_remaining_ = 0;
  body_total_ = 0;
  Advance();  // Pipelining: already-buffered bytes seed the next request.
  return request;
}

// ------------------------------------------------------------- sniffing

ProtocolGuess SniffProtocol(const std::string& prefix) {
  static constexpr const char* kMethods[] = {
      "GET ", "HEAD ", "POST ", "PUT ", "DELETE ", "OPTIONS ", "PATCH "};
  bool could_be_http = false;
  for (const char* method : kMethods) {
    const size_t length = std::strlen(method);
    if (prefix.size() >= length) {
      if (prefix.compare(0, length, method) == 0) return ProtocolGuess::kHttp;
    } else if (std::strncmp(method, prefix.data(), prefix.size()) == 0) {
      could_be_http = true;
    }
  }
  return could_be_http ? ProtocolGuess::kNeedMoreBytes
                       : ProtocolGuess::kLineJson;
}

// ------------------------------------------------------------ exposition

std::string PrometheusExposition(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const ScalarMetricDesc& desc : ScalarMetricDescriptors()) {
    out += "# HELP ";
    out += desc.prom_name;
    out += ' ';
    out += desc.help;
    out += "\n# TYPE ";
    out += desc.prom_name;
    out += desc.counter ? " counter\n" : " gauge\n";
    out += desc.prom_name;
    out += ' ';
    out += std::to_string(snapshot.*desc.field);
    out += '\n';
  }
  out += "# HELP modis_draining Whether the host is draining (0/1).\n";
  out += "# TYPE modis_draining gauge\n";
  out += snapshot.draining ? "modis_draining 1\n" : "modis_draining 0\n";
  for (const HistogramMetricDesc& desc : HistogramMetricDescriptors()) {
    AppendHistogram(desc.prom_name, snapshot.*desc.field, desc.help, &out);
  }
  if (!snapshot.tenants.empty()) {
    for (const TenantMetricDesc& desc : TenantMetricDescriptors()) {
      out += "# HELP ";
      out += desc.prom_name;
      out += ' ';
      out += desc.help;
      out += "\n# TYPE ";
      out += desc.prom_name;
      out += desc.counter ? " counter\n" : " gauge\n";
      for (const TenantMetricsSnapshot& tenant : snapshot.tenants) {
        out += desc.prom_name;
        out += "{tenant=\"" + EscapeLabelValue(tenant.name) + "\"} ";
        out += std::to_string(tenant.*desc.field);
        out += '\n';
      }
    }
    out += "# HELP modis_tenant_priority Configured tenant priority.\n";
    out += "# TYPE modis_tenant_priority gauge\n";
    for (const TenantMetricsSnapshot& tenant : snapshot.tenants) {
      out += "modis_tenant_priority{tenant=\"" +
             EscapeLabelValue(tenant.name) + "\"} " +
             std::to_string(tenant.priority) + "\n";
    }
  }
  if (!snapshot.workers.empty()) {
    for (const WorkerMetricDesc& desc : WorkerMetricDescriptors()) {
      out += "# HELP ";
      out += desc.prom_name;
      out += ' ';
      out += desc.help;
      out += "\n# TYPE ";
      out += desc.prom_name;
      out += desc.counter ? " counter\n" : " gauge\n";
      for (const WorkerMetricsSnapshot& worker : snapshot.workers) {
        out += desc.prom_name;
        out += "{worker=\"" + std::to_string(worker.index) + "\"} ";
        out += std::to_string(worker.*desc.field);
        out += '\n';
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------- router

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kFailedPrecondition: return 503;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kInternal: return 500;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kIoError: return 500;
  }
  return 500;
}

HttpResponse MakeHttpError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  JsonValue doc{JsonValue::Object{}};
  doc.Set("ok", false);
  doc.Set("status", status);
  doc.Set("error", message);
  response.body = doc.Dump() + "\n";
  return response;
}

namespace {

/// A service Status as an HTTP response: the same {"ok":false,...} body
/// the line protocol sends, plus Retry-After on 429/503 so shed work is
/// cheap to retry correctly.
HttpResponse ResponseFromStatus(const Status& status) {
  HttpResponse response;
  response.status = HttpStatusForStatus(status);
  response.body = SerializeDiscoveryError(status) + "\n";
  if (response.status == 429 || response.status == 503) {
    const double retry_after = RetryAfterSeconds(status);
    const int seconds =
        retry_after > 0.0 ? int(std::ceil(retry_after)) : 1;
    response.headers.emplace_back("Retry-After", std::to_string(seconds));
  }
  return response;
}

HttpResponse MethodNotAllowed(const char* allow) {
  HttpResponse response = MakeHttpError(405, "method not allowed");
  response.headers.emplace_back("Allow", allow);
  return response;
}

HttpResponse QueryEndpoint(DiscoveryService* service, WorkerPool* pool,
                           const HttpRequest& request) {
  auto doc = JsonValue::Parse(request.body);
  if (!doc.ok()) return ResponseFromStatus(doc.status());
  if (doc->is_object()) {
    const std::string verb = doc->GetString("verb", "");
    if (!verb.empty() && verb != "discover") {
      return ResponseFromStatus(Status::InvalidArgument(
          "POST /v1/query serves discovery requests only (got verb '" +
          verb + "')"));
    }
  }
  auto parsed = ParseDiscoveryRequestDoc(*doc);
  if (!parsed.ok()) return ResponseFromStatus(parsed.status());
  DiscoveryRequest query = std::move(parsed).value();
  if (query.api_key.empty()) {
    if (const std::string* key = request.FindHeader("x-api-key")) {
      query.api_key = *key;
    }
  }
  if (!query.trace) {
    if (const std::string* flag = request.FindHeader("x-modis-trace")) {
      query.trace = *flag == "1" || ToLower(*flag) == "true";
    }
  }
  if (pool != nullptr) {
    // Multi-process mode: the query runs on a worker via the job ring.
    // Re-serialize (not the raw body) so the header-derived members
    // (api_key, trace) travel with the request line.
    std::string line;
    const Status submitted =
        pool->Submit(SerializeDiscoveryRequest(query), &line);
    if (!submitted.ok()) return ResponseFromStatus(submitted);
    auto answered = JsonValue::Parse(line);
    if (answered.ok() && answered->is_object() &&
        !answered->GetBool("ok", false)) {
      // Re-type the worker's error line so the HTTP status mapping
      // (429 for QoS, 400 for bad requests, ...) matches in-process
      // mode.
      return ResponseFromStatus(
          Status(StatusCodeFromName(answered->GetString("code", "Internal")),
                 answered->GetString("error", "worker error")));
    }
    HttpResponse response;
    if (answered.ok() && answered->is_object()) {
      const std::string id = answered->GetString("request_id", "");
      if (!id.empty()) {
        response.headers.emplace_back("X-Modis-Request-Id", id);
      }
    }
    response.body = line + "\n";
    return response;
  }
  auto answer = service->Answer(query);
  if (!answer.ok()) return ResponseFromStatus(answer.status());
  HttpResponse response;
  if (!answer.value().request_id.empty()) {
    response.headers.emplace_back("X-Modis-Request-Id",
                                  answer.value().request_id);
  }
  response.body = SerializeDiscoveryResponse(answer.value()) + "\n";
  return response;
}

}  // namespace

HttpResponse RouteHttpRequest(DiscoveryService* service,
                              const HttpRequest& request) {
  return RouteHttpRequest(service, /*pool=*/nullptr, request);
}

HttpResponse RouteHttpRequest(DiscoveryService* service, WorkerPool* pool,
                              const HttpRequest& request) {
  const std::string path = request.target.substr(0, request.target.find('?'));
  if (path == "/v1/query") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return QueryEndpoint(service, pool, request);
  }
  if (path == "/metrics") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    MetricsSnapshot snapshot = service->SnapshotMetrics();
    if (pool != nullptr) pool->FillMetrics(&snapshot);
    response.body = PrometheusExposition(snapshot);
    return response;
  }
  if (path == "/v1/debug/traces") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    HttpResponse response;
    response.body = SerializeTraceDebug(service->SlowestTraces(),
                                        service->RecentTraces()) +
                    "\n";
    return response;
  }
  if (path == "/healthz") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    HttpResponse response;
    const bool draining = service->metrics()->draining.load();
    if (draining) response.status = 503;
    JsonValue doc{JsonValue::Object{}};
    doc.Set("ok", !draining);
    doc.Set("draining", draining);
    response.body = doc.Dump() + "\n";
    return response;
  }
  return ResponseFromStatus(Status::NotFound(
      "no route for '" + path +
      "' (POST /v1/query, GET /metrics, GET /v1/debug/traces, "
      "GET /healthz)"));
}

}  // namespace modis
