#ifndef MODIS_SERVICE_HTTP_H_
#define MODIS_SERVICE_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "service/metrics.h"

namespace modis {

class DiscoveryService;

/// One parsed HTTP/1.x request. Header names are lowercased at parse time
/// (field names are case-insensitive on the wire); values keep their
/// bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;  // As sent ("GET", "POST", ...); case-sensitive.
  std::string target;  // Origin-form: "/v1/query", "/metrics?x=1", ...
  int version_minor = 1;  // HTTP/1.<minor>; the parser rejects other majors.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to true,
  /// HTTP/1.0 to false; a Connection header overrides either way.
  bool keep_alive = true;

  /// First header named `lower_name` (pass it lowercased), or nullptr.
  const std::string* FindHeader(const std::string& lower_name) const;
};

/// One response, serialized with Content-Length framing (the facade never
/// sends chunked responses: every payload is in memory already).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers ("Retry-After", "Allow", ...); Content-Type,
  /// Content-Length, and Connection are emitted by Serialize().
  std::vector<std::pair<std::string, std::string>> headers;
  /// Close after sending. The transport also forces this when the request
  /// asked for it (or the stream is unrecoverable).
  bool close = false;

  std::string Serialize() const;
};

/// The canonical reason phrase of `status` ("OK", "Too Many Requests");
/// "Error" for codes the facade never emits.
const char* HttpStatusReason(int status);

/// Incremental HTTP/1.1 request parser: feed raw bytes as they arrive,
/// take complete requests out. Supports Content-Length and chunked
/// bodies, keep-alive, and pipelining (bytes beyond one request stay
/// buffered and seed the next). Malformed or over-limit input puts the
/// parser in a sticky error state carrying the HTTP status to answer
/// with before closing — the stream cannot be resynced after a framing
/// error, so one connection dies, never the host.
class HttpParser {
 public:
  struct Limits {
    /// Request line (method + target + version) cap; beyond it → 414.
    size_t max_request_line_bytes;
    /// Total header-section byte cap (trailers included) → 431.
    size_t max_header_bytes;
    size_t max_headers;  // Header-count cap → 431.
    /// Body cap, Content-Length or de-chunked → 413.
    size_t max_body_bytes;

    Limits()
        : max_request_line_bytes(8u << 10),
          max_header_bytes(32u << 10),
          max_headers(100),
          max_body_bytes(1u << 20) {}
  };

  explicit HttpParser(Limits limits = Limits());

  /// Appends bytes and advances the state machine as far as they allow.
  void Feed(const char* data, size_t size);
  void Feed(const std::string& data) { Feed(data.data(), data.size()); }

  /// True when a complete request is ready to take.
  bool has_request() const { return ready_; }
  /// Pops the parsed request and resumes parsing any pipelined bytes
  /// already buffered. Only valid when has_request().
  HttpRequest TakeRequest();

  /// Sticky: true after malformed or over-limit input.
  bool has_error() const { return error_status_ != 0; }
  /// The HTTP status to answer with (400/413/414/431/501/505).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

 private:
  enum class Phase {
    kRequestLine,
    kHeaders,
    kFixedBody,    // Content-Length bytes outstanding.
    kChunkSize,    // Hex size line of the next chunk.
    kChunkData,    // Chunk payload bytes outstanding.
    kChunkDataEnd, // CRLF after a chunk's payload.
    kTrailers,     // After the 0-size chunk, until the blank line.
    kComplete,
    kError,
  };

  void Fail(int status, std::string message);
  /// Extracts one (CR)LF-terminated line into `*line`; false when the
  /// buffer holds no complete line yet (failing with `limit_status` if
  /// the unterminated portion already exceeds `limit`).
  bool TakeLine(size_t limit, int limit_status, const char* what,
                std::string* line);
  void ParseRequestLine(const std::string& line);
  void ParseHeaderLine(const std::string& line);
  void FinishHeaders();
  void Advance();

  Limits limits_;
  std::string buffer_;
  size_t pos_ = 0;
  Phase phase_ = Phase::kRequestLine;
  HttpRequest current_;
  size_t header_bytes_ = 0;
  size_t body_remaining_ = 0;
  size_t body_total_ = 0;
  bool ready_ = false;
  int error_status_ = 0;
  std::string error_message_;
};

/// Transport-level protocol sniffing: what do the first bytes of a
/// connection look like?
enum class ProtocolGuess {
  kNeedMoreBytes,  // Prefix of an HTTP method; keep reading.
  kHttp,           // A known method name followed by a space.
  kLineJson,       // Anything else — the line-delimited JSON dialect.
};

ProtocolGuess SniffProtocol(const std::string& prefix);

/// Renders one metrics snapshot as Prometheus text exposition (version
/// 0.0.4): every ScalarMetricDescriptors() entry as a counter/gauge
/// line, `draining` as a 0/1 gauge, the pow2 latency histograms as
/// `_bucket{le=...}`/`_sum`/`_count` series, and the per-tenant counters
/// as `modis_tenant_*{tenant="..."}` series. Value-for-value parity with
/// SerializeServiceMetrics() over the same snapshot is a tested contract.
std::string PrometheusExposition(const MetricsSnapshot& snapshot);

/// Maps a service Status to the HTTP status the facade answers with
/// (ResourceExhausted → 429, InvalidArgument → 400, NotFound → 404,
/// FailedPrecondition → 503, ...).
int HttpStatusForStatus(const Status& status);

/// A canned JSON error response: {"ok":false,"code":...,"error":...}.
HttpResponse MakeHttpError(int status, const std::string& message);

/// The endpoint router over the service's wire verbs (docs/SERVING.md
/// §6): POST /v1/query (line-JSON request document as the body, X-Api-Key
/// honored when the body names no api_key), GET /metrics (Prometheus
/// exposition), GET /healthz. Unknown paths → 404, wrong methods → 405
/// with Allow. Runs on the connection's thread; thread-safe.
HttpResponse RouteHttpRequest(DiscoveryService* service,
                              const HttpRequest& request);

class WorkerPool;

/// Pool-aware router of the multi-process host (docs/MULTIPROCESS.md):
/// POST /v1/query runs on a worker process via the shared-memory job
/// ring (typed ring errors keep their HTTP mapping — a full ring is
/// still a 429), GET /metrics overlays the pool + ring series. A null
/// `pool` is exactly the in-process router above.
HttpResponse RouteHttpRequest(DiscoveryService* service, WorkerPool* pool,
                              const HttpRequest& request);

}  // namespace modis

#endif  // MODIS_SERVICE_HTTP_H_
