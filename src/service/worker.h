#ifndef MODIS_SERVICE_WORKER_H_
#define MODIS_SERVICE_WORKER_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/discovery_service.h"
#include "service/metrics.h"
#include "service/shm_ring.h"

namespace modis {

/// Options of one worker process's drain loop (docs/MULTIPROCESS.md).
struct WorkerOptions {
  /// Segment file of the coordinator's job ring.
  std::string ring_path;
  /// This worker's slot in the pool (< ShmRing::kMaxWorkers).
  uint32_t worker_index = 0;
  /// NextJob poll granularity; bounds shutdown latency.
  int poll_ms = 200;
  /// Kill-injection point for the crash battery: "" (never), "claimed"
  /// (right after NextJob), "mid_train" / "pre_commit" (when the engine
  /// opens its "train" / "commit" span, via the global span observer),
  /// or "mid_response" (inside Complete() while holding the ring mutex
  /// — the robust-mutex owner-death case).
  std::string crash_at;
};

/// Drains the ring until stop is requested: claim a job, answer it
/// through the service's wire dispatcher (HandleServiceLine), publish
/// the response line. Runs in a worker process whose DiscoveryService
/// was built with Options::shared_cache so the pool shares one cache
/// file. Returns OK on a clean stop.
Status RunWorkerLoop(DiscoveryService* service, const WorkerOptions& options);

/// Coordinator-side supervisor of N worker processes over one job ring:
/// creates the segment, spawns the workers through a caller-provided
/// exec function, reaps them (waitpid), respawns with backoff, and on
/// every death advances the dead worker's liveness generation and
/// reclaims its orphaned jobs (requeue or poison — see ShmRing).
class WorkerPool {
 public:
  /// Spawns the worker process for slot `worker`; returns its pid, or
  /// -1 on failure (retried after the respawn backoff). Implementations
  /// fork+exec the current binary with `--worker-attach` flags — never
  /// a bare fork: the coordinator is multi-threaded by the time a
  /// respawn happens.
  using SpawnFn = std::function<pid_t(uint32_t worker)>;

  struct Options {
    uint32_t workers = 1;
    std::string ring_path;
    ShmRing::Options ring;
    /// Respawn backoff: base delay, doubled while a worker keeps dying
    /// within `stable_ms` of its spawn, capped at `respawn_max_ms`.
    int respawn_ms = 200;
    int respawn_max_ms = 5000;
    int stable_ms = 5000;
    /// Await bound per job; generous — poison (max_attempts crashed
    /// claims) resolves a stuck job well before this fires.
    int job_timeout_ms = 120000;
    SpawnFn spawn;
  };

  struct WorkerState {
    uint32_t index = 0;
    pid_t pid = -1;
    bool alive = false;
    uint64_t restarts = 0;
  };

  static Status Start(const Options& options, std::unique_ptr<WorkerPool>* out);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Installs one request line and blocks for its response line. The
  /// typed ring errors pass through: ResourceExhausted when the ring is
  /// full, OutOfRange for an oversized line, Internal for a poisoned
  /// job.
  Status Submit(const std::string& request_line, std::string* response_line);

  /// Stops the ring, terminates the workers (SIGTERM, then SIGKILL
  /// after a grace period), joins the supervisor. Idempotent.
  void Stop();

  ShmRing* ring() { return ring_.get(); }
  std::vector<WorkerState> SnapshotWorkers() const;
  uint64_t restarts_total() const;

  /// Overlays the pool + ring series onto a service metrics snapshot
  /// (worker_*, ring_*, and the per-worker `workers` array).
  void FillMetrics(MetricsSnapshot* snapshot) const;

 private:
  WorkerPool() = default;
  void SupervisorLoop();

  Options options_;
  std::unique_ptr<ShmRing> ring_;
  std::thread supervisor_;
  mutable std::mutex mu_;
  bool stopping_ = false;
  uint64_t restarts_total_ = 0;
  struct Slot {
    pid_t pid = -1;
    bool alive = false;
    uint64_t restarts = 0;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point spawned_at;
    std::chrono::steady_clock::time_point respawn_at;
  };
  std::vector<Slot> slots_;
};

}  // namespace modis

#endif  // MODIS_SERVICE_WORKER_H_
