#ifndef MODIS_CORE_CONFIG_H_
#define MODIS_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace modis {

/// How a running uses the cross-run persistent record cache
/// (src/storage/persistent_record_cache.h; docs/PERSISTENCE.md).
enum class CacheMode : uint8_t {
  kOff,       // Never opened, even when a path is configured.
  kRead,      // Serve hits; never write new records.
  kReadWrite  // Serve hits and append every new exact valuation.
};

/// THE parser of the user-facing cache-mode spelling ("off" | "read" |
/// "read_write"), shared by the bench flags, the CLI, the server, and
/// the wire protocol so the accepted vocabulary can never drift.
inline Result<CacheMode> ParseCacheMode(const std::string& mode) {
  if (mode == "off") return CacheMode::kOff;
  if (mode == "read") return CacheMode::kRead;
  if (mode == "read_write") return CacheMode::kReadWrite;
  return Status::InvalidArgument("unknown cache mode '" + mode +
                                 "' (off | read | read_write)");
}

/// Knobs of one MODis running. The three published algorithms are feature
/// combinations of the same engine:
///   ApxMODis   — reduce-from-universal only;
///   NOBiMODis  — + bidirectional frontiers;
///   BiMODis    — + correlation-based pruning;
///   DivMODis   — bidirectional + per-level diversification.
struct ModisConfig {
  /// Approximation slack of the ε-skyline (§5.1).
  double epsilon = 0.2;
  /// N: the valuation budget of the (N, ε)-approximation.
  size_t max_states = 300;
  /// maxl: maximum path length (levels of the level-wise search, Exp-2).
  int max_level = 6;

  bool bidirectional = false;
  bool correlation_pruning = false;

  bool diversify = false;
  /// k: size cap of the diversified skyline set.
  size_t diversify_k = 5;
  /// α of Equation (2): content diversity vs performance diversity.
  double alpha = 0.5;

  /// θ: Spearman threshold of the correlation graph G_C.
  double theta = 0.8;
  /// Minimum valuated tests before pruning may fire.
  size_t min_records_for_pruning = 8;

  /// Decisive measure index; SIZE_MAX means the last measure in P.
  size_t decisive_measure = SIZE_MAX;

  /// Worker threads for the batched exact valuations of a frontier level:
  /// 0 picks the hardware concurrency, 1 runs serially on the caller
  /// thread. The search result is identical for every setting — the batch
  /// plan and its commit order are fixed on the caller thread — except for
  /// wall-clock-derived measures (e.g. "train_time"), which always carry
  /// scheduling noise.
  size_t num_threads = 0;

  /// Capacity (entries) of the engine's LRU materialization cache; along
  /// one-flip edges children derive their dataset from a cached parent
  /// instead of rescanning D_U. 0 disables incremental materialization.
  size_t table_cache_entries = 64;

  /// Path of the cross-run persistent valuation-record log. Empty (the
  /// default) disables persistence. When set, the engine opens the log,
  /// serves previously recorded evaluations before any exact training,
  /// and (in kReadWrite mode) appends every new exact valuation after
  /// each batch commit. Records are scoped by a dataset/task fingerprint
  /// (schema + cell content + unit layout + measure set), so one file
  /// can be shared across tasks and config sweeps. The computed skyline
  /// is identical
  /// with the cache off, cold, or warm — a served record replays exactly
  /// what the training that produced it returned.
  std::string record_cache_path;
  CacheMode cache_mode = CacheMode::kReadWrite;
  /// Byte budget of the record-cache log file; 0 = unbounded. When a
  /// batch-commit flush leaves the log over this bound, least-recently-
  /// hit fingerprints (then records) are evicted and the log is compacted
  /// back under it — the knob that keeps a production cache from growing
  /// without limit.
  uint64_t record_cache_max_bytes = 0;
  /// Page size of the paged record-cache engine. 0 (the default) keeps
  /// the v1 append-only log for new cache files; a nonzero value (a
  /// multiple of 512 in [512, 1 MiB], typically 4096) opts into the
  /// page-based engine — bounded-memory point lookups behind a buffer
  /// pool — and migrates an existing v1 file once when opened read-write.
  /// An existing paged file is always served paged, whatever this says.
  uint32_t record_cache_page_size = 0;
  /// Frame budget of the paged engine's buffer pool; 0 = 64 frames. The
  /// cache never holds more than this many pages in memory.
  size_t record_cache_buffer_frames = 0;
  /// Extra fingerprint salt. The fingerprint cannot see the task's model
  /// prototype (the engine only sees the evaluator interface), so two
  /// tasks that differ *only* in the trained model must be disambiguated
  /// here to avoid serving each other's records.
  std::string record_cache_namespace;

  uint64_t seed = 1;

  static ModisConfig Apx() { return ModisConfig{}; }
  static ModisConfig NoBi() {
    ModisConfig c;
    c.bidirectional = true;
    return c;
  }
  static ModisConfig Bi() {
    ModisConfig c;
    c.bidirectional = true;
    c.correlation_pruning = true;
    return c;
  }
  static ModisConfig Div() {
    ModisConfig c;
    c.bidirectional = true;
    c.diversify = true;
    return c;
  }
};

}  // namespace modis

#endif  // MODIS_CORE_CONFIG_H_
