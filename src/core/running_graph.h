#ifndef MODIS_CORE_RUNNING_GRAPH_H_
#define MODIS_CORE_RUNNING_GRAPH_H_

#include <string>
#include <vector>

#include "core/state.h"
#include "estimator/oracle.h"

namespace modis {

/// The running graph G_T of a MODis execution (§3): valuated states as
/// nodes, one-operator transitions as edges. Reconstructed post-hoc from
/// the test-record store — two state signatures at Hamming distance 1 are
/// connected by the transition that flips their differing unit, directed
/// from the larger bitmap to the smaller (Reduct) or annotated as Augment
/// otherwise.
struct RunningGraph {
  struct Node {
    std::string signature;
    std::vector<double> normalized;  // Performance vector.
    size_t popcount = 0;
  };
  struct Transition {
    size_t from = 0;  // Node indices.
    size_t to = 0;
    size_t unit = 0;      // Flipped bitmap unit.
    bool reduct = true;   // false = Augment direction.
  };

  std::vector<Node> nodes;
  std::vector<Transition> transitions;
};

/// Builds the running graph from all valuated tests in `store`. Quadratic
/// in the number of records (fine for the N-bounded searches).
RunningGraph ReconstructRunningGraph(const TestRecordStore& store);

/// Graphviz DOT rendering: nodes labelled with popcount and the first
/// measure's value; Reduct edges solid, Augment edges dashed. Skyline
/// signatures (if given) are highlighted.
std::string RunningGraphToDot(const RunningGraph& graph,
                              const std::vector<std::string>&
                                  skyline_signatures = {});

}  // namespace modis

#endif  // MODIS_CORE_RUNNING_GRAPH_H_
