#include "core/row_mask.h"

#include "common/logging.h"

namespace modis {

RowMask::RowMask(size_t num_rows, bool fill) : num_rows_(num_rows) {
  words_.assign((num_rows + 63) >> 6, fill ? ~uint64_t{0} : uint64_t{0});
  if (fill && (num_rows & 63) != 0) {
    words_.back() = (uint64_t{1} << (num_rows & 63)) - 1;
  }
}

size_t RowMask::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) {
    n += static_cast<size_t>(__builtin_popcountll(w));
  }
  return n;
}

void RowMask::AndWith(const RowMask& other) {
  MODIS_CHECK(num_rows_ == other.num_rows_) << "row mask universe mismatch";
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void RowMask::AndNotWith(const RowMask& other) {
  MODIS_CHECK(num_rows_ == other.num_rows_) << "row mask universe mismatch";
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
}

void RowMask::OrWith(const RowMask& other) {
  MODIS_CHECK(num_rows_ == other.num_rows_) << "row mask universe mismatch";
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

std::vector<uint32_t> RowMask::ToRowIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(Count());
  ForEachSet([&ids](uint32_t r) { ids.push_back(r); });
  return ids;
}

}  // namespace modis
