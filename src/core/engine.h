#ifndef MODIS_CORE_ENGINE_H_
#define MODIS_CORE_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/config.h"
#include "core/universe.h"
#include "estimator/oracle.h"
#include "moo/correlation.h"
#include "storage/persistent_record_cache.h"

namespace modis {

/// One member of a computed skyline set: the state, its valuated (possibly
/// estimated) evaluation, and bookkeeping for reporting.
struct SkylineEntry {
  StateBitmap state;
  Evaluation eval;
  int level = 0;
  size_t rows = 0;
  size_t cols = 0;
};

/// Outcome of a MODis running.
struct ModisResult {
  std::vector<SkylineEntry> skyline;
  size_t valuated_states = 0;
  size_t generated_states = 0;
  size_t pruned_states = 0;
  /// Times a row count or feature vector was served from a cached
  /// materialization's row mask (popcount) instead of recomputing the
  /// surviving set.
  size_t mask_fast_path_hits = 0;
  double seconds = 0.0;
  PerformanceOracle::Stats oracle_stats;
  /// True when a persistent record cache was actually open during the
  /// run (configured, and the log opened cleanly).
  bool record_cache_active = false;
  /// Session counters of the cross-run record cache (all zero when
  /// persistence is off or the open failed): records loaded at open,
  /// hits served, appends.
  PersistentRecordCache::Stats record_cache_stats;
};

/// Externally owned execution resources a re-entrant engine may run on.
/// The long-lived discovery service (src/service/) constructs one engine
/// per query but shares one worker pool and one open record cache across
/// all of them; a default-constructed runtime reproduces the standalone
/// behavior (engine owns a pool sized by ModisConfig::num_threads and
/// opens its own cache from ModisConfig::record_cache_path).
struct EngineRuntime {
  /// Worker pool for batched exact trainings (and surrogate prediction
  /// fan-out). Not owned; must outlive the engine. Null → self-owned.
  ThreadPool* pool = nullptr;
  /// An already-open (possibly multi-task, thread-safe) record cache.
  /// Not owned; must outlive the engine. The engine scopes all access by
  /// its own TaskFingerprint and honors ModisConfig::cache_mode — kRead
  /// serves hits without appending, kOff ignores the cache entirely.
  /// Null → self-opened from ModisConfig::record_cache_path.
  PersistentRecordCache* record_cache = nullptr;
  /// A cross-query exact-training fuser shared by every engine the host
  /// constructs. Not owned; must outlive the engine. The engine scopes it
  /// by its own TaskFingerprint, so only queries over identical data,
  /// layout, measures, and model identity ever share a training. Null →
  /// no fusion (standalone behavior).
  TrainingFuser* fuser = nullptr;
  /// Per-query span recorder (owned by the caller; must outlive the
  /// engine). When set, the engine records level/batch spans under
  /// `trace_parent` and propagates the context into the oracle, so one
  /// query yields a complete span tree. Null → no tracing. Recording
  /// never consumes randomness or reorders valuation, so a traced run is
  /// byte-identical to an untraced one.
  TraceRecorder* trace = nullptr;
  /// Parent span (the caller's "run" span) for the engine's spans.
  SpanId trace_parent = kNoSpan;
};

/// The multi-goal finite-state-transducer search engine (§3-§5).
///
/// Simulates a running of the data generator T: starting from the
/// universal state (and, bidirectionally, from the BackSt seed), it
/// level-wise spawns one-flip transitions (OpGen), valuates each spawned
/// state through the performance oracle, and maintains an ε-skyline via
/// the grid positions of Equation (1) (UPareto). Optional correlation-based
/// pruning (Lemma 4) and per-level diversification (Algorithm 3).
///
/// Valuation is level-batched: ExpandLevel first collects, dedups, and
/// prune-filters every one-flip child of the frontier level, then issues
/// the survivors as one oracle batch (PrepareBatch / ValuateBatch). Exact
/// model trainings of the batch fan out over a ThreadPool sized by
/// ModisConfig::num_threads; plan and commit stay on the caller thread in
/// a fixed order, so the computed skyline does not depend on the thread
/// count. Children materialize incrementally from their parent's cached
/// materialization (SearchUniverse::MaterializeFrom) instead of rescanning
/// D_U.
class ModisEngine {
 public:
  /// Does not own `universe` or `oracle`; both must outlive the engine.
  ModisEngine(const SearchUniverse* universe, PerformanceOracle* oracle,
              ModisConfig config);

  /// Re-entrant construction over externally owned resources (see
  /// EngineRuntime). A default runtime is identical to the 3-arg ctor.
  ModisEngine(const SearchUniverse* universe, PerformanceOracle* oracle,
              ModisConfig config, EngineRuntime runtime);

  /// Detaches the persistent record cache from the oracle (a self-owned
  /// cache dies with the engine; a shared one merely outlives the
  /// attachment).
  ~ModisEngine();

  /// Runs the search to completion and returns the skyline set.
  Result<ModisResult> Run();

  /// The dataset/task fingerprint scoping this running's persistent
  /// records: a stable hash of the universal table's schema, size, and
  /// full cell content, the unit layout (attributes, cluster literals,
  /// protections), the measure set, the task model's identity string
  /// (TaskEvaluator::ModelIdentity, via the oracle), and
  /// ModisConfig::record_cache_namespace. Exposed for tests and tooling
  /// that want to inspect a shared cache file.
  static uint64_t TaskFingerprint(const SearchUniverse& universe,
                                  const std::vector<MeasureSpec>& measures,
                                  const std::string& cache_namespace,
                                  const std::string& model_identity = "");

 private:
  struct Frontier {
    struct Entry {
      StateBitmap state;
      int level = 0;
      /// Worst bound-violation ratio max_j p_j/p_u_j of the valuated
      /// state; lower expands first within a level (the paper's
      /// "prioritize valuation towards the user-defined bounds"
      /// shortest-path extension, §5.2).
      double priority = 1.0;
    };
    std::deque<Entry> queue;
    bool forward = true;  // Forward flips 1->0 (Reduct); backward 0->1.
  };

  /// One batch-pending state: a collected child (or seed) awaiting
  /// valuation.
  struct BatchItem {
    StateBitmap state;
    std::string signature;
    /// Signature of the parent whose cached materialization the child
    /// derives from; empty for seed states.
    std::string parent_signature;
    /// The child's own level (parent level + 1; 0 for seeds).
    int level = 0;
  };

  /// One-flip children of `state` in the frontier's direction. Cluster
  /// units are only actionable when their attribute is included.
  std::vector<StateBitmap> OpGen(const StateBitmap& state, bool forward) const;

  /// Expands every state parked at `level` in the frontier, best
  /// decisive-priority first: collects all one-flip children (deduped,
  /// prune-filtered, capped at the remaining valuation budget), then
  /// valuates them as one oracle batch.
  void ExpandLevel(Frontier* frontier, int level);

  /// Dedups/prunes one candidate state; appends a BatchItem to `batch`
  /// when the state must be valuated. Shared by seeds and ExpandLevel.
  void CollectState(const StateBitmap& state, std::string parent_signature,
                    int level, Frontier* frontier,
                    std::vector<BatchItem>* batch);

  /// Issues `items` as one oracle batch and folds the results — skyline
  /// updates, frontier enqueues, failed-state handling — in item order.
  /// `trace_scope` parents the batch span (a level span inside
  /// ExpandLevel; the runtime's parent for seed batches).
  void ValuateBatch(std::vector<BatchItem> items, Frontier* frontier,
                    SpanId trace_scope);

  /// The UPareto grid update (Fig. 3 lines 20-30). `signature` keys the
  /// materialization cache so the entry's row count can be a popcount of
  /// the cached mask.
  void UPareto(const StateBitmap& state, const std::string& signature,
               const Evaluation& eval, int level);

  /// Correlation-based pruning (Lemma 4): true when the optimistic
  /// parameterized bounds of `state` are already ε-dominated by a skyline
  /// member.
  bool CanPrune(const StateBitmap& state);

  /// Derives the parameterized range [p̂l, p̂u] per measure for an
  /// un-valuated state from size-correlated valuated tests (Example 6);
  /// empty when no inference is possible.
  std::vector<std::pair<double, double>> ParameterizedRange(
      const StateBitmap& state);

  /// Applies Algorithm 3 at the end of a level: keeps a diversified
  /// k-subset of the current skyline.
  void DiversifyLevel();

  /// Rebuilds the grid map from `entries_` (after diversification).
  void RebuildGrid();

  /// Refreshes the correlation graph from the oracle's record store.
  void RefreshCorrelation();

  const SearchUniverse* universe_;
  PerformanceOracle* oracle_;
  ModisConfig config_;
  Rng rng_;

  /// Workers for the exact trainings of a batch; null when the effective
  /// thread count is 1 (fully serial running) or an external pool is in
  /// use.
  std::unique_ptr<ThreadPool> pool_;
  /// Externally owned pool (EngineRuntime::pool); wins over pool_.
  ThreadPool* extern_pool_ = nullptr;
  /// LRU of recent materializations, shared by both frontiers; lets
  /// children materialize incrementally from their parent.
  MaterializationCache mat_cache_;
  /// Cross-run persistent record cache (ModisConfig::record_cache_path);
  /// null when persistence is off or the log failed to open. Attached to
  /// the oracle for the engine's lifetime.
  std::unique_ptr<PersistentRecordCache> record_cache_;
  /// Externally owned shared cache (EngineRuntime::record_cache); wins
  /// over record_cache_.
  PersistentRecordCache* extern_cache_ = nullptr;
  /// Externally owned cross-query training fuser (EngineRuntime::fuser);
  /// attached to the oracle under this engine's TaskFingerprint.
  TrainingFuser* fuser_ = nullptr;
  /// Per-query span recorder (EngineRuntime::trace); null disables
  /// tracing.
  TraceRecorder* trace_ = nullptr;
  /// Parent span for level/flush spans (EngineRuntime::trace_parent).
  SpanId trace_parent_ = kNoSpan;

  /// The pool batched valuations fan out over (external or owned).
  ThreadPool* EffectivePool() const {
    return extern_pool_ != nullptr ? extern_pool_ : pool_.get();
  }
  /// The cache attached to the oracle for this running (external or
  /// owned); null when persistence is inactive.
  PersistentRecordCache* ActiveCache() const {
    return extern_cache_ != nullptr ? extern_cache_ : record_cache_.get();
  }

  size_t decisive_ = 0;
  std::vector<double> lower_bounds_;
  std::vector<double> upper_bounds_;

  // Grid position -> index into entries_. Entries removed by replacement
  // are tombstoned (index kMissing).
  std::map<std::vector<int64_t>, size_t> grid_;
  std::vector<SkylineEntry> entries_;
  std::vector<bool> entry_alive_;

  std::unordered_set<std::string> visited_forward_;
  std::unordered_set<std::string> visited_backward_;
  bool frontiers_met_ = false;

  CorrelationGraph correlation_;
  // Spearman correlation of each measure against the row fraction,
  // refreshed together with correlation_.
  std::vector<double> size_correlation_;

  ModisResult stats_;
};

}  // namespace modis

#endif  // MODIS_CORE_ENGINE_H_
