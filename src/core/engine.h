#ifndef MODIS_CORE_ENGINE_H_
#define MODIS_CORE_ENGINE_H_

#include <deque>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/universe.h"
#include "estimator/oracle.h"
#include "moo/correlation.h"

namespace modis {

/// One member of a computed skyline set: the state, its valuated (possibly
/// estimated) evaluation, and bookkeeping for reporting.
struct SkylineEntry {
  StateBitmap state;
  Evaluation eval;
  int level = 0;
  size_t rows = 0;
  size_t cols = 0;
};

/// Outcome of a MODis running.
struct ModisResult {
  std::vector<SkylineEntry> skyline;
  size_t valuated_states = 0;
  size_t generated_states = 0;
  size_t pruned_states = 0;
  double seconds = 0.0;
  PerformanceOracle::Stats oracle_stats;
};

/// The multi-goal finite-state-transducer search engine (§3-§5).
///
/// Simulates a running of the data generator T: starting from the
/// universal state (and, bidirectionally, from the BackSt seed), it
/// level-wise spawns one-flip transitions (OpGen), valuates each spawned
/// state through the performance oracle, and maintains an ε-skyline via
/// the grid positions of Equation (1) (UPareto). Optional correlation-based
/// pruning (Lemma 4) and per-level diversification (Algorithm 3).
class ModisEngine {
 public:
  /// Does not own `universe` or `oracle`; both must outlive the engine.
  ModisEngine(const SearchUniverse* universe, PerformanceOracle* oracle,
              ModisConfig config);

  /// Runs the search to completion and returns the skyline set.
  Result<ModisResult> Run();

 private:
  struct Frontier {
    struct Entry {
      StateBitmap state;
      int level = 0;
      /// Worst bound-violation ratio max_j p_j/p_u_j of the valuated
      /// state; lower expands first within a level (the paper's
      /// "prioritize valuation towards the user-defined bounds"
      /// shortest-path extension, §5.2).
      double priority = 1.0;
    };
    std::deque<Entry> queue;
    bool forward = true;  // Forward flips 1->0 (Reduct); backward 0->1.
  };

  /// One-flip children of `state` in the frontier's direction. Cluster
  /// units are only actionable when their attribute is included.
  std::vector<StateBitmap> OpGen(const StateBitmap& state, bool forward) const;

  /// Valuates `state` and updates the skyline grid; enqueues into
  /// `frontier` when the state stays expandable. Returns false when the
  /// valuation budget is exhausted.
  bool ProcessState(const StateBitmap& state, int level, Frontier* frontier);

  /// The UPareto grid update (Fig. 3 lines 20-30).
  void UPareto(const StateBitmap& state, const Evaluation& eval, int level);

  /// Correlation-based pruning (Lemma 4): true when the optimistic
  /// parameterized bounds of `state` are already ε-dominated by a skyline
  /// member.
  bool CanPrune(const StateBitmap& state);

  /// Derives the parameterized range [p̂l, p̂u] per measure for an
  /// un-valuated state from size-correlated valuated tests (Example 6);
  /// empty when no inference is possible.
  std::vector<std::pair<double, double>> ParameterizedRange(
      const StateBitmap& state);

  /// Applies Algorithm 3 at the end of a level: keeps a diversified
  /// k-subset of the current skyline.
  void DiversifyLevel();

  /// Rebuilds the grid map from `entries_` (after diversification).
  void RebuildGrid();

  /// Refreshes the correlation graph from the oracle's record store.
  void RefreshCorrelation();

  const SearchUniverse* universe_;
  PerformanceOracle* oracle_;
  ModisConfig config_;
  Rng rng_;

  size_t decisive_ = 0;
  std::vector<double> lower_bounds_;
  std::vector<double> upper_bounds_;

  // Grid position -> index into entries_. Entries removed by replacement
  // are tombstoned (index kMissing).
  std::map<std::vector<int64_t>, size_t> grid_;
  std::vector<SkylineEntry> entries_;
  std::vector<bool> entry_alive_;

  std::unordered_set<std::string> visited_forward_;
  std::unordered_set<std::string> visited_backward_;
  bool frontiers_met_ = false;

  CorrelationGraph correlation_;
  // Spearman correlation of each measure against the row fraction,
  // refreshed together with correlation_.
  std::vector<double> size_correlation_;

  ModisResult stats_;
};

}  // namespace modis

#endif  // MODIS_CORE_ENGINE_H_
