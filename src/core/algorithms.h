#ifndef MODIS_CORE_ALGORITHMS_H_
#define MODIS_CORE_ALGORITHMS_H_

#include <string>

#include "core/engine.h"

namespace modis {

/// Sets the strategy flags of `config` for a variant named "apx",
/// "nobi", "bi", or "div" — THE mapping between variant names and
/// engine configuration. The Run* entry points below and the discovery
/// service both resolve variants through this, so a served query and a
/// batch run of the same request can never diverge.
Status ApplyVariantFlags(const std::string& variant, ModisConfig* config);

/// The four published MODis algorithms, as configurations of ModisEngine.
/// Each takes the shared search universe, a performance oracle, and the
/// base config (epsilon / budget / maxl are read from it; the strategy
/// flags are overridden).

/// §5.2 ApxMODis: reduce-from-universal (N, ε)-approximation.
Result<ModisResult> RunApxModis(const SearchUniverse& universe,
                                PerformanceOracle* oracle, ModisConfig config);

/// §5.3 BiMODis: bidirectional search + correlation-based pruning.
Result<ModisResult> RunBiModis(const SearchUniverse& universe,
                               PerformanceOracle* oracle, ModisConfig config);

/// NOBiMODis: BiMODis without the pruning (the paper's ablation).
Result<ModisResult> RunNoBiModis(const SearchUniverse& universe,
                                 PerformanceOracle* oracle,
                                 ModisConfig config);

/// §5.4 DivMODis: bidirectional search + per-level diversification.
Result<ModisResult> RunDivModis(const SearchUniverse& universe,
                                PerformanceOracle* oracle, ModisConfig config);

/// Exhaustive baseline for small instances: valuates every reachable state
/// within (max_level, max_states) and returns the exact skyline via the
/// Pareto filter (the fixed-parameter-tractable algorithm of Theorem 1,
/// with Kung's optimizer). Used by tests to check ε-cover guarantees.
Result<ModisResult> RunExactSkyline(const SearchUniverse& universe,
                                    PerformanceOracle* oracle,
                                    ModisConfig config);

}  // namespace modis

#endif  // MODIS_CORE_ALGORITHMS_H_
