#include "core/running_graph.h"

#include <unordered_set>

#include "common/strings.h"

namespace modis {

namespace {

/// Index of the single differing character, or -1 when the Hamming
/// distance is not exactly 1.
int SingleFlipUnit(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return -1;
  int unit = -1;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (unit >= 0) return -1;  // Second difference.
    unit = static_cast<int>(i);
  }
  return unit;
}

}  // namespace

RunningGraph ReconstructRunningGraph(const TestRecordStore& store) {
  RunningGraph graph;
  for (const auto& record : store.records()) {
    RunningGraph::Node node;
    node.signature = record.key;
    node.normalized = record.eval.normalized;
    for (char c : record.key) node.popcount += (c == '1');
    graph.nodes.push_back(std::move(node));
  }
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    for (size_t j = i + 1; j < graph.nodes.size(); ++j) {
      const int unit =
          SingleFlipUnit(graph.nodes[i].signature, graph.nodes[j].signature);
      if (unit < 0) continue;
      // Direct from the denser state to the sparser one (Reduct); the
      // reverse direction is an Augment.
      const bool i_denser = graph.nodes[i].popcount > graph.nodes[j].popcount;
      RunningGraph::Transition t;
      t.from = i_denser ? i : j;
      t.to = i_denser ? j : i;
      t.unit = static_cast<size_t>(unit);
      t.reduct = true;
      graph.transitions.push_back(t);
    }
  }
  return graph;
}

std::string RunningGraphToDot(
    const RunningGraph& graph,
    const std::vector<std::string>& skyline_signatures) {
  std::unordered_set<std::string> skyline(skyline_signatures.begin(),
                                          skyline_signatures.end());
  std::string dot = "digraph running_graph {\n  rankdir=TB;\n";
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    const auto& n = graph.nodes[i];
    dot += "  n" + std::to_string(i) + " [label=\"|L|=" +
           std::to_string(n.popcount);
    if (!n.normalized.empty()) {
      dot += " p0=" + FormatDouble(n.normalized[0], 3);
    }
    dot += "\"";
    if (skyline.count(n.signature) > 0) {
      dot += ", style=filled, fillcolor=lightblue";
    }
    dot += "];\n";
  }
  for (const auto& t : graph.transitions) {
    dot += "  n" + std::to_string(t.from) + " -> n" + std::to_string(t.to) +
           " [label=\"u" + std::to_string(t.unit) + "\"" +
           (t.reduct ? "" : ", style=dashed") + "];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace modis
