#include "core/algorithms.h"

#include <deque>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "moo/pareto.h"

namespace modis {

Status ApplyVariantFlags(const std::string& variant, ModisConfig* config) {
  if (variant == "apx") {
    config->bidirectional = false;
    config->correlation_pruning = false;
    config->diversify = false;
  } else if (variant == "nobi") {
    config->bidirectional = true;
    config->correlation_pruning = false;
    config->diversify = false;
  } else if (variant == "bi") {
    config->bidirectional = true;
    config->correlation_pruning = true;
    config->diversify = false;
  } else if (variant == "div") {
    config->bidirectional = true;
    config->correlation_pruning = false;
    config->diversify = true;
  } else {
    return Status::InvalidArgument("unknown variant '" + variant +
                                   "' (apx | nobi | bi | div)");
  }
  return Status::OK();
}

namespace {

Result<ModisResult> RunVariant(const char* variant,
                               const SearchUniverse& universe,
                               PerformanceOracle* oracle,
                               ModisConfig config) {
  MODIS_RETURN_IF_ERROR(ApplyVariantFlags(variant, &config));
  return ModisEngine(&universe, oracle, config).Run();
}

}  // namespace

Result<ModisResult> RunApxModis(const SearchUniverse& universe,
                                PerformanceOracle* oracle,
                                ModisConfig config) {
  return RunVariant("apx", universe, oracle, std::move(config));
}

Result<ModisResult> RunBiModis(const SearchUniverse& universe,
                               PerformanceOracle* oracle, ModisConfig config) {
  return RunVariant("bi", universe, oracle, std::move(config));
}

Result<ModisResult> RunNoBiModis(const SearchUniverse& universe,
                                 PerformanceOracle* oracle,
                                 ModisConfig config) {
  return RunVariant("nobi", universe, oracle, std::move(config));
}

Result<ModisResult> RunDivModis(const SearchUniverse& universe,
                                PerformanceOracle* oracle,
                                ModisConfig config) {
  return RunVariant("div", universe, oracle, std::move(config));
}

Result<ModisResult> RunExactSkyline(const SearchUniverse& universe,
                                    PerformanceOracle* oracle,
                                    ModisConfig config) {
  WallTimer timer;
  ModisResult result;

  std::deque<std::pair<StateBitmap, int>> queue;
  std::unordered_set<std::string> visited;
  std::vector<SkylineEntry> valuated;
  // Materializations cached by signature so the post-valuation row count
  // is a popcount of the cached mask, not a second D_U pass.
  MaterializationCache mats(config.table_cache_entries);

  const UnitLayout& layout = universe.layout();
  queue.emplace_back(universe.FullBitmap(), 0);
  visited.insert(universe.FullBitmap().Signature());

  while (!queue.empty() && result.valuated_states < config.max_states) {
    auto [state, level] = queue.front();
    queue.pop_front();
    ++result.generated_states;

    const std::string sig = state.Signature();
    Result<Evaluation> eval = oracle->Valuate(
        sig, universe.StateFeatures(state),
        [&universe, &state, &mats, &sig]() {
          if (MaterializationPtr hit = mats.Get(sig)) return hit->table;
          MaterializationPtr m = universe.MaterializeRecord(state);
          mats.Put(sig, m);
          return m->table;
        });
    ++result.valuated_states;
    bool expandable = level < config.max_level;
    if (eval.ok()) {
      SkylineEntry entry;
      entry.state = state;
      entry.eval = eval.value();
      entry.level = level;
      if (MaterializationPtr hit = mats.Get(sig)) {
        entry.rows = hit->mask.Count();
        ++result.mask_fast_path_hits;
      } else {
        entry.rows = universe.CountRows(state);
      }
      for (size_t a = 0; a < layout.num_attributes(); ++a) {
        if (state.Get(a)) ++entry.cols;
      }
      // Enforce the user-defined tolerances p_u, as in UPareto: states out
      // of bounds stay expandable but never enter the skyline.
      const auto upper = UpperBounds(oracle->measures());
      bool in_bounds = true;
      for (size_t j = 0; j < upper.size(); ++j) {
        if (entry.eval.normalized[j] > upper[j] + 1e-12) in_bounds = false;
      }
      if (in_bounds) valuated.push_back(std::move(entry));
    } else {
      expandable = false;  // Reduction only shrinks further.
    }

    if (!expandable) continue;
    for (size_t u = 0; u < layout.num_units(); ++u) {
      if (!state.Get(u)) continue;
      if (layout.IsAttributeUnit(u)) {
        if (!layout.attr_flippable[u]) continue;
      } else if (!state.Get(layout.cluster(u).attr_index)) {
        continue;
      }
      StateBitmap child = state.WithFlipped(u);
      if (visited.insert(child.Signature()).second) {
        queue.emplace_back(std::move(child), level + 1);
      }
    }
  }

  std::vector<PerfVector> perfs;
  perfs.reserve(valuated.size());
  for (const auto& e : valuated) perfs.push_back(e.eval.normalized);
  for (size_t idx : ParetoFrontKung(perfs)) {
    result.skyline.push_back(valuated[idx]);
  }
  result.seconds = timer.Seconds();
  result.oracle_stats = oracle->stats();
  return result;
}

}  // namespace modis
