#ifndef MODIS_CORE_ROW_MASK_H_
#define MODIS_CORE_ROW_MASK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace modis {

/// A packed bitset over universal-row ids. Bit r set means row r of D_U
/// survives. All word-level operations keep the invariant that bits beyond
/// `num_rows()` in the last word are zero, so Count() and operator== never
/// see tail garbage even when the row count is not a multiple of 64.
class RowMask {
 public:
  RowMask() = default;
  RowMask(size_t num_rows, bool fill);

  size_t num_rows() const { return num_rows_; }
  size_t num_words() const { return words_.size(); }

  bool Get(size_t r) const { return (words_[r >> 6] >> (r & 63)) & 1; }

  void Set(size_t r, bool value) {
    const uint64_t bit = uint64_t{1} << (r & 63);
    if (value) {
      words_[r >> 6] |= bit;
    } else {
      words_[r >> 6] &= ~bit;
    }
  }

  /// Population count over all words — the row count of the denoted set.
  size_t Count() const;

  /// this &= other. Both masks must span the same universe.
  void AndWith(const RowMask& other);

  /// this &= ~other (remove other's rows).
  void AndNotWith(const RowMask& other);

  /// this |= other.
  void OrWith(const RowMask& other);

  /// Calls fn(row_id) for every set bit in ascending row order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
        fn(static_cast<uint32_t>((w << 6) + bit));
        word &= word - 1;
      }
    }
  }

  /// The set bits as an ascending row-id vector.
  std::vector<uint32_t> ToRowIds() const;

  bool operator==(const RowMask& other) const {
    return num_rows_ == other.num_rows_ && words_ == other.words_;
  }
  bool operator!=(const RowMask& other) const { return !(*this == other); }

 private:
  size_t num_rows_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace modis

#endif  // MODIS_CORE_ROW_MASK_H_
