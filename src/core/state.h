#ifndef MODIS_CORE_STATE_H_
#define MODIS_CORE_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ops/literal.h"

namespace modis {

/// The unit layout of a search universe: which bit of a state bitmap L
/// means what.
///
/// Following §5.2, each state carries a bitmap encoding (a) whether its
/// schema contains attribute A of D_U and (b) whether its dataset contains
/// values from each active-domain cluster of A. The first
/// `attributes.size()` bits are attribute bits; the remaining bits are
/// cluster bits, flattened in `clusters` order.
struct UnitLayout {
  struct ClusterUnit {
    size_t attr_index;   // Into `attributes`.
    Literal literal;     // The equality/range literal selecting the cluster.
  };

  std::vector<std::string> attributes;
  std::vector<ClusterUnit> clusters;
  /// attr_flippable[i] == false protects attribute i (target, join key)
  /// from both Reduct and Augment.
  std::vector<bool> attr_flippable;

  size_t num_units() const { return attributes.size() + clusters.size(); }
  size_t num_attributes() const { return attributes.size(); }

  bool IsAttributeUnit(size_t unit) const { return unit < attributes.size(); }
  /// For cluster units: the owning cluster record.
  const ClusterUnit& cluster(size_t unit) const {
    return clusters[unit - attributes.size()];
  }
};

/// A state bitmap L. Semantics (given a UnitLayout and universal table):
///  - attribute bit off  -> the column is dropped (schema reduction);
///  - cluster bit off    -> rows whose value for that attribute falls in
///                          the cluster are removed (tuple reduction),
///                          provided the attribute itself is included.
class StateBitmap {
 public:
  StateBitmap() = default;
  explicit StateBitmap(size_t num_units, bool value = true)
      : bits_(num_units, value ? 1 : 0) {}

  size_t size() const { return bits_.size(); }
  bool Get(size_t i) const { return bits_[i] != 0; }
  void Set(size_t i, bool v) { bits_[i] = v ? 1 : 0; }

  /// Copy with bit i flipped.
  StateBitmap WithFlipped(size_t i) const;

  /// Number of set bits.
  size_t PopCount() const;

  /// Canonical '0'/'1' string — the cache / dedup key for tests T.
  std::string Signature() const;

  /// Numeric encoding for the surrogate estimator (one 0/1 per unit).
  std::vector<double> Features() const;

  friend bool operator==(const StateBitmap& a, const StateBitmap& b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::vector<uint8_t> bits_;
};

}  // namespace modis

#endif  // MODIS_CORE_STATE_H_
