#include "core/state.h"

#include "common/logging.h"

namespace modis {

StateBitmap StateBitmap::WithFlipped(size_t i) const {
  MODIS_CHECK(i < bits_.size()) << "flip index out of range";
  StateBitmap copy = *this;
  copy.bits_[i] ^= 1;
  return copy;
}

size_t StateBitmap::PopCount() const {
  size_t n = 0;
  for (uint8_t b : bits_) n += b;
  return n;
}

std::string StateBitmap::Signature() const {
  std::string s(bits_.size(), '0');
  for (size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i]) s[i] = '1';
  }
  return s;
}

std::vector<double> StateBitmap::Features() const {
  std::vector<double> f(bits_.size());
  for (size_t i = 0; i < bits_.size(); ++i) {
    f[i] = static_cast<double>(bits_[i]);
  }
  return f;
}

}  // namespace modis
