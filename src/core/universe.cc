#include "core/universe.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace modis {

Result<SearchUniverse> SearchUniverse::Build(Table universal,
                                             Options options) {
  if (universal.num_cols() == 0) {
    return Status::InvalidArgument("SearchUniverse: empty universal schema");
  }
  SearchUniverse u;
  u.universal_ = std::move(universal);

  std::unordered_set<std::string> protected_set(
      options.protected_attributes.begin(),
      options.protected_attributes.end());
  for (const auto& name : options.protected_attributes) {
    if (!u.universal_.schema().HasField(name)) {
      return Status::NotFound("SearchUniverse: protected attribute " + name +
                              " not in universal schema");
    }
  }

  // Attribute units follow the universal schema order.
  for (size_t c = 0; c < u.universal_.num_cols(); ++c) {
    const std::string& name = u.universal_.schema().field(c).name;
    u.layout_.attributes.push_back(name);
    u.layout_.attr_flippable.push_back(protected_set.count(name) == 0);
  }

  // Cluster units from the derived literals, flattened per attribute.
  Rng rng(options.seed);
  const std::vector<AttributeLiterals> literal_sets =
      DeriveLiterals(u.universal_, options.max_clusters, &rng);
  MODIS_CHECK(literal_sets.size() == u.layout_.attributes.size())
      << "literal derivation width mismatch";
  for (size_t a = 0; a < literal_sets.size(); ++a) {
    if (!u.layout_.attr_flippable[a]) continue;  // No ops on protected attrs.
    for (const Literal& lit : literal_sets[a].literals) {
      u.layout_.clusters.push_back({a, lit});
    }
  }

  // Precompute row -> cluster-unit assignment.
  const size_t num_attrs = u.layout_.num_attributes();
  const size_t rows = u.universal_.num_rows();
  u.cluster_of_.assign(rows * num_attrs, -1);
  for (size_t cu = 0; cu < u.layout_.clusters.size(); ++cu) {
    const UnitLayout::ClusterUnit& unit = u.layout_.clusters[cu];
    const int32_t bit = static_cast<int32_t>(num_attrs + cu);
    const Column& col = u.universal_.column(unit.attr_index);
    for (size_t r = 0; r < rows; ++r) {
      if (u.cluster_of_[r * num_attrs + unit.attr_index] >= 0) continue;
      if (unit.literal.Matches(col[r])) {
        u.cluster_of_[r * num_attrs + unit.attr_index] = bit;
      }
    }
  }
  return u;
}

StateBitmap SearchUniverse::FullBitmap() const {
  return StateBitmap(layout_.num_units(), true);
}

StateBitmap SearchUniverse::BackwardBitmap() const {
  StateBitmap state(layout_.num_units(), false);
  // Cluster bits all on: augmentation re-introduces whole attributes with
  // their full active domains.
  for (size_t cu = 0; cu < layout_.clusters.size(); ++cu) {
    state.Set(layout_.num_attributes() + cu, true);
  }
  // Protected attributes (target, keys) are always included.
  size_t first_flippable = layout_.num_attributes();
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (!layout_.attr_flippable[a]) {
      state.Set(a, true);
    } else if (first_flippable == layout_.num_attributes()) {
      first_flippable = a;
    }
  }
  // Seed one feature attribute so the minimal dataset is trainable
  // (BackSt's "cover all classes with a small tuple set" — here the full
  // column of the first flippable attribute).
  if (first_flippable < layout_.num_attributes()) {
    state.Set(first_flippable, true);
  }
  return state;
}

bool SearchUniverse::RowSurvives(const StateBitmap& state, size_t r) const {
  const size_t num_attrs = layout_.num_attributes();
  for (size_t a = 0; a < num_attrs; ++a) {
    if (!state.Get(a)) continue;  // Excluded column: no row constraint.
    const int32_t bit = cluster_of_[r * num_attrs + a];
    if (bit >= 0 && !state.Get(static_cast<size_t>(bit))) return false;
  }
  return true;
}

Table SearchUniverse::Materialize(const StateBitmap& state) const {
  MODIS_CHECK(state.size() == layout_.num_units()) << "bitmap size mismatch";
  std::vector<size_t> cols;
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (state.Get(a)) cols.push_back(a);
  }
  std::vector<size_t> rows;
  rows.reserve(universal_.num_rows());
  for (size_t r = 0; r < universal_.num_rows(); ++r) {
    if (RowSurvives(state, r)) rows.push_back(r);
  }
  Result<Table> projected = universal_.SelectColumns(cols);
  MODIS_CHECK(projected.ok()) << projected.status().ToString();
  return projected.value().SelectRows(rows);
}

size_t SearchUniverse::CountRows(const StateBitmap& state) const {
  size_t n = 0;
  for (size_t r = 0; r < universal_.num_rows(); ++r) {
    if (RowSurvives(state, r)) ++n;
  }
  return n;
}

double SearchUniverse::RowFraction(const StateBitmap& state) const {
  if (universal_.num_rows() == 0) return 0.0;
  return static_cast<double>(CountRows(state)) /
         static_cast<double>(universal_.num_rows());
}

double SearchUniverse::ColumnFraction(const StateBitmap& state) const {
  size_t on = 0;
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (state.Get(a)) ++on;
  }
  return static_cast<double>(on) /
         static_cast<double>(layout_.num_attributes());
}

std::vector<double> SearchUniverse::StateFeatures(
    const StateBitmap& state) const {
  std::vector<double> f = state.Features();
  f.push_back(RowFraction(state));
  f.push_back(ColumnFraction(state));
  return f;
}

}  // namespace modis
