#include "core/universe.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace modis {

Result<SearchUniverse> SearchUniverse::Build(Table universal,
                                             Options options) {
  if (universal.num_cols() == 0) {
    return Status::InvalidArgument("SearchUniverse: empty universal schema");
  }
  SearchUniverse u;
  u.universal_ = std::move(universal);

  std::unordered_set<std::string> protected_set(
      options.protected_attributes.begin(),
      options.protected_attributes.end());
  for (const auto& name : options.protected_attributes) {
    if (!u.universal_.schema().HasField(name)) {
      return Status::NotFound("SearchUniverse: protected attribute " + name +
                              " not in universal schema");
    }
  }

  // Attribute units follow the universal schema order.
  for (size_t c = 0; c < u.universal_.num_cols(); ++c) {
    const std::string& name = u.universal_.schema().field(c).name;
    u.layout_.attributes.push_back(name);
    u.layout_.attr_flippable.push_back(protected_set.count(name) == 0);
  }

  // Cluster units from the derived literals, flattened per attribute.
  Rng rng(options.seed);
  const std::vector<AttributeLiterals> literal_sets =
      DeriveLiterals(u.universal_, options.max_clusters, &rng);
  MODIS_CHECK(literal_sets.size() == u.layout_.attributes.size())
      << "literal derivation width mismatch";
  for (size_t a = 0; a < literal_sets.size(); ++a) {
    if (!u.layout_.attr_flippable[a]) continue;  // No ops on protected attrs.
    for (const Literal& lit : literal_sets[a].literals) {
      u.layout_.clusters.push_back({a, lit});
    }
  }

  // Precompute row -> cluster-unit assignment.
  const size_t num_attrs = u.layout_.num_attributes();
  const size_t rows = u.universal_.num_rows();
  u.cluster_of_.assign(rows * num_attrs, -1);
  for (size_t cu = 0; cu < u.layout_.clusters.size(); ++cu) {
    const UnitLayout::ClusterUnit& unit = u.layout_.clusters[cu];
    const int32_t bit = static_cast<int32_t>(num_attrs + cu);
    const Column& col = u.universal_.column(unit.attr_index);
    for (size_t r = 0; r < rows; ++r) {
      if (u.cluster_of_[r * num_attrs + unit.attr_index] >= 0) continue;
      if (unit.literal.Matches(col[r])) {
        u.cluster_of_[r * num_attrs + unit.attr_index] = bit;
      }
    }
  }
  return u;
}

StateBitmap SearchUniverse::FullBitmap() const {
  return StateBitmap(layout_.num_units(), true);
}

StateBitmap SearchUniverse::BackwardBitmap() const {
  StateBitmap state(layout_.num_units(), false);
  // Cluster bits all on: augmentation re-introduces whole attributes with
  // their full active domains.
  for (size_t cu = 0; cu < layout_.clusters.size(); ++cu) {
    state.Set(layout_.num_attributes() + cu, true);
  }
  // Protected attributes (target, keys) are always included.
  size_t first_flippable = layout_.num_attributes();
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (!layout_.attr_flippable[a]) {
      state.Set(a, true);
    } else if (first_flippable == layout_.num_attributes()) {
      first_flippable = a;
    }
  }
  // Seed one feature attribute so the minimal dataset is trainable
  // (BackSt's "cover all classes with a small tuple set" — here the full
  // column of the first flippable attribute).
  if (first_flippable < layout_.num_attributes()) {
    state.Set(first_flippable, true);
  }
  return state;
}

bool SearchUniverse::RowSurvives(const StateBitmap& state, size_t r) const {
  const size_t num_attrs = layout_.num_attributes();
  for (size_t a = 0; a < num_attrs; ++a) {
    if (!state.Get(a)) continue;  // Excluded column: no row constraint.
    const int32_t bit = cluster_of_[r * num_attrs + a];
    if (bit >= 0 && !state.Get(static_cast<size_t>(bit))) return false;
  }
  return true;
}

std::vector<uint32_t> SearchUniverse::SurvivingRows(
    const StateBitmap& state) const {
  std::vector<uint32_t> rows;
  rows.reserve(universal_.num_rows());
  for (size_t r = 0; r < universal_.num_rows(); ++r) {
    if (RowSurvives(state, r)) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

Table SearchUniverse::BuildTable(const StateBitmap& state,
                                 const std::vector<uint32_t>& row_ids) const {
  std::vector<size_t> cols;
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (state.Get(a)) cols.push_back(a);
  }
  std::vector<size_t> rows(row_ids.begin(), row_ids.end());
  Result<Table> projected = universal_.SelectColumns(cols);
  MODIS_CHECK(projected.ok()) << projected.status().ToString();
  return projected.value().SelectRows(rows);
}

Table SearchUniverse::Materialize(const StateBitmap& state) const {
  MODIS_CHECK(state.size() == layout_.num_units()) << "bitmap size mismatch";
  return BuildTable(state, SurvivingRows(state));
}

MaterializationPtr SearchUniverse::MaterializeRecord(
    const StateBitmap& state) const {
  MODIS_CHECK(state.size() == layout_.num_units()) << "bitmap size mismatch";
  auto m = std::make_shared<Materialization>();
  m->state = state;
  m->row_ids = SurvivingRows(state);
  m->table = BuildTable(state, m->row_ids);
  return m;
}

MaterializationPtr SearchUniverse::MaterializeFrom(
    const Materialization& parent, const StateBitmap& child) const {
  MODIS_CHECK(child.size() == layout_.num_units()) << "bitmap size mismatch";
  // Locate the flipped unit; anything but a clean one-flip edge falls back
  // to a fresh scan.
  size_t flipped = layout_.num_units();
  size_t diff = 0;
  if (parent.state.size() == child.size()) {
    for (size_t u = 0; u < child.size() && diff < 2; ++u) {
      if (parent.state.Get(u) != child.Get(u)) {
        flipped = u;
        ++diff;
      }
    }
  } else {
    diff = 2;
  }
  if (diff != 1) return MaterializeRecord(child);

  const size_t num_attrs = layout_.num_attributes();
  auto m = std::make_shared<Materialization>();
  m->state = child;

  // Classify the edge by how the flipped unit changes the row constraint
  // of its attribute: unchanged (reuse parent rows), tightened (filter the
  // parent rows), or relaxed (re-test only rows outside the parent set).
  enum class RowChange { kNone, kTighten, kRelax } change;
  size_t attr = 0;  // Attribute whose row constraint changes.
  if (layout_.IsAttributeUnit(flipped)) {
    attr = flipped;
    bool has_constraint = false;
    // The attribute constrains rows only through its cluster units that
    // are off; with every cluster bit on (or none derived) the column
    // excluded no rows.
    for (size_t cu = 0; cu < layout_.clusters.size(); ++cu) {
      if (layout_.clusters[cu].attr_index == attr &&
          !child.Get(num_attrs + cu)) {
        has_constraint = true;
        break;
      }
    }
    if (!has_constraint) {
      change = RowChange::kNone;
    } else {
      change = child.Get(flipped) ? RowChange::kTighten : RowChange::kRelax;
    }
  } else {
    attr = layout_.cluster(flipped).attr_index;
    if (!child.Get(attr)) {
      change = RowChange::kNone;  // Constraint inactive: column excluded.
    } else {
      change = child.Get(flipped) ? RowChange::kRelax : RowChange::kTighten;
    }
  }

  switch (change) {
    case RowChange::kNone:
      m->row_ids = parent.row_ids;
      break;
    case RowChange::kTighten: {
      m->row_ids.reserve(parent.row_ids.size());
      for (uint32_t r : parent.row_ids) {
        const int32_t bit = cluster_of_[r * num_attrs + attr];
        const bool survives =
            bit < 0 || child.Get(static_cast<size_t>(bit));
        if (survives) m->row_ids.push_back(r);
      }
      break;
    }
    case RowChange::kRelax: {
      // Parent rows all survive (a constraint only went away); rows the
      // parent filtered out may resurrect, subject to the full child
      // constraint set.
      m->row_ids.reserve(universal_.num_rows());
      size_t pi = 0;
      for (uint32_t r = 0; r < universal_.num_rows(); ++r) {
        if (pi < parent.row_ids.size() && parent.row_ids[pi] == r) {
          m->row_ids.push_back(r);
          ++pi;
        } else if (RowSurvives(child, r)) {
          m->row_ids.push_back(r);
        }
      }
      break;
    }
  }
  m->table = BuildTable(child, m->row_ids);
  return m;
}

size_t SearchUniverse::CountRows(const StateBitmap& state) const {
  size_t n = 0;
  for (size_t r = 0; r < universal_.num_rows(); ++r) {
    if (RowSurvives(state, r)) ++n;
  }
  return n;
}

double SearchUniverse::RowFraction(const StateBitmap& state) const {
  if (universal_.num_rows() == 0) return 0.0;
  return static_cast<double>(CountRows(state)) /
         static_cast<double>(universal_.num_rows());
}

double SearchUniverse::ColumnFraction(const StateBitmap& state) const {
  size_t on = 0;
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (state.Get(a)) ++on;
  }
  return static_cast<double>(on) /
         static_cast<double>(layout_.num_attributes());
}

std::vector<double> SearchUniverse::StateFeatures(
    const StateBitmap& state) const {
  std::vector<double> f = state.Features();
  f.push_back(RowFraction(state));
  f.push_back(ColumnFraction(state));
  return f;
}

MaterializationPtr MaterializationCache::Get(const std::string& signature) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(signature);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void MaterializationCache::Put(const std::string& signature,
                               MaterializationPtr m) {
  if (capacity_ == 0 || m == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(signature);
  if (it != index_.end()) {
    it->second->second = std::move(m);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(signature, std::move(m));
  index_[signature] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t MaterializationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace modis
