#include "core/universe.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace modis {

const std::vector<uint32_t>& Materialization::row_ids() const {
  std::call_once(row_ids_once_, [this] { row_ids_ = mask.ToRowIds(); });
  return row_ids_;
}

Result<SearchUniverse> SearchUniverse::Build(Table universal,
                                             Options options) {
  if (universal.num_cols() == 0) {
    return Status::InvalidArgument("SearchUniverse: empty universal schema");
  }
  SearchUniverse u;
  u.universal_ = std::move(universal);

  std::unordered_set<std::string> protected_set(
      options.protected_attributes.begin(),
      options.protected_attributes.end());
  for (const auto& name : options.protected_attributes) {
    if (!u.universal_.schema().HasField(name)) {
      return Status::NotFound("SearchUniverse: protected attribute " + name +
                              " not in universal schema");
    }
  }

  // Attribute units follow the universal schema order.
  for (size_t c = 0; c < u.universal_.num_cols(); ++c) {
    const std::string& name = u.universal_.schema().field(c).name;
    u.layout_.attributes.push_back(name);
    u.layout_.attr_flippable.push_back(protected_set.count(name) == 0);
  }

  // Cluster units from the derived literals, flattened per attribute.
  Rng rng(options.seed);
  const std::vector<AttributeLiterals> literal_sets =
      DeriveLiterals(u.universal_, options.max_clusters, &rng);
  MODIS_CHECK(literal_sets.size() == u.layout_.attributes.size())
      << "literal derivation width mismatch";
  for (size_t a = 0; a < literal_sets.size(); ++a) {
    if (!u.layout_.attr_flippable[a]) continue;  // No ops on protected attrs.
    for (const Literal& lit : literal_sets[a].literals) {
      u.layout_.clusters.push_back({a, lit});
    }
  }

  // Precompute row -> cluster-unit assignment and, columnwise, the per
  // cluster-unit row masks the word-level materializer works on. Cluster
  // assignment is first-literal-match, so the masks of one attribute are
  // disjoint.
  const size_t num_attrs = u.layout_.num_attributes();
  const size_t rows = u.universal_.num_rows();
  u.cluster_of_.assign(rows * num_attrs, -1);
  u.cluster_masks_.assign(u.layout_.clusters.size(), RowMask(rows, false));
  u.attr_clusters_.assign(num_attrs, {});
  for (size_t cu = 0; cu < u.layout_.clusters.size(); ++cu) {
    const UnitLayout::ClusterUnit& unit = u.layout_.clusters[cu];
    const int32_t bit = static_cast<int32_t>(num_attrs + cu);
    const Column& col = u.universal_.column(unit.attr_index);
    u.attr_clusters_[unit.attr_index].push_back(cu);
    for (size_t r = 0; r < rows; ++r) {
      if (u.cluster_of_[r * num_attrs + unit.attr_index] >= 0) continue;
      if (unit.literal.Matches(col[r])) {
        u.cluster_of_[r * num_attrs + unit.attr_index] = bit;
        u.cluster_masks_[cu].Set(r, true);
      }
    }
  }
  return u;
}

StateBitmap SearchUniverse::FullBitmap() const {
  return StateBitmap(layout_.num_units(), true);
}

StateBitmap SearchUniverse::BackwardBitmap() const {
  StateBitmap state(layout_.num_units(), false);
  // Cluster bits all on: augmentation re-introduces whole attributes with
  // their full active domains.
  for (size_t cu = 0; cu < layout_.clusters.size(); ++cu) {
    state.Set(layout_.num_attributes() + cu, true);
  }
  // Protected attributes (target, keys) are always included.
  size_t first_flippable = layout_.num_attributes();
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (!layout_.attr_flippable[a]) {
      state.Set(a, true);
    } else if (first_flippable == layout_.num_attributes()) {
      first_flippable = a;
    }
  }
  // Seed one feature attribute so the minimal dataset is trainable
  // (BackSt's "cover all classes with a small tuple set" — here the full
  // column of the first flippable attribute).
  if (first_flippable < layout_.num_attributes()) {
    state.Set(first_flippable, true);
  }
  return state;
}

bool SearchUniverse::RowSurvives(const StateBitmap& state, size_t r) const {
  const size_t num_attrs = layout_.num_attributes();
  for (size_t a = 0; a < num_attrs; ++a) {
    if (!state.Get(a)) continue;  // Excluded column: no row constraint.
    const int32_t bit = cluster_of_[r * num_attrs + a];
    if (bit >= 0 && !state.Get(static_cast<size_t>(bit))) return false;
  }
  return true;
}

RowMask SearchUniverse::SurvivingMask(const StateBitmap& state) const {
  const size_t num_attrs = layout_.num_attributes();
  RowMask mask(universal_.num_rows(), true);
  // A row dies iff some *included* attribute has it in an *off* cluster;
  // null / uncovered cells sit in no cluster mask and are never removed.
  for (size_t cu = 0; cu < layout_.clusters.size(); ++cu) {
    if (!state.Get(layout_.clusters[cu].attr_index)) continue;
    if (state.Get(num_attrs + cu)) continue;
    mask.AndNotWith(cluster_masks_[cu]);
  }
  return mask;
}

Table SearchUniverse::BuildTable(const StateBitmap& state,
                                 const RowMask& mask) const {
  std::vector<size_t> cols;
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (state.Get(a)) cols.push_back(a);
  }
  std::vector<size_t> rows;
  rows.reserve(mask.Count());
  mask.ForEachSet([&rows](uint32_t r) { rows.push_back(r); });
  Result<Table> projected = universal_.SelectColumns(cols);
  MODIS_CHECK(projected.ok()) << projected.status().ToString();
  return projected.value().SelectRows(rows);
}

Table SearchUniverse::Materialize(const StateBitmap& state) const {
  MODIS_CHECK(state.size() == layout_.num_units()) << "bitmap size mismatch";
  return BuildTable(state, SurvivingMask(state));
}

MaterializationPtr SearchUniverse::MaterializeRecord(
    const StateBitmap& state) const {
  MODIS_CHECK(state.size() == layout_.num_units()) << "bitmap size mismatch";
  auto m = std::make_shared<Materialization>();
  m->state = state;
  m->mask = SurvivingMask(state);
  m->table = BuildTable(state, m->mask);
  return m;
}

RowMask SearchUniverse::DeriveMask(const Materialization& parent,
                                   const StateBitmap& child) const {
  MODIS_CHECK(child.size() == layout_.num_units()) << "bitmap size mismatch";
  // Locate the flipped unit; anything but a clean one-flip edge falls back
  // to a fresh mask computation.
  size_t flipped = layout_.num_units();
  size_t diff = 0;
  if (parent.state.size() == child.size()) {
    for (size_t u = 0; u < child.size() && diff < 2; ++u) {
      if (parent.state.Get(u) != child.Get(u)) {
        flipped = u;
        ++diff;
      }
    }
  } else {
    diff = 2;
  }
  if (diff != 1) return SurvivingMask(child);

  const size_t num_attrs = layout_.num_attributes();

  // The flipped unit changes which "included attribute, cluster bit off"
  // constraints are active. Collect the constraints it activates (tighten)
  // or deactivates (relax); an edge that changes neither reuses the parent
  // mask verbatim.
  std::vector<size_t> activated;    // Cluster units newly constraining.
  std::vector<size_t> deactivated;  // Cluster units no longer constraining.
  if (layout_.IsAttributeUnit(flipped)) {
    // Attribute toggled: every off cluster of that attribute switches.
    for (size_t cu : attr_clusters_[flipped]) {
      if (child.Get(num_attrs + cu)) continue;
      (child.Get(flipped) ? activated : deactivated).push_back(cu);
    }
  } else {
    const size_t cu = flipped - num_attrs;
    const size_t attr = layout_.cluster(flipped).attr_index;
    if (child.Get(attr)) {
      // Cluster toggled under an included attribute: bit off activates the
      // constraint, bit on retires it.
      (child.Get(flipped) ? deactivated : activated).push_back(cu);
    }
    // Attribute excluded: the cluster bit carries no row constraint.
  }

  RowMask mask = parent.mask;
  for (size_t cu : activated) {
    mask.AndNotWith(cluster_masks_[cu]);
  }
  if (!deactivated.empty()) {
    // Rows the retired constraints removed may resurrect — but only those
    // passing every constraint still active in the child.
    RowMask revive(universal_.num_rows(), false);
    for (size_t cu : deactivated) {
      revive.OrWith(cluster_masks_[cu]);
    }
    for (size_t cu = 0; cu < layout_.clusters.size(); ++cu) {
      if (!child.Get(layout_.clusters[cu].attr_index)) continue;
      if (child.Get(num_attrs + cu)) continue;
      revive.AndNotWith(cluster_masks_[cu]);
    }
    mask.OrWith(revive);
  }
  return mask;
}

MaterializationPtr SearchUniverse::MaterializeFrom(
    const Materialization& parent, const StateBitmap& child) const {
  auto m = std::make_shared<Materialization>();
  m->state = child;
  m->mask = DeriveMask(parent, child);
  m->table = BuildTable(child, m->mask);
  return m;
}

size_t SearchUniverse::CountRows(const StateBitmap& state) const {
  return SurvivingMask(state).Count();
}

size_t SearchUniverse::CountRowsScan(const StateBitmap& state) const {
  size_t n = 0;
  for (size_t r = 0; r < universal_.num_rows(); ++r) {
    if (RowSurvives(state, r)) ++n;
  }
  return n;
}

double SearchUniverse::RowFraction(const StateBitmap& state) const {
  if (universal_.num_rows() == 0) return 0.0;
  return static_cast<double>(CountRows(state)) /
         static_cast<double>(universal_.num_rows());
}

double SearchUniverse::ColumnFraction(const StateBitmap& state) const {
  size_t on = 0;
  for (size_t a = 0; a < layout_.num_attributes(); ++a) {
    if (state.Get(a)) ++on;
  }
  return static_cast<double>(on) /
         static_cast<double>(layout_.num_attributes());
}

std::vector<double> SearchUniverse::StateFeatures(
    const StateBitmap& state) const {
  std::vector<double> f = state.Features();
  f.push_back(RowFraction(state));
  f.push_back(ColumnFraction(state));
  return f;
}

std::vector<double> SearchUniverse::StateFeatures(const StateBitmap& state,
                                                  const RowMask& mask) const {
  std::vector<double> f = state.Features();
  const double rows = static_cast<double>(universal_.num_rows());
  f.push_back(rows == 0.0 ? 0.0 : static_cast<double>(mask.Count()) / rows);
  f.push_back(ColumnFraction(state));
  return f;
}

MaterializationPtr MaterializationCache::Get(const std::string& signature) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(signature);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void MaterializationCache::Put(const std::string& signature,
                               MaterializationPtr m) {
  if (capacity_ == 0 || m == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(signature);
  if (it != index_.end()) {
    it->second->second = std::move(m);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(signature, std::move(m));
  index_[signature] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t MaterializationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace modis
