#ifndef MODIS_CORE_UNIVERSE_H_
#define MODIS_CORE_UNIVERSE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/state.h"
#include "table/table.h"

namespace modis {

/// One materialized state: the surviving universal-row ids (ascending), the
/// denoted table, and the state itself. Carrying the row ids is what makes
/// the incremental materializer possible — a child's row set is derived
/// from the parent's instead of rescanning D_U.
struct Materialization {
  StateBitmap state;
  std::vector<uint32_t> row_ids;
  Table table;
};

using MaterializationPtr = std::shared_ptr<const Materialization>;

/// The dataset exploration space of one MODis running: the universal table
/// D_U, the unit layout of state bitmaps, and fast materialization of the
/// dataset any bitmap denotes.
///
/// Built once per task; all search algorithms share it. Row-to-cluster
/// assignments are precomputed so that materializing a state costs one scan
/// of D_U.
class SearchUniverse {
 public:
  struct Options {
    /// Attributes that operators must not touch (target column, join keys).
    std::vector<std::string> protected_attributes;
    /// Maximum active-domain clusters per attribute (paper uses 30).
    int max_clusters = 8;
    uint64_t seed = 17;
  };

  /// Builds the universe over an already-constructed universal table.
  static Result<SearchUniverse> Build(Table universal, Options options);

  const Table& universal() const { return universal_; }
  const UnitLayout& layout() const { return layout_; }

  /// The start state of the reduce-from-universal search: every unit on.
  StateBitmap FullBitmap() const;

  /// The backward start state of BiMODis (procedure BackSt): only the
  /// protected attributes plus the single most class-covering attribute are
  /// included; all cluster bits stay on so augmentation re-introduces whole
  /// attributes.
  StateBitmap BackwardBitmap() const;

  /// The dataset D_s denoted by a bitmap: included columns only, rows
  /// filtered by the active cluster bits of included attributes.
  Table Materialize(const StateBitmap& state) const;

  /// Materialize plus the surviving-row bookkeeping MaterializeFrom needs.
  /// Pays the same single D_U scan as Materialize.
  MaterializationPtr MaterializeRecord(const StateBitmap& state) const;

  /// Incremental materializer along a one-flip edge: derives the child's
  /// surviving rows from the parent's instead of rescanning D_U.
  ///
  ///  - Tightening flips (attribute augmented, cluster bit dropped) filter
  ///    the parent's row list in O(|parent rows|).
  ///  - Relaxing flips (attribute dropped, cluster bit restored) only
  ///    re-test rows *outside* the parent's row set; when the flipped
  ///    attribute had no active row constraint the parent rows are reused
  ///    verbatim.
  ///
  /// `child` must differ from `parent.state` in exactly one unit;
  /// otherwise this falls back to a fresh MaterializeRecord. The result is
  /// always identical (schema, rows, cells — nulls included) to a fresh
  /// materialization of `child`.
  MaterializationPtr MaterializeFrom(const Materialization& parent,
                                     const StateBitmap& child) const;

  /// Row count of Materialize(state) without building the table.
  size_t CountRows(const StateBitmap& state) const;

  /// Fraction helpers used by the pruning heuristics and state features.
  double RowFraction(const StateBitmap& state) const;
  double ColumnFraction(const StateBitmap& state) const;

  /// State features for the surrogate: the bitmap plus row/column
  /// fractions.
  std::vector<double> StateFeatures(const StateBitmap& state) const;

 private:
  SearchUniverse() = default;

  /// True if row `r` survives under `state`.
  bool RowSurvives(const StateBitmap& state, size_t r) const;

  /// Universal-row ids surviving under `state` — the one full D_U scan.
  std::vector<uint32_t> SurvivingRows(const StateBitmap& state) const;

  /// Builds the denoted table from an already-computed row set.
  Table BuildTable(const StateBitmap& state,
                   const std::vector<uint32_t>& row_ids) const;

  Table universal_;
  UnitLayout layout_;
  /// cluster_of_[r * num_attrs + a]: index of the cluster *unit* (bitmap
  /// position) containing row r's value of attribute a, or -1 when the
  /// value is null / uncovered by any literal (such rows never get removed
  /// by cluster reductions on a).
  std::vector<int32_t> cluster_of_;
};

/// A small thread-safe LRU cache of materializations keyed by state
/// signature. During a batched valuation the engine seeds it with the
/// parents of the current frontier level, so the worker threads reach
/// children through SearchUniverse::MaterializeFrom instead of full D_U
/// scans. Capacity 0 disables caching (Get misses, Put drops).
class MaterializationCache {
 public:
  explicit MaterializationCache(size_t capacity) : capacity_(capacity) {}

  /// The cached materialization, or nullptr. Refreshes LRU order.
  MaterializationPtr Get(const std::string& signature);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry beyond capacity.
  void Put(const std::string& signature, MaterializationPtr m);

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, MaterializationPtr>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace modis

#endif  // MODIS_CORE_UNIVERSE_H_
