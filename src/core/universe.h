#ifndef MODIS_CORE_UNIVERSE_H_
#define MODIS_CORE_UNIVERSE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/row_mask.h"
#include "core/state.h"
#include "table/table.h"

namespace modis {

/// One materialized state: the surviving-row bitset over D_U, the denoted
/// table, and the state itself. Carrying the mask is what makes the
/// incremental materializer possible — a child's row set is one or two word
/// sweeps over the parent's instead of a rescan of D_U — and makes the row
/// count of a cached state a popcount. The ascending row-id vector some
/// callers want is derived from the mask lazily on first access.
struct Materialization {
  StateBitmap state;
  RowMask mask;
  Table table;

  /// The surviving universal-row ids in ascending order, derived from
  /// `mask` on first call and memoized. Thread-safe.
  const std::vector<uint32_t>& row_ids() const;

 private:
  mutable std::once_flag row_ids_once_;
  mutable std::vector<uint32_t> row_ids_;
};

using MaterializationPtr = std::shared_ptr<const Materialization>;

/// The dataset exploration space of one MODis running: the universal table
/// D_U, the unit layout of state bitmaps, and fast materialization of the
/// dataset any bitmap denotes.
///
/// Built once per task; all search algorithms share it. The row space is
/// columnar: every cluster unit gets a precomputed RowMask of the rows it
/// covers, so the rows a state denotes are the full universe minus the
/// union of its active off-cluster masks — word-level ANDNOTs, no
/// row-at-a-time scan.
class SearchUniverse {
 public:
  struct Options {
    /// Attributes that operators must not touch (target column, join keys).
    std::vector<std::string> protected_attributes;
    /// Maximum active-domain clusters per attribute (paper uses 30).
    int max_clusters = 8;
    uint64_t seed = 17;
  };

  /// Builds the universe over an already-constructed universal table.
  static Result<SearchUniverse> Build(Table universal, Options options);

  const Table& universal() const { return universal_; }
  const UnitLayout& layout() const { return layout_; }

  /// The start state of the reduce-from-universal search: every unit on.
  StateBitmap FullBitmap() const;

  /// The backward start state of BiMODis (procedure BackSt): only the
  /// protected attributes plus the single most class-covering attribute are
  /// included; all cluster bits stay on so augmentation re-introduces whole
  /// attributes.
  StateBitmap BackwardBitmap() const;

  /// The dataset D_s denoted by a bitmap: included columns only, rows
  /// filtered by the active cluster bits of included attributes.
  Table Materialize(const StateBitmap& state) const;

  /// Materialize plus the surviving-row bookkeeping MaterializeFrom needs.
  MaterializationPtr MaterializeRecord(const StateBitmap& state) const;

  /// Incremental materializer along a one-flip edge: derives the child's
  /// row mask from the parent's instead of recomputing from scratch.
  ///
  ///  - Tightening flips (attribute augmented, cluster bit dropped) are an
  ///    ANDNOT of the newly active cluster masks over the parent's words.
  ///  - Relaxing flips (attribute dropped, cluster bit restored) OR the
  ///    resurrected cluster rows back in after masking them against the
  ///    constraints still active in the child.
  ///
  /// `child` must differ from `parent.state` in exactly one unit;
  /// otherwise this falls back to a fresh mask computation. The result is
  /// always identical (schema, rows, cells — nulls included) to a fresh
  /// materialization of `child`.
  MaterializationPtr MaterializeFrom(const Materialization& parent,
                                     const StateBitmap& child) const;

  /// The surviving-row bitset of `state`: full universe ANDNOT the mask of
  /// every active off cluster. Word-level; no per-row work.
  RowMask SurvivingMask(const StateBitmap& state) const;

  /// The child's surviving mask derived from the parent's along a one-flip
  /// edge (the mask half of MaterializeFrom, exposed for benchmarks and
  /// callers that only need counts). Falls back to SurvivingMask when the
  /// edge is not a clean one-flip.
  RowMask DeriveMask(const Materialization& parent,
                     const StateBitmap& child) const;

  /// Row count of Materialize(state) without building the table — a
  /// SurvivingMask popcount.
  size_t CountRows(const StateBitmap& state) const;

  /// The seed's row-at-a-time reference counter. Kept for the mask-vs-scan
  /// property battery and the micro-op benchmark; O(rows × attrs).
  size_t CountRowsScan(const StateBitmap& state) const;

  /// Fraction helpers used by the pruning heuristics and state features.
  double RowFraction(const StateBitmap& state) const;
  double ColumnFraction(const StateBitmap& state) const;

  /// State features for the surrogate: the bitmap plus row/column
  /// fractions.
  std::vector<double> StateFeatures(const StateBitmap& state) const;

  /// Same features, reusing an already-computed surviving mask (e.g. from a
  /// cached materialization) instead of recomputing it.
  std::vector<double> StateFeatures(const StateBitmap& state,
                                    const RowMask& mask) const;

 private:
  SearchUniverse() = default;

  /// True if row `r` survives under `state` (reference semantics; the mask
  /// path must agree with this row-at-a-time definition).
  bool RowSurvives(const StateBitmap& state, size_t r) const;

  /// Builds the denoted table from an already-computed surviving mask.
  Table BuildTable(const StateBitmap& state, const RowMask& mask) const;

  Table universal_;
  UnitLayout layout_;
  /// cluster_of_[r * num_attrs + a]: index of the cluster *unit* (bitmap
  /// position) containing row r's value of attribute a, or -1 when the
  /// value is null / uncovered by any literal (such rows never get removed
  /// by cluster reductions on a).
  std::vector<int32_t> cluster_of_;
  /// cluster_masks_[cu]: the rows assigned to cluster unit cu (the rows an
  /// active "cluster off" constraint removes). Disjoint per attribute.
  std::vector<RowMask> cluster_masks_;
  /// attr_clusters_[a]: the cluster-unit indices derived for attribute a.
  std::vector<std::vector<size_t>> attr_clusters_;
};

/// A small thread-safe LRU cache of materializations keyed by state
/// signature. During a batched valuation the engine seeds it with the
/// parents of the current frontier level, so the worker threads reach
/// children through SearchUniverse::MaterializeFrom instead of full D_U
/// scans. Capacity 0 disables caching (Get misses, Put drops).
class MaterializationCache {
 public:
  explicit MaterializationCache(size_t capacity) : capacity_(capacity) {}

  /// The cached materialization, or nullptr. Refreshes LRU order.
  MaterializationPtr Get(const std::string& signature);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry beyond capacity.
  void Put(const std::string& signature, MaterializationPtr m);

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, MaterializationPtr>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace modis

#endif  // MODIS_CORE_UNIVERSE_H_
