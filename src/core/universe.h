#ifndef MODIS_CORE_UNIVERSE_H_
#define MODIS_CORE_UNIVERSE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/state.h"
#include "table/table.h"

namespace modis {

/// The dataset exploration space of one MODis running: the universal table
/// D_U, the unit layout of state bitmaps, and fast materialization of the
/// dataset any bitmap denotes.
///
/// Built once per task; all search algorithms share it. Row-to-cluster
/// assignments are precomputed so that materializing a state costs one scan
/// of D_U.
class SearchUniverse {
 public:
  struct Options {
    /// Attributes that operators must not touch (target column, join keys).
    std::vector<std::string> protected_attributes;
    /// Maximum active-domain clusters per attribute (paper uses 30).
    int max_clusters = 8;
    uint64_t seed = 17;
  };

  /// Builds the universe over an already-constructed universal table.
  static Result<SearchUniverse> Build(Table universal, Options options);

  const Table& universal() const { return universal_; }
  const UnitLayout& layout() const { return layout_; }

  /// The start state of the reduce-from-universal search: every unit on.
  StateBitmap FullBitmap() const;

  /// The backward start state of BiMODis (procedure BackSt): only the
  /// protected attributes plus the single most class-covering attribute are
  /// included; all cluster bits stay on so augmentation re-introduces whole
  /// attributes.
  StateBitmap BackwardBitmap() const;

  /// The dataset D_s denoted by a bitmap: included columns only, rows
  /// filtered by the active cluster bits of included attributes.
  Table Materialize(const StateBitmap& state) const;

  /// Row count of Materialize(state) without building the table.
  size_t CountRows(const StateBitmap& state) const;

  /// Fraction helpers used by the pruning heuristics and state features.
  double RowFraction(const StateBitmap& state) const;
  double ColumnFraction(const StateBitmap& state) const;

  /// State features for the surrogate: the bitmap plus row/column
  /// fractions.
  std::vector<double> StateFeatures(const StateBitmap& state) const;

 private:
  SearchUniverse() = default;

  /// True if row `r` survives under `state`.
  bool RowSurvives(const StateBitmap& state, size_t r) const;

  Table universal_;
  UnitLayout layout_;
  /// cluster_of_[r * num_attrs + a]: index of the cluster *unit* (bitmap
  /// position) containing row r's value of attribute a, or -1 when the
  /// value is null / uncovered by any literal (such rows never get removed
  /// by cluster reductions on a).
  std::vector<int32_t> cluster_of_;
};

}  // namespace modis

#endif  // MODIS_CORE_UNIVERSE_H_
