#include "core/engine.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/timer.h"
#include "moo/diversity.h"
#include "moo/pareto.h"
#include "table/schema.h"

namespace modis {

namespace {
constexpr size_t kMissing = static_cast<size_t>(-1);
}  // namespace

uint64_t ModisEngine::TaskFingerprint(
    const SearchUniverse& universe, const std::vector<MeasureSpec>& measures,
    const std::string& cache_namespace, const std::string& model_identity) {
  FingerprintBuilder fp;
  fp.Add(cache_namespace);
  // The task model: two tasks that differ only in the trained prototype
  // (same D_U, same measures) must never share records. The identity
  // string flows from TaskEvaluator::ModelIdentity through the oracle.
  fp.Add(model_identity);

  // The dataset: schema, size, and cell content of D_U. Content is
  // hashed so a lake whose values changed under an unchanged shape
  // (edited CSVs, a new generator seed) can never replay stale
  // evaluations. One O(|D_U|) pass per engine, amortized against the
  // model trainings it makes skippable.
  const Table& universal = universe.universal();
  fp.Add(uint64_t{universal.num_rows()});
  fp.Add(uint64_t{universal.num_cols()});
  for (size_t c = 0; c < universal.num_cols(); ++c) {
    const Field& field = universal.schema().field(c);
    fp.Add(field.name);
    fp.Add(uint64_t(field.type));
    for (size_t r = 0; r < universal.num_rows(); ++r) {
      const Value& cell = universal.At(r, c);
      fp.Add(uint64_t(cell.kind()));
      switch (cell.kind()) {
        case ValueKind::kNull:
          break;
        case ValueKind::kInt:
          fp.Add(uint64_t(cell.AsInt()));
          break;
        case ValueKind::kDouble:
          fp.Add(cell.AsDoubleExact());
          break;
        case ValueKind::kString:
          fp.Add(cell.AsString());
          break;
      }
    }
  }

  // The unit layout: state signatures are positional, so any change to
  // the unit list (count, order, cluster boundaries, protections) must
  // invalidate the records.
  const UnitLayout& layout = universe.layout();
  fp.Add(uint64_t{layout.num_units()});
  for (size_t a = 0; a < layout.num_attributes(); ++a) {
    fp.Add(layout.attributes[a]);
    fp.Add(uint64_t(layout.attr_flippable[a] ? 1 : 0));
  }
  for (const UnitLayout::ClusterUnit& cu : layout.clusters) {
    fp.Add(uint64_t{cu.attr_index});
    fp.Add(cu.literal.ToString());
  }

  // The measure set: evaluations are vectors in measure order, and the
  // normalization parameters shape every recorded value.
  fp.Add(uint64_t{measures.size()});
  for (const MeasureSpec& m : measures) {
    fp.Add(m.name);
    fp.Add(uint64_t(m.direction));
    fp.Add(m.scale);
    fp.Add(m.lower);
    fp.Add(m.upper);
  }
  return fp.Digest();
}

ModisEngine::ModisEngine(const SearchUniverse* universe,
                         PerformanceOracle* oracle, ModisConfig config)
    : ModisEngine(universe, oracle, std::move(config), EngineRuntime{}) {}

ModisEngine::ModisEngine(const SearchUniverse* universe,
                         PerformanceOracle* oracle, ModisConfig config,
                         EngineRuntime runtime)
    : universe_(universe),
      oracle_(oracle),
      config_(config),
      rng_(config.seed),
      extern_pool_(runtime.pool),
      mat_cache_(config.table_cache_entries),
      extern_cache_(runtime.record_cache),
      trace_(runtime.trace),
      trace_parent_(runtime.trace_parent),
      correlation_(oracle->measures().size(), config.theta) {
  MODIS_CHECK(universe_ != nullptr) << "ModisEngine: null universe";
  MODIS_CHECK(oracle_ != nullptr) << "ModisEngine: null oracle";
  if (extern_pool_ == nullptr) {
    const size_t threads = config_.num_threads == 0
                               ? std::thread::hardware_concurrency()
                               : config_.num_threads;
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  }
  const size_t m = oracle_->measures().size();
  MODIS_CHECK(m >= 1) << "ModisEngine: empty measure set";
  decisive_ = config_.decisive_measure == SIZE_MAX ? m - 1
                                                   : config_.decisive_measure;
  MODIS_CHECK(decisive_ < m) << "decisive measure index out of range";
  lower_bounds_ = LowerBounds(oracle_->measures());
  upper_bounds_ = UpperBounds(oracle_->measures());
  size_correlation_.assign(m, 0.0);

  if (config_.cache_mode == CacheMode::kOff) {
    extern_cache_ = nullptr;  // kOff wins even over a provided cache.
  }
  const bool needs_fingerprint =
      runtime.fuser != nullptr || extern_cache_ != nullptr ||
      (config_.cache_mode != CacheMode::kOff &&
       !config_.record_cache_path.empty());
  const uint64_t fingerprint =
      needs_fingerprint
          ? TaskFingerprint(*universe_, oracle_->measures(),
                            config_.record_cache_namespace,
                            oracle_->ModelIdentity())
          : 0;
  if (runtime.fuser != nullptr) {
    // Fusion never changes what a training returns (trainings are
    // deterministic per fingerprint), so it is sound under every cache
    // mode — including kOff.
    fuser_ = runtime.fuser;
    oracle_->AttachTrainingFuser(fuser_, fingerprint);
  }
  if (config_.cache_mode == CacheMode::kOff) {
    // No persistent records in any form.
  } else if (extern_cache_ != nullptr) {
    // Shared, already-open cache: scope by this task's fingerprint; a
    // per-query kRead mode becomes a no-append view of the shared file.
    oracle_->AttachRecordCache(
        extern_cache_, fingerprint,
        /*write_through=*/config_.cache_mode == CacheMode::kReadWrite);
  } else if (!config_.record_cache_path.empty()) {
    PersistentRecordCache::Options cache_options;
    cache_options.max_bytes = config_.record_cache_max_bytes;
    cache_options.page_size = config_.record_cache_page_size;
    cache_options.buffer_pool_frames = config_.record_cache_buffer_frames;
    auto opened =
        PersistentRecordCache::Open(config_.record_cache_path,
                                    config_.cache_mode, fingerprint,
                                    cache_options);
    if (opened.ok()) {
      record_cache_ = std::move(opened).value();
      oracle_->AttachRecordCache(record_cache_.get(), fingerprint);
    } else {
      // A broken cache must never break the search: run cold. (kRead on a
      // missing file, or a log locked by a live host, lands here too.)
      MODIS_LOG(WARN, "engine")
          << "record cache disabled: " << opened.status().ToString();
    }
  }
}

ModisEngine::~ModisEngine() {
  PersistentRecordCache* cache = ActiveCache();
  if (cache != nullptr) {
    const Status flushed = cache->Flush();
    (void)flushed;
    // Only detach our own attachment: a newer engine sharing this oracle
    // may have attached its own cache in the meantime.
    if (oracle_->record_cache() == cache) {
      oracle_->AttachRecordCache(nullptr);
    }
  }
  if (fuser_ != nullptr && oracle_->training_fuser() == fuser_) {
    oracle_->AttachTrainingFuser(nullptr);
  }
  if (trace_ != nullptr && oracle_->trace_recorder() == trace_) {
    oracle_->SetTraceContext(nullptr, kNoSpan);
  }
}

std::vector<StateBitmap> ModisEngine::OpGen(const StateBitmap& state,
                                            bool forward) const {
  const UnitLayout& layout = universe_->layout();
  std::vector<StateBitmap> children;
  for (size_t u = 0; u < layout.num_units(); ++u) {
    const bool bit = state.Get(u);
    if (forward && !bit) continue;   // Reduct flips 1 -> 0.
    if (!forward && bit) continue;   // Augment flips 0 -> 1.
    if (layout.IsAttributeUnit(u)) {
      if (!layout.attr_flippable[u]) continue;
    } else {
      // Cluster flips are only meaningful while the attribute is included;
      // flipping them otherwise spawns states with identical datasets.
      const size_t attr = layout.cluster(u).attr_index;
      if (!state.Get(attr)) continue;
    }
    children.push_back(state.WithFlipped(u));
  }
  return children;
}

void ModisEngine::RefreshCorrelation() {
  const auto& records = oracle_->store().records();
  if (records.size() < 3) return;
  std::vector<PerfVector> perfs;
  perfs.reserve(records.size());
  std::vector<double> row_fraction;
  row_fraction.reserve(records.size());
  for (const auto& r : records) {
    perfs.push_back(r.eval.normalized);
    // StateFeatures appends [row_fraction, col_fraction] after the bitmap.
    MODIS_CHECK(r.features.size() >= 2) << "state features missing fractions";
    row_fraction.push_back(r.features[r.features.size() - 2]);
  }
  correlation_.Update(perfs);
  const size_t m = oracle_->measures().size();
  std::vector<double> column(perfs.size());
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < perfs.size(); ++i) column[i] = perfs[i][j];
    size_correlation_[j] = SpearmanCorrelation(column, row_fraction);
  }
}

std::vector<std::pair<double, double>> ModisEngine::ParameterizedRange(
    const StateBitmap& state) {
  const auto& records = oracle_->store().records();
  if (records.size() < config_.min_records_for_pruning) return {};
  const double z = universe_->RowFraction(state);

  // Bracket the state's size between the nearest valuated tests below and
  // above; their measures bound the un-valuated state's measures for every
  // measure strongly correlated with |D| (Example 6 of the paper).
  const TestRecordStore::Record* below = nullptr;
  const TestRecordStore::Record* above = nullptr;
  double below_z = -1.0, above_z = 2.0;
  for (const auto& r : records) {
    const double rz = r.features[r.features.size() - 2];
    if (rz <= z && rz > below_z) {
      below_z = rz;
      below = &r;
    }
    if (rz >= z && rz < above_z) {
      above_z = rz;
      above = &r;
    }
  }
  if (below == nullptr || above == nullptr) return {};

  const size_t m = oracle_->measures().size();
  std::vector<std::pair<double, double>> range(m);
  for (size_t j = 0; j < m; ++j) {
    if (std::abs(size_correlation_[j]) < config_.theta) return {};
    const double a = below->eval.normalized[j];
    const double b = above->eval.normalized[j];
    range[j] = {std::min(a, b), std::max(a, b)};
  }
  return range;
}

bool ModisEngine::CanPrune(const StateBitmap& state) {
  if (!config_.correlation_pruning) return false;
  const auto range = ParameterizedRange(state);
  if (range.empty()) return false;
  // Optimistic vector: the lower end p̂l of every measure. If some skyline
  // member ε-dominates even this best case, the state (and its one-flip
  // descendants, which are never spawned from a pruned state) cannot enter
  // the ε-skyline — Lemma 4's safe-pruning condition.
  PerfVector optimistic(range.size());
  for (size_t j = 0; j < range.size(); ++j) optimistic[j] = range[j].first;
  for (size_t e = 0; e < entries_.size(); ++e) {
    if (!entry_alive_[e]) continue;
    if (EpsilonDominates(entries_[e].eval.normalized, optimistic,
                         config_.epsilon)) {
      return true;
    }
  }
  return false;
}

void ModisEngine::UPareto(const StateBitmap& state,
                          const std::string& signature, const Evaluation& eval,
                          int level) {
  // Early skip when any measure exceeds its tolerance p_u.
  for (size_t j = 0; j < eval.normalized.size(); ++j) {
    if (eval.normalized[j] > upper_bounds_[j] + 1e-12) return;
  }
  // Grid over all but the decisive measure. We permute the decisive
  // measure to the last slot to reuse GridPosition's convention.
  PerfVector perm = eval.normalized;
  std::vector<double> lb = lower_bounds_;
  if (decisive_ + 1 != perm.size()) {
    std::swap(perm[decisive_], perm.back());
    std::swap(lb[decisive_], lb.back());
  }
  const std::vector<int64_t> pos =
      GridPosition(perm, lb, config_.epsilon);

  SkylineEntry entry;
  entry.state = state;
  entry.eval = eval;
  entry.level = level;
  if (MaterializationPtr cached = mat_cache_.Get(signature)) {
    entry.rows = cached->mask.Count();
    ++stats_.mask_fast_path_hits;
  } else {
    entry.rows = universe_->CountRows(state);
  }
  entry.cols = 0;
  for (size_t a = 0; a < universe_->layout().num_attributes(); ++a) {
    if (state.Get(a)) ++entry.cols;
  }

  auto it = grid_.find(pos);
  if (it == grid_.end() || it->second == kMissing ||
      !entry_alive_[it->second]) {
    grid_[pos] = entries_.size();
    entries_.push_back(std::move(entry));
    entry_alive_.push_back(true);
    return;
  }
  SkylineEntry& incumbent = entries_[it->second];
  if (eval.normalized[decisive_] <
      incumbent.eval.normalized[decisive_]) {
    entry_alive_[it->second] = false;
    grid_[pos] = entries_.size();
    entries_.push_back(std::move(entry));
    entry_alive_.push_back(true);
  }
}

void ModisEngine::CollectState(const StateBitmap& state,
                               std::string parent_signature, int level,
                               Frontier* frontier,
                               std::vector<BatchItem>* batch) {
  std::string sig = state.Signature();
  auto& visited =
      frontier->forward ? visited_forward_ : visited_backward_;
  auto& other = frontier->forward ? visited_backward_ : visited_forward_;
  if (!visited.insert(sig).second) return;  // Already explored.
  if (other.count(sig) > 0) frontiers_met_ = true;

  ++stats_.generated_states;
  if (CanPrune(state)) {
    ++stats_.pruned_states;
    return;  // Not valuated, not enqueued: the path is cut here.
  }
  batch->push_back(
      {state, std::move(sig), std::move(parent_signature), level});
}

void ModisEngine::ValuateBatch(std::vector<BatchItem> items,
                               Frontier* frontier, SpanId trace_scope) {
  if (items.empty()) return;

  SpanId batch_span = kNoSpan;
  PerformanceOracle::Stats before;
  if (trace_ != nullptr) {
    batch_span = trace_->Begin("batch", trace_scope);
    trace_->AddAttr(batch_span, "batch_size",
                    static_cast<int64_t>(items.size()));
    before = oracle_->stats();
    // The oracle parents its plan/train/commit/flush spans under this
    // batch for the duration of the call pair below.
    oracle_->SetTraceContext(trace_, batch_span);
  }

  std::vector<ValuationRequest> requests;
  requests.reserve(items.size());
  for (const BatchItem& item : items) {
    ValuationRequest req;
    req.key = item.signature;
    // A state whose materialization is already resident (a re-seeded
    // parent, a frontier meeting point) gets its row fraction from the
    // cached mask's popcount instead of recomputing the surviving set.
    if (MaterializationPtr cached = mat_cache_.Get(item.signature)) {
      req.features = universe_->StateFeatures(item.state, cached->mask);
      ++stats_.mask_fast_path_hits;
    } else {
      req.features = universe_->StateFeatures(item.state);
    }
    // Materialization runs lazily on a worker thread for exact items:
    // reuse the parent's cached materialization along the one-flip edge
    // when it is still resident, and cache the child for its own children.
    const SearchUniverse* universe = universe_;
    MaterializationCache* cache = &mat_cache_;
    req.materialize = [universe, cache, state = item.state,
                       sig = item.signature,
                       parent_sig = item.parent_signature]() {
      if (MaterializationPtr hit = cache->Get(sig)) return hit;
      const MaterializationPtr parent =
          parent_sig.empty() ? nullptr : cache->Get(parent_sig);
      MaterializationPtr m = parent != nullptr
                                 ? universe->MaterializeFrom(*parent, state)
                                 : universe->MaterializeRecord(state);
      cache->Put(sig, m);
      return m;
    };
    requests.push_back(std::move(req));
  }

  BatchPlan plan = oracle_->PrepareBatch(std::move(requests));
  std::vector<Result<Evaluation>> results =
      oracle_->ValuateBatch(std::move(plan), EffectivePool());
  MODIS_CHECK(results.size() == items.size()) << "batch result misalignment";

  if (trace_ != nullptr) {
    const PerformanceOracle::Stats after = oracle_->stats();
    trace_->AddAttr(batch_span, "exact",
                    static_cast<int64_t>(after.exact_evals -
                                         before.exact_evals));
    trace_->AddAttr(batch_span, "surrogate",
                    static_cast<int64_t>(after.surrogate_evals -
                                         before.surrogate_evals));
    trace_->AddAttr(batch_span, "cached",
                    static_cast<int64_t>(after.cache_hits -
                                         before.cache_hits));
    trace_->AddAttr(batch_span, "persistent",
                    static_cast<int64_t>(after.persistent_hits -
                                         before.persistent_hits));
    trace_->AddAttr(batch_span, "fused",
                    static_cast<int64_t>(after.fused_hits -
                                         before.fused_hits));
  }

  // Commit in collection order, so the skyline grid and the next level's
  // queue are independent of how the batch was scheduled.
  for (size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    ++stats_.valuated_states;
    const Result<Evaluation>& eval = results[i];
    if (!eval.ok()) {
      // Untrainable dataset (too small / single class): children can only
      // be more reduced on the forward side, so the path is dropped;
      // backward augmentation may still recover, so keep expanding there
      // (at the lowest priority).
      if (!frontier->forward && item.level < config_.max_level) {
        frontier->queue.push_back({item.state, item.level, 2.0});
      }
      continue;
    }
    UPareto(item.state, item.signature, eval.value(), item.level);
    if (item.level < config_.max_level) {
      // Priority: the worst bound-violation ratio max_j p_j / p_u_j —
      // states closest to (or inside) the user-defined ranges are extended
      // first.
      double priority = 0.0;
      for (size_t j = 0; j < eval.value().normalized.size(); ++j) {
        priority = std::max(priority,
                            eval.value().normalized[j] / upper_bounds_[j]);
      }
      frontier->queue.push_back({item.state, item.level, priority});
    }
  }

  if (trace_ != nullptr) {
    oracle_->SetTraceContext(nullptr, kNoSpan);
    trace_->End(batch_span);
  }
}

void ModisEngine::ExpandLevel(Frontier* frontier, int level) {
  SpanId level_span = kNoSpan;
  if (trace_ != nullptr) {
    level_span = trace_->Begin("level", trace_parent_);
    trace_->AddAttr(level_span, "level", level);
    trace_->AddAttr(level_span, "forward", frontier->forward ? 1 : 0);
  }

  // Pull the entries parked at `level`, most promising first: when the
  // budget runs out mid-level, the best paths have been extended (§5.2's
  // prioritized valuation).
  std::vector<Frontier::Entry> current;
  const size_t pending = frontier->queue.size();
  for (size_t i = 0; i < pending; ++i) {
    Frontier::Entry entry = std::move(frontier->queue.front());
    frontier->queue.pop_front();
    if (entry.level != level) {
      frontier->queue.push_back(std::move(entry));
    } else {
      current.push_back(std::move(entry));
    }
  }
  std::stable_sort(current.begin(), current.end(),
                   [](const Frontier::Entry& a, const Frontier::Entry& b) {
                     return a.priority < b.priority;
                   });

  // Collect the whole level's children, then issue one batch.
  std::vector<BatchItem> batch;
  for (const Frontier::Entry& entry : current) {
    if (stats_.valuated_states + batch.size() >= config_.max_states) break;
    const std::string parent_sig = entry.state.Signature();
    for (const StateBitmap& child : OpGen(entry.state, frontier->forward)) {
      if (stats_.valuated_states + batch.size() >= config_.max_states) break;
      CollectState(child, parent_sig, level + 1, frontier, &batch);
    }
  }
  ValuateBatch(std::move(batch), frontier, level_span);
  if (trace_ != nullptr) trace_->End(level_span);
}

void ModisEngine::DiversifyLevel() {
  std::vector<size_t> alive;
  for (size_t e = 0; e < entries_.size(); ++e) {
    if (entry_alive_[e]) alive.push_back(e);
  }
  if (alive.size() <= config_.diversify_k) return;

  std::vector<DiversityItem> items;
  items.reserve(alive.size());
  for (size_t e : alive) {
    items.push_back(
        {entries_[e].state.Features(), entries_[e].eval.normalized});
  }
  const double euc_max =
      MaxEuclideanDistance(oracle_->store().NormalizedVectors());
  const std::vector<size_t> kept = DiversifyGreedy(
      items, config_.diversify_k, config_.alpha, euc_max, &rng_);
  std::vector<bool> keep_flag(alive.size(), false);
  for (size_t i : kept) keep_flag[i] = true;
  for (size_t i = 0; i < alive.size(); ++i) {
    if (!keep_flag[i]) entry_alive_[alive[i]] = false;
  }
  RebuildGrid();
}

void ModisEngine::RebuildGrid() {
  grid_.clear();
  const size_t m = oracle_->measures().size();
  for (size_t e = 0; e < entries_.size(); ++e) {
    if (!entry_alive_[e]) continue;
    PerfVector perm = entries_[e].eval.normalized;
    std::vector<double> lb = lower_bounds_;
    if (decisive_ + 1 != m) {
      std::swap(perm[decisive_], perm.back());
      std::swap(lb[decisive_], lb.back());
    }
    grid_[GridPosition(perm, lb, config_.epsilon)] = e;
  }
}

Result<ModisResult> ModisEngine::Run() {
  WallTimer timer;
  Frontier forward;
  forward.forward = true;
  Frontier backward;
  backward.forward = false;

  // Seed the frontiers at level 0, each as a one-item batch.
  auto seed = [this](const StateBitmap& state, Frontier* frontier) {
    std::vector<BatchItem> batch;
    CollectState(state, /*parent_signature=*/"", /*level=*/0, frontier,
                 &batch);
    if (stats_.valuated_states + batch.size() > config_.max_states) {
      return;  // Budget of zero: nothing to do.
    }
    ValuateBatch(std::move(batch), frontier, trace_parent_);
  };
  seed(universe_->FullBitmap(), &forward);
  if (config_.bidirectional) {
    seed(universe_->BackwardBitmap(), &backward);
  }

  int level = 0;
  while (level < config_.max_level && !frontiers_met_ &&
         stats_.valuated_states < config_.max_states &&
         (!forward.queue.empty() ||
          (config_.bidirectional && !backward.queue.empty()))) {
    RefreshCorrelation();

    ExpandLevel(&forward, level);
    if (config_.bidirectional) ExpandLevel(&backward, level);

    if (config_.diversify) DiversifyLevel();
    ++level;
  }

  // Final skyline: alive grid entries, minus any residual cross-cell
  // dominance (the grid guarantees the ε-cover; the exact filter removes
  // dominated members so the output is mutually non-dominated).
  std::vector<size_t> alive;
  std::vector<PerfVector> perfs;
  for (size_t e = 0; e < entries_.size(); ++e) {
    if (!entry_alive_[e]) continue;
    alive.push_back(e);
    perfs.push_back(entries_[e].eval.normalized);
  }
  ModisResult result = stats_;
  for (size_t idx : ParetoFrontNaive(perfs)) {
    result.skyline.push_back(entries_[alive[idx]]);
  }
  result.seconds = timer.Seconds();
  result.oracle_stats = oracle_->stats();
  if (PersistentRecordCache* cache = ActiveCache()) {
    SpanId flush_span = kNoSpan;
    if (trace_ != nullptr) flush_span = trace_->Begin("flush", trace_parent_);
    const Status flushed = cache->Flush();
    (void)flushed;
    if (trace_ != nullptr) trace_->End(flush_span);
    result.record_cache_active = true;
    // For a shared cache these counters are host-wide, not per-query;
    // per-query accounting lives in oracle_stats.persistent_hits.
    result.record_cache_stats = cache->stats();
  }
  return result;
}

}  // namespace modis
