#ifndef MODIS_GRAPH_LIGHTGCN_H_
#define MODIS_GRAPH_LIGHTGCN_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace modis {

/// Hyperparameters of the LightGCN-lite link scorer.
struct LightGcnOptions {
  int embedding_dim = 16;
  int num_layers = 2;
  int epochs = 40;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  /// BPR triples sampled per epoch, as a multiple of the edge count.
  double samples_per_edge = 2.0;
};

/// Simplified LightGCN (He et al., SIGIR'20): ID embeddings propagated
/// through the symmetric-normalized bipartite adjacency, averaged over
/// layers, scored by dot product, trained with BPR loss — the "LGRmodel" of
/// task T5.
class LightGcn {
 public:
  explicit LightGcn(LightGcnOptions options = {});

  /// Trains on the interaction graph. Deterministic given (graph, seed).
  Status Fit(const BipartiteGraph& graph, Rng* rng);

  /// Affinity score of a user-item pair from the propagated embeddings.
  double Score(int user, int item) const;

  /// Items ranked by descending score for `user`, excluding `exclude`
  /// (normally the user's training items).
  std::vector<int> RankItems(int user, const std::vector<int>& exclude) const;

  bool trained() const { return !user_emb_.empty(); }
  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }

 private:
  void Propagate(const BipartiteGraph& graph);

  LightGcnOptions options_;
  int num_users_ = 0;
  int num_items_ = 0;
  // Raw (layer-0) embeddings, updated by SGD.
  std::vector<std::vector<double>> user_emb0_, item_emb0_;
  // Final layer-averaged embeddings used for scoring.
  std::vector<std::vector<double>> user_emb_, item_emb_;
};

/// Measured ranking quality of a trained scorer on held-out edges.
struct LinkEvalResult {
  /// Keyed by metric name: "p@5", "r@5", "ndcg@5", ... for each k in `ks`,
  /// plus "train_seconds".
  std::map<std::string, double> metrics;
};

/// Trains LightGCN-lite on `train` and evaluates ranking metrics at each
/// cutoff in `ks` against `test_edges` (one entry per user: the held-out
/// items of that user; users with no held-out items are skipped).
Result<LinkEvalResult> EvaluateLinkTask(
    const BipartiteGraph& train,
    const std::vector<std::vector<int>>& test_edges,
    const std::vector<int>& ks, const LightGcnOptions& options, uint64_t seed);

}  // namespace modis

#endif  // MODIS_GRAPH_LIGHTGCN_H_
