#ifndef MODIS_GRAPH_BIPARTITE_GRAPH_H_
#define MODIS_GRAPH_BIPARTITE_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace modis {

/// A user-item interaction edge.
struct Edge {
  int user = 0;
  int item = 0;
};

/// Bipartite interaction graph for the T5 link-regression task.
///
/// MODis treats graph data as an *edge table*: the Augment/Reduct operators
/// insert/delete edge rows exactly like tuples ("the augment (resp. reduct)
/// operators are defined as edge insertions (resp. deletions)", §6). This
/// class is the graph view of such a table.
class BipartiteGraph {
 public:
  BipartiteGraph(int num_users, int num_items);

  /// Builds a graph from an edge table; `user_col`/`item_col` must be
  /// integer columns with ids in [0, num_users) / [0, num_items). Rows with
  /// null endpoints are skipped. Duplicate edges are kept once.
  static Result<BipartiteGraph> FromEdgeTable(const Table& table,
                                              const std::string& user_col,
                                              const std::string& item_col,
                                              int num_users, int num_items);

  void AddEdge(int user, int item);

  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<int>& ItemsOf(int user) const { return user_items_[user]; }
  const std::vector<int>& UsersOf(int item) const { return item_users_[item]; }

  bool HasEdge(int user, int item) const;

 private:
  int num_users_;
  int num_items_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> user_items_;
  std::vector<std::vector<int>> item_users_;
};

}  // namespace modis

#endif  // MODIS_GRAPH_BIPARTITE_GRAPH_H_
