#include "graph/bipartite_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace modis {

BipartiteGraph::BipartiteGraph(int num_users, int num_items)
    : num_users_(num_users),
      num_items_(num_items),
      user_items_(num_users),
      item_users_(num_items) {
  MODIS_CHECK(num_users >= 0 && num_items >= 0) << "negative graph size";
}

Result<BipartiteGraph> BipartiteGraph::FromEdgeTable(
    const Table& table, const std::string& user_col,
    const std::string& item_col, int num_users, int num_items) {
  auto uc = table.schema().FindField(user_col);
  auto ic = table.schema().FindField(item_col);
  if (!uc.has_value() || !ic.has_value()) {
    return Status::NotFound("FromEdgeTable: endpoint column missing");
  }
  BipartiteGraph g(num_users, num_items);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& u = table.At(r, *uc);
    const Value& i = table.At(r, *ic);
    if (u.is_null() || i.is_null() || !u.IsNumeric() || !i.IsNumeric()) {
      continue;
    }
    const int user = static_cast<int>(u.AsDouble());
    const int item = static_cast<int>(i.AsDouble());
    if (user < 0 || user >= num_users || item < 0 || item >= num_items) {
      return Status::OutOfRange("FromEdgeTable: endpoint id out of range");
    }
    if (!g.HasEdge(user, item)) g.AddEdge(user, item);
  }
  return g;
}

void BipartiteGraph::AddEdge(int user, int item) {
  MODIS_CHECK(user >= 0 && user < num_users_) << "user id out of range";
  MODIS_CHECK(item >= 0 && item < num_items_) << "item id out of range";
  edges_.push_back({user, item});
  user_items_[user].push_back(item);
  item_users_[item].push_back(user);
}

bool BipartiteGraph::HasEdge(int user, int item) const {
  MODIS_CHECK(user >= 0 && user < num_users_) << "user id out of range";
  const auto& items = user_items_[user];
  return std::find(items.begin(), items.end(), item) != items.end();
}

}  // namespace modis
