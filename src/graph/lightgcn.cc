#include "graph/lightgcn.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/stats.h"
#include "common/timer.h"
#include "ml/metrics.h"

namespace modis {

LightGcn::LightGcn(LightGcnOptions options) : options_(options) {}

Status LightGcn::Fit(const BipartiteGraph& graph, Rng* rng) {
  if (graph.num_edges() == 0) {
    return Status::InvalidArgument("LightGcn: graph has no edges");
  }
  num_users_ = graph.num_users();
  num_items_ = graph.num_items();
  const int d = options_.embedding_dim;

  auto init = [&](int n) {
    std::vector<std::vector<double>> emb(n, std::vector<double>(d));
    for (auto& row : emb) {
      for (double& v : row) v = rng->Normal(0.0, 0.1);
    }
    return emb;
  };
  user_emb0_ = init(num_users_);
  item_emb0_ = init(num_items_);

  const auto& edges = graph.edges();
  const size_t samples = std::max<size_t>(
      1, static_cast<size_t>(options_.samples_per_edge * edges.size()));

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Propagate(graph);
    for (size_t s = 0; s < samples; ++s) {
      const Edge& e = edges[rng->UniformInt(edges.size())];
      // Negative item not interacted with by e.user.
      int neg = static_cast<int>(rng->UniformInt(num_items_));
      for (int tries = 0; tries < 10 && graph.HasEdge(e.user, neg); ++tries) {
        neg = static_cast<int>(rng->UniformInt(num_items_));
      }
      if (graph.HasEdge(e.user, neg)) continue;

      const auto& u = user_emb_[e.user];
      const auto& ip = item_emb_[e.item];
      const auto& in = item_emb_[neg];
      double x = 0.0;
      for (int k = 0; k < d; ++k) x += u[k] * (ip[k] - in[k]);
      const double g = Sigmoid(-x);  // d/dx of -log sigmoid(x), negated.

      // BPR gradient step on the layer-0 embeddings (propagated embeddings
      // are re-derived each epoch; updating layer 0 directly is the
      // standard LightGCN simplification for small graphs).
      auto& u0 = user_emb0_[e.user];
      auto& p0 = item_emb0_[e.item];
      auto& n0 = item_emb0_[neg];
      const double lr = options_.learning_rate;
      const double reg = options_.l2;
      for (int k = 0; k < d; ++k) {
        const double du = g * (ip[k] - in[k]) - reg * u0[k];
        const double dp = g * u[k] - reg * p0[k];
        const double dn = -g * u[k] - reg * n0[k];
        u0[k] += lr * du;
        p0[k] += lr * dp;
        n0[k] += lr * dn;
      }
    }
  }
  Propagate(graph);
  return Status::OK();
}

void LightGcn::Propagate(const BipartiteGraph& graph) {
  const int d = options_.embedding_dim;
  // Accumulate the layer average starting from layer 0.
  user_emb_ = user_emb0_;
  item_emb_ = item_emb0_;
  std::vector<std::vector<double>> cur_u = user_emb0_, cur_i = item_emb0_;

  for (int layer = 0; layer < options_.num_layers; ++layer) {
    std::vector<std::vector<double>> next_u(num_users_,
                                            std::vector<double>(d, 0.0));
    std::vector<std::vector<double>> next_i(num_items_,
                                            std::vector<double>(d, 0.0));
    for (const Edge& e : graph.edges()) {
      const double du = static_cast<double>(graph.ItemsOf(e.user).size());
      const double di = static_cast<double>(graph.UsersOf(e.item).size());
      const double norm = 1.0 / std::sqrt(std::max(du, 1.0) * std::max(di, 1.0));
      for (int k = 0; k < d; ++k) {
        next_u[e.user][k] += norm * cur_i[e.item][k];
        next_i[e.item][k] += norm * cur_u[e.user][k];
      }
    }
    cur_u = std::move(next_u);
    cur_i = std::move(next_i);
    for (int u = 0; u < num_users_; ++u) {
      for (int k = 0; k < d; ++k) user_emb_[u][k] += cur_u[u][k];
    }
    for (int i = 0; i < num_items_; ++i) {
      for (int k = 0; k < d; ++k) item_emb_[i][k] += cur_i[i][k];
    }
  }
  const double inv = 1.0 / (options_.num_layers + 1.0);
  for (auto& row : user_emb_) {
    for (double& v : row) v *= inv;
  }
  for (auto& row : item_emb_) {
    for (double& v : row) v *= inv;
  }
}

double LightGcn::Score(int user, int item) const {
  MODIS_CHECK(trained()) << "LightGcn not trained";
  MODIS_CHECK(user >= 0 && user < num_users_) << "user out of range";
  MODIS_CHECK(item >= 0 && item < num_items_) << "item out of range";
  const auto& u = user_emb_[user];
  const auto& i = item_emb_[item];
  double s = 0.0;
  for (size_t k = 0; k < u.size(); ++k) s += u[k] * i[k];
  return s;
}

std::vector<int> LightGcn::RankItems(int user,
                                     const std::vector<int>& exclude) const {
  std::unordered_set<int> skip(exclude.begin(), exclude.end());
  std::vector<std::pair<double, int>> scored;
  scored.reserve(num_items_);
  for (int i = 0; i < num_items_; ++i) {
    if (skip.count(i) > 0) continue;
    scored.emplace_back(Score(user, i), i);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // Deterministic tie-break.
  });
  std::vector<int> out;
  out.reserve(scored.size());
  for (const auto& [score, item] : scored) out.push_back(item);
  return out;
}

Result<LinkEvalResult> EvaluateLinkTask(
    const BipartiteGraph& train,
    const std::vector<std::vector<int>>& test_edges,
    const std::vector<int>& ks, const LightGcnOptions& options,
    uint64_t seed) {
  if (test_edges.size() != static_cast<size_t>(train.num_users())) {
    return Status::InvalidArgument(
        "EvaluateLinkTask: test_edges must have one entry per user");
  }
  LightGcn model(options);
  Rng rng(seed);
  WallTimer timer;
  MODIS_RETURN_IF_ERROR(model.Fit(train, &rng));
  const double train_seconds = timer.Seconds();

  std::vector<std::vector<int>> relevant;
  std::vector<std::vector<int>> ranked;
  for (int u = 0; u < train.num_users(); ++u) {
    if (test_edges[u].empty()) continue;
    relevant.push_back(test_edges[u]);
    ranked.push_back(model.RankItems(u, train.ItemsOf(u)));
  }

  LinkEvalResult out;
  out.metrics["train_seconds"] = train_seconds;
  for (int k : ks) {
    out.metrics["p@" + std::to_string(k)] = PrecisionAtK(relevant, ranked, k);
    out.metrics["r@" + std::to_string(k)] = RecallAtK(relevant, ranked, k);
    out.metrics["ndcg@" + std::to_string(k)] = NdcgAtK(relevant, ranked, k);
  }
  return out;
}

}  // namespace modis
