#include "datagen/tasks.h"

#include <algorithm>

#include "common/logging.h"
#include "ml/gradient_boosting.h"
#include "ml/linear.h"
#include "ml/random_forest.h"

namespace modis {

const char* BenchTaskName(BenchTaskId id) {
  switch (id) {
    case BenchTaskId::kMovie:
      return "T1-movie";
    case BenchTaskId::kHouse:
      return "T2-house";
    case BenchTaskId::kAvocado:
      return "T3-avocado";
    case BenchTaskId::kMental:
      return "T4-mental";
    case BenchTaskId::kXray:
      return "case1-xray";
    case BenchTaskId::kFeaturePool:
      return "case2-feature-pool";
  }
  return "unknown";
}

namespace {

MeasureSpec TrainTime(double scale_seconds) {
  return MeasureSpec::Minimize("train_time", scale_seconds);
}

}  // namespace

Result<TabularBench> MakeTabularBench(BenchTaskId id, double row_scale,
                                      int extra_tables, uint64_t seed_offset) {
  TabularBench bench;
  bench.name = BenchTaskName(id);

  DataLakeSpec spec;
  spec.name = bench.name;
  SupervisedTask task;
  GbmOptions gbm;  // Shared default for GBM-family prototypes.
  gbm.num_rounds = 40;

  switch (id) {
    case BenchTaskId::kMovie: {
      // T1: movie-gross prediction. Paper universal table: (12, 3732).
      spec.num_rows = static_cast<size_t>(3732 * row_scale);
      spec.num_tables = 4 + extra_tables;
      spec.informative_per_table = 1;
      spec.noisy_per_table = 1;
      spec.redundant_per_table = 1;
      spec.task = TaskKind::kRegression;
      spec.seed = 101 + seed_offset;
      task.task = TaskKind::kRegression;
      task.measures = {MeasureSpec::Maximize("acc"),
                       MeasureSpec::Maximize("fisher"),
                       MeasureSpec::Maximize("mi"), TrainTime(1.0)};
      bench.model = std::make_unique<GradientBoostingRegressor>(gbm);
      break;
    }
    case BenchTaskId::kHouse: {
      // T2: house-price classification. Paper: (27, 1178), 3 classes.
      spec.num_rows = static_cast<size_t>(1178 * row_scale);
      spec.num_tables = 7 + extra_tables;
      spec.informative_per_table = 2;
      spec.noisy_per_table = 1;
      spec.redundant_per_table = 1;
      spec.task = TaskKind::kClassification;
      spec.num_classes = 3;
      spec.seed = 202 + seed_offset;
      task.task = TaskKind::kClassification;
      task.measures = {MeasureSpec::Maximize("f1"),
                       MeasureSpec::Maximize("acc"),
                       MeasureSpec::Maximize("fisher"),
                       MeasureSpec::Maximize("mi"), TrainTime(1.0)};
      ForestOptions forest;
      forest.num_trees = 24;
      bench.model = std::make_unique<RandomForestClassifier>(forest);
      break;
    }
    case BenchTaskId::kAvocado: {
      // T3: avocado-price regression. Paper: (13, 18249); rows scaled to
      // 6000 by default for laptop runtimes (see DESIGN.md).
      spec.num_rows = static_cast<size_t>(6000 * row_scale);
      spec.num_tables = 6 + extra_tables;
      spec.informative_per_table = 1;
      spec.noisy_per_table = 1;
      spec.redundant_per_table = 0;
      spec.task = TaskKind::kRegression;
      spec.corrupt_noise = 1.5;
      spec.seed = 303 + seed_offset;
      task.task = TaskKind::kRegression;
      task.measures = {MeasureSpec::Minimize("mse", 4.0),
                       MeasureSpec::Minimize("mae", 2.0), TrainTime(1.0)};
      bench.model = std::make_unique<RidgeRegressor>(1e-3);
      break;
    }
    case BenchTaskId::kMental: {
      // T4: mental-health classification. Paper universal: (20, 140700)
      // after compression; rows scaled to 6000 by default.
      spec.num_rows = static_cast<size_t>(6000 * row_scale);
      spec.num_tables = 5 + extra_tables;
      spec.informative_per_table = 2;
      spec.noisy_per_table = 1;
      spec.redundant_per_table = 1;
      spec.task = TaskKind::kClassification;
      spec.num_classes = 2;
      spec.seed = 404 + seed_offset;
      task.task = TaskKind::kClassification;
      task.measures = {MeasureSpec::Maximize("acc"),
                       MeasureSpec::Maximize("prec"),
                       MeasureSpec::Maximize("rec"),
                       MeasureSpec::Maximize("f1"),
                       MeasureSpec::Maximize("auc"), TrainTime(2.0)};
      bench.model =
          std::make_unique<GradientBoostingClassifier>(LightGbmLiteOptions());
      break;
    }
    case BenchTaskId::kXray: {
      // Case 1: peak classification over crowdsourced X-ray feature sets.
      spec.num_rows = static_cast<size_t>(1500 * row_scale);
      spec.num_tables = 4 + extra_tables;
      spec.informative_per_table = 2;
      spec.noisy_per_table = 2;
      spec.redundant_per_table = 0;
      spec.task = TaskKind::kClassification;
      spec.num_classes = 2;
      spec.corrupt_noise = 2.5;
      spec.seed = 505 + seed_offset;
      task.task = TaskKind::kClassification;
      task.measures = {MeasureSpec::Maximize("acc"), TrainTime(3.2),
                       MeasureSpec::Maximize("f1")};
      ForestOptions forest;
      forest.num_trees = 24;
      bench.model = std::make_unique<RandomForestClassifier>(forest);
      break;
    }
    case BenchTaskId::kFeaturePool: {
      // Case 2: test-data generation for model benchmarking, with bounds
      // "accuracy > 0.85" (normalized 1-acc <= 0.15) and
      // "training cost < 30 s" (normalized <= 30/30 = 1 with scale 30; the
      // bound bites through upper = 0.999...).
      spec.num_rows = static_cast<size_t>(2500 * row_scale);
      spec.num_tables = 6 + extra_tables;
      spec.informative_per_table = 2;
      spec.noisy_per_table = 2;
      spec.redundant_per_table = 0;
      spec.task = TaskKind::kClassification;
      spec.num_classes = 2;
      spec.seed = 606 + seed_offset;
      task.task = TaskKind::kClassification;
      MeasureSpec acc = MeasureSpec::Maximize("acc");
      acc.upper = 0.15;  // accuracy >= 0.85
      MeasureSpec tt = TrainTime(30.0);
      tt.upper = 0.999;  // < 30 s
      task.measures = {acc, tt};
      ForestOptions forest;
      forest.num_trees = 16;
      bench.model = std::make_unique<RandomForestClassifier>(forest);
      break;
    }
  }

  MODIS_ASSIGN_OR_RETURN(bench.lake, GenerateDataLake(spec));
  MODIS_ASSIGN_OR_RETURN(bench.universal, LakeUniversalTable(bench.lake));

  task.target = spec.target;
  task.exclude = {spec.key};
  task.seed = 7 + seed_offset;
  bench.task = std::move(task);

  bench.universe_options.protected_attributes = {spec.target, spec.key};
  bench.universe_options.max_clusters = 5;
  bench.universe_options.seed = 17 + seed_offset;
  return bench;
}

Result<GraphBench> MakeGraphBench(double scale, uint64_t seed_offset) {
  GraphLakeSpec spec;
  spec.num_users = std::max(8, static_cast<int>(60 * scale));
  spec.num_items = std::max(16, static_cast<int>(120 * scale));
  spec.seed = 4321 + seed_offset;

  GraphBench bench;
  MODIS_ASSIGN_OR_RETURN(bench.lake, GenerateGraphLake(spec));

  LinkTask task;
  task.user_col = "user";
  task.item_col = "item";
  task.num_users = spec.num_users;
  task.num_items = spec.num_items;
  task.test_edges = bench.lake.test_edges;
  task.seed = 11 + seed_offset;
  task.measures = {
      MeasureSpec::Maximize("p@5"),    MeasureSpec::Maximize("p@10"),
      MeasureSpec::Maximize("r@5"),    MeasureSpec::Maximize("r@10"),
      MeasureSpec::Maximize("ndcg@5"), MeasureSpec::Maximize("ndcg@10"),
  };
  task.model.epochs = 25;
  task.model.embedding_dim = 12;
  bench.task = std::move(task);
  return bench;
}

}  // namespace modis
