#include "datagen/graph_gen.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/rng.h"

namespace modis {

Result<GraphLake> GenerateGraphLake(const GraphLakeSpec& spec) {
  if (spec.num_users <= 0 || spec.num_items <= 0 ||
      spec.num_communities <= 0) {
    return Status::InvalidArgument("GenerateGraphLake: degenerate spec");
  }
  if (spec.num_items < spec.num_communities) {
    return Status::InvalidArgument(
        "GenerateGraphLake: fewer items than communities");
  }
  Rng rng(spec.seed);

  GraphLake lake;
  lake.spec = spec;
  lake.test_edges.resize(spec.num_users);

  // Community membership: round-robin for determinism.
  auto user_comm = [&](int u) { return u % spec.num_communities; };
  auto item_comm = [&](int i) { return i % spec.num_communities; };

  // Items of each community.
  std::vector<std::vector<int>> comm_items(spec.num_communities);
  for (int i = 0; i < spec.num_items; ++i) {
    comm_items[item_comm(i)].push_back(i);
  }

  Table edges;
  MODIS_CHECK_OK(edges.AddColumn({"user", ColumnType::kNumeric}, {}));
  MODIS_CHECK_OK(edges.AddColumn({"item", ColumnType::kNumeric}, {}));
  MODIS_CHECK_OK(edges.AddColumn({"affinity", ColumnType::kNumeric}, {}));
  MODIS_CHECK_OK(edges.AddColumn({"recency", ColumnType::kNumeric}, {}));

  auto add_edge = [&edges, &rng](int u, int i, bool true_edge) {
    const double affinity = true_edge ? rng.Uniform(0.7, 1.0)
                                      : rng.Uniform(0.0, 0.35);
    const double recency = rng.Uniform(0.0, 1.0);
    MODIS_CHECK_OK(edges.AppendRow({Value(static_cast<int64_t>(u)),
                                    Value(static_cast<int64_t>(i)),
                                    Value(affinity), Value(recency)}));
  };

  for (int u = 0; u < spec.num_users; ++u) {
    const auto& pool = comm_items[user_comm(u)];
    const int want = spec.true_edges_per_user + spec.test_edges_per_user;
    const size_t take = std::min<size_t>(pool.size(), want);
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(pool.size(), take);
    std::set<int> used;
    size_t idx = 0;
    for (; idx < picks.size() &&
           static_cast<int>(idx) < spec.true_edges_per_user;
         ++idx) {
      add_edge(u, pool[picks[idx]], /*true_edge=*/true);
      used.insert(pool[picks[idx]]);
    }
    for (; idx < picks.size(); ++idx) {
      lake.test_edges[u].push_back(pool[picks[idx]]);
      used.insert(pool[picks[idx]]);
    }
    // Cross-community noise edges.
    for (int e = 0; e < spec.noise_edges_per_user; ++e) {
      int item = static_cast<int>(rng.UniformInt(spec.num_items));
      for (int tries = 0;
           tries < 20 &&
           (item_comm(item) == user_comm(u) || used.count(item) > 0);
           ++tries) {
        item = static_cast<int>(rng.UniformInt(spec.num_items));
      }
      if (item_comm(item) == user_comm(u) || used.count(item) > 0) continue;
      add_edge(u, item, /*true_edge=*/false);
      used.insert(item);
    }
  }
  lake.edge_table = std::move(edges);
  return lake;
}

}  // namespace modis
