#include "datagen/data_lake.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ops/operators.h"

namespace modis {

namespace {

/// Builds one numeric feature column; `maker` maps row index -> value.
template <typename F>
Column MakeColumn(size_t n, double missing_rate, Rng* rng, F maker) {
  Column col;
  col.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    if (rng->Bernoulli(missing_rate)) {
      col.push_back(Value::Null());
    } else {
      col.push_back(Value(maker(r)));
    }
  }
  return col;
}

}  // namespace

Result<DataLake> GenerateDataLake(const DataLakeSpec& spec) {
  if (spec.num_tables < 1 || spec.num_rows < 10) {
    return Status::InvalidArgument("GenerateDataLake: degenerate spec");
  }
  if (spec.corrupt_segments >= spec.num_segments) {
    return Status::InvalidArgument(
        "GenerateDataLake: corrupt_segments must be < num_segments");
  }
  Rng rng(spec.seed);
  const size_t n = spec.num_rows;

  // Latent factors.
  std::vector<std::vector<double>> latents(
      spec.num_latents, std::vector<double>(n));
  for (auto& z : latents) {
    for (double& v : z) v = rng.Normal();
  }
  // Segment assignment; segments [0, corrupt_segments) are corrupted.
  std::vector<int> segment(n);
  for (size_t r = 0; r < n; ++r) {
    segment[r] = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(spec.num_segments)));
  }

  // Ground-truth target: nonlinear mix of the latents + segment-dependent
  // noise. Classification thresholds the continuous score into classes.
  std::vector<double> score(n);
  for (size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (int l = 0; l < spec.num_latents; ++l) {
      const double w = 1.0 / (1.0 + l);
      s += w * latents[l][r];
    }
    if (spec.num_latents >= 2) s += 0.5 * latents[0][r] * latents[1][r];
    const double sigma =
        segment[r] < spec.corrupt_segments ? spec.corrupt_noise : 0.1;
    score[r] = s + rng.Normal(0.0, sigma);
  }

  DataLake lake;
  lake.spec = spec;

  // Base table: key, segment, target.
  {
    Table base;
    Column key_col;
    for (size_t r = 0; r < n; ++r) {
      key_col.push_back(Value(static_cast<int64_t>(r)));
    }
    MODIS_CHECK_OK(base.AddColumn({spec.key, ColumnType::kNumeric},
                                  std::move(key_col)));
    Column seg_col;
    for (size_t r = 0; r < n; ++r) {
      seg_col.push_back(Value("seg_" + std::to_string(segment[r])));
    }
    MODIS_CHECK_OK(base.AddColumn({"segment", ColumnType::kCategorical},
                                  std::move(seg_col)));
    Column target_col;
    if (spec.task == TaskKind::kRegression) {
      for (size_t r = 0; r < n; ++r) target_col.push_back(Value(score[r]));
    } else {
      // Quantile thresholds over the clean-score distribution.
      std::vector<double> sorted = score;
      std::sort(sorted.begin(), sorted.end());
      std::vector<double> cuts;
      for (int k = 1; k < spec.num_classes; ++k) {
        cuts.push_back(sorted[n * k / spec.num_classes]);
      }
      for (size_t r = 0; r < n; ++r) {
        int k = 0;
        while (k < static_cast<int>(cuts.size()) && score[r] >= cuts[k]) ++k;
        target_col.push_back(Value(static_cast<int64_t>(k)));
      }
    }
    MODIS_CHECK_OK(base.AddColumn({spec.target, ColumnType::kNumeric},
                                  std::move(target_col)));
    lake.tables.push_back(std::move(base));
  }

  // Feature tables.
  int informative_count = 0, noisy_count = 0, redundant_count = 0;
  std::vector<Column> informative_cols;  // For redundant copies.
  for (int t = 1; t < spec.num_tables; ++t) {
    Table table;
    Column key_col;
    for (size_t r = 0; r < n; ++r) {
      key_col.push_back(Value(static_cast<int64_t>(r)));
    }
    MODIS_CHECK_OK(table.AddColumn({spec.key, ColumnType::kNumeric},
                                   std::move(key_col)));
    for (int i = 0; i < spec.informative_per_table; ++i) {
      const int latent = informative_count % spec.num_latents;
      const double slope = rng.Uniform(0.8, 1.5);
      const double bias = rng.Uniform(-0.5, 0.5);
      Column col = MakeColumn(n, spec.missing_rate, &rng,
                              [&](size_t r) {
                                return slope * latents[latent][r] + bias +
                                       rng.Normal(0.0, 0.15);
                              });
      informative_cols.push_back(col);
      MODIS_CHECK_OK(table.AddColumn(
          {"inf_" + std::to_string(informative_count++),
           ColumnType::kNumeric},
          std::move(col)));
    }
    for (int i = 0; i < spec.noisy_per_table; ++i) {
      Column col = MakeColumn(n, spec.missing_rate, &rng, [&](size_t) {
        return rng.Normal(0.0, 1.0);
      });
      MODIS_CHECK_OK(table.AddColumn(
          {"noise_" + std::to_string(noisy_count++), ColumnType::kNumeric},
          std::move(col)));
    }
    for (int i = 0;
         i < spec.redundant_per_table && !informative_cols.empty(); ++i) {
      const Column& src =
          informative_cols[rng.UniformInt(informative_cols.size())];
      Column col;
      col.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        if (src[r].is_null() || rng.Bernoulli(spec.missing_rate)) {
          col.push_back(Value::Null());
        } else {
          col.push_back(Value(src[r].AsDouble() + rng.Normal(0.0, 0.05)));
        }
      }
      MODIS_CHECK_OK(table.AddColumn(
          {"red_" + std::to_string(redundant_count++), ColumnType::kNumeric},
          std::move(col)));
    }
    lake.tables.push_back(std::move(table));
  }
  return lake;
}

Result<Table> LakeUniversalTable(const DataLake& lake) {
  return BuildUniversalTable(lake.tables, lake.key());
}

}  // namespace modis
