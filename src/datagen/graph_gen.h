#ifndef MODIS_DATAGEN_GRAPH_GEN_H_
#define MODIS_DATAGEN_GRAPH_GEN_H_

#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace modis {

/// Blueprint of the synthetic bipartite interaction lake for task T5.
///
/// Users and items are grouped into communities; *true* edges connect a
/// user to items of its own community (these generalize — the held-out test
/// edges are also intra-community), while *noise* edges are random
/// cross-community interactions that hurt the recommender. The edge table
/// carries an `affinity` column (high for true edges) and a `recency`
/// column, so active-domain clustering yields literals that isolate the
/// noisy edges — edge-deletion Reducts can then clean the graph.
struct GraphLakeSpec {
  int num_users = 60;
  int num_items = 120;
  int num_communities = 4;
  /// True intra-community edges per user (train portion).
  int true_edges_per_user = 8;
  /// Held-out intra-community edges per user (test set).
  int test_edges_per_user = 3;
  /// Random cross-community noise edges per user.
  int noise_edges_per_user = 5;
  uint64_t seed = 4321;
};

/// A generated interaction lake: the training edge table and the fixed
/// held-out edges per user.
struct GraphLake {
  GraphLakeSpec spec;
  /// Columns: user, item, affinity, recency (all numeric).
  Table edge_table;
  std::vector<std::vector<int>> test_edges;  // Per user.
};

Result<GraphLake> GenerateGraphLake(const GraphLakeSpec& spec);

}  // namespace modis

#endif  // MODIS_DATAGEN_GRAPH_GEN_H_
