#ifndef MODIS_DATAGEN_TASKS_H_
#define MODIS_DATAGEN_TASKS_H_

#include <memory>
#include <string>

#include "core/universe.h"
#include "datagen/data_lake.h"
#include "datagen/graph_gen.h"
#include "estimator/link_evaluator.h"
#include "estimator/supervised_evaluator.h"
#include "ml/model.h"

namespace modis {

/// The paper's evaluation tasks (§6, Tables 3-6) plus the two case
/// studies of Fig. 11.
enum class BenchTaskId {
  kMovie,        // T1: GBM regressor, P1 = {acc, fisher, mi, t_train}.
  kHouse,        // T2: random forest classifier, P2 = {f1, acc, fisher, mi, t_train}.
  kAvocado,      // T3: ridge regression, P3 = {mse, mae, t_train}.
  kMental,       // T4: LightGBM-lite classifier, P4 = {acc, prec, rec, f1, auc, t_train}.
  kXray,         // Case 1: material-peak RF classifier.
  kFeaturePool,  // Case 2: test-data generation with bounds.
};

const char* BenchTaskName(BenchTaskId id);

/// A fully wired tabular benchmark task: the data lake, its universal
/// table, the evaluation task (target/measures), and the model prototype.
struct TabularBench {
  std::string name;
  DataLake lake;
  Table universal;
  SupervisedTask task;
  std::unique_ptr<MlModel> model;
  SearchUniverse::Options universe_options;

  /// Convenience: a fresh evaluator over the task + model.
  std::unique_ptr<SupervisedEvaluator> MakeEvaluator() const {
    return std::make_unique<SupervisedEvaluator>(task, model->Clone());
  }
};

/// Builds a benchmark task. `row_scale` scales the generated row count
/// (1.0 = the default documented in DESIGN.md); `extra_tables` adds noisy
/// feature tables (for the scalability sweeps over |A|).
Result<TabularBench> MakeTabularBench(BenchTaskId id, double row_scale = 1.0,
                                      int extra_tables = 0,
                                      uint64_t seed_offset = 0);

/// The wired T5 graph benchmark.
struct GraphBench {
  GraphLake lake;
  LinkTask task;

  std::unique_ptr<LinkEvaluator> MakeEvaluator() const {
    return std::make_unique<LinkEvaluator>(task);
  }
};

/// `scale` multiplies users/items (1.0 = default documented size).
Result<GraphBench> MakeGraphBench(double scale = 1.0, uint64_t seed_offset = 0);

}  // namespace modis

#endif  // MODIS_DATAGEN_TASKS_H_
