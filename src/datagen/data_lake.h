#ifndef MODIS_DATAGEN_DATA_LAKE_H_
#define MODIS_DATAGEN_DATA_LAKE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/dataset.h"
#include "table/table.h"

namespace modis {

/// Blueprint of a synthetic data lake (our stand-in for the crawled
/// Kaggle / data.gov / HuggingFace corpora — see DESIGN.md for the
/// substitution rationale).
///
/// The generator plants the structure that drives MODis's search dynamics:
///  - latent factors determine the target;
///  - *informative* columns expose the latents (adding them helps accuracy);
///  - *noisy* columns are independent noise (adding them costs training
///    time and mildly hurts generalization);
///  - *redundant* columns duplicate informative ones plus noise;
///  - a categorical *segment* column marks row groups, and rows in
///    `corrupt_segments` get heavy target noise — so Reduct operators that
///    drop those rows genuinely improve the model.
struct DataLakeSpec {
  std::string name = "lake";
  size_t num_rows = 2000;
  std::string key = "id";
  std::string target = "target";
  TaskKind task = TaskKind::kRegression;
  int num_classes = 2;

  int num_tables = 4;
  int informative_per_table = 2;
  int noisy_per_table = 2;
  int redundant_per_table = 1;

  int num_latents = 3;
  /// Number of values of the segment column, and how many of them carry
  /// corrupted targets.
  int num_segments = 5;
  int corrupt_segments = 2;
  /// Target noise sigma inside corrupted segments (clean segments get 0.1).
  double corrupt_noise = 2.0;
  double missing_rate = 0.03;

  uint64_t seed = 1234;
};

/// A generated lake: `tables[0]` is the base table (key, segment, target);
/// the others carry feature columns keyed by `key`.
struct DataLake {
  DataLakeSpec spec;
  std::vector<Table> tables;

  const std::string& key() const { return spec.key; }
  const std::string& target() const { return spec.target; }
};

/// Generates the lake deterministically from spec.seed.
Result<DataLake> GenerateDataLake(const DataLakeSpec& spec);

/// Full-outer-joins the lake's tables into the universal table D_U.
Result<Table> LakeUniversalTable(const DataLake& lake);

}  // namespace modis

#endif  // MODIS_DATAGEN_DATA_LAKE_H_
