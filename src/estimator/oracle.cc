#include "estimator/oracle.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "estimator/training_fuser.h"
#include "storage/persistent_record_cache.h"

namespace modis {

PerformanceOracle::ExactOutcome PerformanceOracle::RunExactOne(
    const ValuationRequest& req, TaskEvaluator* evaluator) const {
  auto train = [&req, evaluator]() -> Result<Evaluation> {
    const MaterializationPtr m = req.materialize();
    if (m == nullptr) {
      return Status::Internal("materializer returned null");
    }
    return evaluator->Evaluate(m->table);
  };
  ExactOutcome out;
  out.executed = true;
  if (fuser_ != nullptr) {
    TrainingFuser::Outcome fused = fuser_->Train(fuser_fp_, req.key, train);
    out.result = std::move(fused.result);
    out.seconds = fused.seconds;
    out.shared = fused.shared;
    return out;
  }
  WallTimer timer;
  out.result = train();
  out.seconds = timer.Seconds();
  return out;
}

PerformanceOracle::ExactOutcome PerformanceOracle::RunExactProvider(
    const std::string& key, const TableProvider& materialize,
    TaskEvaluator* evaluator) const {
  auto train = [&materialize, evaluator]() -> Result<Evaluation> {
    return evaluator->Evaluate(materialize());
  };
  ExactOutcome out;
  out.executed = true;
  if (fuser_ != nullptr) {
    TrainingFuser::Outcome fused = fuser_->Train(fuser_fp_, key, train);
    out.result = std::move(fused.result);
    out.seconds = fused.seconds;
    out.shared = fused.shared;
    return out;
  }
  WallTimer timer;
  out.result = train();
  out.seconds = timer.Seconds();
  return out;
}

std::vector<PerformanceOracle::ExactOutcome>
PerformanceOracle::RunExactTrainings(const BatchPlan& plan, ThreadPool* pool,
                                     TaskEvaluator* evaluator) const {
  std::vector<size_t> exact_ids;
  exact_ids.reserve(plan.exact_count);
  for (size_t i = 0; i < plan.modes.size(); ++i) {
    if (plan.modes[i] == BatchPlan::Mode::kExact) exact_ids.push_back(i);
  }
  std::vector<ExactOutcome> outcomes(plan.requests.size());
  // The span context is captured once here and passed by value into the
  // closure: every worker parents its "exact" span under this batch's
  // "train" span no matter which pool thread runs it. The recorder's own
  // mutex makes concurrent Begin/End TSan-clean.
  const SpanId train_span = BeginTraceSpan("train");
  TraceRecorder* const trace = trace_;
  const Status status =
      ParallelFor(pool, 0, exact_ids.size(), [&, trace, train_span](size_t k) {
        const size_t i = exact_ids[k];
        const SpanId item_span =
            trace != nullptr ? trace->Begin("exact", train_span) : kNoSpan;
        outcomes[i] = RunExactOne(plan.requests[i], evaluator);
        if (trace != nullptr) {
          trace->AddAttr(item_span, "shared", outcomes[i].shared ? 1 : 0);
          trace->End(item_span);
        }
      });
  EndTraceSpan(train_span);
  if (!status.ok()) {
    for (size_t i : exact_ids) {
      if (!outcomes[i].executed) outcomes[i].result = status;
    }
  }
  return outcomes;
}

void TestRecordStore::Add(std::string key, std::vector<double> features,
                          Evaluation eval) {
  index_[key] = records_.size();
  records_.push_back({std::move(key), std::move(features), std::move(eval)});
}

const Evaluation* TestRecordStore::Find(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &records_[it->second].eval;
}

std::vector<std::vector<double>> TestRecordStore::NormalizedVectors() const {
  std::vector<std::vector<double>> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.eval.normalized);
  return out;
}

bool PerformanceOracle::PersistentContains(const std::string& key) const {
  return record_cache_ != nullptr &&
         record_cache_->Touch(record_cache_fp_, key);
}

bool PerformanceOracle::PersistentFetch(const std::string& key,
                                        Evaluation* out) {
  if (record_cache_ == nullptr) return false;
  StoredRecord record;
  if (!record_cache_->Get(record_cache_fp_, key, &record)) return false;
  *out = std::move(record.eval);
  return true;
}

void PerformanceOracle::PersistentStore(const std::string& key,
                                        const std::vector<double>& features,
                                        const Evaluation& eval) {
  if (record_cache_ != nullptr && record_cache_write_) {
    record_cache_->Insert(record_cache_fp_, key, features, eval);
  }
}

void PerformanceOracle::FlushPersistent() {
  if (record_cache_ != nullptr) {
    const SpanId flush_span = BeginTraceSpan("flush");
    const Status flushed = record_cache_->Flush();
    (void)flushed;  // A failed flush only risks re-training after a crash.
    EndTraceSpan(flush_span);
  }
}

ExactOracle::ExactOracle(TaskEvaluator* evaluator) : evaluator_(evaluator) {
  MODIS_CHECK(evaluator_ != nullptr) << "ExactOracle: null evaluator";
}

Result<Evaluation> ExactOracle::Valuate(const std::string& key,
                                        const std::vector<double>& features,
                                        const TableProvider& materialize) {
  if (const Evaluation* hit = store_.Find(key)) {
    ++stats_.cache_hits;
    return *hit;
  }
  Evaluation recorded;
  if (PersistentFetch(key, &recorded)) {
    ++stats_.persistent_hits;
    store_.Add(key, features, recorded);
    return recorded;
  }
  ExactOutcome outcome = RunExactProvider(key, materialize, evaluator_);
  stats_.exact_seconds += outcome.seconds;
  if (!outcome.result.ok()) {
    ++stats_.failed_evals;
    return outcome.result;
  }
  if (outcome.shared) {
    ++stats_.fused_hits;
  } else {
    ++stats_.exact_evals;
  }
  store_.Add(key, features, outcome.result.value());
  PersistentStore(key, features, outcome.result.value());
  return outcome.result;
}

BatchPlan ExactOracle::PrepareBatch(std::vector<ValuationRequest> requests) {
  const SpanId plan_span = BeginTraceSpan("plan");
  BatchPlan plan;
  plan.modes.reserve(requests.size());
  for (const ValuationRequest& req : requests) {
    if (store_.Find(req.key) != nullptr) {
      plan.modes.push_back(BatchPlan::Mode::kCached);
    } else if (PersistentContains(req.key)) {
      plan.modes.push_back(BatchPlan::Mode::kPersistent);
    } else {
      plan.modes.push_back(BatchPlan::Mode::kExact);
      ++plan.exact_count;
    }
  }
  plan.requests = std::move(requests);
  EndTraceSpan(plan_span);
  return plan;
}

std::vector<Result<Evaluation>> ExactOracle::ValuateBatch(BatchPlan plan,
                                                          ThreadPool* pool) {
  std::vector<ExactOutcome> outcomes =
      RunExactTrainings(plan, pool, evaluator_);
  const SpanId commit_span = BeginTraceSpan("commit");
  std::vector<Result<Evaluation>> results;
  results.reserve(plan.requests.size());
  for (size_t i = 0; i < plan.requests.size(); ++i) {
    const ValuationRequest& req = plan.requests[i];
    if (plan.modes[i] == BatchPlan::Mode::kCached) {
      ++stats_.cache_hits;
      results.push_back(*store_.Find(req.key));
      continue;
    }
    if (plan.modes[i] == BatchPlan::Mode::kPersistent) {
      Evaluation recorded;
      if (PersistentFetch(req.key, &recorded)) {
        ++stats_.persistent_hits;
        store_.Add(req.key, req.features, recorded);
        results.push_back(std::move(recorded));
        continue;
      }
      // A concurrent session's byte-bound flush evicted the planned
      // record between plan and commit: train fresh, inline on the
      // caller thread (or join another query's in-flight training of the
      // same state). The record was itself a deterministic training, so
      // the result — and the skyline — are unchanged.
      ExactOutcome fresh = RunExactOne(req, evaluator_);
      stats_.exact_seconds += fresh.seconds;
      if (fresh.result.ok()) {
        if (fresh.shared) {
          ++stats_.fused_hits;
        } else {
          ++stats_.exact_evals;
        }
        store_.Add(req.key, req.features, fresh.result.value());
        PersistentStore(req.key, req.features, fresh.result.value());
      } else {
        ++stats_.failed_evals;
      }
      results.push_back(std::move(fresh.result));
      continue;
    }
    ExactOutcome& slot = outcomes[i];
    stats_.exact_seconds += slot.seconds;
    if (slot.result.ok()) {
      if (slot.shared) {
        ++stats_.fused_hits;
      } else {
        ++stats_.exact_evals;
      }
      store_.Add(req.key, req.features, slot.result.value());
      PersistentStore(req.key, req.features, slot.result.value());
    } else {
      ++stats_.failed_evals;
    }
    results.push_back(std::move(slot.result));
  }
  EndTraceSpan(commit_span);
  FlushPersistent();
  return results;
}

MoGbmOracle::MoGbmOracle(TaskEvaluator* evaluator, SurrogateOptions options)
    : evaluator_(evaluator),
      options_(options),
      surrogate_(options.gbm),
      rng_(options.seed) {
  MODIS_CHECK(evaluator_ != nullptr) << "MoGbmOracle: null evaluator";
}

Result<Evaluation> MoGbmOracle::ExactValuate(
    const std::string& key, const std::vector<double>& features,
    const TableProvider& materialize) {
  Result<Evaluation> result = Status::Internal("unset");
  Evaluation recorded;
  if (PersistentFetch(key, &recorded)) {
    // A prior run already paid for this training: replay its result. The
    // record is committed below exactly like a fresh training, so the
    // store, the shadow error, and the retrain schedule stay identical.
    result = std::move(recorded);
    ++stats_.persistent_hits;
  } else {
    ExactOutcome outcome = RunExactProvider(key, materialize, evaluator_);
    stats_.exact_seconds += outcome.seconds;
    if (!outcome.result.ok()) {
      ++stats_.failed_evals;
      return outcome.result;
    }
    if (outcome.shared) {
      ++stats_.fused_hits;
    } else {
      ++stats_.exact_evals;
    }
    result = std::move(outcome.result);
    PersistentStore(key, features, result.value());
  }
  // Shadow prediction: measure the surrogate against the fresh truth.
  if (surrogate_.trained()) {
    const Evaluation guess = PredictEvaluation(features);
    for (size_t i = 0; i < guess.normalized.size(); ++i) {
      const double d = guess.normalized[i] - result.value().normalized[i];
      shadow_sq_error_ += d * d;
      ++shadow_count_;
    }
  }
  store_.Add(key, features, result.value());
  MODIS_RETURN_IF_ERROR(MaybeRetrain());
  return result;
}

Status MoGbmOracle::MaybeRetrain() {
  const size_t n = store_.size();
  const bool due = !surrogate_.trained()
                       ? n >= options_.bootstrap_budget
                       : n >= records_at_last_train_ + options_.retrain_every;
  if (!due || n < 4) return Status::OK();

  const auto& records = store_.records();
  const size_t d = records.front().features.size();
  const size_t m = evaluator_->measures().size();
  Matrix x(n, d);
  Matrix y(n, m);
  for (size_t i = 0; i < n; ++i) {
    MODIS_CHECK(records[i].features.size() == d) << "feature width drift";
    for (size_t c = 0; c < d; ++c) x.At(i, c) = records[i].features[c];
    for (size_t c = 0; c < m; ++c) y.At(i, c) = records[i].eval.normalized[c];
  }
  Rng train_rng(options_.seed + n);
  MODIS_RETURN_IF_ERROR(surrogate_.Fit(x, y, &train_rng));
  records_at_last_train_ = n;
  return Status::OK();
}

Evaluation MoGbmOracle::PredictEvaluation(
    const std::vector<double>& features) const {
  Evaluation eval;
  eval.normalized = surrogate_.PredictRow(features.data());
  const auto& specs = evaluator_->measures();
  eval.raw.resize(eval.normalized.size());
  for (size_t i = 0; i < eval.normalized.size(); ++i) {
    // Keep predictions inside the legal normalized range.
    eval.normalized[i] = Clamp(eval.normalized[i], specs[i].lower, 1.0);
    // Back-of-envelope raw value (search logic only consumes normalized).
    eval.raw[i] = specs[i].direction == MeasureSpec::Direction::kMaximize
                      ? 1.0 - eval.normalized[i]
                      : eval.normalized[i] * specs[i].scale;
  }
  return eval;
}

Result<Evaluation> MoGbmOracle::Valuate(const std::string& key,
                                        const std::vector<double>& features,
                                        const TableProvider& materialize) {
  if (const Evaluation* hit = store_.Find(key)) {
    ++stats_.cache_hits;
    return *hit;
  }
  const bool must_exact =
      !surrogate_.trained() || rng_.Bernoulli(options_.exact_fraction);
  if (must_exact) {
    return ExactValuate(key, features, materialize);
  }
  WallTimer timer;
  Evaluation eval = PredictEvaluation(features);
  stats_.surrogate_seconds += timer.Seconds();
  ++stats_.surrogate_evals;
  return eval;
}

BatchPlan MoGbmOracle::PrepareBatch(std::vector<ValuationRequest> requests) {
  // Span recording brackets the loop without touching the policy stream:
  // the Bernoulli draws below are consumed exactly as on an untraced run.
  const SpanId plan_span = BeginTraceSpan("plan");
  BatchPlan plan;
  plan.modes.reserve(requests.size());
  // Project how the surrogate's availability evolves over the batch: the
  // records this plan's own exact valuations will add count towards the
  // bootstrap budget, because they are committed (and the surrogate
  // retrained) before any surrogate prediction of this batch runs.
  size_t projected_records = store_.size();
  bool projected_trained = surrogate_.trained();
  for (const ValuationRequest& req : requests) {
    BatchPlan::Mode mode;
    if (store_.Find(req.key) != nullptr) {
      mode = BatchPlan::Mode::kCached;
    } else if (!projected_trained) {
      mode = BatchPlan::Mode::kExact;  // Still bootstrapping the estimator.
      ++projected_records;
      if (projected_records >= options_.bootstrap_budget &&
          projected_records >= 4) {
        projected_trained = true;
      }
    } else {
      // Keep a trickle of exact valuations so T keeps growing and the
      // estimator periodically refreshes.
      mode = rng_.Bernoulli(options_.exact_fraction)
                 ? BatchPlan::Mode::kExact
                 : BatchPlan::Mode::kSurrogate;
      if (mode == BatchPlan::Mode::kExact) ++projected_records;
    }
    // Persistent-cache substitution AFTER the policy decision: the
    // Bernoulli stream and the bootstrap projection are consumed exactly
    // as on a cold run, so a warm running replays the cold plan verbatim
    // — only the trainings themselves are skipped.
    if (mode == BatchPlan::Mode::kExact && PersistentContains(req.key)) {
      mode = BatchPlan::Mode::kPersistent;
    }
    if (mode == BatchPlan::Mode::kExact) ++plan.exact_count;
    plan.modes.push_back(mode);
  }
  plan.requests = std::move(requests);
  EndTraceSpan(plan_span);
  return plan;
}

std::vector<Result<Evaluation>> MoGbmOracle::ValuateBatch(BatchPlan plan,
                                                          ThreadPool* pool) {
  std::vector<ExactOutcome> outcomes =
      RunExactTrainings(plan, pool, evaluator_);
  const SpanId commit_span = BeginTraceSpan("commit");

  // Commit pass 1, request order: fold the exact results into the stats,
  // the shadow error (against the pre-batch surrogate), and the record
  // store. This is the only place batch results mutate shared state, so
  // the store contents — and everything derived from them — are identical
  // for every thread count.
  for (size_t i = 0; i < plan.requests.size(); ++i) {
    const BatchPlan::Mode mode = plan.modes[i];
    if (mode != BatchPlan::Mode::kExact &&
        mode != BatchPlan::Mode::kPersistent) {
      continue;
    }
    const ValuationRequest& req = plan.requests[i];
    ExactOutcome& slot = outcomes[i];
    if (mode == BatchPlan::Mode::kPersistent) {
      // Replay the recorded training result through the same commit path
      // a fresh training takes, so store contents, shadow error, and the
      // retrain schedule are identical to the cold run that recorded it.
      Evaluation recorded;
      if (PersistentFetch(req.key, &recorded)) {
        slot.result = std::move(recorded);
        ++stats_.persistent_hits;
      } else {
        // Evicted by a concurrent session between plan and commit:
        // train fresh inline (or join a concurrent query's in-flight
        // training) — byte-identical to the replay it stands in for,
        // since the record was a deterministic training.
        ExactOutcome fresh = RunExactOne(req, evaluator_);
        slot.result = std::move(fresh.result);
        stats_.exact_seconds += fresh.seconds;
        if (!slot.result.ok()) {
          ++stats_.failed_evals;
          continue;
        }
        if (fresh.shared) {
          ++stats_.fused_hits;
        } else {
          ++stats_.exact_evals;
        }
        PersistentStore(req.key, req.features, slot.result.value());
      }
    } else {
      stats_.exact_seconds += slot.seconds;
      if (!slot.result.ok()) {
        ++stats_.failed_evals;
        continue;
      }
      if (slot.shared) {
        ++stats_.fused_hits;
      } else {
        ++stats_.exact_evals;
      }
      PersistentStore(req.key, req.features, slot.result.value());
    }
    if (surrogate_.trained()) {
      const Evaluation guess = PredictEvaluation(req.features);
      for (size_t j = 0; j < guess.normalized.size(); ++j) {
        const double d =
            guess.normalized[j] - slot.result.value().normalized[j];
        shadow_sq_error_ += d * d;
        ++shadow_count_;
      }
    }
    store_.Add(req.key, req.features, slot.result.value());
  }
  // One deterministic retrain per batch, after all ingestions.
  MaybeRetrain();

  // Surrogate predictions of the batch are embarrassingly parallel: once
  // the post-ingestion retrain above has run, the estimator is read-only
  // for the rest of the commit, and PredictEvaluation is a pure function
  // of (estimator, features). Fan them out over the pool; the outputs —
  // and therefore the skyline — are byte-identical at every thread count.
  // (When the surrogate is still untrained here, the per-request fallback
  // below may train exactly and retrain mid-pass; that path stays serial.)
  std::vector<size_t> surrogate_ids;
  for (size_t i = 0; i < plan.modes.size(); ++i) {
    if (plan.modes[i] == BatchPlan::Mode::kSurrogate) {
      surrogate_ids.push_back(i);
    }
  }
  std::vector<Evaluation> predicted(plan.requests.size());
  bool predicted_ready = false;
  if (surrogate_.trained() && !surrogate_ids.empty()) {
    WallTimer timer;
    const Status fanned =
        ParallelFor(pool, 0, surrogate_ids.size(), [&](size_t k) {
          const size_t i = surrogate_ids[k];
          predicted[i] = PredictEvaluation(plan.requests[i].features);
        });
    stats_.surrogate_seconds += timer.Seconds();
    predicted_ready = fanned.ok();
  }

  // Commit pass 2, request order: answer every request. Surrogate
  // predictions all use the freshly committed estimator.
  std::vector<Result<Evaluation>> results;
  results.reserve(plan.requests.size());
  for (size_t i = 0; i < plan.requests.size(); ++i) {
    const ValuationRequest& req = plan.requests[i];
    switch (plan.modes[i]) {
      case BatchPlan::Mode::kCached:
        ++stats_.cache_hits;
        results.push_back(*store_.Find(req.key));
        break;
      case BatchPlan::Mode::kExact:
      case BatchPlan::Mode::kPersistent:
        results.push_back(std::move(outcomes[i].result));
        break;
      case BatchPlan::Mode::kSurrogate: {
        if (!surrogate_.trained()) {
          // The plan projected the bootstrap to complete, but an exact
          // training failed (or the retrain errored): keep the serial
          // path's guarantee that un-estimable states are valuated
          // exactly rather than dropped. Runs inline on the caller
          // thread, so the commit order stays deterministic.
          Result<Evaluation> r = Status::Internal("unset");
          Evaluation recorded;
          if (PersistentFetch(req.key, &recorded)) {
            r = std::move(recorded);
            ++stats_.persistent_hits;
          } else {
            ExactOutcome fresh = RunExactOne(req, evaluator_);
            r = std::move(fresh.result);
            stats_.exact_seconds += fresh.seconds;
            if (r.ok()) {
              if (fresh.shared) {
                ++stats_.fused_hits;
              } else {
                ++stats_.exact_evals;
              }
              PersistentStore(req.key, req.features, r.value());
            } else {
              ++stats_.failed_evals;
            }
          }
          if (r.ok()) {
            store_.Add(req.key, req.features, r.value());
            MaybeRetrain();  // The bootstrap may complete mid-commit.
          }
          results.push_back(std::move(r));
          break;
        }
        if (predicted_ready) {
          // Pre-computed by the parallel fan-out above (already timed).
          ++stats_.surrogate_evals;
          results.push_back(std::move(predicted[i]));
          break;
        }
        WallTimer timer;
        Evaluation eval = PredictEvaluation(req.features);
        stats_.surrogate_seconds += timer.Seconds();
        ++stats_.surrogate_evals;
        results.push_back(std::move(eval));
        break;
      }
    }
  }
  EndTraceSpan(commit_span);
  FlushPersistent();
  return results;
}

double MoGbmOracle::SurrogateMse() const {
  return shadow_count_ == 0 ? 0.0
                            : shadow_sq_error_ / static_cast<double>(
                                                     shadow_count_);
}

}  // namespace modis
