#include "estimator/oracle.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "common/timer.h"

namespace modis {

void TestRecordStore::Add(std::string key, std::vector<double> features,
                          Evaluation eval) {
  index_[key] = records_.size();
  records_.push_back({std::move(key), std::move(features), std::move(eval)});
}

const Evaluation* TestRecordStore::Find(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &records_[it->second].eval;
}

std::vector<std::vector<double>> TestRecordStore::NormalizedVectors() const {
  std::vector<std::vector<double>> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.eval.normalized);
  return out;
}

ExactOracle::ExactOracle(TaskEvaluator* evaluator) : evaluator_(evaluator) {
  MODIS_CHECK(evaluator_ != nullptr) << "ExactOracle: null evaluator";
}

Result<Evaluation> ExactOracle::Valuate(const std::string& key,
                                        const std::vector<double>& features,
                                        const TableProvider& materialize) {
  if (const Evaluation* hit = store_.Find(key)) {
    ++stats_.cache_hits;
    return *hit;
  }
  WallTimer timer;
  const Table dataset = materialize();
  Result<Evaluation> result = evaluator_->Evaluate(dataset);
  stats_.exact_seconds += timer.Seconds();
  if (!result.ok()) {
    ++stats_.failed_evals;
    return result;
  }
  ++stats_.exact_evals;
  store_.Add(key, features, result.value());
  return result;
}

MoGbmOracle::MoGbmOracle(TaskEvaluator* evaluator, SurrogateOptions options)
    : evaluator_(evaluator),
      options_(options),
      surrogate_(options.gbm),
      rng_(options.seed) {
  MODIS_CHECK(evaluator_ != nullptr) << "MoGbmOracle: null evaluator";
}

Result<Evaluation> MoGbmOracle::ExactValuate(
    const std::string& key, const std::vector<double>& features,
    const TableProvider& materialize) {
  WallTimer timer;
  const Table dataset = materialize();
  Result<Evaluation> result = evaluator_->Evaluate(dataset);
  stats_.exact_seconds += timer.Seconds();
  if (!result.ok()) {
    ++stats_.failed_evals;
    return result;
  }
  ++stats_.exact_evals;
  // Shadow prediction: measure the surrogate against the fresh truth.
  if (surrogate_.trained()) {
    const Evaluation guess = PredictEvaluation(features);
    for (size_t i = 0; i < guess.normalized.size(); ++i) {
      const double d = guess.normalized[i] - result.value().normalized[i];
      shadow_sq_error_ += d * d;
      ++shadow_count_;
    }
  }
  store_.Add(key, features, result.value());
  MODIS_RETURN_IF_ERROR(MaybeRetrain());
  return result;
}

Status MoGbmOracle::MaybeRetrain() {
  const size_t n = store_.size();
  const bool due = !surrogate_.trained()
                       ? n >= options_.bootstrap_budget
                       : n >= records_at_last_train_ + options_.retrain_every;
  if (!due || n < 4) return Status::OK();

  const auto& records = store_.records();
  const size_t d = records.front().features.size();
  const size_t m = evaluator_->measures().size();
  Matrix x(n, d);
  Matrix y(n, m);
  for (size_t i = 0; i < n; ++i) {
    MODIS_CHECK(records[i].features.size() == d) << "feature width drift";
    for (size_t c = 0; c < d; ++c) x.At(i, c) = records[i].features[c];
    for (size_t c = 0; c < m; ++c) y.At(i, c) = records[i].eval.normalized[c];
  }
  Rng train_rng(options_.seed + n);
  MODIS_RETURN_IF_ERROR(surrogate_.Fit(x, y, &train_rng));
  records_at_last_train_ = n;
  return Status::OK();
}

Evaluation MoGbmOracle::PredictEvaluation(
    const std::vector<double>& features) const {
  Evaluation eval;
  eval.normalized = surrogate_.PredictRow(features.data());
  const auto& specs = evaluator_->measures();
  eval.raw.resize(eval.normalized.size());
  for (size_t i = 0; i < eval.normalized.size(); ++i) {
    // Keep predictions inside the legal normalized range.
    eval.normalized[i] = Clamp(eval.normalized[i], specs[i].lower, 1.0);
    // Back-of-envelope raw value (search logic only consumes normalized).
    eval.raw[i] = specs[i].direction == MeasureSpec::Direction::kMaximize
                      ? 1.0 - eval.normalized[i]
                      : eval.normalized[i] * specs[i].scale;
  }
  return eval;
}

Result<Evaluation> MoGbmOracle::Valuate(const std::string& key,
                                        const std::vector<double>& features,
                                        const TableProvider& materialize) {
  if (const Evaluation* hit = store_.Find(key)) {
    ++stats_.cache_hits;
    return *hit;
  }
  const bool must_exact =
      !surrogate_.trained() || rng_.Bernoulli(options_.exact_fraction);
  if (must_exact) {
    return ExactValuate(key, features, materialize);
  }
  WallTimer timer;
  Evaluation eval = PredictEvaluation(features);
  stats_.surrogate_seconds += timer.Seconds();
  ++stats_.surrogate_evals;
  return eval;
}

double MoGbmOracle::SurrogateMse() const {
  return shadow_count_ == 0 ? 0.0
                            : shadow_sq_error_ / static_cast<double>(
                                                     shadow_count_);
}

}  // namespace modis
