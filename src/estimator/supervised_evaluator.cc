#include "estimator/supervised_evaluator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "ml/feature_scores.h"
#include "ml/metrics.h"

namespace modis {

SupervisedEvaluator::SupervisedEvaluator(SupervisedTask task,
                                         std::unique_ptr<MlModel> prototype)
    : task_(std::move(task)), prototype_(std::move(prototype)) {
  MODIS_CHECK(prototype_ != nullptr) << "SupervisedEvaluator: null model";
  MODIS_CHECK(!task_.measures.empty()) << "SupervisedEvaluator: no measures";
}

std::string SupervisedEvaluator::ModelIdentity() const {
  return std::string("supervised/") + prototype_->Name() + "/" +
         (task_.task == TaskKind::kRegression ? "regression"
                                              : "classification") +
         "/seed=" + std::to_string(task_.seed) +
         "/test=" + std::to_string(task_.test_fraction);
}

Result<Evaluation> SupervisedEvaluator::Evaluate(const Table& dataset) {
  BridgeOptions bridge;
  bridge.exclude = task_.exclude;
  MODIS_ASSIGN_OR_RETURN(
      MlDataset full, TableToDataset(dataset, task_.target, task_.task, bridge));
  if (full.num_rows() < task_.min_rows) {
    return Status::FailedPrecondition("dataset too small to evaluate: " +
                                      std::to_string(full.num_rows()) +
                                      " rows");
  }
  if (full.num_features() == 0) {
    return Status::FailedPrecondition("dataset has no feature columns");
  }
  if (full.task == TaskKind::kClassification && full.num_classes < 2) {
    return Status::FailedPrecondition("dataset lost all but one class");
  }

  Rng rng(task_.seed);
  SplitIndices split = TrainTestSplit(full.num_rows(), task_.test_fraction,
                                      &rng);
  if (split.train.empty() || split.test.empty()) {
    return Status::FailedPrecondition("degenerate train/test split");
  }
  MlDataset train = full.SelectRows(split.train);
  MlDataset test = full.SelectRows(split.test);
  if (full.task == TaskKind::kClassification) {
    // Training split must still cover >= 2 classes.
    std::vector<int> labels = train.LabelsAsInt();
    if (*std::max_element(labels.begin(), labels.end()) ==
        *std::min_element(labels.begin(), labels.end())) {
      return Status::FailedPrecondition("training split has a single class");
    }
  }

  std::unique_ptr<MlModel> model = prototype_->Clone();
  Rng fit_rng(task_.seed + 1);
  WallTimer timer;
  MODIS_RETURN_IF_ERROR(model->Fit(train, &fit_rng));
  const double train_seconds = timer.Seconds();

  const std::vector<double> pred = model->Predict(test.x);
  std::vector<int> y_int, pred_int;
  std::vector<std::vector<double>> proba;
  if (full.task == TaskKind::kClassification) {
    y_int = test.LabelsAsInt();
    pred_int.resize(pred.size());
    for (size_t i = 0; i < pred.size(); ++i) {
      pred_int[i] = static_cast<int>(pred[i]);
    }
    proba = model->PredictProba(test.x);
  }

  // Labels for the feature-quality scores (fisher / mi): classification
  // labels directly, regression targets discretized into quintiles.
  auto score_labels = [&]() -> std::pair<std::vector<int>, int> {
    if (full.task == TaskKind::kClassification) {
      return {test.LabelsAsInt(), full.num_classes};
    }
    return {DiscretizeTarget(test.y, 5), 5};
  };

  Evaluation eval;
  eval.raw.reserve(task_.measures.size());
  eval.normalized.reserve(task_.measures.size());
  for (const MeasureSpec& m : task_.measures) {
    double raw = 0.0;
    if (m.name == "train_time") {
      raw = train_seconds;
    } else if (m.name == "acc") {
      // For regression tasks "accuracy" is the clamped R2 score — the
      // paper's convertible maximize-measure for T1's gross prediction.
      raw = full.task == TaskKind::kClassification
                ? Accuracy(y_int, pred_int)
                : std::max(0.0, R2Score(test.y, pred));
    } else if (m.name == "prec") {
      raw = MacroPrecision(y_int, pred_int, full.num_classes);
    } else if (m.name == "rec") {
      raw = MacroRecall(y_int, pred_int, full.num_classes);
    } else if (m.name == "f1") {
      raw = MacroF1(y_int, pred_int, full.num_classes);
    } else if (m.name == "auc") {
      raw = proba.empty() ? 0.5 : MacroAuc(y_int, proba);
    } else if (m.name == "rmse") {
      raw = RootMeanSquaredError(test.y, pred);
    } else if (m.name == "mse") {
      raw = MeanSquaredError(test.y, pred);
    } else if (m.name == "mae") {
      raw = MeanAbsoluteError(test.y, pred);
    } else if (m.name == "r2") {
      raw = R2Score(test.y, pred);
    } else if (m.name == "fisher") {
      const auto [labels, k] = score_labels();
      raw = MeanFisherScore(test.x, labels, k);
    } else if (m.name == "mi") {
      const auto [labels, k] = score_labels();
      raw = MeanMutualInformation(test.x, labels, k);
    } else {
      return Status::InvalidArgument("unknown measure: " + m.name);
    }
    eval.raw.push_back(raw);
    eval.normalized.push_back(m.Normalize(raw));
  }
  return eval;
}

}  // namespace modis
