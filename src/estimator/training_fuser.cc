#include "estimator/training_fuser.h"

#include "common/timer.h"

namespace modis {

std::string TrainingFuser::FusedKey(uint64_t fingerprint,
                                    const std::string& key) {
  return std::to_string(fingerprint) + ":" + key;
}

TrainingFuser::Outcome TrainingFuser::Train(uint64_t fingerprint,
                                            const std::string& key,
                                            const TrainFn& train) {
  const std::string fused_key = FusedKey(fingerprint, key);
  std::shared_future<Result<Evaluation>> wait_on;
  std::promise<Result<Evaluation>> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto memo_it = memo_index_.find(fused_key);
    if (memo_it != memo_index_.end()) {
      memo_lru_.splice(memo_lru_.begin(), memo_lru_, memo_it->second);
      ++stats_.trainings_shared;
      Outcome out;
      out.result = memo_it->second->second;
      out.shared = true;
      return out;
    }
    auto it = in_flight_.find(fused_key);
    if (it != in_flight_.end()) {
      wait_on = it->second;
      ++stats_.trainings_shared;
    } else {
      in_flight_.emplace(fused_key, promise.get_future().share());
    }
  }
  if (wait_on.valid()) {
    // Another query is training this state right now; block on its result.
    Outcome out;
    out.result = wait_on.get();
    out.shared = true;
    return out;
  }

  // Leader: run the training outside the lock. Waiters block on the future,
  // never on the mutex, so a long training stalls only its own state.
  WallTimer timer;
  Outcome out;
  out.result = train();
  out.seconds = timer.Seconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.trainings_executed;
    if (out.result.ok() && options_.memo_capacity > 0) {
      memo_lru_.emplace_front(fused_key, out.result);
      memo_index_[fused_key] = memo_lru_.begin();
      while (memo_lru_.size() > options_.memo_capacity) {
        memo_index_.erase(memo_lru_.back().first);
        memo_lru_.pop_back();
      }
    }
    in_flight_.erase(fused_key);
  }
  promise.set_value(out.result);
  return out;
}

TrainingFuser::Stats TrainingFuser::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace modis
