#ifndef MODIS_ESTIMATOR_MEASURE_H_
#define MODIS_ESTIMATOR_MEASURE_H_

#include <string>
#include <vector>

namespace modis {

/// A user-defined performance measure p in P (§2).
///
/// Raw measures are produced by a TaskEvaluator (accuracy, F1, training
/// seconds, MSE, ...). Following the paper, every measure is normalized
/// into (0, 1] and *minimized*: maximize-measures are inverted (1 - raw)
/// and minimize-measures are scaled by a task-supplied reference scale.
/// Each measure carries an optional desired range [lower, upper] in
/// normalized space; upper acts as the tolerance p_u enforced by UPareto's
/// early skip and lower as the p_l > 0 needed by the grid of Equation (1).
struct MeasureSpec {
  enum class Direction { kMaximize, kMinimize };

  std::string name;
  Direction direction = Direction::kMinimize;
  /// Reference scale for kMinimize: normalized = raw / scale (clamped).
  double scale = 1.0;
  /// Normalized desired range (p_l, p_u] in (0, 1].
  double lower = 0.001;
  double upper = 1.0;

  static MeasureSpec Maximize(std::string name, double lower = 0.001,
                              double upper = 1.0) {
    MeasureSpec m;
    m.name = std::move(name);
    m.direction = Direction::kMaximize;
    m.lower = lower;
    m.upper = upper;
    return m;
  }
  static MeasureSpec Minimize(std::string name, double scale,
                              double lower = 0.001, double upper = 1.0) {
    MeasureSpec m;
    m.name = std::move(name);
    m.direction = Direction::kMinimize;
    m.scale = scale;
    m.lower = lower;
    m.upper = upper;
    return m;
  }

  /// Maps a raw measurement to normalized-minimized space (0, 1].
  double Normalize(double raw) const;
};

/// The outcome of valuating one test t = (M, D, P): raw measurements (one
/// per measure, in the measure's natural units) and the normalized
/// performance vector.
struct Evaluation {
  std::vector<double> raw;
  std::vector<double> normalized;
};

/// Lower-bound vector (p_l per measure) for the position grid.
std::vector<double> LowerBounds(const std::vector<MeasureSpec>& measures);

/// Upper-bound vector (p_u per measure).
std::vector<double> UpperBounds(const std::vector<MeasureSpec>& measures);

}  // namespace modis

#endif  // MODIS_ESTIMATOR_MEASURE_H_
