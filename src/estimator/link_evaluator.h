#ifndef MODIS_ESTIMATOR_LINK_EVALUATOR_H_
#define MODIS_ESTIMATOR_LINK_EVALUATOR_H_

#include <string>
#include <vector>

#include "estimator/task_evaluator.h"
#include "graph/lightgcn.h"

namespace modis {

/// Configuration of the T5 link-regression task.
struct LinkTask {
  std::string user_col = "user";
  std::string item_col = "item";
  int num_users = 0;
  int num_items = 0;
  /// Held-out positive items per user (fixed across candidate datasets).
  std::vector<std::vector<int>> test_edges;
  LightGcnOptions model;
  std::vector<MeasureSpec> measures;
  uint64_t seed = 11;
  size_t min_edges = 20;
};

/// TaskEvaluator for the GNN recommendation task: candidate datasets are
/// *edge tables*; Augment/Reduct act as edge insertions/deletions (§6).
///
/// Supported measure names: "p@K", "r@K", "ndcg@K" for any integer K, and
/// "train_time".
class LinkEvaluator : public TaskEvaluator {
 public:
  explicit LinkEvaluator(LinkTask task);

  const std::vector<MeasureSpec>& measures() const override {
    return task_.measures;
  }
  Result<Evaluation> Evaluate(const Table& dataset) override;

  /// "lightgcn/dim=../layers=../epochs=../lr=../l2=../seed=.." — the
  /// hyperparameters that change what a training returns.
  std::string ModelIdentity() const override;

  const LinkTask& task() const { return task_; }

 private:
  LinkTask task_;
  std::vector<int> ks_;  // Distinct cutoffs mentioned by the measures.
};

}  // namespace modis

#endif  // MODIS_ESTIMATOR_LINK_EVALUATOR_H_
