#ifndef MODIS_ESTIMATOR_ORACLE_H_
#define MODIS_ESTIMATOR_ORACLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/universe.h"
#include "estimator/task_evaluator.h"
#include "ml/multi_output_gbm.h"

namespace modis {

class PersistentRecordCache;
class ThreadPool;
class TrainingFuser;

/// The historical test set T of the paper: every valuated test
/// (state signature, state features, evaluation) recorded during a running.
/// Shared by the correlation graph, the surrogate trainer, and the
/// diversification normalizer.
class TestRecordStore {
 public:
  struct Record {
    std::string key;
    std::vector<double> features;
    Evaluation eval;
  };

  /// Adds a record (overwrites nothing — keys are expected unique).
  void Add(std::string key, std::vector<double> features, Evaluation eval);

  /// Cached evaluation for a state signature, or nullptr.
  const Evaluation* Find(const std::string& key) const;

  const std::vector<Record>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// All normalized performance vectors (for G_C updates / euc_max).
  std::vector<std::vector<double>> NormalizedVectors() const;

 private:
  std::vector<Record> records_;
  std::unordered_map<std::string, size_t> index_;
};

/// One state awaiting valuation in a level batch.
struct ValuationRequest {
  /// Canonical state signature — the cache / record key.
  std::string key;
  /// Numeric state encoding the surrogate learns from.
  std::vector<double> features;
  /// Lazily materializes the dataset; invoked only for exact valuations,
  /// possibly from a worker thread, so it must be safe to run concurrently
  /// with the other requests' providers.
  std::function<MaterializationPtr()> materialize;
};

/// The caller-thread half of a batched valuation: the per-request decision
/// the oracle took before any model training ran.
struct BatchPlan {
  enum class Mode : uint8_t {
    kCached,      // Evaluation already in the record store.
    kSurrogate,   // Predicted by the estimator on the caller thread.
    kExact,       // Real model training, scheduled onto the pool.
    kPersistent,  // Policy chose exact, but a prior run already trained
                  // this state: the persistent record cache replays the
                  // recorded evaluation and the training is skipped. The
                  // record is ingested into the store exactly as the
                  // training result would have been, so everything
                  // downstream (surrogate, correlations, skyline) is
                  // byte-identical to a cold run.
  };

  std::vector<ValuationRequest> requests;
  std::vector<Mode> modes;  // Parallel to `requests`.
  size_t exact_count = 0;
};

/// Valuates tests for the search. `key` is the canonical state signature
/// (the bitmap rendered as '0'/'1' characters); `features` is the numeric
/// encoding of the state the surrogate learns from; `materialize` lazily
/// produces the dataset — only exact valuations pay for it, which is how
/// the surrogate keeps the per-test cost low.
///
/// Two call shapes exist: the single-test Valuate (baselines, exhaustive
/// search, reporting) and the batched PrepareBatch/ValuateBatch pair the
/// engine issues once per frontier level. The batch pair is the hot path:
/// exact trainings fan out over a ThreadPool while everything stateful —
/// cache lookups, surrogate inference, record-store ingestion, retraining —
/// stays on the caller thread, so results are deterministic for a given
/// request order no matter how many workers run.
class PerformanceOracle {
 public:
  struct Stats {
    size_t exact_evals = 0;
    size_t surrogate_evals = 0;
    size_t cache_hits = 0;
    /// Exact trainings avoided by replaying the persistent record cache.
    size_t persistent_hits = 0;
    /// Exact trainings avoided by sharing another concurrent query's
    /// training through the attached TrainingFuser.
    size_t fused_hits = 0;
    size_t failed_evals = 0;
    double exact_seconds = 0.0;
    double surrogate_seconds = 0.0;
  };

  virtual ~PerformanceOracle() = default;

  using TableProvider = std::function<Table()>;

  virtual Result<Evaluation> Valuate(const std::string& key,
                                     const std::vector<double>& features,
                                     const TableProvider& materialize) = 0;

  /// Splits a level batch into cache hits, surrogate predictions, and
  /// exact trainings. Runs on the caller thread and consumes the oracle's
  /// policy randomness in request order, so the plan is a pure function of
  /// the oracle state and the request sequence.
  virtual BatchPlan PrepareBatch(std::vector<ValuationRequest> requests) = 0;

  /// Executes a plan: exact model trainings run via ParallelFor over
  /// `pool` (inline when null/single-threaded); the post-batch commit —
  /// stats, record-store ingestion, surrogate retraining, surrogate
  /// predictions — happens on the caller thread in request order. Returns
  /// one Result per request, aligned with `plan.requests`.
  virtual std::vector<Result<Evaluation>> ValuateBatch(BatchPlan plan,
                                                       ThreadPool* pool) = 0;

  virtual const std::vector<MeasureSpec>& measures() const = 0;

  /// The identity string of the underlying task model (see
  /// TaskEvaluator::ModelIdentity); ModisEngine mixes it into the
  /// persistent-cache task fingerprint. Empty for oracles without a task
  /// model.
  virtual std::string ModelIdentity() const { return std::string(); }

  const Stats& stats() const { return stats_; }
  const TestRecordStore& store() const { return store_; }

  /// Attaches (or detaches, with nullptr) a cross-run persistent record
  /// cache. Not owned; the caller (normally ModisEngine, or the discovery
  /// service via the engine) keeps it alive for the duration of the
  /// attachment. `fingerprint` scopes every probe/fetch/store to this
  /// task's records — the cache object itself may be shared by sessions
  /// of many tasks. `write_through` false serves hits but never appends
  /// (a per-session kRead view of a shared read-write cache). With a
  /// cache attached, states whose exact training a prior run already paid
  /// for are replayed instead of re-trained — see
  /// BatchPlan::Mode::kPersistent.
  void AttachRecordCache(PersistentRecordCache* cache,
                         uint64_t fingerprint = 0,
                         bool write_through = true) {
    record_cache_ = cache;
    record_cache_fp_ = fingerprint;
    record_cache_write_ = write_through;
  }
  PersistentRecordCache* record_cache() const { return record_cache_; }

  /// Attaches (or detaches, with nullptr) a cross-query training fuser.
  /// Not owned; normally the DiscoveryService's, routed through the
  /// engine. `fingerprint` must be the same task fingerprint that scopes
  /// the record cache — it is what makes sharing trainings across queries
  /// sound (identical data, layout, measures, and model identity train
  /// identically). With a fuser attached, exact trainings requested by
  /// concurrent queries for the same (fingerprint, state) run once; the
  /// other queries count a `fused_hit` instead of an `exact_eval`.
  void AttachTrainingFuser(TrainingFuser* fuser, uint64_t fingerprint = 0) {
    fuser_ = fuser;
    fuser_fp_ = fingerprint;
  }
  TrainingFuser* training_fuser() const { return fuser_; }

  /// Attaches (or detaches, with nullptr) the current query's span
  /// recorder. Not owned; the engine sets it for the duration of one
  /// PrepareBatch/ValuateBatch pair, with `parent` the batch span the
  /// oracle's plan/train/commit/flush spans nest under. Recording is
  /// side-effect-free with respect to valuation: no policy randomness is
  /// consumed and no work is reordered.
  void SetTraceContext(TraceRecorder* trace, SpanId parent) {
    trace_ = trace;
    trace_parent_ = parent;
  }
  TraceRecorder* trace_recorder() const { return trace_; }

 protected:
  /// Per-request outcome of an exact training. Slots of a batch are
  /// pre-initialized to an error so indices skipped after a worker
  /// exception stay well-defined.
  struct ExactOutcome {
    Result<Evaluation> result;
    /// Training seconds paid by this oracle (0 for shared results).
    double seconds = 0.0;
    bool executed = false;
    /// True when the result came from another query via the fuser.
    bool shared = false;

    ExactOutcome()
        : result(Status::Internal("exact valuation not executed")) {}
  };

  /// One exact training — materialize, then train the real model — routed
  /// through the attached TrainingFuser when present. Safe to call from a
  /// worker thread: it touches no oracle state (stats are committed by the
  /// caller from the returned outcome).
  ExactOutcome RunExactOne(const ValuationRequest& req,
                           TaskEvaluator* evaluator) const;

  /// Same, for the single-test Valuate path's table provider.
  ExactOutcome RunExactProvider(const std::string& key,
                                const TableProvider& materialize,
                                TaskEvaluator* evaluator) const;

  /// The fan-out half of ValuateBatch, shared by both oracles: every
  /// kExact request trains via RunExactOne, spread over `pool`. Workers
  /// only touch their own slot — all oracle state mutation happens in the
  /// caller's commit pass.
  std::vector<ExactOutcome> RunExactTrainings(const BatchPlan& plan,
                                              ThreadPool* pool,
                                              TaskEvaluator* evaluator) const;
  /// True when the attached cache holds `key`. The plan-time probe; does
  /// not count a cache hit (the commit's PersistentFetch does), but
  /// refreshes the record's recency so a byte-bounded shared cache
  /// prefers other eviction victims between this plan and its commit.
  bool PersistentContains(const std::string& key) const;
  /// Copies the recorded evaluation for `key` into `*out`; false on miss.
  /// Copying (not pointing into the cache) is what makes a cache shared
  /// by concurrent sessions safe to serve from.
  bool PersistentFetch(const std::string& key, Evaluation* out);
  /// Writes a freshly trained record through to the attached cache.
  void PersistentStore(const std::string& key,
                       const std::vector<double>& features,
                       const Evaluation& eval);
  /// Flushes cache appends; called once per batch commit.
  void FlushPersistent();

  /// Begins a span under the attached trace context; kNoSpan when no
  /// recorder is attached (End/AddAttr on kNoSpan are no-ops, so call
  /// sites stay branch-free).
  SpanId BeginTraceSpan(const char* name) const {
    return trace_ != nullptr ? trace_->Begin(name, trace_parent_) : kNoSpan;
  }
  void EndTraceSpan(SpanId id) const {
    if (trace_ != nullptr) trace_->End(id);
  }

  Stats stats_;
  TestRecordStore store_;
  PersistentRecordCache* record_cache_ = nullptr;
  uint64_t record_cache_fp_ = 0;
  bool record_cache_write_ = true;
  TrainingFuser* fuser_ = nullptr;
  uint64_t fuser_fp_ = 0;
  TraceRecorder* trace_ = nullptr;
  SpanId trace_parent_ = kNoSpan;
};

/// Oracle that always trains the real model (with a cache keyed by state
/// signature). This is both the ground-truth reporter and the valuation
/// backend of small-scale searches.
class ExactOracle : public PerformanceOracle {
 public:
  /// Does not own `evaluator`; it must outlive the oracle.
  explicit ExactOracle(TaskEvaluator* evaluator);

  Result<Evaluation> Valuate(const std::string& key,
                             const std::vector<double>& features,
                             const TableProvider& materialize) override;
  BatchPlan PrepareBatch(std::vector<ValuationRequest> requests) override;
  std::vector<Result<Evaluation>> ValuateBatch(BatchPlan plan,
                                               ThreadPool* pool) override;
  const std::vector<MeasureSpec>& measures() const override {
    return evaluator_->measures();
  }
  std::string ModelIdentity() const override {
    return evaluator_->ModelIdentity();
  }

 private:
  TaskEvaluator* evaluator_;
};

/// Options of the MO-GBM surrogate oracle.
struct SurrogateOptions {
  /// Exact valuations collected before the surrogate takes over.
  size_t bootstrap_budget = 24;
  /// After bootstrap, this fraction of valuations is still exact, to keep
  /// extending T (and periodically refresh the surrogate).
  double exact_fraction = 0.1;
  /// Retrain the MO-GBM after this many new exact records.
  size_t retrain_every = 16;
  GbmOptions gbm = {.num_rounds = 40,
                    .learning_rate = 0.1,
                    .tree = {.max_depth = 3,
                             .min_samples_leaf = 2,
                             .max_bins = 32,
                             .feature_fraction = 1.0},
                    .subsample = 1.0};
  uint64_t seed = 29;
};

/// The paper's default estimator E: a multi-output gradient boosting model
/// that predicts the whole normalized performance vector from the state
/// features in one call (§2, §6), trained on the historically observed
/// tests T. Cold-start and a trickle of valuations remain exact.
class MoGbmOracle : public PerformanceOracle {
 public:
  /// Does not own `evaluator`.
  MoGbmOracle(TaskEvaluator* evaluator, SurrogateOptions options = {});

  Result<Evaluation> Valuate(const std::string& key,
                             const std::vector<double>& features,
                             const TableProvider& materialize) override;
  BatchPlan PrepareBatch(std::vector<ValuationRequest> requests) override;
  std::vector<Result<Evaluation>> ValuateBatch(BatchPlan plan,
                                               ThreadPool* pool) override;
  const std::vector<MeasureSpec>& measures() const override {
    return evaluator_->measures();
  }
  /// The surrogate never changes what a recorded *exact* training
  /// returns, so the identity is the task model's alone — warm records
  /// are shareable between exact- and surrogate-mode runs.
  std::string ModelIdentity() const override {
    return evaluator_->ModelIdentity();
  }

  /// Mean squared error of the surrogate against the exact evaluations it
  /// has shadow-predicted (reported by bench_estimator).
  double SurrogateMse() const;

 private:
  Result<Evaluation> ExactValuate(const std::string& key,
                                  const std::vector<double>& features,
                                  const TableProvider& materialize);
  Status MaybeRetrain();
  Evaluation PredictEvaluation(const std::vector<double>& features) const;

  TaskEvaluator* evaluator_;
  SurrogateOptions options_;
  MultiOutputGbm surrogate_;
  Rng rng_;
  size_t records_at_last_train_ = 0;
  double shadow_sq_error_ = 0.0;
  size_t shadow_count_ = 0;
};

}  // namespace modis

#endif  // MODIS_ESTIMATOR_ORACLE_H_
