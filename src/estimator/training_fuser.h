#ifndef MODIS_ESTIMATOR_TRAINING_FUSER_H_
#define MODIS_ESTIMATOR_TRAINING_FUSER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "estimator/measure.h"

namespace modis {

/// Dedups exact model trainings across concurrent queries.
///
/// Exact trainings are deterministic functions of (task fingerprint, state
/// signature): the fingerprint pins the universal table's content, the
/// unit layout, the measure set, and the task model's identity, and every
/// model trains under fixed seeds. Two queries asking for the same
/// training must therefore get byte-identical evaluations — so the service
/// runs the training once and shares the result.
///
/// Concurrency contract: the first caller of a (fingerprint, key) pair
/// becomes the *leader* and runs `train` inline on its own thread; callers
/// arriving while the training is in flight block on a shared future.
/// Leadership is claimed at execution time and leaders never wait on the
/// fuser, so waiters always sit behind a thread that is actively training
/// — no cycle, no deadlock, regardless of how many pool workers block.
/// Completed results are memoized in a bounded LRU so overlapping queries
/// that do not overlap in *time* still train each unique state once.
class TrainingFuser {
 public:
  struct Options {
    /// Completed trainings kept in the LRU memo. 0 disables the memo:
    /// only temporally overlapping trainings fuse.
    size_t memo_capacity = 4096;
  };

  /// The outcome of one Train call.
  struct Outcome {
    Result<Evaluation> result;
    /// Training seconds paid by this call (0 when the result was shared).
    double seconds = 0.0;
    /// True when another query's training produced the result.
    bool shared = false;

    Outcome() : result(Status::Internal("training not executed")) {}
  };

  using TrainFn = std::function<Result<Evaluation>()>;

  /// Host-wide counters (monotonic, over the fuser's lifetime).
  struct Stats {
    uint64_t trainings_executed = 0;
    uint64_t trainings_shared = 0;
  };

  TrainingFuser() = default;
  explicit TrainingFuser(Options options) : options_(options) {}

  /// Runs (or joins) the exact training identified by (fingerprint, key):
  /// executes `train` at most once across all concurrent callers of the
  /// pair and hands everyone the same result. Failed trainings are shared
  /// with in-flight waiters but never memoized, so a transient failure is
  /// retried by the next query.
  Outcome Train(uint64_t fingerprint, const std::string& key,
                const TrainFn& train);

  Stats stats() const;

 private:
  using MemoEntry = std::pair<std::string, Result<Evaluation>>;

  static std::string FusedKey(uint64_t fingerprint, const std::string& key);

  mutable std::mutex mu_;
  Options options_;
  /// Trainings currently executing, by fused key; waiters share the future.
  std::unordered_map<std::string, std::shared_future<Result<Evaluation>>>
      in_flight_;
  /// Completed OK trainings, LRU-bounded. Front = most recently used.
  std::list<MemoEntry> memo_lru_;
  std::unordered_map<std::string, std::list<MemoEntry>::iterator> memo_index_;
  Stats stats_;
};

}  // namespace modis

#endif  // MODIS_ESTIMATOR_TRAINING_FUSER_H_
