#ifndef MODIS_ESTIMATOR_SUPERVISED_EVALUATOR_H_
#define MODIS_ESTIMATOR_SUPERVISED_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "estimator/task_evaluator.h"
#include "ml/model.h"

namespace modis {

/// Configuration of a supervised (tabular) evaluation task.
struct SupervisedTask {
  std::string target;
  TaskKind task = TaskKind::kClassification;
  std::vector<MeasureSpec> measures;
  /// Feature columns excluded from training (join keys etc.).
  std::vector<std::string> exclude;
  double test_fraction = 0.3;
  uint64_t seed = 7;
  /// Smallest admissible training set; below this Evaluate fails and the
  /// search discards the state.
  size_t min_rows = 10;
};

/// TaskEvaluator for the tabular tasks (T1-T4 and both case studies).
///
/// Supported measure names: "acc", "prec", "rec", "f1", "auc" (classif.);
/// "rmse", "mse", "mae", "r2" (regression); "train_time" (wall seconds of
/// Fit); "fisher", "mi" (feature-set quality scores of Tables 4/6). Raw
/// values are in natural units; normalization follows each MeasureSpec.
class SupervisedEvaluator : public TaskEvaluator {
 public:
  /// `prototype` supplies the model family; a fresh clone is trained per
  /// Evaluate call.
  SupervisedEvaluator(SupervisedTask task, std::unique_ptr<MlModel> prototype);

  const std::vector<MeasureSpec>& measures() const override {
    return task_.measures;
  }
  Result<Evaluation> Evaluate(const Table& dataset) override;

  /// "supervised/<ModelName>/<task kind>/seed=<s>/test=<f>" — the model
  /// family plus the split parameters that shape every evaluation.
  std::string ModelIdentity() const override;

  const SupervisedTask& task() const { return task_; }

 private:
  SupervisedTask task_;
  std::unique_ptr<MlModel> prototype_;
};

}  // namespace modis

#endif  // MODIS_ESTIMATOR_SUPERVISED_EVALUATOR_H_
