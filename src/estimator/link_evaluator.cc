#include "estimator/link_evaluator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace modis {

namespace {

/// Parses "p@5" / "ndcg@10" into its cutoff; 0 when the name has none.
int CutoffOf(const std::string& name) {
  const size_t at = name.find('@');
  if (at == std::string::npos) return 0;
  int64_t k = 0;
  if (!ParseInt64(name.substr(at + 1), &k)) return 0;
  return static_cast<int>(k);
}

}  // namespace

LinkEvaluator::LinkEvaluator(LinkTask task) : task_(std::move(task)) {
  MODIS_CHECK(!task_.measures.empty()) << "LinkEvaluator: no measures";
  MODIS_CHECK(task_.num_users > 0 && task_.num_items > 0)
      << "LinkEvaluator: graph dimensions unset";
  MODIS_CHECK(task_.test_edges.size() ==
              static_cast<size_t>(task_.num_users))
      << "LinkEvaluator: test_edges must have one entry per user";
  std::set<int> ks;
  for (const auto& m : task_.measures) {
    const int k = CutoffOf(m.name);
    if (k > 0) ks.insert(k);
  }
  ks_.assign(ks.begin(), ks.end());
}

std::string LinkEvaluator::ModelIdentity() const {
  const LightGcnOptions& m = task_.model;
  return "lightgcn/dim=" + std::to_string(m.embedding_dim) +
         "/layers=" + std::to_string(m.num_layers) +
         "/epochs=" + std::to_string(m.epochs) +
         "/lr=" + std::to_string(m.learning_rate) +
         "/l2=" + std::to_string(m.l2) +
         "/seed=" + std::to_string(task_.seed);
}

Result<Evaluation> LinkEvaluator::Evaluate(const Table& dataset) {
  MODIS_ASSIGN_OR_RETURN(
      BipartiteGraph graph,
      BipartiteGraph::FromEdgeTable(dataset, task_.user_col, task_.item_col,
                                    task_.num_users, task_.num_items));
  if (graph.num_edges() < task_.min_edges) {
    return Status::FailedPrecondition("edge table too small: " +
                                      std::to_string(graph.num_edges()));
  }
  MODIS_ASSIGN_OR_RETURN(
      LinkEvalResult result,
      EvaluateLinkTask(graph, task_.test_edges, ks_, task_.model, task_.seed));

  Evaluation eval;
  for (const MeasureSpec& m : task_.measures) {
    const std::string key = m.name == "train_time" ? "train_seconds" : m.name;
    auto it = result.metrics.find(key);
    if (it == result.metrics.end()) {
      return Status::InvalidArgument("unknown link measure: " + m.name);
    }
    eval.raw.push_back(it->second);
    eval.normalized.push_back(m.Normalize(it->second));
  }
  return eval;
}

}  // namespace modis
