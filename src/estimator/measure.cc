#include "estimator/measure.h"

#include "common/stats.h"

namespace modis {

double MeasureSpec::Normalize(double raw) const {
  double v;
  if (direction == Direction::kMaximize) {
    // Raw in [0, 1] (accuracy-like): invert so smaller is better.
    v = 1.0 - raw;
  } else {
    v = scale > 0.0 ? raw / scale : raw;
  }
  // Keep the value in (0, 1] — the lower floor keeps log(p / p_l) defined.
  return Clamp(v, lower, 1.0);
}

std::vector<double> LowerBounds(const std::vector<MeasureSpec>& measures) {
  std::vector<double> out;
  out.reserve(measures.size());
  for (const auto& m : measures) out.push_back(m.lower);
  return out;
}

std::vector<double> UpperBounds(const std::vector<MeasureSpec>& measures) {
  std::vector<double> out;
  out.reserve(measures.size());
  for (const auto& m : measures) out.push_back(m.upper);
  return out;
}

}  // namespace modis
