#ifndef MODIS_ESTIMATOR_TASK_EVALUATOR_H_
#define MODIS_ESTIMATOR_TASK_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "estimator/measure.h"
#include "table/table.h"

namespace modis {

/// Trains the task's fixed deterministic model M on a candidate dataset and
/// measures the raw + normalized performance vector.
///
/// This is the "actual model inference test" of the paper's evaluation
/// protocol; the exact oracle wraps it with caching, and the MO-GBM
/// surrogate learns to imitate it.
class TaskEvaluator {
 public:
  virtual ~TaskEvaluator() = default;

  /// The user-defined measure set P, in vector order.
  virtual const std::vector<MeasureSpec>& measures() const = 0;

  /// A stable identity string of the fixed model M this task trains —
  /// family plus the knobs that change its predictions. It flows into the
  /// persistent-cache task fingerprint (ModisEngine::TaskFingerprint), so
  /// two tasks that differ only in the trained model never share recorded
  /// evaluations (docs/PERSISTENCE.md §4). Must be deterministic; an empty
  /// string opts out (records then collide across models sharing D_U and
  /// measures, distinguishable only by the cache namespace).
  virtual std::string ModelIdentity() const { return std::string(); }

  /// Trains and evaluates on `dataset`. Implementations must be
  /// deterministic for a fixed dataset (fixed seeds) and safe to call
  /// concurrently from multiple threads — the batched valuation pipeline
  /// fans exact trainings out over a thread pool, so an Evaluate call may
  /// only read shared members and must keep all training state (model
  /// clone, RNGs, splits) local. Fails on datasets the model cannot be
  /// trained on (e.g. no rows, missing target).
  virtual Result<Evaluation> Evaluate(const Table& dataset) = 0;
};

}  // namespace modis

#endif  // MODIS_ESTIMATOR_TASK_EVALUATOR_H_
