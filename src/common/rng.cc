#include "common/rng.h"

namespace modis {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  MODIS_CHECK(n > 0) << "UniformInt(0)";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MODIS_CHECK(lo <= hi) << "UniformInt range [" << lo << "," << hi << "]";
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MODIS_CHECK(w >= 0.0) << "negative categorical weight";
    total += w;
  }
  MODIS_CHECK(total > 0.0) << "categorical weights sum to zero";
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  MODIS_CHECK(k <= n) << "sample " << k << " from " << n;
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace modis
