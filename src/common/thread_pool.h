#ifndef MODIS_COMMON_THREAD_POOL_H_
#define MODIS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace modis {

/// A fixed pool of worker threads draining a shared task queue.
///
/// Tasks are plain `void()` callables; synchronization of their outputs is
/// the caller's business (`ParallelFor` below adds the join and error
/// propagation most callers want). Tasks never run on the caller thread,
/// and pending tasks are still drained during destruction, so a submitted
/// task always executes exactly once.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 uses the hardware concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues one task. Never blocks on task execution.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [begin, end), spread over the pool's workers,
/// and blocks until the whole range is finished. Indices are handed out
/// dynamically, so uneven per-index costs still balance.
///
/// Exceptions thrown by `fn` are captured and surfaced as an Internal
/// status (the first one wins); once a task has thrown, not-yet-started
/// indices are skipped. Callers that need per-index results must therefore
/// pre-initialize their output slots.
///
/// Runs inline on the caller thread (same capture/skip semantics) when
/// `pool` is null, has fewer than two workers, or the range has at most
/// one element — the serial path that keeps num_threads=1 runs
/// single-threaded end to end.
Status ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

}  // namespace modis

#endif  // MODIS_COMMON_THREAD_POOL_H_
