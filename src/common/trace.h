#ifndef MODIS_COMMON_TRACE_H_
#define MODIS_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace modis {

/// Index of a span within its recorder. Spans never move once begun, so
/// the id stays valid for the life of the recorder.
using SpanId = int32_t;

/// Sentinel parent for root spans (and the "no recorder attached" id).
inline constexpr SpanId kNoSpan = -1;

/// One timed phase of a query. `duration_ms < 0` marks a span that was
/// never ended (a crash or an early error return); exporters render it
/// with zero duration rather than hiding it.
struct TraceSpan {
  std::string name;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  double start_ms = 0.0;      // Offset from the recorder epoch.
  double duration_ms = -1.0;  // < 0 while the span is still open.
  /// Typed attributes (level index, batch size, exact/fused/persistent
  /// counts, ...). Integer-valued by design: everything the engine wants
  /// to attach is a count, and int64 keeps serialization lossless.
  std::vector<std::pair<std::string, int64_t>> attrs;
};

/// Per-query span tree recorder.
///
/// One recorder belongs to one query; phases running on pool workers
/// (the exact-training fan-out) share it. Every method takes one short
/// internal mutex, which at span granularity (a handful per batch, never
/// per row) is cheap and trivially TSan-clean. There is no thread-local
/// ambient context: parents are passed explicitly, which is what lets a
/// span id captured by a `ParallelFor` closure parent the worker's spans
/// correctly no matter which thread runs it.
///
/// Recording never consumes randomness and never reorders work, so a
/// traced query is byte-identical to an untraced one by construction.
class TraceRecorder {
 public:
  TraceRecorder();

  /// Opens a span. `parent` is kNoSpan for roots. Returns the new id.
  SpanId Begin(const std::string& name, SpanId parent);

  /// Closes a span, fixing its duration. Ending twice keeps the first
  /// duration; ending kNoSpan is a no-op (so callers may hold "maybe a
  /// span" ids without branching).
  void End(SpanId id);

  /// Attaches an integer attribute to an open or closed span. No-op for
  /// kNoSpan or out-of-range ids.
  void AddAttr(SpanId id, const std::string& key, int64_t value);

  /// Milliseconds elapsed since the recorder was constructed.
  double ElapsedMs() const;

  /// Copies the span tree as recorded so far. Spans appear in Begin()
  /// order; parent links always point at earlier entries.
  std::vector<TraceSpan> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
};

/// A completed query's trace, as retained by the host ring buffer and
/// echoed inline when the client opted in.
struct Trace {
  std::string request_id;
  std::string tenant;
  std::string task;
  double total_ms = 0.0;
  bool ok = true;
  /// Monotonic admission order; ties in total_ms break toward keeping
  /// the later query in the slow set.
  uint64_t sequence = 0;
  std::vector<TraceSpan> spans;
};

/// Sums the durations of all spans named `name`. Unended spans count 0.
double SumSpanMs(const std::vector<TraceSpan>& spans, const std::string& name);

/// Process-global span-start observer, fired by every TraceRecorder as a
/// span opens (after it is recorded, outside the recorder mutex). The
/// production value is null; the kill-injection battery installs one to
/// SIGKILL a worker process when a named engine phase ("train",
/// "commit", ...) begins — which is what makes "crash exactly mid-train"
/// a deterministic test point rather than a sleep race. Keep observers
/// async-signal-minded: they run on the query's execution threads.
using SpanObserver = void (*)(const char* name);
void SetGlobalSpanObserver(SpanObserver observer);

/// Bounded retention of completed traces: the N most recent and,
/// separately, the N slowest seen so far. Mutex-guarded; Add() is on the
/// query completion path and does O(N) work on small fixed N.
class TraceRing {
 public:
  TraceRing(size_t recent_capacity, size_t slow_capacity);

  void Add(Trace trace);

  /// Most recent completions, oldest first.
  std::vector<Trace> Recent() const;

  /// Slowest completions, slowest first.
  std::vector<Trace> Slowest() const;

  size_t recent_capacity() const { return recent_capacity_; }
  size_t slow_capacity() const { return slow_capacity_; }

 private:
  const size_t recent_capacity_;
  const size_t slow_capacity_;
  mutable std::mutex mu_;
  std::deque<Trace> recent_;
  std::vector<Trace> slow_;  // Kept sorted, slowest first.
};

}  // namespace modis

#endif  // MODIS_COMMON_TRACE_H_
