#ifndef MODIS_COMMON_STATS_H_
#define MODIS_COMMON_STATS_H_

#include <cmath>
#include <vector>

namespace modis {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population variance; 0 for fewer than 2 elements.
double Variance(const std::vector<double>& v);

double StdDev(const std::vector<double>& v);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

/// Numerically safe logistic sigmoid.
double Sigmoid(double x);

/// Cosine similarity of two equal-length vectors; 0 if either is all-zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Euclidean distance of two equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace modis

#endif  // MODIS_COMMON_STATS_H_
