#include "common/trace.h"

#include <algorithm>
#include <atomic>

namespace modis {

namespace {

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::atomic<SpanObserver> g_span_observer{nullptr};

}  // namespace

void SetGlobalSpanObserver(SpanObserver observer) {
  g_span_observer.store(observer, std::memory_order_release);
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

SpanId TraceRecorder::Begin(const std::string& name, SpanId parent) {
  const auto now = std::chrono::steady_clock::now();
  SpanId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TraceSpan span;
    span.name = name;
    span.id = static_cast<SpanId>(spans_.size());
    span.parent = parent;
    span.start_ms = MsBetween(epoch_, now);
    spans_.push_back(std::move(span));
    id = spans_.back().id;
  }
  if (SpanObserver observer = g_span_observer.load(std::memory_order_acquire)) {
    observer(name.c_str());
  }
  return id;
}

void TraceRecorder::End(SpanId id) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  TraceSpan& span = spans_[static_cast<size_t>(id)];
  if (span.duration_ms >= 0.0) return;  // Already ended.
  span.duration_ms = MsBetween(epoch_, now) - span.start_ms;
  if (span.duration_ms < 0.0) span.duration_ms = 0.0;
}

void TraceRecorder::AddAttr(SpanId id, const std::string& key, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  spans_[static_cast<size_t>(id)].attrs.emplace_back(key, value);
}

double TraceRecorder::ElapsedMs() const {
  return MsBetween(epoch_, std::chrono::steady_clock::now());
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

double SumSpanMs(const std::vector<TraceSpan>& spans,
                 const std::string& name) {
  double total = 0.0;
  for (const TraceSpan& span : spans) {
    if (span.name == name && span.duration_ms > 0.0) {
      total += span.duration_ms;
    }
  }
  return total;
}

TraceRing::TraceRing(size_t recent_capacity, size_t slow_capacity)
    : recent_capacity_(recent_capacity), slow_capacity_(slow_capacity) {}

void TraceRing::Add(Trace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (recent_capacity_ > 0) {
    recent_.push_back(trace);
    while (recent_.size() > recent_capacity_) recent_.pop_front();
  }
  if (slow_capacity_ == 0) return;
  // Keep the slow set sorted slowest-first; a tie keeps the newer trace
  // closer to the front so eviction (drop the back) is deterministic.
  const auto at = std::upper_bound(
      slow_.begin(), slow_.end(), trace, [](const Trace& a, const Trace& b) {
        if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
        return a.sequence > b.sequence;
      });
  slow_.insert(at, std::move(trace));
  if (slow_.size() > slow_capacity_) slow_.pop_back();
}

std::vector<Trace> TraceRing::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Trace>(recent_.begin(), recent_.end());
}

std::vector<Trace> TraceRing::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

}  // namespace modis
