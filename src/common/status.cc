#include "common/status.h"

namespace modis {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

StatusCode StatusCodeFromName(const std::string& name) {
  static const StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted, StatusCode::kInternal,
      StatusCode::kUnimplemented, StatusCode::kIoError,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace modis
