#ifndef MODIS_COMMON_STATUS_H_
#define MODIS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace modis {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kIoError,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: "InvalidArgument" -> kInvalidArgument.
/// Unknown names decode as kInternal — a transported error stays an
/// error even when the peer speaks a newer code vocabulary.
StatusCode StatusCodeFromName(const std::string& name);

/// A lightweight success-or-error value, modelled after absl::Status.
///
/// MODis libraries never throw for recoverable conditions; fallible
/// operations return `Status` (or `Result<T>`), and callers decide how to
/// react. `Status` is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, modelled after absl::StatusOr<T>.
///
/// Accessing `value()` on an error result aborts the process (programming
/// error); check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return computed_value;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    // An OK status carries no value; treat as internal error.
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace modis

/// Propagates a non-OK Status from an expression, absl-style.
#define MODIS_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::modis::Status _status = (expr);               \
    if (!_status.ok()) return _status;              \
  } while (false)

/// Evaluates a Result<T> expression and assigns its value, or propagates.
#define MODIS_ASSIGN_OR_RETURN(lhs, expr)           \
  MODIS_ASSIGN_OR_RETURN_IMPL_(                     \
      MODIS_STATUS_CONCAT_(_result, __LINE__), lhs, expr)
#define MODIS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()
#define MODIS_STATUS_CONCAT_(a, b) MODIS_STATUS_CONCAT_IMPL_(a, b)
#define MODIS_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // MODIS_COMMON_STATUS_H_
