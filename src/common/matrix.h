#ifndef MODIS_COMMON_MATRIX_H_
#define MODIS_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace modis {

/// Dense row-major matrix of doubles. Minimal linear algebra needed by the
/// ML substrate (ridge regression normal equations, feature matrices).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) {
    MODIS_DCHECK(r < rows_ && c < cols_) << "Matrix::At(" << r << "," << c
                                         << ") of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    MODIS_DCHECK(r < rows_ && c < cols_) << "Matrix::At(" << r << "," << c
                                         << ") of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r.
  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  /// Returns A^T * A (cols x cols). Used by the ridge solver.
  Matrix Gram() const;

  /// Returns A^T * y. Requires y.size() == rows().
  std::vector<double> TransposeTimes(const std::vector<double>& y) const;

  /// Returns A * x. Requires x.size() == cols().
  std::vector<double> Times(const std::vector<double>& x) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system A x = b via Cholesky
/// decomposition. Fails with InvalidArgument on dimension mismatch and
/// FailedPrecondition if A is not (numerically) positive definite.
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

}  // namespace modis

#endif  // MODIS_COMMON_MATRIX_H_
