#ifndef MODIS_COMMON_STRINGS_H_
#define MODIS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace modis {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True if `s` parses fully as a floating-point number; stores it in *out.
bool ParseDouble(std::string_view s, double* out);

/// True if `s` parses fully as a 64-bit integer; stores it in *out.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats `v` with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits = 4);

/// Left-pads / truncates `s` to exactly `width` columns (for table output).
std::string PadRight(std::string s, size_t width);

}  // namespace modis

#endif  // MODIS_COMMON_STRINGS_H_
