#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace modis {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_log_json{false};

// Serializes whole lines: concurrent sessions log freely and lines never
// interleave. stderr keeps stdout clean for data (the CLI prints skylines
// there).
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

/// RFC 3339 UTC with millisecond precision: 2026-08-09T12:00:00.123Z.
std::string FormatTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  if (text == "debug") {
    *level = LogLevel::kDebug;
  } else if (text == "info") {
    *level = LogLevel::kInfo;
  } else if (text == "warn") {
    *level = LogLevel::kWarn;
  } else if (text == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogJson(bool json) {
  g_log_json.store(json, std::memory_order_relaxed);
}

bool GetLogJson() { return g_log_json.load(std::memory_order_relaxed); }

LogMessage::LogMessage(LogLevel level, const char* component)
    : level_(level), component_(component) {}

LogMessage& LogMessage::Tag(const std::string& key, const std::string& value) {
  tags_.emplace_back(key, value);
  return *this;
}

LogMessage& LogMessage::Tag(const std::string& key, int64_t value) {
  return Tag(key, std::to_string(value));
}

LogMessage& LogMessage::Tag(const std::string& key, uint64_t value) {
  return Tag(key, std::to_string(value));
}

LogMessage& LogMessage::Tag(const std::string& key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return Tag(key, buf);
}

LogMessage::~LogMessage() {
  std::string line;
  const std::string ts = FormatTimestamp();
  if (GetLogJson()) {
    line += "{\"ts\":\"";
    line += ts;
    line += "\",\"level\":\"";
    line += LogLevelName(level_);
    line += "\",\"component\":\"";
    AppendJsonEscaped(component_, &line);
    line += "\",\"message\":\"";
    AppendJsonEscaped(message_.str(), &line);
    line += "\"";
    for (const auto& [key, value] : tags_) {
      line += ",\"";
      AppendJsonEscaped(key, &line);
      line += "\":\"";
      AppendJsonEscaped(value, &line);
      line += "\"";
    }
    line += "}";
  } else {
    line += "[";
    line += ts;
    line += " ";
    for (const char* p = LogLevelName(level_); *p != '\0'; ++p) {
      line += static_cast<char>(std::toupper(static_cast<unsigned char>(*p)));
    }
    line += " ";
    line += component_;
    line += "] ";
    line += message_.str();
    for (const auto& [key, value] : tags_) {
      line += " ";
      line += key;
      line += "=";
      line += value;
    }
  }
  line += "\n";
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace modis
