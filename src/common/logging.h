#ifndef MODIS_COMMON_LOGGING_H_
#define MODIS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace modis::internal_logging {

/// Stream that aborts the process when destroyed. Used by MODIS_CHECK to
/// collect a failure message before terminating.
class FatalStream {
 public:
  FatalStream(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  FatalStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace modis::internal_logging

/// Aborts with a message if `cond` is false. For programming errors only —
/// recoverable conditions must use Status.
#define MODIS_CHECK(cond)                                            \
  if (!(cond))                                                       \
  ::modis::internal_logging::FatalStream(__FILE__, __LINE__, #cond)

#define MODIS_CHECK_OK(expr)                                          \
  do {                                                                \
    const ::modis::Status _st = (expr);                               \
    MODIS_CHECK(_st.ok()) << _st.ToString();                          \
  } while (false)

#define MODIS_DCHECK(cond) MODIS_CHECK(cond)

#endif  // MODIS_COMMON_LOGGING_H_
