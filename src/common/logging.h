#ifndef MODIS_COMMON_LOGGING_H_
#define MODIS_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace modis::internal_logging {

/// Stream that aborts the process when destroyed. Used by MODIS_CHECK to
/// collect a failure message before terminating.
class FatalStream {
 public:
  FatalStream(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  FatalStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace modis::internal_logging

/// Aborts with a message if `cond` is false. For programming errors only —
/// recoverable conditions must use Status.
#define MODIS_CHECK(cond)                                            \
  if (!(cond))                                                       \
  ::modis::internal_logging::FatalStream(__FILE__, __LINE__, #cond)

#define MODIS_CHECK_OK(expr)                                          \
  do {                                                                \
    const ::modis::Status _st = (expr);                               \
    MODIS_CHECK(_st.ok()) << _st.ToString();                          \
  } while (false)

#define MODIS_DCHECK(cond) MODIS_CHECK(cond)

namespace modis {

/// Severity of a structured log line. Ordered: a line is emitted when its
/// level is >= the process level set by SetLogLevel().
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parses "debug" | "info" | "warn" | "error" (case-sensitive). Returns
/// false on anything else, leaving *level untouched.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Canonical lowercase name ("debug", "info", ...).
const char* LogLevelName(LogLevel level);

/// Process-wide log configuration. Defaults: kInfo, text format. Both are
/// plain atomics: flipping them mid-flight affects subsequent lines only.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void SetLogJson(bool json);
bool GetLogJson();

/// One structured log line under construction. Free-text message goes in
/// via operator<<; key=value context via Tag(). The destructor emits a
/// single line to stderr:
///
///   text:  `[2026-08-09T12:00:00.123Z INFO server] message key=value`
///   json:  `{"ts":"...","level":"info","component":"server",
///           "message":"...","key":"value"}`
///
/// JSON mode emits exactly one object per line with every tag as a
/// top-level string field, so `--log-json` output is machine-parseable
/// line by line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    message_ << v;
    return *this;
  }

  LogMessage& Tag(const std::string& key, const std::string& value);
  LogMessage& Tag(const std::string& key, int64_t value);
  LogMessage& Tag(const std::string& key, uint64_t value);
  LogMessage& Tag(const std::string& key, double value);

 private:
  const LogLevel level_;
  const char* const component_;
  std::ostringstream message_;
  std::vector<std::pair<std::string, std::string>> tags_;
};

namespace internal_logging {

/// Swallows a disabled log statement without evaluating the stream.
struct LogVoidify {
  void operator&(const LogMessage&) {}
};

// Severity tokens for the MODIS_LOG macro: MODIS_LOG(INFO, ...).
inline constexpr LogLevel kLogLevel_DEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogLevel_INFO = LogLevel::kInfo;
inline constexpr LogLevel kLogLevel_WARN = LogLevel::kWarn;
inline constexpr LogLevel kLogLevel_ERROR = LogLevel::kError;

}  // namespace internal_logging

}  // namespace modis

/// Structured leveled logging: `MODIS_LOG(INFO, "server") << "started";`
/// or with context: `MODIS_LOG(INFO, "service").Tag("request_id", id)
/// << "served"`. Evaluates its operands only when the level is enabled.
/// (Deliberately not parenthesized as a whole: the ternary swallows the
/// streamed expression when the level is disabled, glog-style.)
#define MODIS_LOG(severity, component)                                       \
  (::modis::GetLogLevel() >                                                  \
   ::modis::internal_logging::kLogLevel_##severity)                          \
      ? (void)0                                                              \
      : ::modis::internal_logging::LogVoidify() &                            \
            ::modis::LogMessage(                                             \
                ::modis::internal_logging::kLogLevel_##severity, component)

#endif  // MODIS_COMMON_LOGGING_H_
