#include "common/matrix.h"

#include <cmath>

namespace modis {

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    for (size_t i = 0; i < cols_; ++i) {
      if (row[i] == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        g.At(i, j) += row[i] * row[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      g.At(j, i) = g.At(i, j);
    }
  }
  return g;
}

std::vector<double> Matrix::TransposeTimes(const std::vector<double>& y) const {
  MODIS_CHECK(y.size() == rows_) << "TransposeTimes dim mismatch";
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double yr = y[r];
    if (yr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * yr;
  }
  return out;
}

std::vector<double> Matrix::Times(const std::vector<double>& x) const {
  MODIS_CHECK(x.size() == cols_) << "Times dim mismatch";
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("CholeskySolve: matrix not square");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: rhs dimension mismatch");
  }
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::FailedPrecondition(
              "CholeskySolve: matrix not positive definite");
        }
        l.At(i, j) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Forward solve L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * z[k];
    z[i] = sum / l.At(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

}  // namespace modis
