#include "common/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"

namespace modis {

KMeans1DResult KMeans1D(const std::vector<double>& data, int k, Rng* rng,
                        int max_iters) {
  MODIS_CHECK(k > 0) << "KMeans1D: k must be positive";
  KMeans1DResult result;
  result.assignment.assign(data.size(), 0);
  if (data.empty()) return result;

  // Distinct values; if <= k, each is its own center.
  std::set<double> distinct(data.begin(), data.end());
  if (static_cast<int>(distinct.size()) <= k) {
    result.centers.assign(distinct.begin(), distinct.end());
  } else {
    // k-means++ seeding.
    std::vector<double> pts(distinct.begin(), distinct.end());
    std::vector<double> centers;
    centers.push_back(pts[rng->UniformInt(pts.size())]);
    std::vector<double> d2(pts.size());
    while (static_cast<int>(centers.size()) < k) {
      for (size_t i = 0; i < pts.size(); ++i) {
        double best = std::numeric_limits<double>::infinity();
        for (double c : centers) best = std::min(best, (pts[i] - c) * (pts[i] - c));
        d2[i] = best;
      }
      double total = 0.0;
      for (double d : d2) total += d;
      if (total <= 0.0) break;  // All points coincide with centers.
      centers.push_back(pts[rng->Categorical(d2)]);
    }
    // Lloyd iterations over the raw data.
    for (int iter = 0; iter < max_iters; ++iter) {
      std::vector<double> sums(centers.size(), 0.0);
      std::vector<size_t> counts(centers.size(), 0);
      for (double x : data) {
        size_t best = 0;
        double bd = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < centers.size(); ++c) {
          const double d = (x - centers[c]) * (x - centers[c]);
          if (d < bd) {
            bd = d;
            best = c;
          }
        }
        sums[best] += x;
        counts[best] += 1;
      }
      bool changed = false;
      for (size_t c = 0; c < centers.size(); ++c) {
        if (counts[c] == 0) continue;
        const double next = sums[c] / static_cast<double>(counts[c]);
        if (std::abs(next - centers[c]) > 1e-12) changed = true;
        centers[c] = next;
      }
      if (!changed) break;
    }
    result.centers = std::move(centers);
  }

  std::sort(result.centers.begin(), result.centers.end());
  // Final assignment to the sorted centers.
  for (size_t i = 0; i < data.size(); ++i) {
    size_t best = 0;
    double bd = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < result.centers.size(); ++c) {
      const double d = std::abs(data[i] - result.centers[c]);
      if (d < bd) {
        bd = d;
        best = c;
      }
    }
    result.assignment[i] = static_cast<int>(best);
  }
  return result;
}

}  // namespace modis
