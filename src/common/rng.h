#ifndef MODIS_COMMON_RNG_H_
#define MODIS_COMMON_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace modis {

/// Deterministic pseudo-random generator (xoshiro256**) with convenience
/// sampling helpers.
///
/// Every stochastic component in MODis (data generation, model training,
/// diversification seeding) takes an explicit Rng so that whole experiment
/// pipelines are reproducible from a single seed. The generator is small,
/// copyable, and fast; it is not suitable for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 state expansion.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace modis

#endif  // MODIS_COMMON_RNG_H_
