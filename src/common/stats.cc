#include "common/stats.h"

#include "common/logging.h"

namespace modis {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Clamp(double v, double lo, double hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  MODIS_CHECK(a.size() == b.size()) << "CosineSimilarity dim mismatch";
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  MODIS_CHECK(a.size() == b.size()) << "EuclideanDistance dim mismatch";
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace modis
