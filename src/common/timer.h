#ifndef MODIS_COMMON_TIMER_H_
#define MODIS_COMMON_TIMER_H_

#include <chrono>

namespace modis {

/// Monotonic wall-clock stopwatch used by the efficiency benchmarks and by
/// the training-time performance measure.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace modis

#endif  // MODIS_COMMON_TIMER_H_
