#ifndef MODIS_COMMON_KMEANS_H_
#define MODIS_COMMON_KMEANS_H_

#include <vector>

#include "common/rng.h"

namespace modis {

/// Result of a 1-D k-means run: cluster centers (sorted ascending) and the
/// assignment of each input point to a center index.
struct KMeans1DResult {
  std::vector<double> centers;
  std::vector<int> assignment;
};

/// Lloyd's algorithm on scalar data with k-means++ style seeding.
///
/// Used to compress active domains: the paper clusters adom(A) (max k = 30)
/// and derives one equality literal per cluster (§6, "Construction of D_U
/// and Operators"). If there are fewer than k distinct values the distinct
/// values themselves become the centers.
KMeans1DResult KMeans1D(const std::vector<double>& data, int k, Rng* rng,
                        int max_iters = 50);

}  // namespace modis

#endif  // MODIS_COMMON_KMEANS_H_
