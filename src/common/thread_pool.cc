#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <string>

namespace modis {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and the queue is drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

std::string DescribeException() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

/// Shared by the workers of one ParallelFor call: the dynamic index
/// dispenser plus the join rendezvous. Lives on the caller's stack — the
/// caller blocks until `active` drops to zero, so worker captures stay
/// valid.
struct ParallelForState {
  std::atomic<size_t> next{0};
  size_t end = 0;
  const std::function<void(size_t)>* fn = nullptr;

  std::mutex mu;
  std::condition_variable done;
  size_t active = 0;
  Status error;
};

void DrainIndices(ParallelForState* state) {
  for (;;) {
    const size_t i = state->next.fetch_add(1);
    if (i >= state->end) return;
    try {
      (*state->fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->error.ok()) {
        state->error =
            Status::Internal("ParallelFor task threw: " + DescribeException());
      }
      // Fail fast: park the dispenser past the end so the remaining
      // indices are skipped.
      state->next.store(state->end);
      return;
    }
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                   const std::function<void(size_t)>& fn) {
  if (begin >= end) return Status::OK();

  ParallelForState state;
  state.next.store(begin);
  state.end = end;
  state.fn = &fn;

  const size_t n = end - begin;
  if (pool == nullptr || pool->size() < 2 || n == 1) {
    DrainIndices(&state);
    return state.error;
  }

  const size_t tasks = pool->size() < n ? pool->size() : n;
  state.active = tasks;
  for (size_t t = 0; t < tasks; ++t) {
    pool->Submit([&state] {
      DrainIndices(&state);
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.active == 0) state.done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state] { return state.active == 0; });
  return state.error;
}

}  // namespace modis
