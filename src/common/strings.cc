#include "common/strings.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace modis {

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StrTrim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StrTrim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() > width) {
    s.resize(width);
    return s;
  }
  s.append(width - s.size(), ' ');
  return s;
}

}  // namespace modis
