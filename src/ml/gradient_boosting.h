#ifndef MODIS_ML_GRADIENT_BOOSTING_H_
#define MODIS_ML_GRADIENT_BOOSTING_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace modis {

/// Hyperparameters for gradient-boosted tree ensembles.
struct GbmOptions {
  int num_rounds = 60;
  double learning_rate = 0.1;
  TreeOptions tree = {.max_depth = 3, .min_samples_leaf = 4, .max_bins = 64,
                      .feature_fraction = 1.0};
  /// Row subsample per round (stochastic gradient boosting).
  double subsample = 1.0;
};

/// Gradient boosting with squared loss — the "GBmovie" model of task T1 and
/// the regression workhorse behind the MO-GBM estimator.
class GradientBoostingRegressor : public MlModel {
 public:
  explicit GradientBoostingRegressor(GbmOptions options = {});

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::vector<double> FeatureImportance() const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "GradientBoostingRegressor"; }

  /// Training loss (MSE) after each boosting round; tests assert the curve
  /// is non-increasing.
  const std::vector<double>& training_loss() const { return training_loss_; }

 private:
  GbmOptions options_;
  double base_prediction_ = 0.0;
  std::vector<DecisionTree> trees_;
  std::vector<double> training_loss_;
  size_t num_features_ = 0;
};

/// Gradient boosting with softmax cross-entropy (K trees per round) — the
/// histogram-binned configuration below doubles as "LightGBM-lite" for task
/// T4.
class GradientBoostingClassifier : public MlModel {
 public:
  explicit GradientBoostingClassifier(GbmOptions options = {});

  Status Fit(const MlDataset& train, Rng* rng) override;
  std::vector<double> Predict(const Matrix& x) const override;
  std::vector<std::vector<double>> PredictProba(const Matrix& x) const override;
  std::vector<double> FeatureImportance() const override;
  std::unique_ptr<MlModel> Clone() const override;
  const char* Name() const override { return "GradientBoostingClassifier"; }

 private:
  /// Raw (pre-softmax) scores for one row.
  std::vector<double> RawScores(const double* row) const;

  GbmOptions options_;
  int num_classes_ = 0;
  std::vector<double> base_scores_;
  // trees_[round * num_classes_ + k]
  std::vector<DecisionTree> trees_;
  size_t num_features_ = 0;
};

/// LightGBM-flavoured defaults: shallow trees, few bins, subsampling.
GbmOptions LightGbmLiteOptions();

}  // namespace modis

#endif  // MODIS_ML_GRADIENT_BOOSTING_H_
