#include "ml/multi_output_gbm.h"

#include "common/logging.h"

namespace modis {

MultiOutputGbm::MultiOutputGbm(GbmOptions options) : options_(options) {}

Status MultiOutputGbm::Fit(const Matrix& x, const Matrix& y, Rng* rng) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("MultiOutputGbm: x/y row mismatch");
  }
  if (y.cols() == 0) {
    return Status::InvalidArgument("MultiOutputGbm: no outputs");
  }
  num_features_ = x.cols();
  models_.clear();
  for (size_t j = 0; j < y.cols(); ++j) {
    MlDataset ds;
    ds.task = TaskKind::kRegression;
    ds.x = x;
    ds.y.resize(y.rows());
    for (size_t i = 0; i < y.rows(); ++i) ds.y[i] = y.At(i, j);
    GradientBoostingRegressor model(options_);
    MODIS_RETURN_IF_ERROR(model.Fit(ds, rng));
    models_.push_back(std::move(model));
  }
  return Status::OK();
}

std::vector<double> MultiOutputGbm::PredictRow(const double* row) const {
  MODIS_CHECK(trained()) << "MultiOutputGbm not trained";
  Matrix one(1, num_features_);
  for (size_t c = 0; c < num_features_; ++c) one.At(0, c) = row[c];
  std::vector<double> out(models_.size());
  for (size_t j = 0; j < models_.size(); ++j) {
    out[j] = models_[j].Predict(one).front();
  }
  return out;
}

Matrix MultiOutputGbm::Predict(const Matrix& x) const {
  MODIS_CHECK(trained()) << "MultiOutputGbm not trained";
  Matrix out(x.rows(), models_.size());
  for (size_t j = 0; j < models_.size(); ++j) {
    const auto col = models_[j].Predict(x);
    for (size_t i = 0; i < x.rows(); ++i) out.At(i, j) = col[i];
  }
  return out;
}

}  // namespace modis
