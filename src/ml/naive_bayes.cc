#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace modis {

Status GaussianNaiveBayes::Fit(const MlDataset& train, Rng* /*rng*/) {
  if (train.task != TaskKind::kClassification) {
    return Status::InvalidArgument(
        "GaussianNaiveBayes needs a classification dataset");
  }
  const size_t n = train.num_rows();
  const size_t d = train.num_features();
  if (n == 0) return Status::InvalidArgument("GaussianNaiveBayes: empty data");
  num_classes_ = train.num_classes;
  if (num_classes_ < 2) {
    return Status::InvalidArgument("GaussianNaiveBayes: needs >= 2 classes");
  }
  num_features_ = d;

  std::vector<double> count(num_classes_, 0.0);
  mean_.assign(static_cast<size_t>(num_classes_) * d, 0.0);
  variance_.assign(static_cast<size_t>(num_classes_) * d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const int k = static_cast<int>(train.y[r]);
    count[k] += 1.0;
    for (size_t c = 0; c < d; ++c) mean_[k * d + c] += train.x.At(r, c);
  }
  for (int k = 0; k < num_classes_; ++k) {
    if (count[k] <= 0.0) continue;
    for (size_t c = 0; c < d; ++c) mean_[k * d + c] /= count[k];
  }
  double max_var = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const int k = static_cast<int>(train.y[r]);
    for (size_t c = 0; c < d; ++c) {
      const double dlt = train.x.At(r, c) - mean_[k * d + c];
      variance_[k * d + c] += dlt * dlt;
    }
  }
  for (int k = 0; k < num_classes_; ++k) {
    if (count[k] <= 0.0) continue;
    for (size_t c = 0; c < d; ++c) {
      variance_[k * d + c] /= count[k];
      max_var = std::max(max_var, variance_[k * d + c]);
    }
  }
  const double eps = var_smoothing_ * std::max(max_var, 1.0);
  for (double& v : variance_) v += eps;

  log_prior_.assign(num_classes_, -1e30);
  for (int k = 0; k < num_classes_; ++k) {
    if (count[k] > 0.0) {
      log_prior_[k] = std::log(count[k] / static_cast<double>(n));
    }
  }
  return Status::OK();
}

std::vector<std::vector<double>> GaussianNaiveBayes::PredictProba(
    const Matrix& x) const {
  MODIS_CHECK(num_classes_ >= 2) << "GaussianNaiveBayes not trained";
  const size_t d = num_features_;
  std::vector<std::vector<double>> out(x.rows(),
                                       std::vector<double>(num_classes_));
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.Row(r);
    double mx = -1e300;
    for (int k = 0; k < num_classes_; ++k) {
      double ll = log_prior_[k];
      for (size_t c = 0; c < d; ++c) {
        const double v = variance_[k * d + c];
        const double dlt = row[c] - mean_[k * d + c];
        ll += -0.5 * (std::log(2.0 * M_PI * v) + dlt * dlt / v);
      }
      out[r][k] = ll;
      mx = std::max(mx, ll);
    }
    double denom = 0.0;
    for (int k = 0; k < num_classes_; ++k) {
      out[r][k] = std::exp(out[r][k] - mx);
      denom += out[r][k];
    }
    for (int k = 0; k < num_classes_; ++k) out[r][k] /= denom;
  }
  return out;
}

std::vector<double> GaussianNaiveBayes::Predict(const Matrix& x) const {
  const auto proba = PredictProba(x);
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = static_cast<double>(
        std::max_element(proba[r].begin(), proba[r].end()) - proba[r].begin());
  }
  return out;
}

std::unique_ptr<MlModel> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(var_smoothing_);
}

}  // namespace modis
