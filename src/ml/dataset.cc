#include "ml/dataset.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/logging.h"

namespace modis {

MlDataset MlDataset::SelectRows(const std::vector<size_t>& rows) const {
  MlDataset out;
  out.feature_names = feature_names;
  out.task = task;
  out.num_classes = num_classes;
  out.class_labels = class_labels;
  out.x = Matrix(rows.size(), x.cols());
  out.y.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    MODIS_DCHECK(rows[i] < x.rows()) << "SelectRows out of range";
    const double* src = x.Row(rows[i]);
    double* dst = out.x.Row(i);
    std::copy(src, src + x.cols(), dst);
    out.y[i] = y[rows[i]];
  }
  return out;
}

std::vector<int> MlDataset::LabelsAsInt() const {
  std::vector<int> out(y.size());
  for (size_t i = 0; i < y.size(); ++i) out[i] = static_cast<int>(y[i]);
  return out;
}

Result<MlDataset> TableToDataset(const Table& table, const std::string& target,
                                 TaskKind task, const BridgeOptions& options) {
  auto target_col = table.schema().FindField(target);
  if (!target_col.has_value()) {
    return Status::NotFound("TableToDataset: no target column " + target);
  }
  std::unordered_set<std::string> excluded(options.exclude.begin(),
                                           options.exclude.end());
  excluded.insert(target);

  // Feature columns in schema order.
  std::vector<size_t> feature_cols;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (excluded.count(table.schema().field(c).name) == 0) {
      feature_cols.push_back(c);
    }
  }

  // Rows with a non-null target.
  std::vector<size_t> rows;
  rows.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!table.At(r, *target_col).is_null()) rows.push_back(r);
  }

  MlDataset out;
  out.task = task;
  out.x = Matrix(rows.size(), feature_cols.size());
  out.y.resize(rows.size());
  for (size_t c : feature_cols) {
    out.feature_names.push_back(table.schema().field(c).name);
  }

  // Encode features column by column.
  for (size_t fc = 0; fc < feature_cols.size(); ++fc) {
    const size_t c = feature_cols[fc];
    const Field& field = table.schema().field(c);
    if (field.type == ColumnType::kNumeric) {
      double sum = 0.0;
      size_t n = 0;
      for (size_t r : rows) {
        const Value& v = table.At(r, c);
        if (!v.is_null() && v.IsNumeric()) {
          sum += v.AsDouble();
          ++n;
        }
      }
      const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
      for (size_t i = 0; i < rows.size(); ++i) {
        const Value& v = table.At(rows[i], c);
        out.x.At(i, fc) =
            (!v.is_null() && v.IsNumeric()) ? v.AsDouble() : mean;
      }
    } else {
      std::map<Value, double> codes;
      for (size_t r : rows) {
        const Value& v = table.At(r, c);
        if (!v.is_null()) codes.emplace(v, 0.0);
      }
      double code = 1.0;
      for (auto& kv : codes) kv.second = code++;
      for (size_t i = 0; i < rows.size(); ++i) {
        const Value& v = table.At(rows[i], c);
        out.x.At(i, fc) = v.is_null() ? 0.0 : codes.at(v);
      }
    }
  }

  // Encode target.
  if (task == TaskKind::kRegression) {
    for (size_t i = 0; i < rows.size(); ++i) {
      const Value& v = table.At(rows[i], *target_col);
      if (!v.IsNumeric()) {
        return Status::InvalidArgument(
            "TableToDataset: regression target must be numeric");
      }
      out.y[i] = v.AsDouble();
    }
  } else {
    std::map<Value, int> classes;
    for (size_t r : rows) {
      classes.emplace(table.At(r, *target_col), 0);
    }
    int next = 0;
    for (auto& kv : classes) {
      kv.second = next++;
      out.class_labels.push_back(kv.first);
    }
    out.num_classes = next;
    for (size_t i = 0; i < rows.size(); ++i) {
      out.y[i] = classes.at(table.At(rows[i], *target_col));
    }
  }
  return out;
}

SplitIndices TrainTestSplit(size_t n, double test_fraction, Rng* rng) {
  MODIS_CHECK(test_fraction >= 0.0 && test_fraction < 1.0)
      << "test_fraction out of range";
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  rng->Shuffle(&idx);
  const size_t test_n = static_cast<size_t>(test_fraction * n);
  SplitIndices split;
  split.test.assign(idx.begin(), idx.begin() + test_n);
  split.train.assign(idx.begin() + test_n, idx.end());
  return split;
}

}  // namespace modis
