#ifndef MODIS_ML_FEATURE_SCORES_H_
#define MODIS_ML_FEATURE_SCORES_H_

#include <vector>

#include "common/matrix.h"

namespace modis {

/// Fisher score of one feature w.r.t. integer class labels:
///   sum_k n_k (mu_k - mu)^2 / sum_k n_k sigma_k^2.
/// Returns 0 when the within-class variance vanishes with identical means.
double FisherScore(const std::vector<double>& feature,
                   const std::vector<int>& labels, int num_classes);

/// Mean Fisher score over all feature columns — the p_Fsc measure reported
/// in Tables 4/6 of the paper (a larger value means the retained features
/// separate the classes better).
double MeanFisherScore(const Matrix& x, const std::vector<int>& labels,
                       int num_classes);

/// Mutual information I(feature; label) in nats, with the feature
/// discretized into `bins` equal-width bins over its observed range.
double MutualInformation(const std::vector<double>& feature,
                         const std::vector<int>& labels, int num_classes,
                         int bins = 10);

/// Mean mutual information over all feature columns — the p_MI measure of
/// Tables 4/6.
double MeanMutualInformation(const Matrix& x, const std::vector<int>& labels,
                             int num_classes, int bins = 10);

/// Discretizes a continuous target into `bins` quantile classes so the
/// Fisher / MI measures also apply to regression tasks (T1, T3).
std::vector<int> DiscretizeTarget(const std::vector<double>& y, int bins);

}  // namespace modis

#endif  // MODIS_ML_FEATURE_SCORES_H_
