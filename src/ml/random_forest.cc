#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace modis {

namespace {

std::vector<size_t> BootstrapSample(size_t n, double fraction, Rng* rng) {
  const size_t m = std::max<size_t>(1, static_cast<size_t>(fraction * n));
  std::vector<size_t> sample(m);
  for (size_t i = 0; i < m; ++i) sample[i] = rng->UniformInt(n);
  return sample;
}

std::vector<double> AverageImportance(const std::vector<DecisionTree>& trees,
                                      size_t num_features) {
  std::vector<double> imp(num_features, 0.0);
  if (trees.empty()) return imp;
  for (const auto& t : trees) {
    const auto ti = t.FeatureImportance(num_features);
    for (size_t i = 0; i < num_features; ++i) imp[i] += ti[i];
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

}  // namespace

RandomForestClassifier::RandomForestClassifier(ForestOptions options)
    : options_(options) {}

Status RandomForestClassifier::Fit(const MlDataset& train, Rng* rng) {
  if (train.task != TaskKind::kClassification) {
    return Status::InvalidArgument("RandomForestClassifier needs a "
                                   "classification dataset");
  }
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("RandomForestClassifier: empty training set");
  }
  num_classes_ = train.num_classes;
  num_features_ = train.num_features();
  trees_.clear();
  trees_.reserve(options_.num_trees);

  TreeOptions topt = options_.tree;
  if (topt.feature_fraction >= 1.0 && num_features_ > 1) {
    topt.feature_fraction =
        std::sqrt(static_cast<double>(num_features_)) /
        static_cast<double>(num_features_);
  }
  for (int t = 0; t < options_.num_trees; ++t) {
    DecisionTree tree(topt);
    const auto sample =
        BootstrapSample(train.num_rows(), options_.subsample, rng);
    MODIS_RETURN_IF_ERROR(tree.Fit(train.x, train.y, sample,
                                   DecisionTree::Criterion::kGini,
                                   num_classes_, rng));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<std::vector<double>> RandomForestClassifier::PredictProba(
    const Matrix& x) const {
  MODIS_CHECK(!trees_.empty()) << "RandomForestClassifier not trained";
  std::vector<std::vector<double>> proba(
      x.rows(), std::vector<double>(num_classes_, 0.0));
  for (size_t r = 0; r < x.rows(); ++r) {
    for (const auto& tree : trees_) {
      const auto& dist = tree.PredictDistribution(x.Row(r));
      for (int k = 0; k < num_classes_; ++k) proba[r][k] += dist[k];
    }
    for (double& p : proba[r]) p /= static_cast<double>(trees_.size());
  }
  return proba;
}

std::vector<double> RandomForestClassifier::Predict(const Matrix& x) const {
  const auto proba = PredictProba(x);
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = static_cast<double>(
        std::max_element(proba[r].begin(), proba[r].end()) - proba[r].begin());
  }
  return out;
}

std::vector<double> RandomForestClassifier::FeatureImportance() const {
  return AverageImportance(trees_, num_features_);
}

std::unique_ptr<MlModel> RandomForestClassifier::Clone() const {
  return std::make_unique<RandomForestClassifier>(options_);
}

RandomForestRegressor::RandomForestRegressor(ForestOptions options)
    : options_(options) {}

Status RandomForestRegressor::Fit(const MlDataset& train, Rng* rng) {
  if (train.task != TaskKind::kRegression) {
    return Status::InvalidArgument(
        "RandomForestRegressor needs a regression dataset");
  }
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("RandomForestRegressor: empty training set");
  }
  num_features_ = train.num_features();
  trees_.clear();
  trees_.reserve(options_.num_trees);
  TreeOptions topt = options_.tree;
  if (topt.feature_fraction >= 1.0 && num_features_ > 1) {
    topt.feature_fraction = 1.0 / 3.0;  // Common regression default.
  }
  for (int t = 0; t < options_.num_trees; ++t) {
    DecisionTree tree(topt);
    const auto sample =
        BootstrapSample(train.num_rows(), options_.subsample, rng);
    MODIS_RETURN_IF_ERROR(tree.Fit(train.x, train.y, sample,
                                   DecisionTree::Criterion::kVariance, 0, rng));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForestRegressor::Predict(const Matrix& x) const {
  MODIS_CHECK(!trees_.empty()) << "RandomForestRegressor not trained";
  std::vector<double> out(x.rows(), 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    double sum = 0.0;
    for (const auto& tree : trees_) sum += tree.PredictValue(x.Row(r));
    out[r] = sum / static_cast<double>(trees_.size());
  }
  return out;
}

std::vector<double> RandomForestRegressor::FeatureImportance() const {
  return AverageImportance(trees_, num_features_);
}

std::unique_ptr<MlModel> RandomForestRegressor::Clone() const {
  return std::make_unique<RandomForestRegressor>(options_);
}

}  // namespace modis
